"""Benchmark harness helpers: each benchmark regenerates one table or
figure of the paper and saves the rendered report under
``benchmarks/out/`` (also echoed with ``-s``)."""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def report_sink():
    OUT_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return save
