"""Benchmark harness helpers: each benchmark regenerates one table or
figure of the paper and saves the rendered report under
``benchmarks/out/`` (also echoed with ``-s``).  Benchmarks that feed
the machine-readable perf trajectory push records into the
session-wide :class:`~repro.experiments.common.BenchCollector`, which
flushes ``BENCH_analysis.json`` / ``BENCH_mc.json`` at session end."""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.common import BenchCollector

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def report_sink():
    OUT_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return save


@pytest.fixture(scope="session")
def bench_collector():
    collector = BenchCollector()
    yield collector
    for path in collector.write(OUT_DIR):
        print(f"\nwrote {path}")
