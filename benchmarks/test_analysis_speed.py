"""Raw analysis throughput across the corpus (not a paper artifact —
tracks the cost of the full steps 1–7 pipeline).  Each case also
contributes a ``BENCH_analysis.json`` record (one dedicated timed run:
``pytest-benchmark`` stats are unavailable under
``--benchmark-disable``, which the CI smoke job uses)."""

import time

import pytest

from repro import corpus
from repro.analysis import analyze_program

CASES = {
    "nfq_prime": corpus.NFQ_PRIME,
    "herlihy": corpus.HERLIHY_SMALL,
    "gh_program1": corpus.GH_PROGRAM1,
    "allocator": corpus.ALLOCATOR,
    "treiber": corpus.TREIBER_STACK,
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_analysis_speed(benchmark, name, bench_collector):
    result = benchmark(analyze_program, CASES[name])
    assert result.verdicts
    start = time.perf_counter()
    analyze_program(CASES[name])
    bench_collector.add_analysis(f"analysis/{name}",
                                 time.perf_counter() - start)
