"""Raw analysis throughput across the corpus (not a paper artifact —
tracks the cost of the full steps 1–7 pipeline).  Each case also
contributes a ``BENCH_analysis.json`` record (dedicated timed runs:
``pytest-benchmark`` stats are unavailable under
``--benchmark-disable``, which the CI smoke job uses); the extra
rounds feed a wall-time histogram so the record carries p50/p95/p99
tail-latency estimates for the regression watchdog."""

import time

import pytest

from repro import corpus
from repro.analysis import analyze_program
from repro.obs import Histogram

CASES = {
    "nfq_prime": corpus.NFQ_PRIME,
    "herlihy": corpus.HERLIHY_SMALL,
    "gh_program1": corpus.GH_PROGRAM1,
    "allocator": corpus.ALLOCATOR,
    "treiber": corpus.TREIBER_STACK,
}

ROUNDS = 5


@pytest.mark.parametrize("name", sorted(CASES))
def test_analysis_speed(benchmark, name, bench_collector):
    result = benchmark(analyze_program, CASES[name])
    assert result.verdicts
    hist = Histogram()
    for _ in range(ROUNDS):
        start = time.perf_counter()
        analyze_program(CASES[name])
        hist.observe(time.perf_counter() - start)
    bench_collector.add_analysis(f"analysis/{name}", hist.min,
                                 histogram=hist)
