"""Figure 4 — Herlihy small objects: variant labels and verdict."""

from repro.experiments import figure4


def test_figure4(benchmark, report_sink):
    result = benchmark.pedantic(figure4.run, rounds=3, iterations=1)
    assert result.matches_paper
    report_sink("figure4", figure4.main())
