"""Ablations — which analysis ingredient (purity, windows, Thm 5.5,
uniqueness, LL-agreement) carries which §6 example."""

from repro.experiments import ablations


def test_ablations(benchmark, report_sink):
    result = benchmark.pedantic(ablations.run, rounds=1, iterations=1)
    ok, total = result.score("full analysis")
    assert ok == total
    report_sink("ablations", ablations.main())
