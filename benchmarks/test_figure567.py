"""Figures 5–7 — Gao-Hesselink: verdicts plus the operational
equivalence check (including the Fig. 7 version-reset finding)."""

from repro.experiments import figure567


def test_figure567(benchmark, report_sink):
    result = benchmark.pedantic(figure567.run, rounds=1, iterations=1)
    assert result.matches_paper
    assert not result.full_equivalent and result.fixed_equivalent
    report_sink("figure567", figure567.main())
