"""§6.4 — Michael's allocator: 74 pseudocode lines → 15 atomic blocks."""

from repro.experiments import section64


def test_section64(benchmark, report_sink):
    result = benchmark.pedantic(section64.run, rounds=3, iterations=1)
    assert result.matches_paper
    assert (result.lines, result.blocks) == (74, 15)
    report_sink("section64", section64.main())
