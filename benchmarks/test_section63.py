"""§6.3 — state counts under no-opt / POR / atomic / both on the
Gao-Hesselink algorithm (SPIN replaced by our checker)."""

from repro.experiments import section63

N_THREADS = 3
MAX_STATES = 2_000_000


def test_section63(benchmark, report_sink, bench_collector):
    result = benchmark.pedantic(
        section63.run, kwargs=dict(n_threads=N_THREADS,
                                   max_states=MAX_STATES),
        rounds=1, iterations=1)
    assert result.matches_paper
    for mode, mc_result in result.results.items():
        bench_collector.add_mc(f"section63/{mode}", mc_result)
    report_sink("section63", section63.main(N_THREADS, MAX_STATES))
