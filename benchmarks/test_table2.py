"""Table 2 — model checking NFQ' with and without the inferred atomic
blocks (TVLA replaced by our explicit-state checker; see DESIGN.md)."""

from repro.experiments import table2

N_THREADS = 2
MAX_STATES = 400_000


def test_table2(benchmark, report_sink):
    result = benchmark.pedantic(
        table2.run, kwargs=dict(n_threads=N_THREADS,
                                max_states=MAX_STATES),
        rounds=1, iterations=1)
    assert result.matches_paper
    report_sink("table2", table2.main(N_THREADS, MAX_STATES))
