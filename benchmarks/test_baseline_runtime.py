"""§2 baseline — lock-based runtime checking vs. the static analysis."""

from repro.experiments import baseline_runtime


def test_baseline_runtime(benchmark, report_sink):
    rows = benchmark.pedantic(baseline_runtime.run, rounds=1,
                              iterations=1)
    non_blocking = [r for r in rows if r.program != "Locked register"]
    assert all(r.static_atomic and not r.runtime_atomic
               for r in non_blocking)
    report_sink("baseline_runtime", baseline_runtime.main())
