"""Raw model-checking throughput on a small NFQ' driver (not a paper
artifact — tracks explorer states/sec across the reduction modes and
feeds the ``BENCH_mc.json`` perf trajectory with p50/p95/p99 wall-time
percentiles from repeated explorations; the full §6.3 workload lives
in ``test_section63.py``)."""

import pytest

from repro import corpus
from repro.interp import Interp, ThreadSpec
from repro.mc import Explorer
from repro.obs import Histogram

MODES = ["full", "por", "atomic"]

ROUNDS = 5


def _specs():
    return [ThreadSpec.of(("AddNode", 1), ("UpdateTail",)),
            ThreadSpec.of(("DeqP",), ("UpdateTail",))]


@pytest.mark.parametrize("mode", MODES)
def test_mc_speed(benchmark, mode, bench_collector):
    interp = Interp(corpus.NFQ_PRIME)

    def explore():
        return Explorer(interp, _specs(), mode=mode,
                        max_states=200_000).run()

    result = benchmark.pedantic(explore, rounds=1, iterations=1)
    assert result.violation is None and not result.capped
    assert result.states > 0
    assert result.metrics["mc.states_per_s"] > 0
    hist = Histogram()
    best = result
    for _ in range(ROUNDS):
        fresh = explore()
        hist.observe(fresh.elapsed)
        if fresh.elapsed < best.elapsed:
            best = fresh
    bench_collector.add_mc(f"mc/nfq_prime/{mode}", best,
                           histogram=hist)
