"""Figure 3 — per-line atomicity types of NFQ' exceptional variants."""

from repro.experiments import figure3


def test_figure3(benchmark, report_sink):
    result = benchmark.pedantic(figure3.run, rounds=3, iterations=1)
    assert result.matches_paper
    report_sink("figure3", figure3.main())
