"""Legacy setup shim: the sandbox has setuptools without `wheel`, so the
PEP-517 editable path (`bdist_wheel`) is unavailable; `pip install -e .
--no-use-pep517` uses this file instead."""

from setuptools import setup

setup()
