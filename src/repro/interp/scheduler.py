"""Schedulers for running SYNL worlds outside the model checker."""

from __future__ import annotations

import random
from typing import Optional

from repro.interp.interp import Interp, run
from repro.interp.state import World
from repro.obs import ledger


class RoundRobin:
    """Cycle through enabled threads in tid order."""

    def __init__(self) -> None:
        self.last = -1

    def __call__(self, world: World, enabled: list[int]) -> int:
        for tid in enabled:
            if tid > self.last:
                self.last = tid
                return tid
        self.last = enabled[0]
        return enabled[0]


class RandomScheduler:
    """Uniform random choice among enabled threads (seeded).  When an
    event stream is given, the seed decision is recorded as a
    ``sched.seed`` event (counterexample reproducibility)."""

    def __init__(self, seed: int = 0, events=None):
        self.rng = random.Random(seed)
        if events is not None:
            events.emit("sched.seed", seed=seed)
        # seed capture for the persistent run ledger (replay needs
        # the exact RNG decision; no-op outside a recorded run)
        ledger.note_seed(seed)

    def __call__(self, world: World, enabled: list[int]) -> int:
        return self.rng.choice(enabled)


def run_random(interp: Interp, world: World, seed: int = 0,
               max_steps: int = 100_000,
               path_log: Optional[list] = None, events=None) -> World:
    return run(interp, world, RandomScheduler(seed, events=events),
               max_steps, path_log=path_log, events=events)


def run_round_robin(interp: Interp, world: World,
                    max_steps: int = 100_000,
                    path_log: Optional[list] = None,
                    events=None) -> World:
    return run(interp, world, RoundRobin(), max_steps,
               path_log=path_log, events=events)
