"""Schedulers for running SYNL worlds outside the model checker."""

from __future__ import annotations

import random
from typing import Optional

from repro.interp.interp import Interp, run
from repro.interp.state import World


class RoundRobin:
    """Cycle through enabled threads in tid order."""

    def __init__(self) -> None:
        self.last = -1

    def __call__(self, world: World, enabled: list[int]) -> int:
        for tid in enabled:
            if tid > self.last:
                self.last = tid
                return tid
        self.last = enabled[0]
        return enabled[0]


class RandomScheduler:
    """Uniform random choice among enabled threads (seeded)."""

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)

    def __call__(self, world: World, enabled: list[int]) -> int:
        return self.rng.choice(enabled)


def run_random(interp: Interp, world: World, seed: int = 0,
               max_steps: int = 100_000) -> World:
    return run(interp, world, RandomScheduler(seed), max_steps)


def run_round_robin(interp: Interp, world: World,
                    max_steps: int = 100_000) -> World:
    return run(interp, world, RoundRobin(), max_steps)
