"""Runtime values and heap objects for the SYNL interpreter.

Values are Python ints/bools, ``None`` (SYNL ``null``), and
:class:`Ref` heap references.  Heap objects come in two shapes: records
(class instances with named fields) and arrays (int-indexed cells).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InterpError

Value = object  # int | bool | None | Ref


@dataclass(frozen=True)
class Ref:
    oid: int

    def __repr__(self) -> str:
        return f"@{self.oid}"


@dataclass
class HeapObject:
    class_name: str
    fields: dict[str, Value] = field(default_factory=dict)

    def copy(self) -> "HeapObject":
        return HeapObject(self.class_name, dict(self.fields))


@dataclass
class HeapArray:
    class_name: str
    cells: list[Value] = field(default_factory=list)

    def copy(self) -> "HeapArray":
        return HeapArray(self.class_name, list(self.cells))


class Heap:
    """An object heap with integer object ids."""

    def __init__(self) -> None:
        self.objects: dict[int, HeapObject | HeapArray] = {}
        self._next = 1

    def alloc(self, class_name: str) -> Ref:
        oid = self._next
        self._next += 1
        self.objects[oid] = HeapObject(class_name)
        return Ref(oid)

    def alloc_array(self, class_name: str, size: int) -> Ref:
        if size < 0:
            raise InterpError(f"negative array size {size}")
        oid = self._next
        self._next += 1
        self.objects[oid] = HeapArray(class_name, [0] * size)
        return Ref(oid)

    def get(self, ref: Value) -> HeapObject | HeapArray:
        if not isinstance(ref, Ref):
            raise InterpError(f"dereference of non-reference {ref!r}")
        try:
            return self.objects[ref.oid]
        except KeyError:
            raise InterpError(f"dangling reference {ref!r}") from None

    def read_field(self, ref: Value, name: str) -> Value:
        obj = self.get(ref)
        if not isinstance(obj, HeapObject):
            raise InterpError(f"field access {name} on array {ref!r}")
        return obj.fields.get(name)

    def write_field(self, ref: Value, name: str, value: Value) -> None:
        obj = self.get(ref)
        if not isinstance(obj, HeapObject):
            raise InterpError(f"field write {name} on array {ref!r}")
        obj.fields[name] = value

    def read_elem(self, ref: Value, index: Value) -> Value:
        obj = self.get(ref)
        if not isinstance(obj, HeapArray):
            raise InterpError(f"index access on non-array {ref!r}")
        if not isinstance(index, int) or isinstance(index, bool):
            raise InterpError(f"non-integer array index {index!r}")
        if not 0 <= index < len(obj.cells):
            raise InterpError(
                f"array index {index} out of bounds [0, {len(obj.cells)})")
        return obj.cells[index]

    def write_elem(self, ref: Value, index: Value, value: Value) -> None:
        obj = self.get(ref)
        if not isinstance(obj, HeapArray):
            raise InterpError(f"index write on non-array {ref!r}")
        if not isinstance(index, int) or isinstance(index, bool):
            raise InterpError(f"non-integer array index {index!r}")
        if not 0 <= index < len(obj.cells):
            raise InterpError(
                f"array index {index} out of bounds [0, {len(obj.cells)})")
        obj.cells[index] = value

    def copy(self) -> "Heap":
        out = Heap()
        out._next = self._next
        out.objects = {oid: obj.copy() for oid, obj in self.objects.items()}
        return out


#: Default pure primitives (§3.2: "primitive operations have no side
#: effect").  Applications register more via ``Interp(primitives=...)``.
def _compute(*args: int) -> int:
    return sum(a for a in args if isinstance(a, int)) + 1


#: Packing helpers for the allocator corpus.  ``Active`` packs
#: (superblock id, credits) as sb*8 + credits; anchors pack
#: (avail, count) as avail*64 + count.
def default_primitives() -> dict:
    return {
        "compute": _compute,
        "inc": lambda v: v + 1,
        "min": min,
        "max": max,
        "packactive": lambda sb, credits: sb * 8 + credits,
        "sbof": lambda a: a // 8,
        "creditsof": lambda a: a % 8,
        "reserve": lambda a, c: -1 if c == 0 else a - 1,
        "availof": lambda anchor: anchor // 64,
        "countof": lambda anchor: anchor % 64,
        "popanchor": lambda anchor, nxt, credits: nxt * 64 + anchor % 64,
        "takeall": lambda anchor: anchor % 64,
        "putcount": lambda anchor, n: anchor + n,
        "packlist": lambda prev, head: prev,
        "sbfirst": lambda sb: sb * 8,
    }
