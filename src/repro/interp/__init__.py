"""Operational semantics substrate: the SYNL interpreter."""

from repro.interp.interp import AssumeFailed, Interp, run
from repro.interp.scheduler import (RandomScheduler, RoundRobin, run_random,
                                    run_round_robin)
from repro.interp.state import Event, Frame, Thread, ThreadSpec, World
from repro.interp.values import (Heap, HeapArray, HeapObject, Ref,
                                 default_primitives)

__all__ = [
    "Interp",
    "AssumeFailed",
    "run",
    "RandomScheduler",
    "RoundRobin",
    "run_random",
    "run_round_robin",
    "Event",
    "Frame",
    "Thread",
    "ThreadSpec",
    "World",
    "Heap",
    "HeapArray",
    "HeapObject",
    "Ref",
    "default_primitives",
]
