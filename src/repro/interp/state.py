"""Program state for the SYNL interpreter: threads, frames, worlds.

A :class:`World` is a complete program state — global store, heap, lock
table, and per-thread local state — that can be deep-copied (for the
model checker's branching exploration) and canonicalized
(:mod:`repro.mc.canonical`).

Each thread executes a :class:`ThreadSpec`: a list of procedure
invocations (optionally repeated forever), which models the paper's
environment that "invokes procedures with arbitrary arguments and an
arbitrary amount of concurrency" (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cfg.graph import CFGNode, ProcCFG
from repro.interp.values import Heap, Value

Addr = tuple  # ('g', name) | ('t', tid, name) | ('f', oid, fd) | ('e', oid, i)


@dataclass(frozen=True)
class ThreadSpec:
    """What one environment thread does: a sequence of invocations."""

    ops: tuple  # tuple[tuple[str, tuple[Value, ...]], ...]
    repeat: bool = False

    @staticmethod
    def of(*calls, repeat: bool = False) -> "ThreadSpec":
        """``ThreadSpec.of(("Enq", 1), ("Deq",))``"""
        norm = tuple((name, tuple(rest)) for name, *rest in
                     (c if isinstance(c, tuple) else (c,) for c in calls))
        return ThreadSpec(norm, repeat)


@dataclass
class Event:
    kind: str       # 'invoke' | 'return'
    tid: int
    proc: str
    args: tuple
    result: Value = None
    seq: int = 0

    def __repr__(self) -> str:
        if self.kind == "invoke":
            return f"[{self.seq}] t{self.tid} call {self.proc}{self.args}"
        return (f"[{self.seq}] t{self.tid} ret  {self.proc}{self.args}"
                f" = {self.result!r}")


@dataclass
class Frame:
    proc_name: str
    cfg: ProcCFG
    node: Optional[CFGNode]      # the node about to execute
    env: dict[int, Value] = field(default_factory=dict)
    args: tuple = ()

    def copy(self) -> "Frame":
        return Frame(self.proc_name, self.cfg, self.node, dict(self.env),
                     self.args)


@dataclass
class Thread:
    tid: int
    spec: ThreadSpec
    op_index: int = 0
    frame: Optional[Frame] = None
    threadlocals: dict[str, Value] = field(default_factory=dict)
    #: addr -> reservation still valid?
    reservations: dict[Addr, bool] = field(default_factory=dict)
    #: addr -> modification counter observed at the last read
    observed: dict[Addr, int] = field(default_factory=dict)
    steps: int = 0

    @property
    def done(self) -> bool:
        if self.frame is not None:
            return False
        if self.spec.repeat:
            return not self.spec.ops
        return self.op_index >= len(self.spec.ops)

    def current_call(self) -> tuple[str, tuple]:
        ops = self.spec.ops
        return ops[self.op_index % len(ops)]

    def copy(self) -> "Thread":
        return Thread(
            self.tid, self.spec, self.op_index,
            self.frame.copy() if self.frame is not None else None,
            dict(self.threadlocals), dict(self.reservations),
            dict(self.observed), self.steps)


class World:
    """A complete, copyable program state."""

    def __init__(self) -> None:
        self.globals: dict[str, Value] = {}
        self.heap = Heap()
        self.locks: dict[int, tuple[int, int]] = {}  # oid -> (tid, depth)
        self.versions: dict[Addr, int] = {}          # store counters
        self.threads: list[Thread] = []
        self.history: list[Event] = []
        self._seq = 0

    def emit(self, event: Event) -> Event:
        event.seq = self._seq
        self._seq += 1
        self.history.append(event)
        return event

    def copy(self, with_history: bool = False) -> "World":
        out = World()
        out.globals = dict(self.globals)
        out.heap = self.heap.copy()
        out.locks = dict(self.locks)
        out.versions = dict(self.versions)
        out.threads = [t.copy() for t in self.threads]
        if with_history:
            out.history = list(self.history)
            out._seq = self._seq
        return out

    def quiescent(self) -> bool:
        """All threads between invocations (outside all code blocks)."""
        return all(t.frame is None for t in self.threads)
