"""Small-step interpreter for SYNL with LL/SC/VL, CAS and monitors.

Transition granularity is one CFG node (one statement / branch test),
the usual statement granularity of explicit-state model checkers; all
reads/writes inside a node happen in one transition.

Synchronization semantics (§3.1):

* ``LL(addr)`` returns the contents and takes a reservation;
* ``SC(addr, v)`` succeeds iff the thread's reservation on ``addr`` is
  intact; success stores ``v``.  Any store to ``addr`` by *another*
  thread invalidates reservations (we invalidate on all stores, the
  conservative hardware behaviour; the paper's statement — only
  successful SCs invalidate — is equivalent under its SC-only-updates
  assumption);
* ``VL(addr)`` tests the reservation without writing;
* ``CAS(addr, exp, new)`` compares and swaps.  Every read records the
  address's modification counter; a CAS whose target location is
  declared ``versioned`` also requires the counter to be unchanged —
  the modification-counter ABA defence of §5.2.  Undeclared CAS targets
  get raw compare-and-swap, so the ABA problem is demonstrable.
* ``synchronized`` uses Java monitor semantics (re-entrant; acquire
  blocks, making the transition disabled).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cfg.builder import build_cfg, build_stmt_cfg
from repro.cfg.graph import CFGNode, NodeKind, ProcCFG
from repro.errors import AssertionViolation, InterpError
from repro.interp.state import Addr, Event, Frame, Thread, ThreadSpec, World
from repro.interp.values import Heap, Ref, Value, default_primitives
from repro.synl import ast as A
from repro.synl.resolve import load_program


class AssumeFailed(InterpError):
    """A TRUE(e) statement evaluated to false (used by the model
    checker's atomic-variant mode to mark a variant as disabled)."""


class Interp:
    """Interpreter for one resolved program (shared, immutable); worlds
    carry all mutable state."""

    def __init__(self, program: A.Program | str,
                 primitives: Optional[dict] = None,
                 extra_procs: Optional[list[A.Procedure]] = None,
                 events=None):
        if isinstance(program, str):
            program = load_program(program)
        self.program = program
        #: optional :class:`repro.obs.events.EventStream` receiving
        #: ``interp.sc`` / ``interp.cas`` events (None = off; the hot
        #: path pays one attribute check)
        self.events = events
        self.primitives = default_primitives()
        if primitives:
            self.primitives.update(primitives)
        self.cfgs: dict[str, ProcCFG] = {
            p.name: build_cfg(p) for p in program.procs}
        for proc in extra_procs or []:
            self.cfgs[proc.name] = build_cfg(proc)
            self._extra = True
        self.consts: dict[str, Value] = {
            c.name: c.value.value for c in program.consts}
        self.versioned_globals = program.versioned_names()
        self.proc_params: dict[str, list[int]] = {}
        for p in program.procs:
            self.proc_params[p.name] = [
                p.param_bindings[name] for name in p.params]
        for proc in extra_procs or []:
            self.proc_params[proc.name] = [
                proc.param_bindings[name] for name in proc.params]

    # -- world construction ----------------------------------------------------
    def make_world(self, specs: list[ThreadSpec]) -> World:
        world = World()
        for decl in self.program.globals:
            world.globals[decl.name] = None
        boot = Thread(tid=-1, spec=ThreadSpec(()))
        for decl in self.program.globals:
            if decl.init is not None:
                world.globals[decl.name] = self._eval(
                    world, boot, decl.init)
        if self.program.init is not None:
            self._run_block(world, boot, "init", self.program.init)
        for tid, spec in enumerate(specs):
            thread = Thread(tid=tid, spec=spec)
            for decl in self.program.threadlocals:
                thread.threadlocals[decl.name] = (
                    self._eval(world, thread, decl.init)
                    if decl.init is not None else None)
            if self.program.threadinit is not None:
                self._run_block(world, thread, "threadinit",
                                self.program.threadinit)
            world.threads.append(thread)
        world.history.clear()
        world._seq = 0
        return world

    def _run_block(self, world: World, thread: Thread, name: str,
                   block: A.Block) -> None:
        cfg = build_stmt_cfg(name, block)
        saved_frame, saved_op = thread.frame, thread.op_index
        thread.frame = Frame(name, cfg, self._first_node(cfg))
        budget = 100_000
        while thread.frame is not None and budget > 0:
            self.step(world, thread.tid if thread.tid >= 0 else None,
                      thread=thread)
            budget -= 1
        if budget == 0:
            raise InterpError(f"{name} block did not terminate")
        thread.frame, thread.op_index = saved_frame, saved_op

    @staticmethod
    def _first_node(cfg: ProcCFG) -> Optional[CFGNode]:
        succs = list(cfg.successors(cfg.entry))
        return succs[0] if succs else None

    # -- scheduling interface -----------------------------------------------------
    def enabled(self, world: World, tid: int) -> bool:
        thread = world.threads[tid]
        if thread.done:
            return False
        frame = thread.frame
        if frame is None:
            return True  # can invoke the next operation
        node = frame.node
        if node is None:
            return True
        if node.kind is NodeKind.ACQUIRE:
            # side-effect-free peek (enabled() must not mutate the world)
            lock = self._peek(world, thread, node.expr)
            if not isinstance(lock, Ref):
                raise InterpError(f"synchronized on non-object {lock!r}")
            owner = world.locks.get(lock.oid)
            return owner is None or owner[0] == thread.tid
        return True

    def _peek(self, world: World, thread: Thread, e: A.Expr) -> Value:
        """Evaluate a location expression without recording reads."""
        if isinstance(e, A.Const):
            return e.value
        if isinstance(e, (A.Var, A.Field, A.Index)):
            if isinstance(e, A.Var) and e.kind is A.VarKind.CONST:
                return self.consts[e.name]
            return self._load(world, thread, self._addr(world, thread, e))
        raise InterpError(
            f"lock expression must be a location, got {type(e).__name__}")

    def enabled_threads(self, world: World) -> list[int]:
        return [t.tid for t in world.threads if self.enabled(world, t.tid)]

    def begin_call(self, world: World, tid: int, name: str, args: tuple,
                   display: Optional[str] = None) -> Event:
        """Push a call frame directly (used by the model checker's
        atomic-variant mode to invoke a specific exceptional variant).
        ``display`` is the procedure name recorded in the history."""
        thread = world.threads[tid]
        if thread.frame is not None:
            raise InterpError(f"thread {tid} is mid-procedure")
        cfg = self.cfgs.get(name)
        if cfg is None:
            raise InterpError(f"unknown procedure {name!r}")
        frame = Frame(display or name, cfg, self._first_node(cfg),
                      args=tuple(args))
        params = self.proc_params.get(name, [])
        if len(params) != len(args):
            raise InterpError(
                f"{name} expects {len(params)} args, got {len(args)}")
        for binding, value in zip(params, args):
            frame.env[binding] = value
        thread.frame = frame
        return world.emit(Event("invoke", tid, display or name,
                                tuple(args)))

    # -- the step function ----------------------------------------------------------
    def step(self, world: World, tid: Optional[int],
             thread: Optional[Thread] = None) -> Optional[Event]:
        """Execute one transition of the given thread.  Returns the
        history event produced, if any."""
        if thread is None:
            assert tid is not None
            thread = world.threads[tid]
        if thread.done:
            raise InterpError(f"thread {thread.tid} is done")
        thread.steps += 1

        if thread.frame is None:
            name, args = thread.current_call()
            cfg = self.cfgs.get(name)
            if cfg is None:
                raise InterpError(f"unknown procedure {name!r}")
            frame = Frame(name, cfg, self._first_node(cfg), args=args)
            params = self.proc_params.get(name, [])
            if len(params) != len(args):
                raise InterpError(
                    f"{name} expects {len(params)} args, got {len(args)}")
            for binding, value in zip(params, args):
                frame.env[binding] = value
            thread.frame = frame
            return world.emit(Event("invoke", thread.tid, name, args))

        frame = thread.frame
        node = frame.node
        if node is None:
            return self._finish(world, thread, None)
        result = self._exec_node(world, thread, frame, node)
        return result

    def _finish(self, world: World, thread: Thread,
                value: Value) -> Optional[Event]:
        frame = thread.frame
        assert frame is not None
        thread.frame = None
        thread.op_index += 1
        if thread.tid < 0:
            return None
        return world.emit(Event("return", thread.tid, frame.proc_name,
                                frame.args, value))

    # -- node execution -----------------------------------------------------------
    def _exec_node(self, world: World, thread: Thread, frame: Frame,
                   node: CFGNode) -> Optional[Event]:
        kind = node.kind
        stmt = node.stmt

        if kind is NodeKind.BRANCH:
            value = self._eval(world, thread, node.expr)
            label = bool(value)
            return self._advance(world, thread, frame, node, label)

        if kind is NodeKind.BIND:
            assert isinstance(stmt, A.LocalDecl)
            frame.env[stmt.binding] = self._eval(world, thread, stmt.init)
        elif kind is NodeKind.STMT:
            if isinstance(stmt, A.Assign):
                value = self._eval(world, thread, stmt.value)
                self._write_location(world, thread, stmt.target, value)
            elif isinstance(stmt, A.Assume):
                if not self._eval(world, thread, stmt.cond):
                    raise AssumeFailed(
                        f"TRUE({type(stmt.cond).__name__}) failed")
            elif isinstance(stmt, A.AssertStmt):
                if not self._eval(world, thread, stmt.cond):
                    raise AssertionViolation(
                        "assertion failed", thread.tid, stmt.pos)
            elif isinstance(stmt, A.ExprStmt):
                self._eval(world, thread, stmt.expr)
            elif isinstance(stmt, A.Skip):
                pass
            else:  # pragma: no cover
                raise InterpError(f"bad stmt node {type(stmt).__name__}")
        elif kind is NodeKind.RETURN:
            assert isinstance(stmt, A.Return)
            value = (self._eval(world, thread, stmt.value)
                     if stmt.value is not None else None)
            return self._finish(world, thread, value)
        elif kind is NodeKind.ACQUIRE:
            lock = self._eval(world, thread, node.expr)
            assert isinstance(lock, Ref)
            owner = world.locks.get(lock.oid)
            if owner is None:
                world.locks[lock.oid] = (thread.tid, 1)
            elif owner[0] == thread.tid:
                world.locks[lock.oid] = (thread.tid, owner[1] + 1)
            else:
                raise InterpError(
                    f"thread {thread.tid} stepped into a held lock")
        elif kind is NodeKind.RELEASE:
            lock = self._eval(world, thread, node.expr)
            assert isinstance(lock, Ref)
            owner = world.locks.get(lock.oid)
            if owner is None or owner[0] != thread.tid:
                raise InterpError(
                    f"thread {thread.tid} released a lock it does not "
                    f"hold (IllegalMonitorState)")
            if owner[1] == 1:
                del world.locks[lock.oid]
            else:
                world.locks[lock.oid] = (thread.tid, owner[1] - 1)
        elif kind in (NodeKind.LOOP_HEAD, NodeKind.BREAK, NodeKind.CONTINUE,
                      NodeKind.ENTRY):
            pass
        else:  # pragma: no cover
            raise InterpError(f"cannot execute node kind {kind}")
        return self._advance(world, thread, frame, node, None)

    def _advance(self, world: World, thread: Thread, frame: Frame,
                 node: CFGNode, label: Optional[bool]) -> Optional[Event]:
        cfg = frame.cfg
        edges = cfg.out_edges(node)
        if label is None:
            targets = [e.dst for e in edges]
        else:
            targets = [e.dst for e in edges
                       if e.label is label
                       or (e.label == "back" and label is None)]
        if not targets:
            return self._finish(world, thread, None)
        if len(targets) > 1:  # pragma: no cover - builder invariant
            raise InterpError(f"ambiguous successor of {node!r}")
        nxt = targets[0]
        if nxt is cfg.exit:
            return self._finish(world, thread, None)
        frame.node = nxt
        return None

    # -- memory ---------------------------------------------------------------------
    def _addr(self, world: World, thread: Thread, loc: A.Expr) -> Addr:
        if isinstance(loc, A.Var):
            if loc.kind is A.VarKind.GLOBAL:
                return ("g", loc.name)
            if loc.kind is A.VarKind.THREADLOCAL:
                return ("t", thread.tid, loc.name)
            return ("l", thread.tid, loc.binding)
        if isinstance(loc, A.Field):
            base = self._eval(world, thread, loc.base)
            if not isinstance(base, Ref):
                raise InterpError(f"field access on {base!r}")
            return ("f", base.oid, loc.name)
        if isinstance(loc, A.Index):
            base = self._eval(world, thread, loc.base)
            index = self._eval(world, thread, loc.index)
            if not isinstance(base, Ref):
                raise InterpError(f"index access on {base!r}")
            return ("e", base.oid, index)
        raise InterpError(f"not a location: {type(loc).__name__}")

    def _load(self, world: World, thread: Thread, addr: Addr) -> Value:
        kind = addr[0]
        if kind == "g":
            return world.globals[addr[1]]
        if kind == "t":
            # thread-locals are only ever addressed by their own thread
            return thread.threadlocals[addr[2]]
        if kind == "l":
            return thread.frame.env.get(addr[2])
        if kind == "f":
            return world.heap.read_field(Ref(addr[1]), addr[2])
        if kind == "e":
            return world.heap.read_elem(Ref(addr[1]), addr[2])
        raise InterpError(f"bad address {addr!r}")

    def _store(self, world: World, thread: Thread, addr: Addr,
               value: Value) -> None:
        kind = addr[0]
        if kind == "g":
            world.globals[addr[1]] = value
        elif kind == "t":
            thread.threadlocals[addr[2]] = value
        elif kind == "l":
            thread.frame.env[addr[2]] = value
        elif kind == "f":
            world.heap.write_field(Ref(addr[1]), addr[2], value)
        elif kind == "e":
            world.heap.write_elem(Ref(addr[1]), addr[2], value)
        else:
            raise InterpError(f"bad address {addr!r}")
        if kind in ("g", "f", "e"):
            world.versions[addr] = world.versions.get(addr, 0) + 1
            for other in world.threads:
                if other.tid != thread.tid and addr in other.reservations:
                    other.reservations[addr] = False

    def _record_read(self, world: World, thread: Thread,
                     addr: Addr) -> None:
        if addr[0] in ("g", "f", "e"):
            thread.observed[addr] = world.versions.get(addr, 0)

    def _write_location(self, world: World, thread: Thread, loc: A.Expr,
                        value: Value) -> None:
        addr = self._addr(world, thread, loc)
        self._store(world, thread, addr, value)

    def _loc_versioned(self, world: World, thread: Thread,
                       loc: A.Expr) -> bool:
        """Is this CAS target under the modification-counter discipline?"""
        if isinstance(loc, A.Var):
            return loc.name in self.versioned_globals
        if isinstance(loc, A.Index) and isinstance(loc.base, A.Var) \
                and loc.base.kind is A.VarKind.GLOBAL:
            return loc.base.name in self.versioned_globals
        if isinstance(loc, A.Field) and isinstance(loc.base, A.Var):
            base = self._eval(world, thread, loc.base)
            if isinstance(base, Ref):
                obj = world.heap.get(base)
                decl = self.program.class_decl(obj.class_name)
                return decl is not None \
                    and loc.name in decl.versioned_fields
        return False

    # -- expression evaluation ----------------------------------------------------------
    def _eval(self, world: World, thread: Thread, e: A.Expr) -> Value:
        if isinstance(e, A.Const):
            return e.value
        if isinstance(e, A.Var):
            if e.kind is A.VarKind.CONST:
                return self.consts[e.name]
            addr = self._addr(world, thread, e)
            value = self._load(world, thread, addr)
            self._record_read(world, thread, addr)
            return value
        if isinstance(e, (A.Field, A.Index)):
            addr = self._addr(world, thread, e)
            value = self._load(world, thread, addr)
            self._record_read(world, thread, addr)
            return value
        if isinstance(e, A.New):
            return world.heap.alloc(e.class_name)
        if isinstance(e, A.NewArray):
            size = self._eval(world, thread, e.size)
            if not isinstance(size, int):
                raise InterpError(f"array size {size!r}")
            return world.heap.alloc_array(e.class_name, size)
        if isinstance(e, A.Unary):
            v = self._eval(world, thread, e.operand)
            if e.op == "!":
                return not bool(v)
            if e.op == "-":
                return -v
            raise InterpError(f"bad unary {e.op}")
        if isinstance(e, A.Binary):
            return self._binary(world, thread, e)
        if isinstance(e, A.PrimCall):
            fn = self.primitives.get(e.name)
            if fn is None:
                raise InterpError(f"unknown primitive {e.name!r}")
            args = [self._eval(world, thread, a) for a in e.args]
            return fn(*args)
        if isinstance(e, A.LLExpr):
            addr = self._addr(world, thread, e.loc)
            value = self._load(world, thread, addr)
            self._record_read(world, thread, addr)
            thread.reservations[addr] = True
            return value
        if isinstance(e, A.VLExpr):
            addr = self._addr(world, thread, e.loc)
            return thread.reservations.get(addr, False)
        if isinstance(e, A.SCExpr):
            value = self._eval(world, thread, e.value)
            addr = self._addr(world, thread, e.loc)
            ok = bool(thread.reservations.get(addr, False))
            if ok:
                self._store(world, thread, addr, value)
            if self.events is not None:
                self.events.emit("interp.sc", tid=thread.tid,
                                 addr=repr(addr), ok=ok)
            return ok
        if isinstance(e, A.CASExpr):
            expected = self._eval(world, thread, e.expected)
            new = self._eval(world, thread, e.new)
            versioned = self._loc_versioned(world, thread, e.loc)
            addr = self._addr(world, thread, e.loc)
            current = self._load(world, thread, addr)
            ok = current == expected and \
                isinstance(current, bool) == isinstance(expected, bool)
            if ok and versioned and addr in thread.observed \
                    and thread.observed[addr] != world.versions.get(addr, 0):
                ok = False  # the modification counter moved: ABA defence
            if ok:
                self._store(world, thread, addr, new)
            if self.events is not None:
                self.events.emit("interp.cas", tid=thread.tid,
                                 addr=repr(addr), ok=ok)
            return ok
        raise InterpError(f"cannot evaluate {type(e).__name__}")

    def _binary(self, world: World, thread: Thread, e: A.Binary) -> Value:
        op = e.op
        if op == "&&":
            return bool(self._eval(world, thread, e.left)) and \
                bool(self._eval(world, thread, e.right))
        if op == "||":
            return bool(self._eval(world, thread, e.left)) or \
                bool(self._eval(world, thread, e.right))
        left = self._eval(world, thread, e.left)
        right = self._eval(world, thread, e.right)
        if op == "==":
            return left == right and isinstance(left, bool) == \
                isinstance(right, bool)
        if op == "!=":
            return left != right or isinstance(left, bool) != \
                isinstance(right, bool)
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return left // right if (left < 0) == (right < 0) \
                    else -((-left) // right) if left < 0 \
                    else -(left // (-right))
            if op == "%":
                return left - right * (
                    left // right if (left < 0) == (right < 0)
                    else -((-left) // right) if left < 0
                    else -(left // (-right)))
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
        except TypeError as exc:
            raise InterpError(f"bad operands for {op}: "
                              f"{left!r}, {right!r}") from exc
        raise InterpError(f"bad binary {op}")


def run(interp: Interp, world: World, schedule: Callable[[World, list[int]], int],
        max_steps: int = 100_000, path_log: Optional[list] = None,
        events=None) -> World:
    """Run until all threads are done or the step budget is exhausted.
    ``schedule(world, enabled)`` picks the next thread id.

    ``path_log`` (when given) collects one step dict per executed
    transition — the same ``{tid, uid, desc, kind, via, proc}`` shape
    the model checker records on :attr:`MCResult.path` — so a
    violating schedule can be rendered as an annotated counterexample
    (:mod:`repro.mc.cex`).  ``events`` receives ``sched.switch``
    events on every context switch."""
    last: Optional[int] = None
    for _ in range(max_steps):
        enabled = interp.enabled_threads(world)
        if not enabled:
            return world
        tid = schedule(world, enabled)
        if events is not None and tid != last:
            events.emit("sched.switch", tid=tid,
                        prev=-1 if last is None else last)
        last = tid
        if path_log is not None:
            thread = world.threads[tid]
            frame = thread.frame
            if frame is None:
                name, args = thread.current_call()
                path_log.append({"tid": tid, "uid": None,
                                 "desc": f"t{tid}:{name}{args}",
                                 "kind": "invoke", "via": None,
                                 "proc": name})
            else:
                node = frame.node
                uid = node.uid if node is not None else None
                kind = "stmt" if node is not None else "return"
                path_log.append({"tid": tid, "uid": uid,
                                 "desc": f"t{tid}@{uid}",
                                 "kind": kind, "via": None,
                                 "proc": frame.proc_name})
        interp.step(world, tid)
    return world
