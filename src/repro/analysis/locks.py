"""Lockset analysis (Theorem 5.1).

Computes, for every CFG node, the set of locks *certainly held* while it
executes (a forward must-analysis over ACQUIRE/RELEASE nodes).  Two
expressions inside synchronized statements on the same lock cannot
execute adjacently (Theorem 5.1); step 4 of the inference uses
``common_lock`` to discharge adjacency queries.

Lock identities are syntactic :class:`~repro.analysis.actions.Target`
descriptors; two locks are "the same" when the alias analysis says the
descriptors must alias (for globals: same name).
"""

from __future__ import annotations

from repro.analysis.actions import Target, _lock_target
from repro.analysis.alias import AliasAnalysis
from repro.cfg.dataflow import Problem, Solution, intersection_meet, solve
from repro.cfg.graph import CFGNode, NodeKind, ProcCFG


class LocksetResult:
    def __init__(self, sol: Solution):
        self._sol = sol

    def held_at(self, node: CFGNode) -> frozenset[Target]:
        """Locks held while ``node``'s actions execute.  For an ACQUIRE
        node the acquired lock is *not* yet counted (the acquire itself
        is the boundary); for a RELEASE node the released lock still is."""
        return self._sol.before[node]


def lockset_analysis(cfg: ProcCFG) -> LocksetResult:
    all_locks: set[Target] = set()
    for node in cfg.nodes:
        if node.kind is NodeKind.ACQUIRE:
            all_locks.add(_lock_target(node.expr))
    top = frozenset(all_locks)

    def transfer(node: CFGNode, fact: frozenset) -> frozenset:
        if node.kind is NodeKind.ACQUIRE:
            return fact | {_lock_target(node.expr)}
        if node.kind is NodeKind.RELEASE:
            return fact - {_lock_target(node.expr)}
        return fact

    problem: Problem[frozenset] = Problem(
        direction="forward",
        boundary=frozenset(),
        init=top,
        meet=intersection_meet,
        transfer=transfer,
    )
    return LocksetResult(solve(cfg, problem))


def common_lock(aliases: AliasAnalysis, held_a: frozenset[Target],
                held_b: frozenset[Target]) -> bool:
    """Do the two locksets certainly share a lock?  (Uses must-alias:
    a shared *name* guarantees the same lock object for globals.)"""
    for la in held_a:
        for lb in held_b:
            if aliases.must_alias(la, lb):
                return True
    return False
