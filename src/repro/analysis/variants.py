"""Exceptional variants of procedures (§5.2).

Each variant is "a specialized version of the procedure ... with each
pure loop replaced by its selected exceptional slice"; non-pure loops
appear unchanged.  Theorem 5.2: if all exceptional variants of a
procedure are atomic, the procedure is atomic.

Variant generation produces a fresh, fully re-resolved
:class:`~repro.synl.ast.Program` whose procedures are the variants (one
per selection of exceptional slices across the procedure's *outermost*
pure loops, times the SC success-split of
:func:`repro.analysis.slices.split_bare_sc`).  Pure loops nested inside
other pure loops are left inside their parent's slices (their atomicity
is then computed via the iterative closure, which is conservative).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.analysis.purity import PurityInfo
from repro.analysis.slices import clone_stmt, exceptional_slice, split_bare_sc
from repro.cfg.graph import CFGNode, ProcCFG
from repro.synl import ast as A
from repro.synl.resolve import resolve


@dataclass
class Variant:
    """One exceptional variant of one procedure."""

    name: str                 #: variant procedure name (e.g. ``DeqP2``)
    source: str               #: original procedure name
    proc: A.Procedure         #: the variant as a fresh Procedure AST
    #: which exceptional exit was selected per sliced loop (loop nid ->
    #: human-readable exit description)
    exits: dict[int, str] = field(default_factory=dict)


@dataclass
class VariantSet:
    """All exceptional variants of a program, as a resolved program."""

    program: A.Program                      #: the variant program
    variants: list[Variant]
    by_source: dict[str, list[Variant]] = field(default_factory=dict)

    def of(self, source: str) -> list[Variant]:
        return self.by_source.get(source, [])


def _exit_label(node: CFGNode) -> str:
    stmt = node.stmt
    if isinstance(stmt, A.Return):
        if stmt.value is None:
            return "return"
        from repro.synl.printer import pretty_expr

        return f"return {pretty_expr(stmt.value)}"
    if isinstance(stmt, A.Break):
        return f"break {stmt.label}" if stmt.label else "break"
    return "exit"


class _ProcExpander:
    def __init__(self, cfg: ProcCFG, purity: dict[A.Loop, PurityInfo]):
        self.cfg = cfg
        self.purity = purity

    def _is_pure(self, loop: A.Loop) -> bool:
        info = self.purity.get(loop)
        return info is not None and info.pure

    def expand_stmt(self, s: A.Stmt) -> list[tuple[list[A.Stmt], dict, bool]]:
        """Return alternatives as (stmts, exit-selection, terminated)."""
        if isinstance(s, A.Block):
            results: list[tuple[list[A.Stmt], dict, bool]] = [([], {}, False)]
            for sub in s.stmts:
                new_results = []
                for stmts, sel, terminated in results:
                    if terminated:
                        new_results.append((stmts, sel, True))
                        continue
                    for sub_stmts, sub_sel, sub_term in self.expand_stmt(sub):
                        new_results.append(
                            (stmts + sub_stmts, {**sel, **sub_sel},
                             sub_term))
                results = new_results
            return results

        if isinstance(s, A.Loop) and self._is_pure(s):
            nested_pure = any(
                isinstance(d, A.Loop) and self._is_pure(d)
                for d in s.body.walk())
            if nested_pure:
                # slice innermost pure loops first: keep this loop for a
                # later expansion round (the checker iterates to a
                # fixpoint) and expand only its body now
                out = []
                for body, sel, _term in self.expand_stmt(s.body):
                    loop = A.Loop(A_block(body, s.pos), s.label)
                    loop.at(s.pos)
                    out.append(([loop], sel, False))
                return out
            info = self.cfg.loop_info(s)
            alternatives = []
            for exit_node in info.exceptional_exits:
                slice_stmts = exceptional_slice(self.cfg, info, exit_node)
                terminated = isinstance(exit_node.stmt, A.Return)
                for split in split_bare_sc(slice_stmts):
                    alternatives.append(
                        (split, {s.nid: _exit_label(exit_node)},
                         terminated))
            return alternatives

        if isinstance(s, A.LocalDecl):
            out = []
            for body, sel, term in self.expand_stmt(s.body):
                decl = A.LocalDecl(s.name, clone_expr_of(s.init),
                                   A_block(body, s.pos))
                decl.at(s.pos)
                out.append(([decl], sel, term))
            return out

        if isinstance(s, A.If):
            thens = self.expand_stmt(s.then)
            elses = self.expand_stmt(s.els) if s.els is not None \
                else [(None, {}, False)]
            out = []
            for tstmts, tsel, tterm in thens:
                for estmts, esel, eterm in elses:
                    node = A.If(
                        clone_expr_of(s.cond), A_block(tstmts, s.pos),
                        A_block(estmts, s.pos)
                        if estmts is not None else None)
                    node.at(s.pos)
                    out.append(([node], {**tsel, **esel},
                                tterm and (estmts is not None and eterm)))
            return out

        if isinstance(s, A.Synchronized):
            out = []
            for body, sel, term in self.expand_stmt(s.body):
                sync = A.Synchronized(clone_expr_of(s.lock),
                                      A_block(body, s.pos))
                sync.at(s.pos)
                out.append(([sync], sel, term))
            return out

        if isinstance(s, A.Loop):
            # non-pure loop: kept unchanged (§5.2); nested pure loops
            # inside it are also kept (conservative)
            return [([clone_stmt(s)], {}, False)]

        terminated = isinstance(s, (A.Return,))
        return [([clone_stmt(s)], {}, terminated)]


def A_block(stmts: list[A.Stmt], pos) -> A.Block:
    block = A.Block(stmts)
    block.at(pos)
    return block


def clone_expr_of(e: A.Expr) -> A.Expr:
    from repro.analysis.slices import clone_expr

    return clone_expr(e)


def make_variants(program: A.Program,
                  cfgs: dict[str, ProcCFG],
                  purity: dict[str, dict[A.Loop, PurityInfo]]) -> VariantSet:
    """Build the variant program: every procedure replaced by its
    exceptional variants, cloned and freshly resolved."""
    variants: list[Variant] = []
    by_source: dict[str, list[Variant]] = {}
    procs: list[A.Procedure] = []

    for proc in program.procs:
        expander = _ProcExpander(cfgs[proc.name], purity.get(proc.name, {}))
        alternatives = expander.expand_stmt(proc.body)
        named: list[Variant] = []
        multiple = len(alternatives) > 1
        for i, (stmts, sel, _term) in enumerate(alternatives, start=1):
            name = f"{proc.name}{i}" if multiple else proc.name
            vproc = A.Procedure(name, list(proc.params),
                                A_block(stmts, proc.body.pos))
            vproc.at(proc.pos)
            variant = Variant(name=name, source=proc.name, proc=vproc,
                              exits=sel)
            named.append(variant)
            procs.append(vproc)
        variants.extend(named)
        by_source[proc.name] = named

    vprogram = A.Program(
        globals=[_clone_vardecl(d) for d in program.globals],
        threadlocals=[_clone_vardecl(d) for d in program.threadlocals],
        consts=[_clone_constdecl(c) for c in program.consts],
        classes=[_clone_classdecl(c) for c in program.classes],
        procs=procs,
        init=clone_stmt(program.init) if program.init is not None else None,
        threadinit=clone_stmt(program.threadinit)
        if program.threadinit is not None else None,
    )
    resolve(vprogram)
    return VariantSet(vprogram, variants, by_source)


def _clone_vardecl(d: A.VarDecl) -> A.VarDecl:
    out = A.VarDecl(d.name,
                    clone_expr_of(d.init) if d.init is not None else None,
                    d.versioned)
    out.at(d.pos)
    return out


def _clone_constdecl(c: A.ConstDecl) -> A.ConstDecl:
    value = A.Const(c.value.value)
    value.at(c.value.pos)
    out = A.ConstDecl(c.name, value)
    out.at(c.pos)
    return out


def _clone_classdecl(c: A.ClassDecl) -> A.ClassDecl:
    out = A.ClassDecl(c.name, list(c.fields), c.versioned_fields)
    out.at(c.pos)
    return out
