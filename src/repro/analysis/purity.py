"""Pure-loop detection (§4 of the paper).

A loop is *pure* if every action that can occur in a **normally
terminating** iteration of its body is a pure action with respect to the
loop:

(i)   a global action that performs no update, or
(ii)  a local action that performs no update, or updates a variable
      ``v`` such that (ii.a) on every path from the end of the loop body
      to a procedure exit the next access to ``v`` is a write, and
      (ii.b) if ``v`` is unaccessed on some such path, ``v`` is
      procedure-local;
(iii) for each ``LL(v)`` executable under normal termination, every
      ``SC(v, ·)`` that can match it is inside the loop, with an
      ``LL(v)`` on every path from loop entry to that SC.

Special case (§4): an SC/CAS used as an ``if`` condition whose success
branch cannot reach a normal termination is treated as a (failing) read.

For array element regions (``p.fd[i]``), plain element writes are weak
(they protect nothing); condition (ii.a) is instead discharged by a
*covering write loop* — the counting-loop idiom of Gao & Hesselink's
algorithm (Fig. 5), whose normal exit guarantees the whole region was
rewritten.  The recognizer and its assumptions are documented on
:func:`find_covering_loops`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.actions import RawAction, Target, node_actions
from repro.analysis.escape import EscapeResult
from repro.cfg.builder import normal_iteration_nodes
from repro.cfg.graph import CFGNode, LoopInfo, NodeKind, ProcCFG
from repro.synl import ast as A

# -- regions -----------------------------------------------------------------

Region = tuple  # ('var', b) | ('field', b, fd) | ('elem', b, fd) | ('global', name)


def target_region(t: Target) -> Region:
    if t.kind == "global":
        return ("global", t.name)
    if t.kind == "var":
        return ("var", t.binding)
    if t.kind == "field":
        if t.binding is None:
            return ("global", f"{t.name}.{t.field}")
        return ("field", t.binding, t.field)
    if t.kind == "elem":
        if t.binding is None:
            return ("global", f"{t.name}.{t.field}[]")
        return ("elem", t.binding, t.field)
    raise ValueError(t.kind)


def binding_kinds(program: A.Program) -> dict[int, A.VarKind]:
    """Map binding id -> storage class, derived from the resolved AST."""
    kinds: dict[int, A.VarKind] = {}
    for node in program.walk():
        if isinstance(node, A.LocalDecl) and node.binding is not None:
            kinds[node.binding] = A.VarKind.LOCAL
        elif isinstance(node, A.Procedure):
            for b in node.param_bindings.values():
                kinds[b] = A.VarKind.PARAM
        elif isinstance(node, A.Var) and node.binding is not None \
                and node.kind is not None:
            kinds.setdefault(node.binding, node.kind)
    return kinds


# -- covering write loops ------------------------------------------------------

@dataclass
class CoveringLoop:
    """A counting loop that rewrites a whole array region on normal exit.

    Recognized idiom (assumptions documented in the module docstring)::

        local i = c in ... loop { if (i > bound) break;
                                   ...; p.fd[i] = e; ...; i = i + 1; }

    * ``i`` is a procedure-local initialized to a constant and only ever
      incremented by 1 inside the loop;
    * ``bound`` is a constant, named constant, or variable unwritten in
      the loop;
    * every normal iteration writes ``p.fd[i]`` and increments ``i``.

    Passing through the loop's counting exit (its BREAK node) then
    guarantees elements ``c..bound`` — the whole region, by the indexing
    convention of the analyzed programs — have been rewritten, so the
    BREAK acts as a strong write barrier for the region in the
    first-access queries of condition (ii.a).
    """

    info: LoopInfo
    region: Region
    barrier: CFGNode  # the BREAK node of the counting exit
    counter: int      # binding of i


def _const_like(e: A.Expr, body_writes: set[int]) -> bool:
    if isinstance(e, A.Const):
        return True
    if isinstance(e, A.Var):
        if e.kind is A.VarKind.CONST:
            return True
        return e.binding is not None and e.binding not in body_writes
    return False


def _written_bindings(cfg: ProcCFG, nodes: set[CFGNode]) -> set[int]:
    out: set[int] = set()
    for n in nodes:
        for a in node_actions(n):
            if a.op == "write" and a.target is not None \
                    and a.target.kind == "var":
                out.add(a.target.binding)
    return out


def _every_normal_path_hits(cfg: ProcCFG, info: LoopInfo,
                            required: set[CFGNode]) -> bool:
    """Does every head→head path within the loop body pass through a
    node in ``required``?"""
    body = set(info.body_nodes) | {info.head}
    reachable = cfg.reachable_from(info.head, within=body, avoid=required)
    for src in info.back_sources:
        if src in reachable and src not in required:
            return False
    return True


def find_covering_loops(cfg: ProcCFG) -> list[CoveringLoop]:
    out: list[CoveringLoop] = []
    for info in cfg.loops:
        body = set(info.body_nodes)
        body_writes = _written_bindings(cfg, body)
        # counting exits: BRANCH `i > bound` whose true edge is a BREAK
        # leaving exactly this loop
        for br in body:
            if br.kind is not NodeKind.BRANCH:
                continue
            cond = br.expr
            if not (isinstance(cond, A.Binary)
                    and cond.op in (">", ">=", "==")
                    and isinstance(cond.left, A.Var)
                    and cond.left.binding is not None):
                continue
            counter = cond.left.binding
            if not _const_like(cond.right,
                               body_writes - {counter}):
                continue
            true_targets = [e.dst for e in cfg.out_edges(br)
                            if e.label is True]
            if len(true_targets) != 1 \
                    or true_targets[0].kind is not NodeKind.BREAK:
                continue
            brk = true_targets[0]
            if getattr(brk, "jump_target", None) is not info.loop:
                continue
            # counter discipline: declared with a constant initializer,
            # written only by i = i + 1 inside the loop
            decl_ok = False
            for node in cfg.nodes:
                if node.kind is NodeKind.BIND \
                        and isinstance(node.stmt, A.LocalDecl) \
                        and node.stmt.binding == counter:
                    decl_ok = isinstance(node.stmt.init, A.Const)
            incs: set[CFGNode] = set()
            counter_ok = decl_ok
            for node in cfg.nodes:
                if node.kind is NodeKind.STMT \
                        and isinstance(node.stmt, A.Assign) \
                        and isinstance(node.stmt.target, A.Var) \
                        and node.stmt.target.binding == counter:
                    v = node.stmt.value
                    if (node in body and isinstance(v, A.Binary)
                            and v.op == "+"
                            and isinstance(v.left, A.Var)
                            and v.left.binding == counter
                            and isinstance(v.right, A.Const)
                            and v.right.value == 1):
                        incs.add(node)
                    else:
                        counter_ok = False
            if not counter_ok or not incs:
                continue
            # element writes p.fd[i] on every normal path
            regions: dict[Region, set[CFGNode]] = {}
            for node in body:
                if node.kind is NodeKind.STMT \
                        and isinstance(node.stmt, A.Assign) \
                        and isinstance(node.stmt.target, A.Index):
                    idx = node.stmt.target.index
                    if isinstance(idx, A.Var) and idx.binding == counter:
                        from repro.analysis.actions import location_target

                        region = target_region(
                            location_target(node.stmt.target))
                        regions.setdefault(region, set()).add(node)
            for region, writers in regions.items():
                if region[0] != "elem":
                    continue
                if _every_normal_path_hits(cfg, info, writers) \
                        and _every_normal_path_hits(cfg, info, incs):
                    out.append(CoveringLoop(info, region, brk, counter))
    return out


# -- SC/CAS used as a failing read ---------------------------------------------

def _branch_sc(node: CFGNode) -> tuple[A.Expr | None, bool]:
    """If ``node`` is a branch whose condition is SC/CAS (possibly
    negated), return (the SC/CAS expr, success_edge_label)."""
    if node.kind is not NodeKind.BRANCH:
        return None, True
    cond = node.expr
    if isinstance(cond, (A.SCExpr, A.CASExpr)):
        return cond, True
    if isinstance(cond, A.Unary) and cond.op == "!" \
            and isinstance(cond.operand, (A.SCExpr, A.CASExpr)):
        return cond.operand, False
    return None, True


def sc_treated_as_read(cfg: ProcCFG, info: LoopInfo,
                       node: CFGNode) -> bool:
    """§4 special case: the SC/CAS branch condition is treated as a read
    when its success branch cannot reach a normal termination of the
    loop body."""
    sc, success_label = _branch_sc(node)
    if sc is None:
        return False
    body = set(info.body_nodes) | {info.head}
    # collect success-edge targets (a branch that ends the loop body keeps
    # its boolean label on the edge back to the head)
    for edge in cfg.out_edges(node):
        if edge.label is success_label:
            target = edge.dst
            if target is info.head:
                return False  # success immediately re-enters: normal
            if target in body and info.head in cfg.reachable_from(
                    target, within=body):
                return False
    return True


# -- the purity analysis ----------------------------------------------------------

@dataclass
class PurityInfo:
    loop: A.Loop
    info: LoopInfo
    pure: bool
    reasons: list[str] = field(default_factory=list)
    normal_nodes: set[CFGNode] = field(default_factory=set)


class PurityAnalysis:
    """Checks every loop of one procedure CFG for purity."""

    def __init__(self, cfg: ProcCFG, program: A.Program,
                 escape: EscapeResult, unique_bindings: set[int]):
        self.cfg = cfg
        self.program = program
        self.escape = escape
        self.unique = unique_bindings
        self.kinds = binding_kinds(program)
        self.coverings = find_covering_loops(cfg)
        self.reachable = cfg.reachable_from(cfg.entry)

    # -- local/global classification -------------------------------------------
    def is_local_action(self, node: CFGNode, target: Target) -> bool:
        """Local actions (§3.3): unshared variable accesses, and field
        accesses through unique or not-yet-escaped references."""
        if target.kind == "var":
            return True  # variable cells are thread-private in SYNL
        if target.kind in ("field", "elem"):
            if target.binding is None:
                return False
            if target.binding in self.unique:
                return True
            return self.escape.is_fresh(node, target.binding)
        return False

    # -- first-access queries (condition ii) ------------------------------------
    def _first_access(self, node: CFGNode, region: Region) -> str | None:
        for action in node_actions(node):
            if action.target is None or action.op not in ("read", "write"):
                continue
            if target_region(action.target) == region:
                return action.op
        return None

    def _strong_barriers(self, region: Region) -> set[CFGNode]:
        barriers: set[CFGNode] = set()
        for node in self.reachable:
            first = self._first_access(node, region)
            if first == "write" and region[0] != "elem":
                barriers.add(node)
        for cov in self.coverings:
            if cov.region == region:
                barriers.add(cov.barrier)
        return barriers

    def _check_local_update(self, info: LoopInfo, node: CFGNode,
                            target: Target) -> str | None:
        """Condition (ii); returns a reason string when violated."""
        region = target_region(target)
        if region[0] == "var":
            binding = region[1]
            # a local scoped entirely inside the loop body is trivially
            # dead at the end of the body
            for bind_node in self.cfg.nodes:
                if bind_node.kind is NodeKind.BIND \
                        and isinstance(bind_node.stmt, A.LocalDecl) \
                        and bind_node.stmt.binding == binding \
                        and bind_node in set(info.body_nodes):
                    return None
        head = info.head
        barriers = self._strong_barriers(region)
        read_first = {n for n in self.reachable
                      if self._first_access(n, region) == "read"}
        bad = self.cfg.backward_reachable(list(read_first), stop=barriers)
        if head in bad:
            return (f"update to {target} may be read before rewritten "
                    f"(condition ii.a)")
        # (ii.b): an access-free path to exit requires a procedure-local v
        accesses = {n for n in self.reachable
                    if self._first_access(n, region) is not None}
        free = self.cfg.backward_reachable([self.cfg.exit], stop=accesses)
        if head in free:
            binding = region[1]
            kind = self.kinds.get(binding)
            if kind not in (A.VarKind.LOCAL, A.VarKind.PARAM):
                return (f"updated {target} can leave the procedure "
                        f"unaccessed but is not procedure-local "
                        f"(condition ii.b)")
        return None

    # -- condition (iii) ------------------------------------------------------------
    def _check_ll(self, info: LoopInfo, node: CFGNode,
                  action: RawAction) -> str | None:
        from repro.analysis.matching import matching_lls

        body = set(info.body_nodes)
        target = action.target
        for sc_node in self.reachable:
            for sc_action in node_actions(sc_node):
                if sc_action.via != "SC" or sc_action.op != "write":
                    continue
                if target_region(sc_action.target) != target_region(target):
                    continue
                matches = matching_lls(self.cfg, sc_node, sc_action.target)
                if node not in matches:
                    continue
                if sc_node not in body:
                    return (f"LL({target}) can match an SC outside the "
                            f"loop (condition iii)")
                lls = {n for n in self.reachable
                       if any(a.via == "LL" and a.op == "read"
                              and target_region(a.target)
                              == target_region(target)
                              for a in node_actions(n))}
                avoid = self.cfg.backward_reachable([sc_node],
                                                    stop=lls - {sc_node})
                if info.head in avoid and sc_node is not info.head:
                    return (f"no LL({target}) on every path from loop "
                            f"entry to its SC (condition iii)")
        return None

    # -- the per-loop check ---------------------------------------------------------
    def check_loop(self, info: LoopInfo) -> PurityInfo:
        normal = normal_iteration_nodes(self.cfg, info) & self.reachable
        result = PurityInfo(info.loop, info, True, normal_nodes=normal)
        for node in self.cfg.ordered(normal):
            as_read = sc_treated_as_read(self.cfg, info, node)
            failing: list = []
            if node.kind is NodeKind.STMT and isinstance(
                    node.stmt, A.Assume):
                from repro.analysis.inference import _failing_sync_exprs

                failing = list(_failing_sync_exprs(node.stmt.cond))
            for action in node_actions(node):
                if action.op == "write" and action.expr is not None \
                        and action.expr in failing:
                    continue  # an SC/CAS asserted to fail writes nothing
                reason = self._check_action(info, node, action, as_read)
                if reason is not None:
                    result.pure = False
                    result.reasons.append(reason)
        return result

    def _check_action(self, info: LoopInfo, node: CFGNode,
                      action: RawAction, sc_as_read: bool) -> str | None:
        if action.op in ("acquire", "release", "alloc"):
            # the SYNL syntax guarantees matched acquire/release pairs
            # inside an iteration (Theorem 4.1); allocations of objects
            # that stay local are invisible
            return None
        if action.op == "read":
            if action.via == "LL":
                return self._check_ll(info, node, action)
            return None
        # writes
        if action.via in ("SC", "CAS"):
            if sc_as_read:
                return None
            return (f"{action.via}({action.target}) can update in a "
                    f"normally terminating iteration")
        if self.is_local_action(node, action.target):
            return self._check_local_update(info, node, action.target)
        return (f"global write to {action.target} in a normally "
                f"terminating iteration")

    def run(self) -> dict[A.Loop, PurityInfo]:
        return {info.loop: self.check_loop(info) for info in self.cfg.loops}


def pure_loops(cfg: ProcCFG, program: A.Program, escape: EscapeResult,
               unique_bindings: set[int]) -> dict[A.Loop, PurityInfo]:
    """Run the purity analysis on every loop of the CFG."""
    return PurityAnalysis(cfg, program, escape, unique_bindings).run()
