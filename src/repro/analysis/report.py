"""Per-line atomicity reports in the style of Figure 3 of the paper.

Each exceptional variant is flattened into *lines*: the binding part of a
``local`` block, each simple statement, and compound statements
(``if``/``loop``/``synchronized``) as single composite lines.  Every line
gets a label (``a1``, ``a2``, … with one letter per variant) and the
atomicity type the inference assigned, e.g.::

    a4:R    local t = LL(Tail) in
    a5:R      local next = LL(t.Next) in
    a6:B        TRUE(VL(Tail));
"""

from __future__ import annotations

import string
from dataclasses import dataclass

from repro.analysis import atomicity as AT
from repro.analysis.atomicity import Atomicity
from repro.analysis.inference import (AnalysisResult, VariantContext,
                                      VariantReport)
from repro.cfg.graph import CFGNode, NodeKind
from repro.synl import ast as A
from repro.synl.printer import pretty_expr


@dataclass
class ReportLine:
    label: str
    depth: int
    text: str
    atomicity: Atomicity
    stmt: A.Stmt

    def render(self) -> str:
        return f"{self.label}:{self.atomicity}  " \
               f"{'  ' * self.depth}{self.text}"


def _node_atom(ctx: VariantContext, node: CFGNode) -> Atomicity:
    return AT.seq_all([s.atomicity for s in ctx.sites if s.node is node])


def _one_line(s: A.Stmt) -> str:
    """A compact single-line rendering of a statement."""
    if isinstance(s, A.Assign):
        return f"{pretty_expr(s.target)} = {pretty_expr(s.value)};"
    if isinstance(s, A.Assume):
        return f"TRUE({pretty_expr(s.cond)});"
    if isinstance(s, A.AssertStmt):
        return f"assert({pretty_expr(s.cond)});"
    if isinstance(s, A.ExprStmt):
        return f"{pretty_expr(s.expr)};"
    if isinstance(s, A.Return):
        return f"return {pretty_expr(s.value)};" if s.value is not None \
            else "return;"
    if isinstance(s, A.Break):
        return f"break {s.label};" if s.label else "break;"
    if isinstance(s, A.Continue):
        return f"continue {s.label};" if s.label else "continue;"
    if isinstance(s, A.Skip):
        return "skip;"
    if isinstance(s, A.LocalDecl):
        return f"local {s.name} = {pretty_expr(s.init)} in"
    if isinstance(s, A.If):
        return f"if ({pretty_expr(s.cond)}) ..."
    if isinstance(s, A.Loop):
        return f"{s.label}: loop ..." if s.label else "loop ..."
    if isinstance(s, A.Synchronized):
        return f"synchronized ({pretty_expr(s.lock)}) ..."
    if isinstance(s, A.Block):
        return "{ ... }"
    raise TypeError(type(s).__name__)


def variant_lines(report: VariantReport, prefix: str) -> list[ReportLine]:
    """Flatten a variant into labelled report lines."""
    ctx = report.ctx
    lines: list[ReportLine] = []
    counter = [0]

    def label() -> str:
        counter[0] += 1
        return f"{prefix}{counter[0]}"

    def visit(s: A.Stmt, depth: int) -> None:
        if isinstance(s, A.Block):
            for sub in s.stmts:
                visit(sub, depth)
            return
        if isinstance(s, A.LocalDecl):
            bind_nodes = [n for n in ctx.stmt_nodes.get(s.nid, [])
                          if n.kind is NodeKind.BIND]
            atom = _node_atom(ctx, bind_nodes[0]) if bind_nodes else AT.B
            lines.append(ReportLine(label(), depth, _one_line(s), atom, s))
            visit(s.body, depth + 1)
            return
        # composite statements become single lines with their composed
        # atomicity (from the step-6 propagation)
        atom = report.stmt_atoms.get(s.nid, AT.B)
        if isinstance(s, (A.If, A.Loop, A.Synchronized)):
            lines.append(ReportLine(label(), depth, _one_line(s), atom, s))
            return
        # simple statements: the atomicity of their node's actions
        nodes = ctx.stmt_nodes.get(s.nid, [])
        atom = AT.seq_all([_node_atom(ctx, n) for n in nodes])
        lines.append(ReportLine(label(), depth, _one_line(s), atom, s))

    visit(report.variant.proc.body, 0)
    return lines


def _line_nodes(report: VariantReport, line: ReportLine) -> list[CFGNode]:
    """The CFG nodes whose actions a report line accounts for —
    mirrors the node selection of :func:`variant_lines`, except that
    composite lines (rendered as ``if (...) ...``) cover their whole
    statement subtree so no provenance is lost."""
    ctx = report.ctx
    s = line.stmt
    if isinstance(s, A.LocalDecl):
        return [n for n in ctx.stmt_nodes.get(s.nid, [])
                if n.kind is NodeKind.BIND]
    if isinstance(s, (A.If, A.Loop, A.Synchronized)):
        nids = {x.nid for x in s.walk() if isinstance(x, A.Stmt)}
        return [n for nid in sorted(nids)
                for n in ctx.stmt_nodes.get(nid, [])]
    return ctx.stmt_nodes.get(s.nid, [])


def line_sites(report: VariantReport, line: ReportLine):
    """The classified sites behind a report line, in site order."""
    nodes = set(_line_nodes(report, line))
    return [s for s in report.ctx.sites if s.node in nodes]


def line_provenance(report: VariantReport, line: ReportLine) -> list:
    """Flattened justification chain for a report line."""
    out = []
    for site in line_sites(report, line):
        out.extend(site.provenance)
    return out


def _explain_lines(report: VariantReport, line: ReportLine,
                   indent: str) -> list[str]:
    out = []
    for site in line_sites(report, line):
        for j in site.provenance:
            out.append(f"{indent}- {site.action!r}: {j.render()}")
    return out


def render_variant(report: VariantReport, prefix: str,
                   explain: bool = False) -> str:
    header = (f"proc {report.variant.name}"
              f"({', '.join(report.variant.proc.params)})"
              f"    [atomicity: {report.body_atomicity}]")
    chunks = [header]
    for line in variant_lines(report, prefix):
        chunks.append(line.render())
        if explain:
            chunks.extend(_explain_lines(report, line, " " * 8))
    return "\n".join(chunks)


def render_figure(result: AnalysisResult,
                  proc_order: list[str] | None = None,
                  explain: bool = False) -> str:
    """Render all variants of all procedures, Figure-3 style.  With
    ``explain``, each line is followed by its classification
    provenance (one indented bullet per rule firing)."""
    order = proc_order or [p.name for p in result.program.procs]
    prefixes = iter(string.ascii_lowercase)
    chunks: list[str] = []
    for name in order:
        verdict = result.verdicts[name]
        for report in verdict.variants:
            prefix = next(prefixes, "z")
            chunks.append(render_variant(report, prefix, explain))
    return "\n\n".join(chunks)


def line_atomicities(result: AnalysisResult,
                     variant_name: str) -> list[tuple[str, str]]:
    """(text, atomicity-letter) pairs for one variant — handy for the
    Fig. 3 golden tests."""
    for verdict in result.verdicts.values():
        for report in verdict.variants:
            if report.variant.name == variant_name:
                return [(line.text, str(line.atomicity))
                        for line in variant_lines(report, "x")]
    raise KeyError(variant_name)
