"""The paper's static atomicity analysis (§3.3–§5.4) and its substrates."""

from repro.analysis.atomicity import (Atomicity, iter_closure, join, meet,
                                      parse_atomicity, seq, seq_all)
from repro.analysis.blocks import (BlockPartition, partition_lines,
                                   partition_procedure, partition_program)
from repro.analysis.inference import (AnalysisResult, AtomicityChecker,
                                      InferenceOptions, analyze_program)
from repro.analysis.purity import PurityAnalysis, PurityInfo, pure_loops
from repro.analysis.report import (line_atomicities, line_provenance,
                                   line_sites, render_figure,
                                   render_variant, variant_lines)
from repro.analysis.variants import Variant, VariantSet, make_variants

__all__ = [
    "Atomicity",
    "join",
    "meet",
    "seq",
    "seq_all",
    "iter_closure",
    "parse_atomicity",
    "AnalysisResult",
    "AtomicityChecker",
    "InferenceOptions",
    "analyze_program",
    "PurityAnalysis",
    "PurityInfo",
    "pure_loops",
    "Variant",
    "VariantSet",
    "make_variants",
    "BlockPartition",
    "partition_lines",
    "partition_procedure",
    "partition_program",
    "render_figure",
    "render_variant",
    "variant_lines",
    "line_atomicities",
    "line_provenance",
    "line_sites",
]
