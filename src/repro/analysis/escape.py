"""Simple escape analysis (§3.2/§5.4 step 1).

The paper uses "a simple escape analysis ... to identify accesses to
objects that have not escaped from the creating threads; those accesses
are like accesses to unshared variables and have atomicity type B".

We compute, per CFG node, the set of bindings that *definitely* hold a
freshly allocated, not-yet-escaped object at that point (a forward
must-analysis, meet = intersection).  Freshness is established by
``x = new C`` and destroyed when the variable is *consumed* — used as an
rvalue anywhere other than as the base of a field/array access (stored
into the heap or a global, passed as the new-value of an SC/CAS,
returned, compared, ...).  This is deliberately conservative.
"""

from __future__ import annotations

from typing import Iterator

from repro.cfg.dataflow import Problem, Solution, intersection_meet, solve
from repro.cfg.graph import CFGNode, NodeKind, ProcCFG
from repro.synl import ast as A


def _consumed_bindings(e: A.Expr) -> Iterator[int]:
    """Bindings whose value is consumed (read as an rvalue outside a
    field/array-base position) while evaluating ``e``."""
    if isinstance(e, A.Var):
        if e.binding is not None:
            yield e.binding
        return
    if isinstance(e, (A.Field, A.Index)):
        # the base variable is dereferenced, not consumed; the index is
        # consumed
        if isinstance(e, A.Index):
            yield from _consumed_bindings(e.index)
        return
    if isinstance(e, A.Unary):
        yield from _consumed_bindings(e.operand)
        return
    if isinstance(e, A.Binary):
        yield from _consumed_bindings(e.left)
        yield from _consumed_bindings(e.right)
        return
    if isinstance(e, A.PrimCall):
        for a in e.args:
            yield from _consumed_bindings(a)
        return
    if isinstance(e, A.LLExpr) or isinstance(e, A.VLExpr):
        if isinstance(e.loc, A.Index):
            yield from _consumed_bindings(e.loc.index)
        return
    if isinstance(e, A.SCExpr):
        yield from _consumed_bindings(e.value)
        if isinstance(e.loc, A.Index):
            yield from _consumed_bindings(e.loc.index)
        return
    if isinstance(e, A.CASExpr):
        yield from _consumed_bindings(e.expected)
        yield from _consumed_bindings(e.new)
        if isinstance(e.loc, A.Index):
            yield from _consumed_bindings(e.loc.index)
        return
    if isinstance(e, A.NewArray):
        yield from _consumed_bindings(e.size)
        return
    # Const / New: nothing


def _branch_publish(cond) -> tuple[object, set[int], set[int]] | None:
    """For a branch on SC/CAS, the bindings passed as the published
    value escape only along the *success* edge (a failed SC/CAS writes
    nothing).  Returns (success edge label, publish-consumed bindings,
    unconditionally consumed bindings), or None when the condition is
    not of that shape."""
    success: object = True
    if isinstance(cond, A.Unary) and cond.op == "!":
        cond = cond.operand
        success = False
    others: set[int] = set()
    if isinstance(cond, (A.SCExpr, A.CASExpr)):
        if isinstance(cond.loc, A.Index):
            others |= set(_consumed_bindings(cond.loc.index))
    if isinstance(cond, A.SCExpr):
        published = set(_consumed_bindings(cond.value))
        return success, published - others, others
    if isinstance(cond, A.CASExpr):
        others |= set(_consumed_bindings(cond.expected))
        published = set(_consumed_bindings(cond.new))
        return success, published - others, others
    return None


def _node_effects(node: CFGNode) -> tuple[set[int], int | None, bool]:
    """Return (consumed bindings, assigned binding or None,
    assigned_value_is_fresh_allocation)."""
    consumed: set[int] = set()
    assigned: int | None = None
    fresh = False
    stmt = node.stmt
    if node.kind is NodeKind.BIND:
        decl = stmt
        assert isinstance(decl, A.LocalDecl)
        consumed |= set(_consumed_bindings(decl.init))
        assigned = decl.binding
        fresh = isinstance(decl.init, (A.New, A.NewArray))
        if fresh:
            consumed.discard(assigned)
    elif node.kind is NodeKind.STMT and isinstance(stmt, A.Assign):
        consumed |= set(_consumed_bindings(stmt.value))
        if isinstance(stmt.target, A.Var) and stmt.target.binding is not None:
            assigned = stmt.target.binding
            fresh = isinstance(stmt.value, (A.New, A.NewArray))
        elif isinstance(stmt.target, A.Index):
            consumed |= set(_consumed_bindings(stmt.target.index))
    elif node.kind is NodeKind.STMT and isinstance(
            stmt, (A.Assume, A.AssertStmt)):
        consumed |= set(_consumed_bindings(stmt.cond))
    elif node.kind is NodeKind.STMT and isinstance(stmt, A.ExprStmt):
        consumed |= set(_consumed_bindings(stmt.expr))
    elif node.kind is NodeKind.BRANCH:
        publish = _branch_publish(node.expr)
        if publish is not None:
            # the published bindings are killed edge-sensitively by
            # escape_analysis's edge_transfer, not here
            _, _, others = publish
            consumed |= others
        else:
            consumed |= set(_consumed_bindings(node.expr))
    elif node.kind is NodeKind.RETURN and isinstance(stmt, A.Return):
        if stmt.value is not None:
            consumed |= set(_consumed_bindings(stmt.value))
    elif node.kind is NodeKind.ACQUIRE:
        consumed |= set(_consumed_bindings(node.expr))
    return consumed, assigned, fresh


class EscapeResult:
    """Per-node sets of definitely-fresh (unescaped) bindings."""

    def __init__(self, sol: Solution):
        self._sol = sol

    def fresh_before(self, node: CFGNode) -> frozenset:
        return self._sol.before[node]

    def is_fresh(self, node: CFGNode, binding: int | None) -> bool:
        """Is ``binding`` holding a fresh unescaped object just before
        ``node`` executes?"""
        return binding is not None and binding in self._sol.before[node]


def escape_analysis(cfg: ProcCFG) -> EscapeResult:
    all_bindings: set[int] = set()
    for node in cfg.nodes:
        _, assigned, fresh = _node_effects(node)
        if fresh and assigned is not None:
            all_bindings.add(assigned)
    top = frozenset(all_bindings)

    def transfer(node: CFGNode, fact: frozenset) -> frozenset:
        consumed, assigned, fresh = _node_effects(node)
        out = fact - frozenset(consumed)
        if assigned is not None:
            out = out | {assigned} if fresh else out - {assigned}
        return out

    def edge_transfer(edge, fact: frozenset) -> frozenset:
        # branch out-edges always carry True/False labels (the builder
        # preserves the boolean even on edges that close a loop body)
        if edge.src.kind is not NodeKind.BRANCH:
            return fact
        publish = _branch_publish(edge.src.expr)
        if publish is None:
            return fact
        success_label, published, _ = publish
        if edge.label is success_label:
            return fact - frozenset(published)
        return fact

    problem: Problem[frozenset] = Problem(
        direction="forward",
        boundary=frozenset(),
        init=top,  # optimistic start for the must-analysis fixpoint
        meet=intersection_meet,
        transfer=transfer,
        edge_transfer=edge_transfer,
    )
    return EscapeResult(solve(cfg, problem))
