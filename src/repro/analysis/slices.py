"""Exceptional slices of pure loops (§5.2).

For each ``break``/``return`` in a pure loop, the *exceptional slice* is
the backward slice of the loop body from that exit to the loop's entry.
When the slice keeps only one branch of an ``if e S1 S2``, the ``if`` is
replaced by ``TRUE(e); S1`` (or ``TRUE(!e); S2``).  Slices are computed
on the CFG (backward reachability from the exit node, stopping at the
loop head) and then reconstructed as fresh AST statements.

A bare ``SC(v, e);`` statement is sugar for ``if (SC(v, e)) skip; else
skip;`` (§3.2), so slicing through it yields both a ``TRUE(SC(v, e))``
and a ``TRUE(!SC(v, e))`` slice — :func:`split_bare_sc` performs this
success split, which is how Fig. 3 shows ``b5: TRUE(SC(Tail, next))``
for UpdateTail's bare SC statement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.graph import CFGNode, LoopInfo, NodeKind, ProcCFG
from repro.synl import ast as A

# -- cloning (decorations dropped; variants get re-resolved) -------------------


def clone_expr(e: A.Expr) -> A.Expr:
    from repro.synl.parser import _clone_expr

    return _clone_expr(e)


def clone_stmt(s: A.Stmt) -> A.Stmt:
    if isinstance(s, A.Block):
        out: A.Stmt = A.Block([clone_stmt(x) for x in s.stmts])
    elif isinstance(s, A.Assign):
        out = A.Assign(clone_expr(s.target), clone_expr(s.value))
    elif isinstance(s, A.LocalDecl):
        out = A.LocalDecl(s.name, clone_expr(s.init), clone_stmt(s.body))
    elif isinstance(s, A.If):
        out = A.If(clone_expr(s.cond), clone_stmt(s.then),
                   clone_stmt(s.els) if s.els is not None else None)
    elif isinstance(s, A.Loop):
        out = A.Loop(clone_stmt(s.body), s.label)
    elif isinstance(s, A.Break):
        out = A.Break(s.label)
    elif isinstance(s, A.Continue):
        out = A.Continue(s.label)
    elif isinstance(s, A.Return):
        out = A.Return(clone_expr(s.value) if s.value is not None else None)
    elif isinstance(s, A.Skip):
        out = A.Skip()
    elif isinstance(s, A.Synchronized):
        out = A.Synchronized(clone_expr(s.lock), clone_stmt(s.body))
    elif isinstance(s, A.Assume):
        out = A.Assume(clone_expr(s.cond))
    elif isinstance(s, A.AssertStmt):
        out = A.AssertStmt(clone_expr(s.cond))
    elif isinstance(s, A.ExprStmt):
        out = A.ExprStmt(clone_expr(s.expr))
    else:  # pragma: no cover
        raise TypeError(f"cannot clone {type(s).__name__}")
    out.at(s.pos)
    return out


_NEGATED_OP = {"==": "!=", "!=": "==", "<": ">=", "<=": ">",
               ">": "<=", ">=": "<"}


def negate(e: A.Expr) -> A.Expr:
    """Logical negation with simplification (``!(a == b)`` → ``a != b``)."""
    if isinstance(e, A.Unary) and e.op == "!":
        return clone_expr(e.operand)
    if isinstance(e, A.Binary) and e.op in _NEGATED_OP:
        out: A.Expr = A.Binary(_NEGATED_OP[e.op], clone_expr(e.left),
                               clone_expr(e.right))
        out.at(e.pos)
        return out
    if isinstance(e, A.Const) and isinstance(e.value, bool):
        out = A.Const(not e.value)
        out.at(e.pos)
        return out
    out = A.Unary("!", clone_expr(e))
    out.at(e.pos)
    return out


# -- slice computation --------------------------------------------------------

def slice_nodes_for_exit(cfg: ProcCFG, info: LoopInfo,
                         exit_node: CFGNode) -> set[CFGNode]:
    """CFG nodes of the exceptional slice from the loop entry to
    ``exit_node`` (backward reachability within the loop body, not
    crossing the loop head).  The head itself is excluded: an edge back
    to the head is a *normal* termination and must not count as a kept
    branch direction during reconstruction."""
    body = set(info.body_nodes)
    nodes = cfg.backward_reachable([exit_node], stop={info.head})
    return (nodes & body) | {exit_node}


# -- AST reconstruction ---------------------------------------------------------

@dataclass
class _Rebuilt:
    stmts: list[A.Stmt]
    terminated: bool = False  # the emitted sequence always leaves the slice


class SliceRebuilder:
    """Rebuilds the AST of one exceptional slice."""

    def __init__(self, cfg: ProcCFG, keep: set[CFGNode],
                 drop_stmt: A.Stmt | None):
        self.cfg = cfg
        self.keep = keep
        self.drop_stmt = drop_stmt  # the break of the sliced loop itself
        self._by_stmt: dict[int, list[CFGNode]] = {}
        for node in cfg.nodes:
            if node.stmt is not None:
                self._by_stmt.setdefault(node.stmt.nid, []).append(node)

    def _nodes_of(self, s: A.Stmt) -> list[CFGNode]:
        return self._by_stmt.get(s.nid, [])

    def _kept(self, s: A.Stmt) -> bool:
        return any(n in self.keep for n in self._nodes_of(s))

    def rebuild(self, s: A.Stmt) -> _Rebuilt:
        if isinstance(s, A.Block):
            out: list[A.Stmt] = []
            for sub in s.stmts:
                r = self.rebuild(sub)
                out.extend(r.stmts)
                if r.terminated:
                    return _Rebuilt(out, True)
            return _Rebuilt(out)

        if s is self.drop_stmt:
            return _Rebuilt([], True)

        if isinstance(s, (A.Assign, A.Assume, A.AssertStmt, A.ExprStmt,
                          A.Skip)):
            if self._kept(s):
                return _Rebuilt([clone_stmt(s)])
            return _Rebuilt([])

        if isinstance(s, (A.Break, A.Continue, A.Return)):
            if self._kept(s):
                return _Rebuilt([clone_stmt(s)], True)
            return _Rebuilt([])

        if isinstance(s, A.LocalDecl):
            if not self._kept(s):
                return _Rebuilt([])
            body = self.rebuild(s.body)
            decl = A.LocalDecl(s.name, clone_expr(s.init),
                               _as_block(body.stmts, s.pos))
            decl.at(s.pos)
            return _Rebuilt([decl], body.terminated)

        if isinstance(s, A.If):
            branch_nodes = [n for n in self._nodes_of(s)
                            if n.kind is NodeKind.BRANCH]
            if not branch_nodes or branch_nodes[0] not in self.keep:
                return _Rebuilt([])
            branch = branch_nodes[0]
            true_kept = any(e.dst in self.keep
                            for e in self.cfg.out_edges(branch)
                            if e.label is True)
            false_kept = any(e.dst in self.keep
                             for e in self.cfg.out_edges(branch)
                             if e.label is False)
            if true_kept and false_kept:
                then = self.rebuild(s.then)
                els = self.rebuild(s.els) if s.els is not None else None
                node = A.If(clone_expr(s.cond),
                            _as_block(then.stmts, s.pos),
                            _as_block(els.stmts, s.pos)
                            if els is not None and els.stmts else None)
                node.at(s.pos)
                terminated = then.terminated and (
                    els is not None and els.terminated)
                return _Rebuilt([node], terminated)
            if true_kept:
                assume = A.Assume(clone_expr(s.cond))
                assume.at(s.pos)
                then = self.rebuild(s.then)
                return _Rebuilt([assume] + then.stmts, then.terminated)
            if false_kept:
                assume = A.Assume(negate(s.cond))
                assume.at(s.pos)
                els = self.rebuild(s.els) if s.els is not None \
                    else _Rebuilt([])
                return _Rebuilt([assume] + els.stmts, els.terminated)
            return _Rebuilt([])

        if isinstance(s, A.Loop):
            heads = [n for n in self._nodes_of(s)
                     if n.kind is NodeKind.LOOP_HEAD]
            if not heads or heads[0] not in self.keep:
                return _Rebuilt([])
            body = self.rebuild(s.body)
            loop = A.Loop(_as_block(body.stmts, s.pos), s.label)
            loop.at(s.pos)
            return _Rebuilt([loop])

        if isinstance(s, A.Synchronized):
            if not self._kept(s):
                return _Rebuilt([])
            body = self.rebuild(s.body)
            sync = A.Synchronized(clone_expr(s.lock),
                                  _as_block(body.stmts, s.pos))
            sync.at(s.pos)
            return _Rebuilt([sync], body.terminated)

        raise TypeError(f"cannot rebuild {type(s).__name__}")


def _as_block(stmts: list[A.Stmt], pos) -> A.Block:
    block = A.Block(stmts)
    block.at(pos)
    return block


import itertools

_SLICE_LABEL = itertools.count(1)


def _retarget_breaks(stmts: list[A.Stmt], old_label: str | None,
                     new_label: str) -> None:
    for s in stmts:
        for node in s.walk():
            if isinstance(node, A.Break) and node.label == old_label:
                node.label = new_label


def exceptional_slice(cfg: ProcCFG, info: LoopInfo,
                      exit_node: CFGNode) -> list[A.Stmt]:
    """The exceptional slice for one exit, as a fresh statement list that
    replaces the loop.

    A ``break`` of the sliced loop itself is normally dropped (control
    falls through to the code after the loop).  When that break sits
    inside a *residual* inner loop kept in the slice, dropping it would
    leave the inner loop with no exit; instead the slice is wrapped in a
    fresh once-through labelled loop and the break retargeted to it.
    """
    keep = slice_nodes_for_exit(cfg, info, exit_node)
    exits_via_break = (exit_node.kind is NodeKind.BREAK
                       and getattr(exit_node, "jump_target", None)
                       is info.loop)
    nested = exits_via_break and exit_node.loop is not info.loop
    drop = exit_node.stmt if exits_via_break and not nested else None
    rebuilder = SliceRebuilder(cfg, keep, drop)
    stmts = rebuilder.rebuild(info.loop.body).stmts
    if nested:
        fresh = f"__slice_{next(_SLICE_LABEL)}"
        _retarget_breaks(stmts, info.loop.label, fresh)
        trailing = A.Break(fresh)
        trailing.at(info.loop.pos)
        wrapper = A.Loop(_as_block(stmts + [trailing], info.loop.pos),
                         fresh)
        wrapper.at(info.loop.pos)
        stmts = [wrapper]
    return stmts


# -- bare SC/CAS success split ---------------------------------------------------

def split_bare_sc(stmts: list[A.Stmt]) -> list[list[A.Stmt]]:
    """Expand bare ``SC(...)`` / ``CAS(...)`` statements into their
    success/failure assumptions (see module docstring).  Returns the list
    of alternative statement lists (cartesian product over occurrences)."""

    def expand(s: A.Stmt) -> list[list[A.Stmt]]:
        if isinstance(s, A.ExprStmt) and isinstance(
                s.expr, (A.SCExpr, A.CASExpr)):
            ok = A.Assume(clone_expr(s.expr))
            ok.at(s.pos)
            fail = A.Assume(negate(s.expr))
            fail.at(s.pos)
            return [[ok], [fail]]
        if isinstance(s, A.Block):
            variants = split_bare_sc(s.stmts)
            return [[_as_block(v, s.pos)] for v in variants]
        if isinstance(s, A.LocalDecl):
            bodies = expand(s.body)
            out = []
            for b in bodies:
                decl = A.LocalDecl(s.name, clone_expr(s.init),
                                   b[0] if len(b) == 1
                                   else _as_block(b, s.pos))
                decl.at(s.pos)
                out.append([decl])
            return out
        if isinstance(s, A.If):
            thens = expand(s.then)
            elses = expand(s.els) if s.els is not None else [None]
            out = []
            for t in thens:
                for e in elses:
                    node = A.If(
                        clone_expr(s.cond),
                        t[0] if len(t) == 1 else _as_block(t, s.pos),
                        None if e is None else
                        (e[0] if len(e) == 1 else _as_block(e, s.pos)))
                    node.at(s.pos)
                    out.append([node])
            return out
        return [[clone_stmt(s)]]

    results: list[list[A.Stmt]] = [[]]
    for s in stmts:
        expanded = expand(s)
        results = [prefix + alt for prefix in results for alt in expanded]
    return results
