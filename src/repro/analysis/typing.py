"""Simple flow-insensitive class inference for SYNL programs.

The paper's alias analysis "checks whether the references have the same
type and whether the same field is being accessed" (§5.4, step 4).  To
know reference types we infer, for every global variable, local binding
and ``(class, field)`` pair, the set of object classes it may hold, by a
small constraint fixpoint over all assignments in the program.

Arrays are given pseudo-classes ``"C[]"``; array element cells are the
region ``("elem", "C[]")``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.synl import ast as A

# Region keys for the class environment:
#   ("g", name)           global variable
#   ("b", binding)        local/threadlocal/param binding
#   ("f", class, field)   field cell of a class
#   ("e", array_class)    element cell of an array pseudo-class


@dataclass
class ClassEnv:
    classes: dict[tuple, frozenset[str]] = field(default_factory=dict)

    def get(self, key: tuple) -> frozenset[str]:
        return self.classes.get(key, frozenset())

    def add(self, key: tuple, values: frozenset[str]) -> bool:
        if not values:
            return False
        old = self.classes.get(key, frozenset())
        new = old | values
        if new != old:
            self.classes[key] = new
            return True
        return False

    # -- public queries -----------------------------------------------------
    def of_global(self, name: str) -> frozenset[str]:
        return self.get(("g", name))

    def of_binding(self, binding: int) -> frozenset[str]:
        return self.get(("b", binding))

    def of_field(self, classes: frozenset[str], fd: str) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for c in classes:
            out |= self.get(("f", c, fd))
        return out


class _Inference:
    def __init__(self, program: A.Program):
        self.program = program
        self.env = ClassEnv()
        self.changed = True

    def run(self) -> ClassEnv:
        while self.changed:
            self.changed = False
            for decl in self.program.globals + self.program.threadlocals:
                if decl.init is not None:
                    key = ("g", decl.name) if decl in self.program.globals \
                        else ("tl", decl.name)
                    self._flow(self.env_expr(decl.init), ("g", decl.name)
                               if decl in self.program.globals else key)
            for block in (self.program.init, self.program.threadinit):
                if block is not None:
                    self._stmt(block)
            for proc in self.program.procs:
                self._stmt(proc.body)
        return self.env

    def _flow(self, values: frozenset[str], key: tuple) -> None:
        if self.env.add(key, values):
            self.changed = True

    # -- expressions ----------------------------------------------------------
    def env_expr(self, e: A.Expr) -> frozenset[str]:
        if isinstance(e, A.New):
            return frozenset([e.class_name])
        if isinstance(e, A.NewArray):
            # allocation-site array classes: two arrays allocated at
            # different sites never alias, even with the same element
            # class (e.g. the allocator's Anchors vs FreeNext)
            return frozenset([f"{e.class_name}[]@{e.nid}"])
        if isinstance(e, A.Var):
            if e.kind is A.VarKind.GLOBAL:
                return self.env.of_global(e.name)
            if e.kind is A.VarKind.THREADLOCAL:
                return self.env.get(("g", e.name))  # threadlocals share key
            if e.binding is not None:
                return self.env.of_binding(e.binding)
            return frozenset()
        if isinstance(e, A.Field):
            return self.env.of_field(self.env_expr(e.base), e.name)
        if isinstance(e, A.Index):
            out: frozenset[str] = frozenset()
            for c in self.env_expr(e.base):
                out |= self.env.get(("e", c))
            return out
        if isinstance(e, A.LLExpr):
            return self.env_expr(e.loc)
        if isinstance(e, (A.SCExpr, A.VLExpr, A.CASExpr, A.Unary, A.Binary,
                          A.PrimCall, A.Const)):
            return frozenset()
        raise TypeError(f"unknown expression {type(e).__name__}")

    def _loc_key(self, loc: A.Expr) -> list[tuple]:
        """Region keys an assignment to ``loc`` feeds."""
        if isinstance(loc, A.Var):
            if loc.kind in (A.VarKind.GLOBAL, A.VarKind.THREADLOCAL):
                return [("g", loc.name)]
            return [("b", loc.binding)]
        if isinstance(loc, A.Field):
            return [("f", c, loc.name) for c in self.env_expr(loc.base)]
        if isinstance(loc, A.Index):
            return [("e", c) for c in self.env_expr(loc.base)]
        raise TypeError(f"not a location: {type(loc).__name__}")

    def _assign(self, loc: A.Expr, value_classes: frozenset[str]) -> None:
        for key in self._loc_key(loc):
            self._flow(value_classes, key)

    # -- statements -----------------------------------------------------------
    def _stmt(self, s: A.Stmt) -> None:
        if isinstance(s, A.Block):
            for sub in s.stmts:
                self._stmt(sub)
        elif isinstance(s, A.Assign):
            self._assign(s.target, self.env_expr(s.value))
            self._expr(s.value)
        elif isinstance(s, A.LocalDecl):
            self._flow(self.env_expr(s.init), ("b", s.binding))
            self._expr(s.init)
            self._stmt(s.body)
        elif isinstance(s, A.If):
            self._expr(s.cond)
            self._stmt(s.then)
            if s.els is not None:
                self._stmt(s.els)
        elif isinstance(s, A.Loop):
            self._stmt(s.body)
        elif isinstance(s, (A.Break, A.Continue, A.Skip)):
            pass
        elif isinstance(s, A.Return):
            if s.value is not None:
                self._expr(s.value)
        elif isinstance(s, A.Synchronized):
            self._expr(s.lock)
            self._stmt(s.body)
        elif isinstance(s, (A.Assume, A.AssertStmt)):
            self._expr(s.cond)
        elif isinstance(s, A.ExprStmt):
            self._expr(s.expr)
        else:  # pragma: no cover
            raise TypeError(f"unknown statement {type(s).__name__}")

    def _expr(self, e: A.Expr) -> None:
        """Record flows from SC/CAS embedded in an expression."""
        if isinstance(e, A.SCExpr):
            self._assign(e.loc, self.env_expr(e.value))
            self._expr(e.value)
        elif isinstance(e, A.CASExpr):
            self._assign(e.loc, self.env_expr(e.new))
            self._expr(e.expected)
            self._expr(e.new)
        elif isinstance(e, (A.Unary,)):
            self._expr(e.operand)
        elif isinstance(e, A.Binary):
            self._expr(e.left)
            self._expr(e.right)
        elif isinstance(e, A.PrimCall):
            for a in e.args:
                self._expr(a)
        elif isinstance(e, A.NewArray):
            self._expr(e.size)
        elif isinstance(e, (A.LLExpr, A.VLExpr)):
            pass
        # other expression forms carry no flows


def infer_classes(program: A.Program) -> ClassEnv:
    """Infer the class environment of a resolved program."""
    return _Inference(program).run()
