"""Uniqueness analysis for the working-copy idiom (§3.3, §6.2–6.3).

The paper relies on "a specialized uniqueness analysis for non-blocking
algorithms that use working copies of a shared object" ([16]); "no other
uniqueness analysis is needed for the examples in this paper".  This
module implements that specialization: it certifies that a thread-local
variable ``u`` (e.g. ``prv`` in Herlihy's algorithm, ``prvObj`` in Gao &
Hesselink's) *effectively contains a unique reference*, so that all field
accesses through ``u`` are **local actions** (both-movers, Theorem 3.1).

The certified discipline is the swap idiom:

1. every assignment to ``u`` is either ``u = new C`` (in ``init`` /
   ``threadinit``) or ``u = m`` immediately after a *successful*
   ``SC(g, u)`` — i.e. as the first statement of the true branch of
   ``if (SC(g, u)) ...`` or directly after ``TRUE(SC(g, u))`` — where
   ``m`` was bound by ``local m = LL(g)``;
2. ``m`` is dead after the swap (no later reads of ``m`` or ``m.*``);
3. the only consuming use of ``u`` is as the new-value of ``SC(g, u)``
   (dereferences ``u.fd`` are allowed); and
4. all swaps of ``u`` go through a single global ``g`` (its *swap root*).

Under this discipline the object reachable from ``u`` is never shared
writable state: the previously shared object becomes ``u``'s private
copy only once the SC has atomically removed it from ``g``, and stale
readers of it are doomed (their VL/SC on ``g`` must fail) — that is the
content of Theorems 5.3/5.4 and is exploited separately by the window
rule in :mod:`repro.analysis.inference`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.actions import node_actions
from repro.cfg.graph import ProcCFG
from repro.synl import ast as A


@dataclass
class UniquenessResult:
    """Which thread-locals are certified unique, and their swap roots."""

    #: threadlocal name -> binding id, for certified variables
    unique: dict[str, int] = field(default_factory=dict)
    #: threadlocal name -> global swap-root name
    swap_root: dict[str, str] = field(default_factory=dict)
    #: threadlocal name -> human-readable rejection reason
    rejected: dict[str, str] = field(default_factory=dict)

    def unique_bindings(self) -> set[int]:
        return set(self.unique.values())

    def is_unique(self, binding: int | None) -> bool:
        return binding is not None and binding in self.unique.values()


def _assignments_to(program: A.Program, binding: int):
    """Yield (stmt, context) for assignments to the given binding, where
    context is 'init' for init/threadinit code and the procedure for
    procedure code."""
    def walk(s: A.Stmt, ctx):
        if isinstance(s, A.Assign) and isinstance(s.target, A.Var) \
                and s.target.binding == binding:
            yield s, ctx
        for child in s.children():
            if isinstance(child, A.Stmt):
                yield from walk(child, ctx)

    for block in (program.init, program.threadinit):
        if block is not None:
            yield from walk(block, "init")
    for proc in program.procs:
        yield from walk(proc.body, proc)


def _consuming_uses(program: A.Program, binding: int):
    """Yield expressions that consume the binding's value (rvalue uses
    outside field/index-base position), with a tag for allowed SC uses."""
    def visit(e: A.Expr, in_base: bool):
        if isinstance(e, A.Var):
            if e.binding == binding and not in_base:
                yield ("use", e)
            return
        if isinstance(e, A.Field):
            yield from visit(e.base, True)
            return
        if isinstance(e, A.Index):
            yield from visit(e.base, True)
            yield from visit(e.index, False)
            return
        if isinstance(e, A.SCExpr):
            if isinstance(e.value, A.Var) and e.value.binding == binding:
                yield ("sc", e)
            else:
                yield from visit(e.value, False)
            yield from visit(e.loc, True)
            if isinstance(e.loc, A.Index):
                yield from visit(e.loc.index, False)
            return
        for child in e.children():
            if isinstance(child, A.Expr):
                yield from visit(child, False)

    for node in program.walk():
        if isinstance(node, (A.Assign,)):
            yield from visit(node.value, False)
            if isinstance(node.target, A.Index):
                yield from visit(node.target.index, False)
        elif isinstance(node, A.LocalDecl):
            yield from visit(node.init, False)
        elif isinstance(node, A.If):
            yield from visit(node.cond, False)
        elif isinstance(node, (A.Assume, A.AssertStmt)):
            yield from visit(node.cond, False)
        elif isinstance(node, A.ExprStmt):
            yield from visit(node.expr, False)
        elif isinstance(node, A.Return) and node.value is not None:
            yield from visit(node.value, False)
        elif isinstance(node, A.Synchronized):
            yield from visit(node.lock, False)


def _swap_context_root(program: A.Program, proc: A.Procedure,
                       assign: A.Assign, binding: int) -> str | None:
    """If ``assign`` (``u = m``) sits immediately after a successful
    ``SC(g, u)``, return the global name ``g``; else None."""

    def sc_on_u(e: A.Expr) -> str | None:
        if isinstance(e, A.SCExpr) and isinstance(e.value, A.Var) \
                and e.value.binding == binding \
                and isinstance(e.loc, A.Var) \
                and e.loc.kind is A.VarKind.GLOBAL:
            return e.loc.name
        return None

    # pattern (a): first statement of the true branch of if (SC(g, u)) ...
    for node in proc.body.walk():
        if isinstance(node, A.If):
            root = sc_on_u(node.cond)
            if root is not None:
                then = node.then
                first = then.stmts[0] if isinstance(then, A.Block) \
                    and then.stmts else then
                if first is assign:
                    return root
        # pattern (b): directly after TRUE(SC(g, u)) in a block
        if isinstance(node, A.Block):
            for i, stmt in enumerate(node.stmts[:-1]):
                if isinstance(stmt, A.Assume):
                    root = sc_on_u(stmt.cond)
                    if root is not None and node.stmts[i + 1] is assign:
                        return root
    return None


def _binding_decl(program: A.Program, binding: int) -> A.LocalDecl | None:
    for node in program.walk():
        if isinstance(node, A.LocalDecl) and node.binding == binding:
            return node
    return None


def _m_dead_after(cfg: ProcCFG, assign: A.Assign, m_binding: int) -> bool:
    """No reads of ``m`` (or ``m.*``) after the swap assignment."""
    assign_nodes = [n for n in cfg.nodes if n.stmt is assign]
    if not assign_nodes:
        return False
    for start in assign_nodes:
        seen = cfg.reachable_from(start)
        seen.discard(start)
        for node in seen:
            for action in node_actions(node):
                if action.target is not None \
                        and action.target.binding == m_binding \
                        and action.op in ("read", "write"):
                    return False
    return True


def uniqueness_analysis(program: A.Program,
                        cfgs: dict[str, ProcCFG]) -> UniquenessResult:
    """Certify thread-local variables under the working-copy discipline.

    ``cfgs`` maps procedure names to their CFGs (used for the m-dead
    check).
    """
    result = UniquenessResult()
    for decl in program.threadlocals:
        name = decl.name
        binding = None
        # threadlocals are bound at program scope; find the binding via any
        # Var occurrence, or via the declared initializer context.
        for node in program.walk():
            if isinstance(node, A.Var) and node.name == name \
                    and node.kind is A.VarKind.THREADLOCAL:
                binding = node.binding
                break
        if binding is None:
            result.rejected[name] = "never used"
            continue

        roots: set[str] = set()
        ok = True
        reason = ""
        for assign, ctx in _assignments_to(program, binding):
            if ctx == "init":
                if not isinstance(assign.value, (A.New, A.NewArray)):
                    ok, reason = False, "non-allocation init assignment"
                    break
                continue
            proc = ctx
            if not isinstance(assign.value, A.Var) \
                    or assign.value.binding is None:
                ok, reason = False, "swap source is not a local variable"
                break
            root = _swap_context_root(program, proc, assign, binding)
            if root is None:
                ok, reason = False, "assignment not guarded by SC(g, u)"
                break
            m_binding = assign.value.binding
            m_decl = _binding_decl(program, m_binding)
            if m_decl is None or not isinstance(m_decl.init, A.LLExpr) \
                    or not isinstance(m_decl.init.loc, A.Var) \
                    or m_decl.init.loc.name != root:
                ok, reason = False, f"swap source not bound by LL({root})"
                break
            if proc.name not in cfgs \
                    or not _m_dead_after(cfgs[proc.name], assign, m_binding):
                ok, reason = False, "swap source still live after swap"
                break
            roots.add(root)

        if ok:
            for use_kind, expr in _consuming_uses(program, binding):
                if use_kind == "use":
                    ok, reason = False, "consumed outside SC(g, u)"
                    break
                assert isinstance(expr, A.SCExpr)
                loc = expr.loc
                if not (isinstance(loc, A.Var)
                        and loc.kind is A.VarKind.GLOBAL):
                    ok, reason = False, "SC root is not a global"
                    break
                roots.add(loc.name)

        if ok and len(roots) > 1:
            ok, reason = False, f"multiple swap roots {sorted(roots)}"

        if ok and roots:
            result.unique[name] = binding
            result.swap_root[name] = next(iter(roots))
        elif ok:
            # never swapped: a thread-local that is only ever allocated
            # fresh and dereferenced is trivially unique.
            consuming = [u for u in _consuming_uses(program, binding)]
            if not consuming:
                result.unique[name] = binding
            else:
                result.rejected[name] = "no swap root"
        else:
            result.rejected[name] = reason
    return result
