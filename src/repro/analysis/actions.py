"""Syntactic extraction of *actions* from CFG nodes (§3.3).

An action is a read/write of a variable, a lock acquire/release, or an
allocation.  Extraction here is purely syntactic and records, in
left-to-right evaluation order, every access a node performs.  Whether
an access is a *local action* (both-mover) or a *global action* is
decided later by the inference driver using the escape and uniqueness
analyses — see :mod:`repro.analysis.inference`.

Targets are syntactic location descriptors:

* ``GLOBAL name``          — a global variable;
* ``VAR binding``          — a thread/procedure-local scalar;
* ``FIELD binding.field``  — field of the object held in a local var;
* ``ELEM binding.field[]`` — array element region (index-insensitive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cfg.graph import CFGNode, NodeKind
from repro.synl import ast as A


@dataclass(frozen=True)
class Target:
    """Syntactic location descriptor (see module docstring)."""

    kind: str                      # 'global' | 'var' | 'field' | 'elem'
    name: Optional[str] = None     # global name, or base var name (debug)
    binding: Optional[int] = None  # base binding for var/field/elem
    field: Optional[str] = None    # field name for field/elem

    def __str__(self) -> str:
        if self.kind == "global":
            return self.name or "?"
        if self.kind == "var":
            return self.name or f"#{self.binding}"
        suffix = "[]" if self.kind == "elem" else ""
        if self.field is None:
            return f"{self.name}{suffix}"
        return f"{self.name}.{self.field}{suffix}"

    @property
    def is_heap(self) -> bool:
        return self.kind in ("field", "elem")

    def region(self) -> "Target":
        """The index-insensitive region containing this target."""
        return self


@dataclass
class RawAction:
    """One access performed by a CFG node."""

    op: str                        # 'read' | 'write' | 'acquire' | 'release' | 'alloc'
    target: Optional[Target]      # None for alloc
    via: str = "plain"             # 'plain' | 'LL' | 'SC' | 'VL' | 'CAS'
    expr: Optional[A.Expr] = None  # originating LL/SC/VL/CAS expression
    node: Optional[CFGNode] = None

    @property
    def is_update(self) -> bool:
        return self.op == "write"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        via = f"/{self.via}" if self.via != "plain" else ""
        return f"{self.op}{via}({self.target})"


def location_target(loc: A.Expr) -> Target:
    """Build a :class:`Target` for a Location expression (Table 1)."""
    if isinstance(loc, A.Var):
        if loc.kind is A.VarKind.GLOBAL:
            return Target("global", name=loc.name)
        return Target("var", name=loc.name, binding=loc.binding)
    if isinstance(loc, A.Field):
        base = loc.base
        assert isinstance(base, A.Var)
        if base.kind is A.VarKind.GLOBAL:
            # field of an object named directly by a global is modelled as
            # a global region; the corpus always goes through locals.
            return Target("field", name=base.name, field=loc.name)
        return Target("field", name=base.name, binding=base.binding,
                      field=loc.name)
    if isinstance(loc, A.Index):
        base = loc.base
        if isinstance(base, A.Var):
            if base.kind is A.VarKind.GLOBAL:
                # element of an array named directly by a global: a
                # global-rooted region (like the Field case above)
                return Target("elem", name=base.name)
            return Target("elem", name=base.name, binding=base.binding)
        assert isinstance(base, A.Field) and isinstance(base.base, A.Var)
        return Target("elem", name=base.base.name,
                      binding=base.base.binding, field=base.name)
    raise TypeError(f"not a location: {type(loc).__name__}")


def _base_reads(loc: A.Expr, out: list[RawAction]) -> None:
    """Reads performed while *evaluating* a location (base var, index)."""
    if isinstance(loc, A.Var):
        return  # reading the variable itself is the access, handled by caller
    if isinstance(loc, A.Field):
        out.append(RawAction("read", location_target(loc.base)))
        return
    if isinstance(loc, A.Index):
        if isinstance(loc.base, A.Var):
            out.append(RawAction("read", location_target(loc.base)))
        else:
            field_base = loc.base
            assert isinstance(field_base, A.Field)
            out.append(RawAction("read", location_target(field_base.base)))
            out.append(RawAction("read", location_target(field_base)))
        expr_actions(loc.index, out)
        return
    raise TypeError(f"not a location: {type(loc).__name__}")


def expr_actions(e: A.Expr, out: list[RawAction]) -> None:
    """Append the actions of evaluating ``e``, in evaluation order."""
    if isinstance(e, A.Const):
        return
    if isinstance(e, A.Var):
        if e.kind is A.VarKind.CONST:
            return
        out.append(RawAction("read", location_target(e)))
        return
    if isinstance(e, (A.Field, A.Index)):
        _base_reads(e, out)
        out.append(RawAction("read", location_target(e)))
        return
    if isinstance(e, A.New):
        out.append(RawAction("alloc", None, expr=e))
        return
    if isinstance(e, A.NewArray):
        expr_actions(e.size, out)
        out.append(RawAction("alloc", None, expr=e))
        return
    if isinstance(e, A.Unary):
        expr_actions(e.operand, out)
        return
    if isinstance(e, A.Binary):
        expr_actions(e.left, out)
        expr_actions(e.right, out)
        return
    if isinstance(e, A.PrimCall):
        for a in e.args:
            expr_actions(a, out)
        return
    if isinstance(e, A.LLExpr):
        _base_reads(e.loc, out)
        out.append(RawAction("read", location_target(e.loc), via="LL",
                             expr=e))
        return
    if isinstance(e, A.VLExpr):
        _base_reads(e.loc, out)
        out.append(RawAction("read", location_target(e.loc), via="VL",
                             expr=e))
        return
    if isinstance(e, A.SCExpr):
        expr_actions(e.value, out)
        _base_reads(e.loc, out)
        out.append(RawAction("write", location_target(e.loc), via="SC",
                             expr=e))
        return
    if isinstance(e, A.CASExpr):
        expr_actions(e.expected, out)
        expr_actions(e.new, out)
        _base_reads(e.loc, out)
        out.append(RawAction("write", location_target(e.loc), via="CAS",
                             expr=e))
        return
    raise TypeError(f"unknown expression {type(e).__name__}")


def node_actions(node: CFGNode) -> list[RawAction]:
    """Extract the actions of one CFG node, in evaluation order."""
    out: list[RawAction] = []
    kind = node.kind
    stmt = node.stmt
    if kind in (NodeKind.ENTRY, NodeKind.EXIT, NodeKind.LOOP_HEAD,
                NodeKind.BREAK, NodeKind.CONTINUE):
        pass
    elif kind is NodeKind.RETURN:
        assert isinstance(stmt, A.Return)
        if stmt.value is not None:
            expr_actions(stmt.value, out)
    elif kind is NodeKind.STMT:
        if isinstance(stmt, A.Assign):
            expr_actions(stmt.value, out)
            _base_reads(stmt.target, out)
            out.append(RawAction("write", location_target(stmt.target)))
        elif isinstance(stmt, (A.Assume, A.AssertStmt)):
            expr_actions(stmt.cond, out)
        elif isinstance(stmt, A.ExprStmt):
            expr_actions(stmt.expr, out)
        elif isinstance(stmt, A.Skip):
            pass
        else:  # pragma: no cover - builder invariant
            raise TypeError(f"unexpected stmt node {type(stmt).__name__}")
    elif kind is NodeKind.BIND:
        decl = stmt
        assert isinstance(decl, A.LocalDecl)
        expr_actions(decl.init, out)
        out.append(RawAction(
            "write",
            Target("var", name=decl.name, binding=decl.binding)))
    elif kind is NodeKind.BRANCH:
        expr_actions(node.expr, out)
    elif kind is NodeKind.ACQUIRE:
        expr_actions(node.expr, out)
        out.append(RawAction("acquire", _lock_target(node.expr)))
    elif kind is NodeKind.RELEASE:
        out.append(RawAction("release", _lock_target(node.expr)))
    else:  # pragma: no cover
        raise TypeError(f"unexpected node kind {kind}")
    for action in out:
        action.node = node
    return out


def _lock_target(lock: A.Expr) -> Target:
    if A.is_location(lock):
        return location_target(lock)
    # a computed lock expression: model as an unknown lock
    return Target("global", name="<computed-lock>")


def node_writes(node: CFGNode) -> list[RawAction]:
    return [a for a in node_actions(node) if a.op == "write"]


def node_reads(node: CFGNode) -> list[RawAction]:
    return [a for a in node_actions(node) if a.op == "read"]
