"""The incremental resolution phase over the §5.4 pipeline.

``analyze_with_summaries`` front-ends
:func:`repro.analysis.inference.analyze_program` with a three-step
summary resolution:

1. **hash** — parse + resolve the *pre-inline* program, compute the
   per-procedure dependency digests and the whole-program key
   (:mod:`repro.analysis.summaries.canon`);
2. **resolve** — look the keys up in the
   :class:`~repro.analysis.summaries.store.SummaryStore`; a full hit
   (program record + every procedure record) replays the stored
   verdicts into a :class:`CachedAnalysisResult` without running any
   pass;
3. **miss** — run the passes once for the whole program (the
   classification steps are whole-program, so one stale procedure
   costs one full run), refresh every record, and — for the
   procedures that *were* hits — diff their stored slices against the
   fresh ones.  Any disagreement is reported as **drift**: the cache
   returned (or would have returned) a verdict a fresh run
   contradicts, which is the soundness canary `repro analyze
   --corpus` and `repro summaries verify` alarm on.

Cache traffic is observable: ``summary.*`` profiler regions
(hash/resolve/replay/emit), ``summary.*`` events, and hit / miss /
invalidation counters merged into the caller's metrics registry.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.analysis.inference import (
    AtomicityChecker,
    InferenceOptions,
)
from repro.analysis.report import render_figure
from repro.analysis.summaries import canon
from repro.analysis.summaries.store import SummaryStore
from repro.obs import ledger, rundiff
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import NULL_PROFILER
from repro.synl.inline import inline_calls
from repro.synl.parser import parse_program
from repro.synl.resolve import resolve

#: default store location (override with --summary-store / REPRO_SUMMARIES)
DEFAULT_STORE_DIR = ".repro/summaries"

#: env var enabling incremental mode and naming the store directory
ENV_VAR = "REPRO_SUMMARIES"

#: doc fields excluded from stored records and from hit-vs-fresh
#: comparison: they vary run to run without the verdict changing
VOLATILE_KEYS = ("run_meta", "cached", "trace", "profile")

#: doc fields compared when deciding drift (verdicts, provenance,
#: lint findings — not timings or counter noise)
COMPARE_KEYS = ("procedures", "all_atomic", "diagnostics", "options",
                "lint", "downgrades")


def resolve_store(store_dir: str | None = None,
                  incremental: bool = False) -> SummaryStore | None:
    """The store for this invocation: an explicit directory wins, then
    ``$REPRO_SUMMARIES``, then (with ``incremental``) the default
    location; plain runs get ``None``."""
    directory = store_dir or os.environ.get(ENV_VAR)
    if directory is None and not incremental:
        return None
    return SummaryStore(directory or DEFAULT_STORE_DIR)


def stable_doc(doc: dict) -> dict:
    """``doc`` minus the volatile fields — the storable projection."""
    return {k: v for k, v in doc.items() if k not in VOLATILE_KEYS}


def compare_doc(doc: dict) -> dict:
    """The drift-comparison projection of an analysis doc."""
    return {k: doc.get(k) for k in COMPARE_KEYS}


def proc_slices(doc: dict) -> dict[str, dict]:
    """Per-procedure summary slices of an analysis doc.

    The slice must be invariant under exactly the edits the proc key
    (:func:`repro.analysis.summaries.canon.dependency_digests`) is
    invariant under — otherwise a legitimate hit diffs against the
    fresh recompute and raises a false drift alarm.  The key
    canonicalizes local/param names away, so every name-bearing field
    is projected out: variant line ``text`` and provenance ``detail``
    (pretty-printed, with actual local names), and lint ``message`` /
    ``fix`` / ``region`` strings (rendered via ``pretty_target`` /
    ``region_label``, which can name locals).  What remains is the
    verdict substance: line labels (re-lettered to a per-procedure
    alphabet so the slice does not depend on where the procedure sits
    in the program-wide prefix sequence), atomicity letters, the
    provenance chain's rule/theorem/mover structure, and the lint
    rule/severity set.  Source positions are dropped for the same
    reason — the key is position-independent, so the slice must be
    too."""
    lint_kept = ("rule", "severity", "proc")
    lint_findings = [
        {k: f.get(k) for k in lint_kept}
        for f in (doc.get("lint") or {}).get("findings", [])]
    slices: dict[str, dict] = {}
    for entry in doc.get("procedures", []):
        variants = []
        for index, variant in enumerate(entry.get("variants", [])):
            variant = dict(variant)
            lines = []
            for line in canon.reletter_variant(
                    variant.get("lines", []), index):
                line = {k: v for k, v in line.items() if k != "text"}
                if "provenance" in line:
                    line["provenance"] = [
                        {k: v for k, v in j.items() if k != "detail"}
                        for j in line["provenance"]]
                lines.append(line)
            variant["lines"] = lines
            variants.append(variant)
        slices[entry["name"]] = {
            "atomic": bool(entry.get("atomic")),
            "variants": variants,
            "lint": [f for f in lint_findings
                     if f.get("proc") == entry["name"]],
        }
    return slices


class CachedAnalysisResult:
    """An :class:`~repro.analysis.inference.AnalysisResult` look-alike
    replayed from a stored program record.  Exposes the attributes the
    CLI, ledger and exporters touch; ``to_dict()`` returns the stored
    document (provenance chains intact) plus a fresh ``run_meta`` and
    ``cached: true``."""

    cached = True

    class _Verdict:
        __slots__ = ("atomic",)

        def __init__(self, atomic: bool):
            self.atomic = atomic

    class _Finding:
        __slots__ = ("_text",)

        def __init__(self, text: str):
            self._text = text

        def render(self) -> str:
            return self._text

    class _Lint:
        def __init__(self, doc: dict, rendered: list[str]):
            self._doc = doc
            self.findings = [CachedAnalysisResult._Finding(t)
                             for t in rendered]

        def to_dict(self) -> dict:
            return self._doc

    def __init__(self, record: dict, options: InferenceOptions):
        self.record = record
        self.options = options
        self._doc = dict(record["doc"])
        self.verdicts = {
            p["name"]: self._Verdict(bool(p.get("atomic")))
            for p in self._doc.get("procedures", [])}
        self.diagnostics = list(self._doc.get("diagnostics", []))
        self.downgrades = [dict(d)
                           for d in self._doc.get("downgrades", [])]
        self.metrics = dict(self._doc.get("metrics", {}))
        self.trace: list = []
        self.profile: dict = {}
        lint_doc = self._doc.get("lint")
        self.lint = (self._Lint(lint_doc,
                                record.get("lint_rendered", []))
                     if lint_doc is not None else None)

    @property
    def all_atomic(self) -> bool:
        return bool(self._doc.get("all_atomic"))

    def atomic_procedures(self) -> list[str]:
        return [name for name, v in self.verdicts.items() if v.atomic]

    def is_atomic(self, name: str) -> bool:
        return self.verdicts[name].atomic

    def figure(self, explain: bool = False) -> str:
        key = "figure_explain" if explain else "figure"
        return self.record.get(key, "")

    def to_dict(self, include_provenance: bool = True) -> dict:
        from repro.obs.export import run_meta

        doc = dict(self._doc)
        if not include_provenance:
            procedures = []
            for proc in doc.get("procedures", []):
                proc = dict(proc)
                variants = []
                for variant in proc.get("variants", []):
                    variant = dict(variant)
                    variant["lines"] = [
                        {k: v for k, v in line.items()
                         if k != "provenance"}
                        for line in variant.get("lines", [])]
                    variants.append(variant)
                proc["variants"] = variants
                procedures.append(proc)
            doc["procedures"] = procedures
        doc["cached"] = True
        doc["run_meta"] = run_meta()
        return doc


def _drift_entry(label: str, name: str, stored: dict,
                 fresh: dict) -> dict:
    """A drift record for one procedure, with the ``runs diff``
    document comparing the stored slice against the fresh one."""
    a = {"analysis": ledger.classification_summary(
            {"procedures": [{"name": name, **stored}]}),
         "run_id": f"{label}:{name}@cached"}
    b = {"analysis": ledger.classification_summary(
            {"procedures": [{"name": name, **fresh}]}),
         "run_id": f"{label}:{name}@fresh"}
    return {"program": label, "proc": name,
            "diff": rundiff.diff_manifests(a, b)}


def analyze_with_summaries(source: str,
                           options: InferenceOptions | None = None,
                           *,
                           store: SummaryStore,
                           label: str = "<program>",
                           tracer=None, metrics=None, profiler=None,
                           events=None, known_names=None):
    """Analyze ``source`` through the summary cache.

    Returns ``(result, info)`` where ``result`` is either a fresh
    :class:`~repro.analysis.inference.AnalysisResult` or a
    :class:`CachedAnalysisResult`, and ``info`` describes the cache
    traffic: ``{"cached", "hits", "misses", "invalidated", "drift",
    "program_key", "proc_keys"}``.

    ``known_names`` overrides the set of procedure names considered
    *previously summarized* when classifying a miss as an
    invalidation.  :func:`analyze_corpus` snapshots the store once and
    passes that baseline to every target, so the invalidation counts
    don't depend on which *other* corpus targets happened to write
    colliding procedure names first — the property that keeps a
    parallel (``--jobs``) corpus pass byte-identical to a sequential
    one.  ``None`` (the default, used by single-program callers) reads
    the store at call time."""
    options = options or InferenceOptions()
    prof = profiler or NULL_PROFILER

    with prof.region("summary.hash"):
        pre = parse_program(source)
        resolve(pre)
        proc_keys = canon.dependency_digests(pre, options, source)
        program_key = canon.program_key(source, options)
        prof.add("summary.hash", len(pre.procs))

    with prof.region("summary.resolve"):
        program_record = store.get("program", program_key)
        proc_records = {name: store.get("proc", key)
                        for name, key in proc_keys.items()}
        prof.add("summary.resolve", len(proc_keys))

    hits = sorted(n for n, r in proc_records.items() if r is not None)
    misses = sorted(n for n in proc_keys if proc_records[n] is None)
    if known_names is not None:
        known = known_names
    else:
        known = store.known_proc_names() if misses else set()
    invalidated = sorted(n for n in misses if n in known)
    full_hit = program_record is not None and not misses

    info: dict = {
        "label": label,
        "cached": full_hit,
        "program_key": program_key,
        "proc_keys": dict(proc_keys),
        "hits": hits,
        "misses": misses,
        "invalidated": invalidated,
        "drift": [],
    }

    if events is not None:
        events.emit("summary.resolve", label=label,
                    hits=len(hits), misses=len(misses),
                    invalidated=len(invalidated), cached=full_hit)

    if full_hit:
        with prof.region("summary.replay"):
            result = CachedAnalysisResult(program_record, options)
            prof.add("summary.replay", len(proc_keys))
        if events is not None:
            events.emit("summary.replay", label=label,
                        procs=len(proc_keys))
        _merge_cache_metrics(metrics, info)
        return result, info

    # Miss path: one whole-program run (mirrors the CLI's load path —
    # procedure calls are inlined before analysis).  The checker gets
    # a registry of its own so the metrics embedded in (and stored
    # with) the doc describe *this program only* — a shared registry
    # would leak whatever ran before into the doc, making record
    # bytes depend on analysis order.  The caller's registry still
    # sees everything via the merge below.
    program = inline_calls(parse_program(source))
    resolve(program)
    local_metrics = MetricsRegistry()
    result = AtomicityChecker(program, options, tracer=tracer,
                              metrics=local_metrics,
                              profiler=profiler,
                              source_text=source).run()
    if metrics is not None:
        metrics.merge(local_metrics)

    with prof.region("summary.emit"):
        doc = result.to_dict(include_provenance=True)
        stored = stable_doc(doc)
        fresh_slices = proc_slices(stored)
        for name in hits:
            stored_slice = proc_records[name].get("slice") or {}
            fresh_slice = fresh_slices.get(name)
            if fresh_slice is not None \
                    and _roundtrip(stored_slice) != _roundtrip(
                        fresh_slice):
                info["drift"].append(_drift_entry(
                    label, name, stored_slice, fresh_slice))
        for name, key in proc_keys.items():
            if name not in fresh_slices:
                continue
            store.put("proc", key, name, {
                "label": label,
                "proc": name,
                "program_key": program_key,
                "slice": fresh_slices[name],
            })
        lint = getattr(result, "lint", None)
        store.put("program", program_key, label, {
            "label": label,
            "source": source,
            "options": {k: bool(v)
                        for k, v in vars(options).items()},
            "proc_keys": dict(proc_keys),
            "doc": stored,
            "figure": render_figure(result),
            "figure_explain": render_figure(result, explain=True),
            "lint_rendered": ([f.render() for f in lint.findings]
                              if lint is not None else []),
        })
        prof.add("summary.emit", len(proc_keys))

    if events is not None:
        events.emit("summary.emit", label=label,
                    procs=len(proc_keys), drift=len(info["drift"]))
    _merge_cache_metrics(metrics, info)
    return result, info


def _roundtrip(obj):
    """JSON round-trip so stored (loaded) and fresh (in-memory) slices
    compare on value, not container type."""
    import json

    return json.loads(json.dumps(obj, sort_keys=True))


def _merge_cache_metrics(metrics, info: dict) -> None:
    if metrics is None:
        return
    metrics.merge_counts({
        "summary.procs.hit": len(info["hits"]),
        "summary.procs.miss": len(info["misses"]),
        "summary.procs.invalidated": len(info["invalidated"]),
        "summary.programs.hit": 1 if info["cached"] else 0,
        "summary.programs.miss": 0 if info["cached"] else 1,
        "summary.drift": len(info["drift"]),
    })


# -- batch front-end -----------------------------------------------------------

def corpus_targets(examples_dir: str | Path | None = "examples/synl",
                   ) -> list[tuple[str, str]]:
    """Every corpus program plus the example ``.synl`` files (when the
    directory exists): ``[(label, source_text), ...]``."""
    import repro.corpus as corpus

    targets: list[tuple[str, str]] = []
    for name in sorted(corpus.__all__):
        source = getattr(corpus, name, None)
        if isinstance(source, str):
            targets.append((f"corpus/{name.lower()}", source))
    if examples_dir is not None:
        directory = Path(examples_dir)
        if directory.is_dir():
            for path in sorted(directory.glob("*.synl")):
                targets.append((f"examples/{path.stem}",
                                path.read_text(encoding="utf-8")))
    return targets


def _analyze_one(store: SummaryStore,
                 options: InferenceOptions | None,
                 label: str, source: str, *,
                 profiler=None, events=None, metrics=None,
                 known_names=None) -> dict:
    """One corpus target through the store; returns a self-contained
    ``{"label", "row", "doc", "drift"}`` (or ``{"label", "error"}``)
    cell — JSON-able, so a fleet worker can ship it back verbatim."""
    from repro.errors import ReproError

    try:
        result, info = analyze_with_summaries(
            source, options, store=store, label=label,
            profiler=profiler, events=events, metrics=metrics,
            known_names=known_names)
    except ReproError as exc:
        return {"label": label, "error": str(exc)}
    doc = result.to_dict(include_provenance=True)
    return {
        "label": label,
        "doc": stable_doc(doc),
        "drift": info["drift"],
        "row": {
            "label": label,
            "atomic": bool(result.all_atomic),
            "procs": len(info["proc_keys"]),
            "hits": len(info["hits"]),
            "misses": len(info["misses"]),
            "invalidated": len(info["invalidated"]),
            "cached": info["cached"],
            "drift": len(info["drift"]),
        },
    }


def _assemble_corpus_report(cells: list[dict], stats: dict) -> dict:
    """Fold per-target cells (already in target order) into the
    corpus report shape — shared by the sequential and fleet paths so
    their output is byte-identical."""
    rows: list[dict] = []
    drift: list[dict] = []
    errors: list[dict] = []
    docs: dict[str, dict] = {}
    for cell in cells:
        if "error" in cell:
            errors.append({"label": cell["label"],
                           "error": cell["error"]})
            continue
        docs[cell["label"]] = cell["doc"]
        rows.append(cell["row"])
        drift.extend(cell["drift"])
    return {"rows": rows, "drift": drift, "errors": errors,
            "docs": docs, "stats": stats}


def analyze_corpus(store: SummaryStore,
                   options: InferenceOptions | None = None,
                   *,
                   targets: list[tuple[str, str]] | None = None,
                   profiler=None, events=None, metrics=None,
                   jobs: int = 1, spool=None) -> dict:
    """Analyze every target through one shared store.

    Returns ``{"rows", "drift", "errors", "docs", "stats"}`` where each
    row is ``{label, atomic, procs, hits, misses, invalidated, cached,
    drift}`` and ``docs`` maps label to the stable (volatile-free)
    analysis doc — the corpus canary compares these across passes.

    With ``jobs > 1`` (or an explicit ``spool`` directory) the targets
    are fanned across forked worker processes via
    :func:`repro.obs.fleet.run_fleet`: each worker opens the same
    on-disk store (record writes are tmp-file + ``os.replace`` atomic,
    so concurrent workers cannot tear each other's records) and spools
    its own telemetry.  Per-target cells are reassembled in the
    original target order, so the report — rows, docs, drift, errors —
    is **byte-identical** to a sequential run; the merged fleet
    telemetry rides along under ``"fleet"`` and the worker profilers
    are folded into ``profiler`` when one was passed."""
    resolved = list(targets if targets is not None
                    else corpus_targets())
    # Snapshot the invalidation baseline once: every target — on both
    # paths — classifies misses against the store as it stood *before*
    # this pass, so the counts don't depend on target order (or on
    # which worker raced a colliding name in first).
    known_names = frozenset(store.known_proc_names())
    if jobs <= 1 and spool is None:
        cells = [_analyze_one(store, options, label, source,
                              profiler=profiler, events=events,
                              metrics=metrics,
                              known_names=known_names)
                 for label, source in resolved]
        return _assemble_corpus_report(cells, store.stats())

    from repro.obs import fleet

    store_root = store.root
    opt_fields = dict(options.__dict__) if options is not None else None

    def worker(item, spool_handle):
        label, source = item
        worker_store = SummaryStore(store_root)
        worker_options = InferenceOptions(**opt_fields) \
            if opt_fields is not None else None
        cell = _analyze_one(worker_store, worker_options, label,
                            source, profiler=spool_handle.profiler,
                            events=spool_handle.events,
                            metrics=spool_handle.metrics,
                            known_names=known_names)
        return cell

    cells, merge = fleet.run_fleet(resolved, worker, jobs=jobs,
                                   spool=spool, label="analyze-corpus")
    report = _assemble_corpus_report(cells, store.stats())
    report["fleet"] = merge.doc
    if profiler is not None:
        profiler.merge(merge.profiler)
    if metrics is not None:
        metrics.merge(merge.metrics)
    if events is not None:
        events.emit("fleet.merge", workers=len(merge.doc["workers"]),
                    events=merge.doc["events"],
                    wall_s=merge.doc["wall_s"])
    return report


# -- soundness canaries --------------------------------------------------------

def _verdict_word(doc: dict) -> str:
    return "all-atomic" if doc.get("all_atomic") else "non-atomic"


def verify_store(store: SummaryStore, sample: int = 5) -> dict:
    """Recompute a deterministic sample of stored program records from
    their recorded source + options and diff the stored docs against
    the fresh ones.  Returns ``{"checked", "mismatches"}`` — any
    mismatch means the cache would replay a verdict a fresh run
    contradicts."""
    records = sorted(store.records("program"),
                     key=lambda r: r["key"])
    if sample > 0:
        step = max(1, len(records) // sample)
        records = records[::step][:sample]
    mismatches: list[dict] = []
    checked = 0
    for record in records:
        source = record.get("source")
        if not isinstance(source, str):
            continue
        options = InferenceOptions(**record.get("options", {}))
        program = inline_calls(parse_program(source))
        resolve(program)
        result = AtomicityChecker(program, options,
                                  source_text=source).run()
        fresh = compare_doc(stable_doc(
            result.to_dict(include_provenance=True)))
        stored = compare_doc(record.get("doc") or {})
        checked += 1
        if _roundtrip(stored) != _roundtrip(fresh):
            label = record.get("label", record["key"])
            stored_doc = record.get("doc") or {}
            fresh_doc = stable_doc(result.to_dict())
            # the verdict rides as the manifest outcome so a diff is
            # never empty when only the top-level flag was tampered
            a = {"analysis": ledger.classification_summary(stored_doc),
                 "outcome": _verdict_word(stored_doc),
                 "run_id": f"{label}@stored"}
            b = {"analysis": ledger.classification_summary(fresh_doc),
                 "outcome": _verdict_word(fresh_doc),
                 "run_id": f"{label}@fresh"}
            mismatches.append({
                "key": record["key"],
                "label": label,
                "diff": rundiff.diff_manifests(a, b),
            })
    return {"checked": checked, "mismatches": mismatches}


def warm_canary(store_dir: str | Path,
                options: InferenceOptions | None = None,
                *,
                targets: list[tuple[str, str]] | None = None) -> dict:
    """The CI warm-cache canary: analyze the corpus twice through one
    (fresh) store.  The second pass must be 100% cache hits with docs
    byte-identical to the first pass modulo ``run_meta`` / ``cached``,
    and the per-program ``runs diff`` must be empty.  Returns a report
    with ``ok`` plus the failure details."""
    import json

    store = SummaryStore(store_dir)
    cold = analyze_corpus(store, options, targets=targets)
    warm = analyze_corpus(store, options, targets=targets)
    not_cached = [row["label"] for row in warm["rows"]
                  if not row["cached"]]
    mismatched: list[dict] = []
    for label, cold_doc in cold["docs"].items():
        warm_doc = warm["docs"].get(label)
        cold_bytes = json.dumps(_roundtrip(cold_doc), sort_keys=True)
        warm_bytes = json.dumps(_roundtrip(warm_doc), sort_keys=True)
        if cold_bytes != warm_bytes:
            a = {"analysis": ledger.classification_summary(cold_doc),
                 "run_id": f"{label}@cold"}
            b = {"analysis": ledger.classification_summary(
                    warm_doc or {}),
                 "run_id": f"{label}@warm"}
            mismatched.append({
                "label": label,
                "diff": rundiff.diff_manifests(a, b),
            })
    ok = (not not_cached and not mismatched
          and not cold["drift"] and not warm["drift"]
          and not cold["errors"] and not warm["errors"])
    return {
        "ok": ok,
        "programs": len(cold["rows"]),
        "not_cached": not_cached,
        "mismatched": mismatched,
        "cold_errors": cold["errors"],
        "warm_errors": warm["errors"],
        "drift": cold["drift"] + warm["drift"],
        "stats": store.stats(),
        "rows": warm["rows"],
    }
