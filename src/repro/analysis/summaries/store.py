"""Content-addressed, schema-versioned summary store.

Layout (reusing the ledger's sha256 artifact naming — files are
``{key}-{name}.json``, the *full* key so distinct keys can never
share a filename):

    <root>/
      procs/     <key>-<proc-name>.json      per-procedure summaries
      programs/  <key>-<label>.json          whole-program records

Every record carries ``v`` (the ``summary`` entry of
:func:`repro.obs.schemas.registry`); :meth:`SummaryStore.get` refuses
to load a record whose stored schema version mismatches the running
code (counted in ``stats()["schema_refused"]``) — a stale store can
only cause cache misses, never wrong verdicts.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from pathlib import Path

from repro.obs import schemas

SCHEMA_VERSION = schemas.SUMMARY

KINDS = ("proc", "program")

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def _safe_name(name: str) -> str:
    return _SAFE.sub("_", name)[:48] or "record"


class SummaryStore:
    """A directory of content-addressed summary records."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.counters = {"schema_refused": 0, "corrupt": 0}

    def _dir(self, kind: str) -> Path:
        if kind not in KINDS:
            raise ValueError(f"unknown summary kind {kind!r}")
        return self.root / f"{kind}s"

    def _path(self, kind: str, key: str, name: str) -> Path:
        return self._dir(kind) / f"{key}-{_safe_name(name)}.json"

    # -- record I/O -----------------------------------------------------------
    def put(self, kind: str, key: str, name: str, record: dict) -> Path:
        doc = {"v": SCHEMA_VERSION, "kind": kind, "key": key,
               "name": name, **record}
        path = self._path(kind, key, name)
        path.parent.mkdir(parents=True, exist_ok=True)
        # unique tmp name: concurrent put()s of the same record must
        # not scribble over each other's half-written file
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=path.name + ".", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(doc, sort_keys=True, indent=1) + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def get(self, kind: str, key: str) -> dict | None:
        directory = self._dir(kind)
        if not directory.is_dir():
            return None
        for path in sorted(directory.glob(f"{key}-*.json")):
            record = self._load(path)
            if record is None:
                continue
            if record.get("key") != key:
                continue
            return record
        return None

    def _load(self, path: Path) -> dict | None:
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.counters["corrupt"] += 1
            return None
        if not isinstance(record, dict):
            self.counters["corrupt"] += 1
            return None
        if record.get("v") != SCHEMA_VERSION:
            self.counters["schema_refused"] += 1
            return None
        return record

    # -- enumeration ----------------------------------------------------------
    def iter_paths(self, kind: str | None = None):
        for k in KINDS if kind is None else (kind,):
            directory = self._dir(k)
            if not directory.is_dir():
                continue
            yield from sorted(directory.glob("*.json"))

    def records(self, kind: str | None = None) -> list[dict]:
        out = []
        for path in self.iter_paths(kind):
            record = self._load(path)
            if record is not None:
                out.append(record)
        return out

    def entries(self, kind: str | None = None) -> list[dict]:
        """Lightweight listing (no record bodies): key, kind, name,
        size and mtime per file."""
        out = []
        for path in self.iter_paths(kind):
            stat = path.stat()
            key, _, name = path.stem.partition("-")
            out.append({
                "kind": path.parent.name.rstrip("s"),
                "key": key,
                "name": name,
                "bytes": stat.st_size,
                "mtime": stat.st_mtime,
            })
        return out

    def known_proc_names(self) -> set[str]:
        """Names that already have *some* proc summary on disk — used
        to tell an invalidation (stale record for a known procedure)
        apart from a cold miss."""
        return {e["name"] for e in self.entries("proc")}

    # -- maintenance ----------------------------------------------------------
    def gc(self, keep: int = 256) -> list[Path]:
        """Keep the ``keep`` most recently touched records per kind;
        remove (and return) the rest."""
        removed: list[Path] = []
        for kind in KINDS:
            paths = sorted(self.iter_paths(kind),
                           key=lambda p: (p.stat().st_mtime, p.name),
                           reverse=True)
            for path in paths[max(keep, 0):]:
                path.unlink(missing_ok=True)
                removed.append(path)
        return removed

    def stats(self) -> dict:
        entries = self.entries()
        per_kind = {kind: 0 for kind in KINDS}
        total = 0
        for entry in entries:
            per_kind[entry["kind"]] = per_kind.get(entry["kind"], 0) + 1
            total += entry["bytes"]
        return {
            "v": SCHEMA_VERSION,
            "kind": "summary-stats",
            "root": str(self.root),
            "procs": per_kind.get("proc", 0),
            "programs": per_kind.get("program", 0),
            "bytes": total,
            "schema_refused": self.counters["schema_refused"],
            "corrupt": self.counters["corrupt"],
        }
