"""Summary-based incremental atomicity analysis.

The §5.4 pipeline is modular in spirit — purity, mover classification
and the atomicity verdicts (Thms 5.3/5.4) are derived per procedure —
but :func:`repro.analysis.inference.analyze_program` recomputes every
pass from scratch.  This package layers a content-addressed summary
cache over the existing passes:

* :mod:`repro.analysis.summaries.canon` — canonical (rename-tolerant)
  procedure hashes, the pre-inline call graph, shared-region
  footprints and the dependency digests that decide invalidation;
* :mod:`repro.analysis.summaries.store` — the schema-versioned
  content-addressed record store (ledger artifact layout);
* :mod:`repro.analysis.summaries.engine` — the resolution phase:
  cache hit → replay the stored verdicts (``cached: true``), miss →
  run the passes and emit fresh summaries.

See docs/ANALYSIS.md ("Incremental analysis & summaries").
"""

from repro.analysis.summaries.canon import (  # noqa: F401
    call_graph,
    callee_closure,
    decl_digest,
    dependency_digests,
    effective_hashes,
    proc_content_hash,
    shared_footprint,
    suppression_slice,
)
from repro.analysis.summaries.engine import (  # noqa: F401
    CachedAnalysisResult,
    analyze_corpus,
    analyze_with_summaries,
    corpus_targets,
    resolve_store,
    verify_store,
    warm_canary,
)
from repro.analysis.summaries.store import (  # noqa: F401
    SCHEMA_VERSION,
    SummaryStore,
)
