"""Canonical procedure hashing and dependency digests.

The incremental engine needs two keys per procedure:

* a **content hash** over a canonicalized AST — parameter and
  procedure-local binders are replaced by scope-ordinal indices (a de
  Bruijn-style numbering over the resolver's binding ids), so renaming
  a local or a parameter does not invalidate the summary, while
  *shared* names (globals, thread-locals, consts, field and class
  names, loop-label structure) stay literal so two procedures that
  differ only in which shared variable they touch can never collide;
* a **dependency digest** over everything the procedure's verdict can
  observe: its own content (with the transitive callee closure folded
  in — calls are inlined before analysis, so a callee edit must flip
  every caller), the program's declaration surface (globals with their
  ``versioned`` flags, thread-locals, consts, classes, ``init`` /
  ``threadinit``), the analysis options, the lint suppressions inside
  the procedure's source span, and the *interference set*: the other
  procedures whose shared-region footprint (again with the callee
  closure folded in — inlining makes a caller touch everything its
  callees touch) overlaps this one's.  The
  classification steps are whole-program (stability of a mover is
  judged against every other access in the program), so a procedure's
  verdict may change when an interfering procedure changes even if no
  call connects them.
"""

from __future__ import annotations

import hashlib
import string

from repro.synl import ast as A

# Binder kinds that are canonicalized to scope ordinals; everything
# else (globals, thread-locals, consts) keeps its literal name.
_LOCAL_KINDS = (A.VarKind.PARAM, A.VarKind.LOCAL)


def _sha(obj) -> str:
    return hashlib.sha256(repr(obj).encode("utf-8")).hexdigest()


def digest(obj) -> str:
    """Short content digest (sha256 of the canonical repr, 16 hex chars
    — the same width as :func:`repro.obs.ledger.fingerprint`)."""
    return _sha(obj)[:16]


# -- canonical AST keys --------------------------------------------------------

def _canon(node: A.Node, env: dict[int, int],
           labels: dict[str, int]) -> tuple:
    """Canonical structural key of ``node``.

    ``env`` maps resolver binding ids of PARAM/LOCAL binders to their
    ordinal of appearance; ``labels`` does the same for loop labels.
    Mirrors :meth:`repro.synl.ast.Node.key` otherwise (including the
    singleton-Block collapse)."""
    if isinstance(node, A.Block) and len(node.stmts) == 1:
        return _canon(node.stmts[0], env, labels)
    if isinstance(node, A.Var):
        kind = node.kind
        tag = kind.name if kind is not None else "?"
        if kind in _LOCAL_KINDS and node.binding in env:
            return ("Var", tag, env[node.binding])
        return ("Var", tag, node.name)
    if isinstance(node, A.LocalDecl):
        init = _canon(node.init, env, labels)
        if node.binding is not None:
            env[node.binding] = len(env)
        return ("LocalDecl", init, _canon(node.body, env, labels))
    if isinstance(node, A.Loop):
        if node.label is not None:
            labels[node.label] = len(labels)
        ordinal = labels.get(node.label) if node.label is not None else None
        return ("Loop", ordinal, _canon(node.body, env, labels))
    if isinstance(node, (A.Break, A.Continue)):
        ordinal = (labels.get(node.label)
                   if node.label is not None else None)
        return (type(node).__name__, ordinal)
    parts: list = [type(node).__name__]
    for _, value in node._fields():
        if isinstance(value, A.Node):
            parts.append(_canon(value, env, labels))
        elif isinstance(value, list):
            parts.append(tuple(
                _canon(v, env, labels) if isinstance(v, A.Node) else v
                for v in value))
        else:
            parts.append(value)
    return tuple(parts)


def canonical_key(proc: A.Procedure) -> tuple:
    """Rename-tolerant structural key of a *resolved* procedure."""
    env: dict[int, int] = {}
    for binding in proc.param_bindings.values():
        env[binding] = len(env)
    return ("Procedure", len(proc.params), _canon(proc.body, env, {}))


def proc_content_hash(proc: A.Procedure) -> str:
    """Full sha256 over the canonical key of ``proc``."""
    return _sha(canonical_key(proc))


# -- call graph ----------------------------------------------------------------

def call_graph(program: A.Program) -> dict[str, set[str]]:
    """Pre-inline call graph: a call is a ``PrimCall`` whose name
    matches a declared procedure (the same convention
    :mod:`repro.synl.inline` lowers)."""
    names = {p.name for p in program.procs}
    graph: dict[str, set[str]] = {}
    for proc in program.procs:
        graph[proc.name] = {
            n.name for n in proc.body.walk()
            if isinstance(n, A.PrimCall) and n.name in names}
    return graph


def callee_closure(graph: dict[str, set[str]], name: str) -> set[str]:
    """Transitive callees of ``name`` (excluding ``name`` itself unless
    it is reachable through a cycle)."""
    seen: set[str] = set()
    stack = list(graph.get(name, ()))
    while stack:
        callee = stack.pop()
        if callee in seen:
            continue
        seen.add(callee)
        stack.extend(graph.get(callee, ()))
    return seen


# -- interference footprints ---------------------------------------------------

def shared_footprint(proc: A.Procedure) -> frozenset[tuple[str, str]]:
    """Coarse shared-region footprint of a procedure: the global
    variables it names, the object fields it accesses, and an element
    marker for any array indexing.  Two procedures with disjoint
    footprints cannot change each other's stability judgements."""
    regions: set[tuple[str, str]] = set()
    for node in proc.body.walk():
        if isinstance(node, A.Var) and node.kind is A.VarKind.GLOBAL:
            regions.add(("global", node.name))
        elif isinstance(node, A.Field):
            regions.add(("field", node.name))
        elif isinstance(node, A.Index):
            regions.add(("elem", "[]"))
    return frozenset(regions)


# -- program-level digests -----------------------------------------------------

def decl_digest(program: A.Program) -> str:
    """Digest of the whole declaration surface a verdict can observe:
    consts, globals (with ``versioned`` flags and initializers),
    thread-locals, classes (fields + versioned fields), ``init`` /
    ``threadinit`` bodies, and the procedure name order (output
    ordering and call resolution depend on it)."""
    parts: list = [
        tuple(d.key() for d in program.consts),
        tuple(d.key() for d in program.globals),
        tuple(d.key() for d in program.threadlocals),
        tuple(d.key() for d in program.classes),
        program.init.key() if program.init is not None else None,
        (program.threadinit.key()
         if program.threadinit is not None else None),
        tuple(p.name for p in program.procs),
    ]
    return digest(("decls", tuple(parts)))


def options_digest(options) -> str:
    # repr, not bool(): coercion would collapse distinct non-bool
    # option values (e.g. a future int threshold) into one digest
    return digest(("options", tuple(sorted(
        (k, repr(v)) for k, v in vars(options).items()))))


def suppression_slice(source_text: str | None,
                      proc: A.Procedure) -> tuple:
    """The lint suppressions (``// lint: ignore[...]``) that fall inside
    ``proc``'s source span, keyed by line offset from the span start so
    edits elsewhere in the file don't shift them."""
    if not source_text:
        return ()
    from repro.analysis.lint.core import suppressions

    supp = suppressions(source_text)
    if not supp:
        return ()
    start, end = proc.span()
    if start is None or end is None:
        return ()
    return tuple(sorted(
        (line - start.line, tuple(sorted(rules)))
        for line, rules in supp.items()
        if start.line <= line <= end.line))


# -- per-procedure dependency digests ------------------------------------------

def effective_hashes(program: A.Program,
                     graph: dict[str, set[str]] | None = None,
                     ) -> dict[str, str]:
    """Per-procedure hash folding in the transitive callee closure:
    ``H(own content, sorted closure content hashes)``.  A callee edit
    flips every (transitive) caller's effective hash."""
    if graph is None:
        graph = call_graph(program)
    own = {p.name: proc_content_hash(p) for p in program.procs}
    effective: dict[str, str] = {}
    for proc in program.procs:
        closure = sorted(own[c] for c in callee_closure(graph, proc.name))
        effective[proc.name] = _sha((own[proc.name], tuple(closure)))
    return effective


def effective_footprints(program: A.Program,
                         graph: dict[str, set[str]] | None = None,
                         ) -> dict[str, frozenset[tuple[str, str]]]:
    """Per-procedure shared footprint with the transitive callee
    closure folded in.  Calls are inlined before analysis, so a caller
    inherits every shared region its callees touch — interference must
    be judged on this effective footprint, not the pre-inline body
    alone (a procedure that reaches global ``g`` only through a callee
    still interferes with every other procedure touching ``g``)."""
    if graph is None:
        graph = call_graph(program)
    own = {p.name: shared_footprint(p) for p in program.procs}
    effective: dict[str, frozenset[tuple[str, str]]] = {}
    for proc in program.procs:
        regions = set(own[proc.name])
        for callee in callee_closure(graph, proc.name):
            regions |= own.get(callee, frozenset())
        effective[proc.name] = frozenset(regions)
    return effective


def dependency_digests(program: A.Program, options,
                       source_text: str | None = None,
                       schema_version: int | None = None,
                       ) -> dict[str, str]:
    """The per-procedure summary keys (16 hex chars).

    Key material per procedure: the summary schema version, the
    procedure name, its effective content hash (callee closure folded
    in), the declaration digest, the options digest, its
    lint-suppression slice, and the sorted effective hashes of every
    *other* procedure whose effective shared footprint (callee closure
    folded in on both sides) overlaps its own."""
    if schema_version is None:
        from repro.analysis.summaries.store import SCHEMA_VERSION
        schema_version = SCHEMA_VERSION
    graph = call_graph(program)
    effective = effective_hashes(program, graph)
    footprints = effective_footprints(program, graph)
    decls = decl_digest(program)
    opts = options_digest(options)
    keys: dict[str, str] = {}
    for proc in program.procs:
        mine = footprints[proc.name]
        interference = tuple(sorted(
            effective[other.name] for other in program.procs
            if other.name != proc.name
            and footprints[other.name] & mine))
        keys[proc.name] = digest((
            "proc-summary", schema_version, proc.name,
            effective[proc.name], decls, opts,
            suppression_slice(source_text, proc), interference))
    return keys


def program_key(source_text: str, options,
                schema_version: int | None = None) -> str:
    """Key of the whole-program record: exact source text (lint
    findings carry absolute source positions) + options + schema."""
    if schema_version is None:
        from repro.analysis.summaries.store import SCHEMA_VERSION
        schema_version = SCHEMA_VERSION
    return digest(("program-summary", schema_version, source_text,
                   options_digest(options)))


def reletter_variant(lines: list[dict], index: int) -> list[dict]:
    """Re-letter a stored/exported variant's line labels to a
    per-procedure alphabet (variant ``index`` → prefix 'a'+index), so
    slices compare stably regardless of where the procedure sits in the
    program-wide prefix sequence of
    :func:`repro.obs.export.analysis_to_dict`."""
    prefix = string.ascii_lowercase[min(index, 25)]
    out = []
    for entry in lines:
        entry = dict(entry)
        label = entry.get("label", "")
        entry["label"] = prefix + label.lstrip(string.ascii_lowercase)
        out.append(entry)
    return out
