"""Matching LL expressions and matching reads (§5.2).

For ``SC(v, val)`` (or ``VL(v)``) the *matching LL expressions* are found
"by a backward DFS on the control flow graph starting from the SC, and
not going past edges labeled with LL(v)"; all visited occurrences of
``LL(v)`` match.

For ``CAS(v, expected, new)`` the *matching read*, if any, is the action
that read the old value of ``v`` and saved it into the variable used as
``expected``.  We find it with the same backward search, stopping at
bindings/assignments of the expected-value variable from a read of ``v``.

The paper assumes (and we verify in the inference driver) that each SC
has a unique matching LL expression and each CAS a unique matching read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.actions import Target, location_target, node_actions
from repro.analysis.purity import target_region
from repro.cfg.graph import CFGNode, NodeKind, ProcCFG
from repro.synl import ast as A


def _has_ll_on(node: CFGNode, region: tuple) -> bool:
    return any(a.via == "LL" and a.op == "read"
               and target_region(a.target) == region
               for a in node_actions(node))


@dataclass
class LLSearch:
    """Result of the backward matching-LL search: the matching LL
    nodes, plus whether any path escaped to the procedure entry
    without crossing an LL on the region (the lint ``llsc.ll-gap``
    condition — an SC reachable from entry without a reservation)."""

    matches: set[CFGNode] = field(default_factory=set)
    reaches_entry: bool = False


def matching_lls_search(cfg: ProcCFG, start: CFGNode,
                        target: Target) -> LLSearch:
    """Backward DFS from ``start`` collecting matching LL nodes and
    recording whether the search reached the procedure entry."""
    region = target_region(target)
    out = LLSearch()
    seen: set[CFGNode] = {start}
    stack: list[CFGNode] = [start]
    while stack:
        node = stack.pop()
        if node.kind is NodeKind.ENTRY:
            out.reaches_entry = True
        for prev in cfg.predecessors(node):
            if prev in seen:
                continue
            seen.add(prev)
            if _has_ll_on(prev, region):
                out.matches.add(prev)
                continue  # do not go past an LL(v)
            stack.append(prev)
    return out


def matching_lls(cfg: ProcCFG, start: CFGNode,
                 target: Target) -> set[CFGNode]:
    """All LL nodes that can produce the matching LL action for an
    SC/VL on ``target`` at ``start``."""
    return matching_lls_search(cfg, start, target).matches


def _binds_from_read_of(node: CFGNode, expected_binding: int,
                        region: tuple) -> bool:
    """Does ``node`` save a read of the CAS target into the expected-value
    variable?  Accepts ``local e = v``, ``e = v`` and ``e = LL(v)`` /
    plain reads of the same region."""
    stmt = node.stmt
    if node.kind is NodeKind.BIND and isinstance(stmt, A.LocalDecl):
        if stmt.binding != expected_binding:
            return False
        init = stmt.init
    elif node.kind is NodeKind.STMT and isinstance(stmt, A.Assign) \
            and isinstance(stmt.target, A.Var) \
            and stmt.target.binding == expected_binding:
        init = stmt.value
    else:
        return False
    if isinstance(init, A.LLExpr):
        init = init.loc
    if A.is_location(init):
        return target_region(location_target(init)) == region
    return False


def matching_reads(cfg: ProcCFG, cas_node: CFGNode,
                   cas: A.CASExpr) -> set[CFGNode]:
    """All nodes that can produce the matching read for ``cas`` at
    ``cas_node``.  Empty when the expected value is not a plain variable
    (a CAS may succeed without a matching read; an SC cannot)."""
    expected = cas.expected
    if not isinstance(expected, A.Var) or expected.binding is None:
        return set()
    region = target_region(location_target(cas.loc))
    matches: set[CFGNode] = set()
    seen: set[CFGNode] = {cas_node}
    stack: list[CFGNode] = [cas_node]
    while stack:
        node = stack.pop()
        for prev in cfg.predecessors(node):
            if prev in seen:
                continue
            seen.add(prev)
            if _binds_from_read_of(prev, expected.binding, region):
                matches.add(prev)
                continue
            stack.append(prev)
    return matches
