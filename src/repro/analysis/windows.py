"""LL–SC windows within exceptional variants (Theorems 5.3/5.4).

A *window* on variable ``v`` is the span from a matching ``LL(v)`` to a
later *successful* ``SC(v, ·)`` or ``VL(v)`` (in variants, successful
operations are those wrapped in ``TRUE(...)``).  By Theorem 5.3 no
successful SC on ``v`` by another thread can execute inside the window;
by Theorem 5.4 neither can any part of a competing LL-SC block on ``v``
(from its matching LL to its successful SC, inclusive).

Positions are computed with dominators: an action is inside the window
when the matching LL dominates it and the successful operation
postdominates it.  The *before* side of the LL itself and the *after*
side of the final operation fall outside the window.

The CAS analogue (matching read ↔ matching LL) is valid only under the
modification-counter discipline (§5.2); CAS windows are built only for
regions the program declares ``versioned``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.actions import Target, location_target, node_actions
from repro.analysis.matching import matching_lls, matching_reads
from repro.analysis.purity import Region, target_region
from repro.cfg.dominators import Dominators
from repro.cfg.graph import CFGNode, NodeKind, ProcCFG
from repro.synl import ast as A


@dataclass
class Window:
    root: Target            # the variable v
    region: Region
    ll_node: CFGNode        # matching LL (or matching read, for CAS)
    end_node: CFGNode       # the successful SC/VL/CAS node
    kind: str               # 'SC' | 'VL' | 'CAS'
    #: the binding introduced by the matching LL's bind node, if any
    ll_binding: int | None = None


@dataclass
class WindowDiagnostic:
    message: str
    node: CFGNode


def _positive_sync_exprs(cond: A.Expr):
    """SC/VL/CAS expressions asserted positively by a TRUE(...) condition."""
    if isinstance(cond, (A.SCExpr, A.VLExpr, A.CASExpr)):
        yield cond
    elif isinstance(cond, A.Binary) and cond.op == "&&":
        yield from _positive_sync_exprs(cond.left)
        yield from _positive_sync_exprs(cond.right)


class WindowIndex:
    """All windows of one variant CFG, with position queries."""

    def __init__(self, cfg: ProcCFG, dom: Dominators,
                 cas_root_ok=lambda root: False):
        self.cfg = cfg
        self.dom = dom
        self.windows: list[Window] = []
        self.diagnostics: list[WindowDiagnostic] = []
        self._build(cas_root_ok)

    def _build(self, cas_root_ok) -> None:
        for node in self.cfg.nodes:
            stmt = node.stmt
            if node.kind is not NodeKind.STMT or not isinstance(
                    stmt, A.Assume):
                continue
            for op in _positive_sync_exprs(stmt.cond):
                if not A.is_location(op.loc):
                    continue
                root = location_target(op.loc)
                region = target_region(root)
                if isinstance(op, A.CASExpr):
                    if not cas_root_ok(root):
                        continue
                    matches = matching_reads(self.cfg, node, op)
                    kind = "CAS"
                else:
                    matches = matching_lls(self.cfg, node, root)
                    kind = "SC" if isinstance(op, A.SCExpr) else "VL"
                if len(matches) != 1:
                    # A CAS may legitimately succeed without a matching
                    # read (§5.2) — it just gets no window.  An SC
                    # without a matching LL must fail; multiple matches
                    # violate the paper's uniqueness assumption.
                    if not (kind == "CAS" and not matches):
                        self.diagnostics.append(WindowDiagnostic(
                            f"{kind} on {root} has {len(matches)} "
                            f"matching "
                            f"{'reads' if kind == 'CAS' else 'LLs'} "
                            f"(the analysis assumes exactly one)", node))
                    continue
                ll_node = next(iter(matches))
                binding = None
                if ll_node.kind is NodeKind.BIND and isinstance(
                        ll_node.stmt, A.LocalDecl):
                    binding = ll_node.stmt.binding
                self.windows.append(Window(root, region, ll_node, node,
                                           kind, binding))

    # -- position queries ---------------------------------------------------
    def inside(self, w: Window, node: CFGNode) -> bool:
        """Node lies between the matching LL and the successful op
        (inclusive of both endpoints)."""
        return self.dom.dominates(w.ll_node, node) \
            and self.dom.postdominates(w.end_node, node)

    def protected(self, w: Window, node: CFGNode, side: str) -> bool:
        """Is the adjacent slot on ``side`` of ``node`` inside the
        window?  (before the LL / after the final op are outside)."""
        if not self.inside(w, node):
            return False
        if side == "before":
            return node is not w.ll_node
        return node is not w.end_node

    def windows_protecting(self, node: CFGNode, side: str) -> list[Window]:
        return [w for w in self.windows if self.protected(w, node, side)]

    def windows_containing(self, node: CFGNode) -> list[Window]:
        return [w for w in self.windows if self.inside(w, node)]

    def sc_block_memberships(self, node: CFGNode) -> list[Window]:
        """Windows ending in a successful SC/CAS that contain the node —
        the 'competing block' memberships used by Theorem 5.4."""
        return [w for w in self.windows
                if w.kind in ("SC", "CAS") and self.inside(w, node)]
