"""Local conditions of local blocks, and LL-SC blocks (§5.3).

A predicate ``p(lvar)`` is a *local condition* of ``local lvar = e in
stmt`` when (i) ``lvar`` is not updated in ``stmt`` and (ii) ``p(lvar)``
holds throughout the execution of ``stmt``.  Because ``lvar`` is
immutable inside the block, any ``TRUE(...)`` statement that depends
only on ``lvar`` (and constants) asserts a property of ``lvar``'s value
that holds throughout — we collect such atoms from the unconditional
spine of the block (not under ``if``/``loop``).

An *LL-SC block on svar* is ``local lvar = LL(svar) in {...;
TRUE(SC(svar, val)); ...}`` (the paper generalizes so the SC need not be
last).  Theorem 5.5 then excludes interleavings between an LL-SC block
with condition ``p`` and a local block with condition implying ``!p`` on
the same variable.

Conditions are conjunctions of atoms ``(op, const)`` over the block's
``lvar`` — e.g. ``next == null`` is ``("==", None)``.  Conditions from
different procedures are compared by value, not by binding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.actions import Target, location_target
from repro.synl import ast as A

Atom = tuple  # (op, const_value) with op in {"==", "!="}


def _atom_of(cond: A.Expr, lvar: int) -> Atom | None:
    """Convert a TRUE(...) condition into an atom over ``lvar``."""
    if isinstance(cond, A.Binary) and cond.op in ("==", "!="):
        left, right = cond.left, cond.right
        if isinstance(right, A.Var) and isinstance(left, A.Const):
            left, right = right, left
        if isinstance(left, A.Var) and left.binding == lvar \
                and isinstance(right, A.Const):
            return (cond.op, right.value)
    if isinstance(cond, A.Var) and cond.binding == lvar:
        return ("==", True)
    if isinstance(cond, A.Unary) and cond.op == "!" \
            and isinstance(cond.operand, A.Var) \
            and cond.operand.binding == lvar:
        return ("==", False)
    return None


def complementary(a: Atom, b: Atom) -> bool:
    """Do the two atoms contradict each other (p vs !p)?"""
    op_a, val_a = a
    op_b, val_b = b
    if val_a != val_b:
        # x == c contradicts x == d for c != d
        return op_a == "==" and op_b == "=="
    return op_a != op_b


def condition_excludes(local_cond: frozenset[Atom],
                       llsc_cond: frozenset[Atom]) -> bool:
    """Does the local block's condition imply the negation of the LL-SC
    block's condition (the ``!p`` premise of Theorem 5.5)?"""
    return any(complementary(a, b)
               for a in local_cond for b in llsc_cond)


@dataclass
class BlockInfo:
    """A local block (possibly an LL-SC block) with its local condition."""

    kind: str                     # 'llsc' | 'local'
    decl: A.LocalDecl             # the block's binder
    lvar: int                     # binding of lvar
    svar: Target                  # root variable (SC target for llsc,
    #                               the read location for local blocks)
    condition: frozenset[Atom] = frozenset()
    #: nids of all AST nodes inside the block (binder subtree)
    member_nids: frozenset[int] = frozenset()
    #: for llsc blocks: the SC expression(s) on svar inside the block
    sc_exprs: list[A.Expr] = field(default_factory=list)

    def contains(self, node: A.Node | None) -> bool:
        return node is not None and node.nid in self.member_nids


def _spine_assumes(stmt: A.Stmt):
    """TRUE(...) statements on the unconditional spine of a block (not
    inside if/loop/synchronized)."""
    if isinstance(stmt, A.Assume):
        yield stmt
    elif isinstance(stmt, A.Block):
        for sub in stmt.stmts:
            yield from _spine_assumes(sub)
    elif isinstance(stmt, A.LocalDecl):
        yield from _spine_assumes(stmt.body)


def _updates_binding(stmt: A.Stmt, binding: int) -> bool:
    for node in stmt.walk():
        if isinstance(node, A.Assign) and isinstance(node.target, A.Var) \
                and node.target.binding == binding:
            return True
    return False


def _successful_scs_on(stmt: A.Stmt, svar_region) -> list[A.Expr]:
    """TRUE(SC(svar, ...)) occurrences within the block."""
    from repro.analysis.purity import target_region

    out = []
    for node in stmt.walk():
        if isinstance(node, A.Assume):
            cond = node.cond
            if isinstance(cond, A.SCExpr) and A.is_location(cond.loc):
                if target_region(location_target(cond.loc)) == svar_region:
                    out.append(cond)
    return out


def blocks_of_proc(proc: A.Procedure) -> list[BlockInfo]:
    """All local blocks of a (variant) procedure, with conditions."""
    from repro.analysis.purity import target_region

    out: list[BlockInfo] = []
    for node in proc.body.walk():
        if not isinstance(node, A.LocalDecl) or node.binding is None:
            continue
        init = node.init
        svar: Target | None = None
        kind = "local"
        if isinstance(init, A.LLExpr) and A.is_location(init.loc):
            svar = location_target(init.loc)
            scs = _successful_scs_on(node.body, target_region(svar))
            if scs:
                kind = "llsc"
            else:
                scs = []
        elif A.is_location(init):
            svar = location_target(init)
            scs = []
        else:
            continue  # not a block on a variable (e.g. local x = new C)
        if _updates_binding(node.body, node.binding):
            continue  # condition (i) of §5.3 fails: no local condition
        atoms = set()
        for assume in _spine_assumes(node.body):
            atom = _atom_of(assume.cond, node.binding)
            if atom is not None:
                atoms.add(atom)
        member_nids = frozenset(n.nid for n in node.walk())
        out.append(BlockInfo(kind=kind, decl=node, lvar=node.binding,
                             svar=svar, condition=frozenset(atoms),
                             member_nids=member_nids,
                             sc_exprs=scs if kind == "llsc" else []))
    return out


def blocks_of_program(program: A.Program) -> dict[str, list[BlockInfo]]:
    return {proc.name: blocks_of_proc(proc) for proc in program.procs}
