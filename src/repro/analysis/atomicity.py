"""Atomicity types and their calculus (§3.3 of the paper, after
Flanagan & Qadeer's *Types for Atomicity*).

The five types are ordered ``B ⊏ L, R ⊏ A ⊏ N`` (smaller = stronger
guarantee).  Three operations combine them:

* :func:`join` — least upper bound in the partial order;
* :func:`seq` — sequential composition ``a; b`` (the 5×5 table in §3.3);
* :func:`iter_closure` — atomicity of repeatedly executing a statement:
  ``B*=B, R*=R, L*=L, A*=N, N*=N``.

All three are property-tested against the algebraic laws in
``tests/test_atomicity_lattice.py``.
"""

from __future__ import annotations

import enum
import functools


class Atomicity(enum.Enum):
    """Atomicity type of an action, expression, or statement."""

    B = "B"  #: both-mover
    R = "R"  #: right-mover
    L = "L"  #: left-mover
    A = "A"  #: atomic
    N = "N"  #: non-atomic ("compound" in Flanagan & Qadeer)

    def __str__(self) -> str:
        return self.value

    # ``B ⊑ L ⊑ A``, ``B ⊑ R ⊑ A``, ``A ⊑ N``; L and R are incomparable.
    def __le__(self, other: "Atomicity") -> bool:
        if self is other:
            return True
        return other in _ABOVE[self]

    def __lt__(self, other: "Atomicity") -> bool:
        return self is not other and self <= other


B, R, L, A, N = (Atomicity.B, Atomicity.R, Atomicity.L, Atomicity.A,
                 Atomicity.N)

_ABOVE = {
    B: {L, R, A, N},
    L: {A, N},
    R: {A, N},
    A: {N},
    N: set(),
}


def join(a: Atomicity, b: Atomicity) -> Atomicity:
    """Least upper bound.  ``join(L, R) = A`` (their only common upper
    bounds are A and N)."""
    if a <= b:
        return b
    if b <= a:
        return a
    # the only incomparable pair is {L, R}
    return A


def meet(a: Atomicity, b: Atomicity) -> Atomicity:
    """Greatest lower bound — used by step 4 of the inference to combine
    a type from an earlier step with a (possibly stronger) reclassified
    type ("use the minimum of the atomicities", §5.4)."""
    if a <= b:
        return a
    if b <= a:
        return b
    return B  # glb of {L, R}


# Sequential composition table from §3.3.  Rows = first argument,
# columns = second argument, order B, R, L, A, N.
#
# Deviation from the paper as printed: the paper's table shows A;A = A,
# which is inconsistent with Lipton reduction (two atomic actions in
# sequence are not atomic) and with every other entry — all others encode
# the fold of the R*;(A|ε);L* reducible pattern, under which A;A = N.
# We use N (the Flanagan–Qadeer value); none of the paper's examples
# exercises this entry, so all Fig. 3/4 labels are unaffected.
_SEQ_TABLE: dict[tuple[Atomicity, Atomicity], Atomicity] = {}
_rows = {
    B: [B, R, L, A, N],
    R: [R, R, A, A, N],
    L: [L, N, L, N, N],
    A: [A, N, A, N, N],
    N: [N, N, N, N, N],
}
for _row, _vals in _rows.items():
    for _col, _val in zip([B, R, L, A, N], _vals):
        _SEQ_TABLE[(_row, _col)] = _val


def seq(a: Atomicity, b: Atomicity) -> Atomicity:
    """Sequential composition ``a; b`` (table in §3.3)."""
    return _SEQ_TABLE[(a, b)]


def seq_all(types: list[Atomicity]) -> Atomicity:
    """Compose a sequence of atomicities left to right (identity: B)."""
    return functools.reduce(seq, types, B)


def iter_closure(a: Atomicity) -> Atomicity:
    """Iterative closure ``a*``: atomicity of a statement that repeatedly
    executes a sub-statement of atomicity ``a``."""
    if a in (B, R, L):
        return a
    return N


def is_atomic(a: Atomicity) -> bool:
    """True when the type guarantees atomicity (anything but N: a single
    mover or atomic block executes equivalently without interruption)."""
    return a is not N


def parse_atomicity(text: str) -> Atomicity:
    """Parse a one-letter atomicity label (as used in Fig. 3)."""
    return Atomicity(text.strip().upper())
