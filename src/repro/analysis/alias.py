"""Alias analysis over syntactic targets (§5.4, step 4).

The paper's alias analysis "just checks whether the references have the
same type and whether the same field is being accessed".  We implement
exactly that on top of the class inference in
:mod:`repro.analysis.typing`:

* two global variables alias iff they are the same name;
* two field accesses may alias iff the field names are equal and the
  base reference class sets overlap;
* a field access and a global variable never alias (globals are
  variables, not heap cells);
* array element regions may alias under the same conditions as fields.

``must_alias`` holds when the two targets are syntactically the same
location through the same binding — used when two actions of the *same*
variant access the same variable (e.g. the matching LL and its SC).
"""

from __future__ import annotations

from repro.analysis.actions import Target
from repro.analysis.typing import ClassEnv
from repro.synl import ast as A


class AliasAnalysis:
    def __init__(self, program: A.Program, env: ClassEnv):
        self.program = program
        self.env = env

    def _base_classes(self, t: Target) -> frozenset[str]:
        if t.binding is not None:
            return self.env.of_binding(t.binding)
        if t.name is not None:
            # field access whose base is named directly by a global
            return self.env.of_global(t.name)
        return frozenset()

    def may_alias(self, a: Target, b: Target) -> bool:
        """Could the two targets denote the same memory cell?"""
        if a.kind == "global" or b.kind == "global":
            return a.kind == b.kind and a.name == b.name
        if a.kind == "var" or b.kind == "var":
            return a.kind == b.kind and a.binding == b.binding
        if a.kind != b.kind:
            return False  # a field cell is never an element cell
        if a.field != b.field:
            return False
        ca, cb = self._base_classes(a), self._base_classes(b)
        if not ca or not cb:
            # unknown types: be conservative
            return True
        return bool(ca & cb)

    def must_alias(self, a: Target, b: Target) -> bool:
        """The two targets certainly denote the same cell (within one
        thread's execution of one variant, with no intervening write to
        the base binding)."""
        if a.kind != b.kind:
            return False
        if a.kind == "global":
            return a.name == b.name
        if a.kind == "var":
            return a.binding == b.binding
        return (a.binding is not None and a.binding == b.binding
                and a.field == b.field)

    def same_region(self, a: Target, b: Target) -> bool:
        """Targets belong to the same abstract region (class+field) —
        the granularity at which step 4 looks for conflicting accesses."""
        return self.may_alias(a, b)
