"""Atomic-block partitioning (§6.4).

When a procedure is not atomic as a whole, the analysis still shows that
many code blocks are atomic, which "can significantly reduce the number
of states considered during subsequent analysis and verification".  We
partition the flattened line sequence of each variant greedily: extend
the current block while the sequential composition of its lines stays
reducible (≠ N); start a new block otherwise.  Greedy left-to-right is
optimal for this objective: the reducible-prefix predicate is monotone
(every prefix of a reducible sequence is reducible), so cutting as late
as possible never increases the number of blocks.

The paper's headline (§6.4): Michael's lock-free allocator, 74 lines of
pseudocode, partitions into 15 atomic blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import atomicity as AT
from repro.analysis.atomicity import Atomicity
from repro.analysis.inference import AnalysisResult
from repro.analysis.report import ReportLine, variant_lines


@dataclass
class AtomicBlock:
    lines: list[ReportLine]
    atomicity: Atomicity

    @property
    def size(self) -> int:
        return len(self.lines)


@dataclass
class BlockPartition:
    variant_name: str
    blocks: list[AtomicBlock] = field(default_factory=list)

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def n_lines(self) -> int:
        return sum(b.size for b in self.blocks)

    def render(self) -> str:
        out = [f"{self.variant_name}: {self.n_lines} lines -> "
               f"{self.n_blocks} atomic blocks"]
        for i, block in enumerate(self.blocks, 1):
            out.append(f"  block {i} [{block.atomicity}]:")
            for line in block.lines:
                out.append("    " + line.render())
        return "\n".join(out)


def partition_lines(lines: list[ReportLine],
                    variant_name: str = "") -> BlockPartition:
    """Greedy maximal-block partition of a line sequence."""
    partition = BlockPartition(variant_name)
    current: list[ReportLine] = []
    acc = Atomicity.B
    for line in lines:
        composed = AT.seq(acc, line.atomicity)
        if composed is Atomicity.N and current:
            partition.blocks.append(AtomicBlock(current, acc))
            current = [line]
            acc = line.atomicity
        else:
            current.append(line)
            acc = composed
    if current:
        partition.blocks.append(AtomicBlock(current, acc))
    return partition


def partition_procedure(result: AnalysisResult,
                        proc_name: str) -> list[BlockPartition]:
    """Partition every exceptional variant of a procedure into maximal
    atomic blocks."""
    verdict = result.verdicts[proc_name]
    out = []
    for report in verdict.variants:
        lines = variant_lines(report, "x")
        out.append(partition_lines(lines, report.variant.name))
    return out


def partition_program(result: AnalysisResult) -> dict[str, list[BlockPartition]]:
    return {name: partition_procedure(result, name)
            for name in result.verdicts}
