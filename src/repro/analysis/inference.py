"""The atomicity inference algorithm (§5.4, steps 1–7).

Pipeline
--------
1. Parse/resolve the program; build CFGs; run escape, uniqueness and
   purity analyses on the original procedures.
2. Replace each procedure by its exceptional variants (§5.2,
   :mod:`repro.analysis.variants`).
3. On the variant program: re-run escape/uniqueness, infer classes,
   build locksets, dominators, windows (Thm 5.3/5.4) and local-condition
   blocks (Thm 5.5).
4. Classify every action:

   * **step 1** — local actions are B (Thm 3.1); acquires R, releases L
     (Thm 3.2);
   * **step 2** — successful SC/VL on SC-only variables are L, their
     matching LLs are R (Thm 5.3); CAS analogues under the versioned
     (ABA-free) discipline;
   * **steps 3–4** — for each global read/write, search all variants for
     conflicting accesses and test whether each can occur immediately
     before/after it.  Adjacency is *excluded* by: a common lock
     (Thm 5.1), the window rules (Thm 5.3/5.4), the local-condition rule
     (Thm 5.5), or — in the not-aliased branch of a case split — the
     LL-agreement argument (two overlapping windows on the same variable
     read the same value, so their bindings must alias; this is the
     paper's "t_a ≠ t_u implies the SC would fail" reasoning for a6).
     The engine does a case split on alias pairs (§5.4) and combines a
     per-step-4 mover type with earlier steps by taking the minimum;
   * **step 5** — unclassified global actions are A;
   * **step 6** — propagate through the AST with the §3.3 calculus;
   * **step 7** — a procedure is atomic iff all its exceptional variants
     have body atomicity ≤ A (Thm 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import atomicity as AT
from repro.analysis.actions import RawAction, Target, node_actions
from repro.analysis.alias import AliasAnalysis
from repro.analysis.atomicity import Atomicity
from repro.analysis.conditions import (BlockInfo, blocks_of_program,
                                       condition_excludes)
from repro.analysis.escape import EscapeResult, escape_analysis
from repro.analysis.locks import LocksetResult, common_lock, lockset_analysis
from repro.analysis.purity import PurityInfo, pure_loops, target_region
from repro.analysis.typing import ClassEnv, infer_classes
from repro.analysis.uniqueness import UniquenessResult, uniqueness_analysis
from repro.analysis.variants import Variant, VariantSet, make_variants
from repro.analysis.windows import Window, WindowIndex
from repro.cfg.builder import build_cfg
from repro.cfg.dominators import Dominators
from repro.cfg.graph import CFGNode, NodeKind, ProcCFG
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import NULL_PROFILER, Profiler
from repro.obs.provenance import justify
from repro.obs.tracing import NULL_TRACER
from repro.synl import ast as A
from repro.synl.resolve import load_program


@dataclass
class InferenceOptions:
    """Feature switches (used by the ablation benchmarks)."""

    enable_purity: bool = True       # §4: pure loops + variants
    enable_uniqueness: bool = True   # working-copy uniqueness (Thm 3.1)
    enable_windows: bool = True      # Thm 5.3 / 5.4 window rules
    enable_conditions: bool = True   # Thm 5.5 local-condition rule
    enable_locks: bool = True        # Thm 5.1
    enable_agreement: bool = True    # LL-agreement case split
    enable_lint: bool = True         # discipline linter + downgrades


#: sentinel pair key for the conflict pair itself (see ``_excluded``)
_P0 = ("#conflict",)


@dataclass
class Site:
    """One action occurrence in one variant."""

    ctx: "VariantContext"
    node: CFGNode
    action: RawAction
    is_local: bool = False
    atomicity: Atomicity = Atomicity.A
    steps: list[str] = field(default_factory=list)  # which rules fired
    #: structured counterpart of ``steps``: one
    #: :class:`~repro.obs.provenance.Justification` per rule firing,
    #: naming the theorem behind the classification
    provenance: list = field(default_factory=list)


class VariantContext:
    """Per-variant analysis state."""

    def __init__(self, variant: Variant, cfg: ProcCFG,
                 escape: EscapeResult, lockset: LocksetResult,
                 dom: Dominators, windows: WindowIndex,
                 blocks: list[BlockInfo]):
        self.variant = variant
        self.name = variant.name
        self.cfg = cfg
        self.escape = escape
        self.lockset = lockset
        self.dom = dom
        self.windows = windows
        self.blocks = blocks
        self.sites: list[Site] = []
        self.stmt_nodes: dict[int, list[CFGNode]] = {}
        for node in cfg.nodes:
            if node.stmt is not None:
                self.stmt_nodes.setdefault(node.stmt.nid, []).append(node)
        self._block_nodes: dict[int, set[CFGNode]] = {}
        self._block_bind: dict[int, CFGNode | None] = {}
        self._block_sc: dict[int, CFGNode | None] = {}
        for b in blocks:
            members = {n for n in cfg.nodes
                       if n.stmt is not None
                       and n.stmt.nid in b.member_nids}
            self._block_nodes[b.decl.nid] = members
            bind = next((n for n in members if n.kind is NodeKind.BIND
                         and n.stmt is b.decl), None)
            self._block_bind[b.decl.nid] = bind
            sc_node = None
            if b.sc_exprs:
                sc_nids = {e.nid for e in b.sc_exprs}
                for n in members:
                    if isinstance(n.stmt, A.Assume) and any(
                            x.nid in sc_nids for x in n.stmt.cond.walk()):
                        sc_node = n
                        break
            self._block_sc[b.decl.nid] = sc_node
            if b.kind == "llsc" and bind is not None \
                    and sc_node is not None:
                # Theorem 5.5's protection for an LL-SC block spans from
                # the LL to its successful SC: after the SC, svar has
                # changed and p(svar) may no longer hold.
                members = {n for n in members
                           if dom.dominates(bind, n)
                           and dom.postdominates(sc_node, n)}
                self._block_nodes[b.decl.nid] = members

    def block_nodes(self, b: BlockInfo) -> set[CFGNode]:
        return self._block_nodes[b.decl.nid]

    def node_in_block(self, b: BlockInfo, node: CFGNode) -> bool:
        return node in self._block_nodes[b.decl.nid]

    def adjacency_inside_block(self, b: BlockInfo, node: CFGNode,
                               side: str) -> bool:
        """Is the adjacent execution slot on ``side`` of ``node`` still
        inside block ``b``?  The slot before the block's first transition
        (the bind) is outside; for LL-SC blocks the slot after the
        successful SC is outside; for plain local blocks the slots after
        its last transitions are outside."""
        members = self._block_nodes[b.decl.nid]
        if node not in members:
            return False
        if side == "before":
            return node is not self._block_bind[b.decl.nid]
        if b.kind == "llsc":
            return node is not self._block_sc[b.decl.nid]
        # after: inside unless control can leave the block right after
        return all(succ in members for succ in self.cfg.successors(node))


@dataclass
class VariantReport:
    variant: Variant
    ctx: VariantContext
    body_atomicity: Atomicity
    stmt_atoms: dict[int, Atomicity]
    #: True when the variant performs no visible update (no writes to
    #: globals, shared heap, or thread-local variables).  Such variants
    #: are exempt from the Theorem 5.2 requirement: a read-only
    #: completion leaves the global and persistent thread state
    #: untouched, so — under the state-based atomicity definition of
    #: §3.2, where the atomic witness execution may use a different set
    #: of environment invocations — the invocation can be dropped the
    #: same way Theorem 4.1 drops normally-terminating pure iterations.
    #: This covers the failure branch of a bare ``SC(v, e);`` statement
    #: (e.g. UpdateTail's SC), which the paper's Fig. 3 silently treats
    #: as successful.
    read_only: bool = False


@dataclass
class ProcVerdict:
    name: str
    atomic: bool
    variants: list[VariantReport]


@dataclass
class AnalysisResult:
    program: A.Program
    options: InferenceOptions
    purity: dict[str, dict[A.Loop, PurityInfo]]
    variant_set: VariantSet
    verdicts: dict[str, ProcVerdict]
    contexts: dict[str, VariantContext]
    uniqueness: UniquenessResult
    diagnostics: list[str] = field(default_factory=list)
    #: flat metrics snapshot (variant/site counts, per-theorem
    #: exclusion tallies, mover distribution, phase info)
    metrics: dict = field(default_factory=dict)
    #: span tree (list of span dicts) when tracing was enabled
    trace: list = field(default_factory=list)
    #: discipline-lint findings for the source program
    #: (:class:`repro.analysis.lint.LintResult`), None when disabled
    lint: object = None
    #: structured notes about theorem applications suppressed because
    #: lint found the discipline they assume violated:
    #: ``{"theorem", "region", "rules", "detail"}``
    downgrades: list[dict] = field(default_factory=list)
    #: ranked hotspot document (``Profiler.to_dict`` shape) when the
    #: analysis ran with a profiler, else empty
    profile: dict = field(default_factory=dict)

    def to_dict(self, include_provenance: bool = True) -> dict:
        from repro.obs.export import analysis_to_dict

        return analysis_to_dict(self, include_provenance)

    def is_atomic(self, proc_name: str) -> bool:
        return self.verdicts[proc_name].atomic

    @property
    def all_atomic(self) -> bool:
        return all(v.atomic for v in self.verdicts.values())

    def atomic_procedures(self) -> list[str]:
        return [n for n, v in self.verdicts.items() if v.atomic]


# -- helpers --------------------------------------------------------------------

def _failing_sync_exprs(cond: A.Expr, negated: bool = False):
    """SC/CAS expressions asserted to FAIL by a TRUE(...) condition."""
    if isinstance(cond, (A.SCExpr, A.CASExpr)):
        if negated:
            yield cond
    elif isinstance(cond, A.Unary) and cond.op == "!":
        yield from _failing_sync_exprs(cond.operand, not negated)
    elif isinstance(cond, A.Binary) and cond.op == "&&":
        yield from _failing_sync_exprs(cond.left, negated)
        yield from _failing_sync_exprs(cond.right, negated)


class AtomicityChecker:
    """Run the full inference on a SYNL program (source text or AST)."""

    def __init__(self, program: A.Program | str,
                 options: InferenceOptions | None = None,
                 tracer=None, metrics: MetricsRegistry | None = None,
                 profiler: Profiler | None = None,
                 source_text: str | None = None):
        self.tracer = tracer or NULL_TRACER
        self.registry = metrics or MetricsRegistry()
        self.profiler = profiler or NULL_PROFILER
        #: lock-free hot-path tallies, flushed into ``registry`` once
        #: at the end of :meth:`run`
        self._counts: dict[str, int] = {}
        if isinstance(program, str):
            #: original text, so the embedded lint pass can read
            #: ``// lint: ignore[...]`` suppression comments
            source_text = program if source_text is None else source_text
            with self.tracer.span("analysis:parse-resolve"), \
                    self.profiler.region("analysis.parse_resolve"):
                program = load_program(program)
        self.source_text = source_text
        self.program = program
        self.options = options or InferenceOptions()
        self.diagnostics: list[str] = []

    def _tally(self, name: str, n: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + n

    # -- pipeline -----------------------------------------------------------
    def _purity_of(self, program: A.Program,
                   cfgs: dict[str, ProcCFG]
                   ) -> dict[str, dict[A.Loop, PurityInfo]]:
        with self.tracer.span("analysis:escape-uniqueness-purity"):
            return self._purity_of_inner(program, cfgs)

    def _purity_of_inner(self, program: A.Program,
                         cfgs: dict[str, ProcCFG]
                         ) -> dict[str, dict[A.Loop, PurityInfo]]:
        escapes = {name: escape_analysis(cfg) for name, cfg in cfgs.items()}
        unique = uniqueness_analysis(program, cfgs) \
            if self.options.enable_uniqueness else UniquenessResult()
        purity: dict[str, dict[A.Loop, PurityInfo]] = {}
        for proc in program.procs:
            if self.options.enable_purity:
                purity[proc.name] = pure_loops(
                    cfgs[proc.name], program, escapes[proc.name],
                    unique.unique_bindings())
            else:
                purity[proc.name] = {}
        return purity

    def _expand_variants(self) -> tuple[
            VariantSet, dict[str, dict[A.Loop, PurityInfo]]]:
        """Iterate variant expansion until no pure loops remain —
        needed when pure loops nest (e.g. the allocator's anchor-pop
        CAS loop inside the credit-reservation CAS loop)."""
        current = self.program
        purity0: dict[str, dict[A.Loop, PurityInfo]] | None = None
        source_of: dict[str, str] | None = None
        for _ in range(10):
            cfgs = {p.name: build_cfg(p) for p in current.procs}
            purity = self._purity_of(current, cfgs)
            if purity0 is None:
                purity0 = purity
            vs = make_variants(current, cfgs, purity)
            if source_of is None:
                source_of = {v.name: v.source for v in vs.variants}
            else:
                prev = {v.name: v for v in final_vs.variants}
                for v in vs.variants:
                    # carry exit selections across expansion rounds
                    v.exits = {**prev[v.source].exits, **v.exits}
                source_of = {v.name: source_of[v.source]
                             for v in vs.variants}
            final_vs = vs
            if not any(info.pure for per in purity.values()
                       for info in per.values()):
                break
            current = vs.program
        else:
            self.diagnostics.append(
                "variant expansion did not converge in 10 rounds")
        for v in final_vs.variants:
            v.source = source_of[v.name]
        by_source: dict[str, list[Variant]] = {}
        for v in final_vs.variants:
            by_source.setdefault(v.source, []).append(v)
        final_vs.by_source = by_source
        assert purity0 is not None
        return final_vs, purity0

    #: lint error rules that void a mover theorem's side condition on
    #: the affected region (llsc → Thm 5.3 windows, aba → Thm 5.4)
    _DOWNGRADE_RULES = {
        "llsc.multi-ll": "5.3",
        "llsc.nested-ll": "5.3",
        "llsc.plain-write": "5.3",
        "aba.unversioned-cas": "5.4",
        "aba.plain-write-versioned": "5.4",
    }

    def _run_lint(self) -> None:
        """Run the discipline linter over the source program, attach
        its findings, and derive the theorem-downgrade taint: regions
        whose discipline a lint *error* refutes get no Thm 5.3/5.4
        windows, and the suppression is recorded in ``downgrades`` /
        ``diagnostics`` instead of being silently assumed."""
        self.lint = None
        self.downgrades: list[dict] = []
        self._lint_taint: dict[tuple, dict[str, set[str]]] = {}
        if not self.options.enable_lint:
            return
        from repro.analysis.lint import Severity, lint_program
        with self.tracer.span("analysis:lint"), \
                self.profiler.region("analysis.lint"):
            self.lint = lint_program(self.program,
                                     source_text=self.source_text,
                                     metrics=self.registry,
                                     profiler=self.profiler)
        noted: dict[tuple, set[str]] = {}
        for diag in self.lint.findings:
            theorem = self._DOWNGRADE_RULES.get(diag.rule)
            if theorem is None or diag.severity is not Severity.ERROR \
                    or diag.region_key is None:
                continue
            per_region = self._lint_taint.setdefault(diag.region_key, {})
            per_region.setdefault(theorem, set()).add(diag.rule)
            noted.setdefault((theorem, diag.region), set()).add(diag.rule)
        for (theorem, region), rules in sorted(noted.items()):
            ids = ", ".join(sorted(rules))
            self.downgrades.append({
                "theorem": theorem,
                "region": region,
                "rules": sorted(rules),
                "detail": f"Thm {theorem} windows on {region} are "
                          f"suppressed: lint refutes the discipline "
                          f"they assume ({ids})",
            })
            self.diagnostics.append(
                f"lint: downgraded Thm {theorem} applications on "
                f"{region} ({ids})")

    def _lint_vetoes(self, root: Target, theorem: str) -> bool:
        if not getattr(self, "_lint_taint", None):
            return False
        from repro.analysis.lint import region_key
        key = region_key(root)
        return key is not None \
            and theorem in self._lint_taint.get(key, {})

    def run(self) -> AnalysisResult:
        opts = self.options
        prof = self.profiler
        with self.tracer.span("analysis:run"):
            self._run_lint()
            with self.tracer.span("analysis:variants"), \
                    prof.region("analysis.variants"):
                variant_set, purity = self._expand_variants()
            vprog = variant_set.program
            with self.tracer.span("analysis:classes-alias"), \
                    prof.region("analysis.classes_alias"):
                self.env: ClassEnv = infer_classes(vprog)
                self.alias = AliasAnalysis(vprog, self.env)
            with self.tracer.span("analysis:escape-uniqueness"), \
                    prof.region("analysis.escape_uniqueness"):
                v_cfgs = {p.name: build_cfg(p) for p in vprog.procs}
                self.unique = uniqueness_analysis(vprog, v_cfgs) \
                    if opts.enable_uniqueness else UniquenessResult()
                blocks = blocks_of_program(vprog) \
                    if opts.enable_conditions else {}

            with self.tracer.span("analysis:lockset-windows"), \
                    prof.region("analysis.lockset_windows"):
                self.contexts: dict[str, VariantContext] = {}
                for variant in variant_set.variants:
                    cfg = v_cfgs[variant.name]
                    dom = Dominators(cfg)
                    windows = WindowIndex(cfg, dom, self._cas_root_ok)
                    if not opts.enable_windows:
                        windows.windows = []
                    ctx = VariantContext(
                        variant, cfg, escape_analysis(cfg),
                        lockset_analysis(cfg), dom, windows,
                        blocks.get(variant.name, []))
                    for diag in windows.diagnostics:
                        self.diagnostics.append(
                            f"{variant.name}: {diag.message}")
                    self.contexts[variant.name] = ctx

            with self.tracer.span("analysis:collect-sites"), \
                    prof.region("analysis.collect_sites"):
                self._collect_sites()
            with self.tracer.span("analysis:classify"), \
                    prof.region("analysis.classify"):
                self._classify_sites()
            with self.tracer.span("analysis:propagate-verdicts"), \
                    prof.region("analysis.propagate_verdicts"):
                verdicts = self._verdicts(variant_set)

        self._tally("analysis.variants", len(variant_set.variants))
        self._tally("analysis.sites",
                    sum(len(c.sites) for c in self.contexts.values()))
        self._tally("analysis.windows",
                    sum(len(c.windows.windows)
                        for c in self.contexts.values()))
        self._tally("analysis.condition_blocks",
                    sum(len(c.blocks) for c in self.contexts.values()))
        self.registry.merge_counts(self._counts)
        if prof.enabled:
            # per-theorem attribution, derived once from the tallies so
            # the hot paths pay nothing: direct applications (steps 1–2,
            # ``analysis.steps.thmX``) and adjacency exclusions
            # (``analysis.exclusions.thmX`` / ``.agreement``) both count
            # as deterministic work units on ``theorem.X``
            for key, n in self._counts.items():
                for marker in ("analysis.steps.thm",
                               "analysis.exclusions.thm"):
                    if key.startswith(marker):
                        prof.add("theorem." + key[len(marker):], n)
            agree = self._counts.get("analysis.exclusions.agreement", 0)
            prof.add("theorem.agreement", agree)
        return AnalysisResult(
            program=self.program, options=opts, purity=purity,
            variant_set=variant_set, verdicts=verdicts,
            contexts=self.contexts, uniqueness=self.unique,
            diagnostics=self.diagnostics,
            metrics=self.registry.snapshot(),
            trace=self.tracer.to_dict() if self.tracer.enabled else [],
            lint=self.lint, downgrades=self.downgrades,
            profile=prof.to_dict() if prof.enabled else {})

    # -- discipline queries ---------------------------------------------------
    def _versioned(self, target: Target) -> bool:
        if target.kind == "global" or target.binding is None:
            # plain global, or an element/field of an object named
            # directly by a global: use the global's declaration flag
            for decl in self.program.globals:
                if decl.name == target.name:
                    return decl.versioned
            return False
        if target.kind in ("field", "elem") and target.binding is not None:
            classes = self.env.of_binding(target.binding)
            if not classes:
                return False
            for cname in classes:
                cls = self._class_decl(cname)
                if cls is None or target.field not in cls.versioned_fields:
                    return False
            return True
        return False

    def _class_decl(self, name: str):
        for c in self.program.classes:
            if c.name == name:
                return c
        return None

    def _cas_root_ok(self, root: Target) -> bool:
        """CAS windows are built only for declared-versioned roots; the
        CAS-only-writes half of the discipline is re-checked lazily in
        :meth:`_window_valid` (sites do not exist yet at build time).
        Regions whose ABA discipline lint refuted get no windows."""
        if self._lint_vetoes(root, "5.4"):
            return False
        return self._versioned(root)

    # -- site collection --------------------------------------------------------
    def _collect_sites(self) -> None:
        for ctx in self.contexts.values():
            reachable = ctx.cfg.reachable_from(ctx.cfg.entry)
            for node in ctx.cfg.ordered(reachable):
                failing: list[A.Expr] = []
                if node.kind is NodeKind.STMT \
                        and isinstance(node.stmt, A.Assume):
                    failing = list(_failing_sync_exprs(node.stmt.cond))
                for action in node_actions(node):
                    if action.expr is not None and action.expr in failing \
                            and action.op == "write":
                        # an SC/CAS asserted to fail writes nothing
                        action = RawAction("read", action.target,
                                           via=action.via, expr=action.expr,
                                           node=node)
                    site = Site(ctx, node, action)
                    site.is_local = self._is_local(ctx, node, action)
                    ctx.sites.append(site)

    def _is_local(self, ctx: VariantContext, node: CFGNode,
                  action: RawAction) -> bool:
        if action.op == "alloc":
            return True
        t = action.target
        if t is None:
            return True
        if t.kind == "var":
            return True
        if t.kind in ("field", "elem"):
            if t.binding is None:
                return False
            if self.unique.is_unique(t.binding):
                return True
            return ctx.escape.is_fresh(node, t.binding)
        return False

    def _all_sites(self):
        for ctx in self.contexts.values():
            yield from ctx.sites

    # -- classification -------------------------------------------------------------
    def _sc_only(self, target: Target) -> bool:
        for site in self._all_sites():
            if site.action.op != "write" or site.is_local:
                continue
            if self.alias.may_alias(site.action.target, target) \
                    and site.action.via != "SC":
                return False
        return True

    def _cas_discipline(self, target: Target) -> bool:
        if not self._versioned(target):
            return False
        for site in self._all_sites():
            if site.action.op != "write" or site.is_local:
                continue
            if self.alias.may_alias(site.action.target, target) \
                    and site.action.via != "CAS":
                return False
        return True

    def _window_valid(self, w: Window) -> bool:
        theorem = "5.4" if w.kind == "CAS" else "5.3"
        if self._lint_vetoes(w.root, theorem):
            return False
        if w.kind == "CAS":
            return self._cas_discipline(w.root)
        return True

    def _step2_types(self, ctx: VariantContext) -> dict[tuple, tuple]:
        """(node uid, region, slot) -> (L/R, window kind) from
        Theorem 5.3 (SC/VL windows) and 5.4 (CAS windows), step 2."""
        out: dict[tuple, tuple] = {}
        for w in ctx.windows.windows:
            if w.kind in ("SC", "VL") and (
                    not self._sc_only(w.root)
                    or self._lint_vetoes(w.root, "5.3")):
                continue
            if w.kind == "CAS" and (
                    not self._cas_discipline(w.root)
                    or self._lint_vetoes(w.root, "5.4")):
                continue
            region = target_region(w.root)
            out[(w.end_node.uid, region, "end")] = (AT.L, w.kind)
            out[(w.ll_node.uid, region, "ll")] = (AT.R, w.kind)
        return out

    def _classify_sites(self) -> None:
        step2: dict[str, dict] = {
            name: self._step2_types(ctx)
            for name, ctx in self.contexts.items()}
        for ctx in self.contexts.values():
            for site in ctx.sites:
                site.atomicity = self._site_atomicity(site,
                                                      step2[ctx.name])
                self._tally(f"analysis.movers.{site.atomicity}")

    def _site_atomicity(self, site: Site, step2: dict) -> Atomicity:
        action = site.action
        if site.is_local or action.op == "alloc":
            self._tally("analysis.steps.thm3.1")
            site.steps.append("step1:local")
            site.provenance.append(justify(
                "step1", "local", mover="B",
                detail="allocation" if action.op == "alloc"
                else f"local action on {action.target}"))
            return AT.B
        if action.op == "acquire":
            self._tally("analysis.steps.thm3.2")
            site.steps.append("step1:acquire")
            site.provenance.append(justify(
                "step1", "acquire", mover="R",
                detail=f"lock acquire of {action.target}"))
            return AT.R
        if action.op == "release":
            self._tally("analysis.steps.thm3.2")
            site.steps.append("step1:release")
            site.provenance.append(justify(
                "step1", "release", mover="L",
                detail=f"lock release of {action.target}"))
            return AT.L
        region = target_region(action.target)
        candidates: list[Atomicity] = []
        if action.op == "write" and action.via in ("SC", "CAS"):
            hit = step2.get((site.node.uid, region, "end"))
            if hit is not None:
                t2, _kind = hit
                self._tally("analysis.steps.thm5.4" if _kind == "CAS"
                            else "analysis.steps.thm5.3")
                candidates.append(t2)
                site.steps.append("step2:successful-" + action.via)
                site.provenance.append(justify(
                    "step2", "successful-" + action.via, mover=str(t2),
                    detail=f"successful {action.via} on {action.target}"))
        if action.op == "read":
            if action.via in ("LL", "plain"):
                hit = step2.get((site.node.uid, region, "ll"))
                if hit is not None:
                    t2, kind = hit
                    self._tally("analysis.steps.thm5.4" if kind == "CAS"
                                else "analysis.steps.thm5.3")
                    candidates.append(t2)
                    site.steps.append("step2:matching-" + action.via)
                    rule = "matching-CAS-read" if kind == "CAS" \
                        else "matching-" + action.via
                    what = "successful CAS" if kind == "CAS" \
                        else f"successful {kind}"
                    site.provenance.append(justify(
                        "step2", rule, mover=str(t2),
                        detail=f"matching {action.via} of a {what} "
                               f"on {action.target}"))
            if action.via == "VL":
                hit = step2.get((site.node.uid, region, "end"))
                if hit is not None:
                    t2, _kind = hit
                    self._tally("analysis.steps.thm5.4" if _kind == "CAS"
                                else "analysis.steps.thm5.3")
                    candidates.append(t2)
                    site.steps.append("step2:successful-VL")
                    site.provenance.append(justify(
                        "step2", "successful-VL", mover=str(t2),
                        detail=f"successful VL on {action.target}"))
        mover, reasons = self._step4_mover(site)
        if mover is not None:
            candidates.append(mover)
            site.steps.append(f"step4:{mover}")
            sides = {AT.B: "no conflicting access can occur adjacently",
                     AT.L: "no conflicting access can occur "
                           "immediately before",
                     AT.R: "no conflicting access can occur "
                           "immediately after"}
            site.provenance.append(justify(
                "step4", "adjacency-exclusion", mover=str(mover),
                detail=sides[mover], counts=reasons))
        if not candidates:
            site.steps.append("step5:default-A")
            site.provenance.append(justify(
                "step5", "default", mover="A",
                detail=f"unclassified global action on {action.target}"))
            self._tally("analysis.movers.A-default")
            return AT.A
        out = candidates[0]
        for c in candidates[1:]:
            out = AT.meet(out, c)
        return out

    # -- step 4: mover computation ------------------------------------------------
    def _conflicts(self, site: Site) -> list[Site]:
        """Global actions of (potentially) other threads that conflict
        with this one (Theorem 3.3)."""
        a = site.action
        out = []
        for other in self._all_sites():
            b = other.action
            if other.is_local or b.op not in ("read", "write"):
                continue
            if a.op == "read" and b.op != "write":
                continue
            if b.target is None or a.target is None:
                continue
            if not self.alias.may_alias(a.target, b.target):
                continue
            out.append(other)
        return out

    def _step4_mover(self, site: Site
                     ) -> tuple[Atomicity | None, dict[str, int]]:
        """The step-3/4 mover for a global access, plus a tally of the
        theorems whose exclusions closed the successful side(s)."""
        if site.action.op not in ("read", "write"):
            return None, {}
        conflicts = self._conflicts(site)
        self._tally("analysis.conflict_pairs", len(conflicts))
        left_r: dict[str, int] = {}
        right_r: dict[str, int] = {}
        left = all(self._excluded(site, other, "before", left_r)
                   for other in conflicts)
        right = all(self._excluded(site, other, "after", right_r)
                    for other in conflicts)
        if left and right:
            merged = dict(left_r)
            for tag, n in right_r.items():
                merged[tag] = merged.get(tag, 0) + n
            return AT.B, merged
        if left:
            return AT.L, left_r
        if right:
            return AT.R, right_r
        return None, {}

    # -- the adjacency-exclusion engine ----------------------------------------------
    def _excluded(self, a: Site, b: Site, side: str,
                  reasons: dict[str, int] | None = None) -> bool:
        """Can action ``b`` (from another thread) be shown NOT to occur
        immediately ``side`` (before/after) action ``a``?

        When ``reasons`` is given and the exclusion succeeds, the tags
        of every rule that contributed a mark (``5.1``, ``5.3``,
        ``5.4``, ``5.5``, ``agreement``) are tallied into it — an
        aggregate attribution over the alias case split, not a minimal
        proof core (see :mod:`repro.obs.provenance`)."""
        opts = self.options
        self._unconditional = False
        self._fired: set[str] = set()
        pair_flags: dict[tuple, list[bool]] = {}

        def mark(pair: tuple, aliased: bool, tag: str | None = None
                 ) -> None:
            flags = pair_flags.setdefault(pair, [False, False])
            flags[0 if aliased else 1] = True
            if tag is not None:
                self._fired.add(tag)

        # conflict-pair case split: when the two locations are distinct
        # cells (heap cells via different bindings, or different elements
        # of a global array), the not-aliased branch removes the
        # conflict entirely.  ``_P0`` is the conflict pair itself.
        ta, tb = a.action.target, b.action.target
        conflict_must = ta.kind == "global" and tb.kind == "global" \
            and ta.name == tb.name
        self._conflict_regions = (target_region(ta), target_region(tb))
        if not conflict_must:
            mark(_P0, aliased=False)
            if ta.binding is not None and tb.binding is not None:
                mark((ta.binding, tb.binding), aliased=False)

        # Theorem 5.1: common lock
        if opts.enable_locks and common_lock(
                self.alias, a.ctx.lockset.held_at(a.node),
                b.ctx.lockset.held_at(b.node)):
            return self._conclude(True, {"5.1"}, reasons)

        if opts.enable_windows:
            self._window_rules(a, b, side, mark, pair_flags)
        if opts.enable_conditions:
            self._condition_rule(a, b, side, mark)
        if opts.enable_agreement and side == "after":
            self._agreement_rule(a, b, mark)

        if any(pair is not _P0 for pair in pair_flags):
            self._tally("analysis.case_splits")
        excluded = self._unconditional or any(
            flags[0] and flags[1] for flags in pair_flags.values())
        return self._conclude(excluded, self._fired, reasons)

    def _conclude(self, excluded: bool, fired: set[str],
                  reasons: dict[str, int] | None) -> bool:
        if excluded:
            for tag in fired:
                self._tally(f"analysis.exclusions.thm{tag}"
                            if tag[0].isdigit()
                            else f"analysis.exclusions.{tag}")
                if reasons is not None:
                    reasons[tag] = reasons.get(tag, 0) + 1
        return excluded

    def _window_rules(self, a: Site, b: Site, side: str, mark,
                      pair_flags) -> None:
        """Theorems 5.3 (W1) and 5.4 (W2)."""
        for w in a.ctx.windows.windows_protecting(a.node, side):
            if not self._window_valid(w):
                continue
            family = ("SC",) if w.kind in ("SC", "VL") else ("CAS",)
            tag = "5.3" if family == ("SC",) else "5.4"
            # W1: a successful SC on v cannot occur inside the window
            if b.action.op == "write" and b.action.via in family:
                self._mark_alias(w.root, b.action.target, a, b, mark,
                                 a_side_target=w.root, tag=tag)
            # W2: nothing from a competing SC-block on v can occur inside
            for wb in b.ctx.windows.sc_block_memberships(b.node):
                if not self._window_valid(wb):
                    continue
                if wb.kind not in family:
                    continue
                self._mark_alias(w.root, wb.root, a, b, mark,
                                 a_side_target=w.root,
                                 b_side_target=wb.root, tag=tag)
        # symmetric: b protected in its own window against a
        flip = "after" if side == "before" else "before"
        for wb in b.ctx.windows.windows_protecting(b.node, flip):
            if not self._window_valid(wb):
                continue
            family = ("SC",) if wb.kind in ("SC", "VL") else ("CAS",)
            tag = "5.3" if family == ("SC",) else "5.4"
            if a.action.op == "write" and a.action.via in family:
                self._mark_alias(wb.root, a.action.target, a, b, mark,
                                 b_side_target=wb.root,
                                 swap=True, tag=tag)
            for wa in a.ctx.windows.sc_block_memberships(a.node):
                if not self._window_valid(wa) or wa.kind not in family:
                    continue
                self._mark_alias(wb.root, wa.root, a, b, mark,
                                 a_side_target=wa.root,
                                 b_side_target=wb.root, tag=tag)

    _unconditional = False

    def _mark_alias(self, v: Target, u: Target, a: Site, b: Site, mark,
                    a_side_target: Target | None = None,
                    b_side_target: Target | None = None,
                    swap: bool = False,
                    tag: str | None = None) -> None:
        """Record an exclusion that holds when u and v denote the same
        cell: unconditional for same-named globals; an aliased-case mark
        on the (a-side binding, b-side binding) pair for heap cells; and
        an aliased-case mark on the conflict pair itself when the rule
        pair covers the conflicting locations' regions (then "not
        aliased" already means "no conflict").  ``tag`` names the
        theorem the mark came from, for provenance."""
        if v.kind == "global" and u.kind == "global":
            if v.name == u.name:
                self._unconditional = True
                if tag is not None:
                    self._fired.add(tag)
            return
        if v.kind != u.kind or v.field != u.field:
            return
        if not self.alias.may_alias(v, u):
            return
        a_target = a_side_target if a_side_target is not None \
            else (u if swap else v)
        b_target = b_side_target if b_side_target is not None \
            else (v if swap else u)
        if a_target.binding is not None and b_target.binding is not None:
            mark((a_target.binding, b_target.binding), aliased=True,
                 tag=tag)
        regions = getattr(self, "_conflict_regions", None)
        if regions is not None \
                and target_region(a_target) == regions[0] \
                and target_region(b_target) == regions[1]:
            mark(_P0, aliased=True, tag=tag)

    def _condition_rule(self, a: Site, b: Site, side: str, mark) -> None:
        """Theorem 5.5: an LL-SC block with condition p and a local block
        with condition implying !p on the same variable exclude each
        other's transitions."""
        for first, second, fside in ((a, b, side),
                                     (b, a,
                                      "after" if side == "before"
                                      else "before")):
            # first inside the LL-SC block, second inside the local block
            for b1 in first.ctx.blocks:
                if b1.kind != "llsc" \
                        or not first.ctx.node_in_block(b1, first.node):
                    continue
                if not self._sc_only(b1.svar):
                    continue
                if not self._uniform_condition(b1):
                    continue
                for b2 in second.ctx.blocks:
                    if not second.ctx.node_in_block(b2, second.node):
                        continue
                    if b2 is b1 and first.ctx is second.ctx:
                        continue
                    if not self.alias.may_alias(b1.svar, b2.svar):
                        continue
                    if not condition_excludes(b2.condition, b1.condition):
                        continue
                    inside = (
                        first.ctx.adjacency_inside_block(
                            b1, first.node, fside)
                        or second.ctx.adjacency_inside_block(
                            b2, second.node,
                            "after" if fside == "before" else "before"))
                    if not inside:
                        continue
                    if b1.svar.kind == "global" \
                            and b2.svar.kind == "global":
                        if b1.svar.name == b2.svar.name:
                            self._unconditional = True
                            self._fired.add("5.5")
                        continue
                    a_svar = b1.svar if first is a else b2.svar
                    b_svar = b2.svar if first is a else b1.svar
                    if a_svar.binding is not None \
                            and b_svar.binding is not None:
                        mark((a_svar.binding, b_svar.binding),
                             aliased=True, tag="5.5")
                    regions = getattr(self, "_conflict_regions", None)
                    if regions is not None \
                            and target_region(a_svar) == regions[0] \
                            and target_region(b_svar) == regions[1]:
                        mark(_P0, aliased=True, tag="5.5")

    def _uniform_condition(self, b1: BlockInfo) -> bool:
        """All LL-SC blocks on (aliases of) b1.svar share one condition."""
        for ctx in self.contexts.values():
            for other in ctx.blocks:
                if other.kind != "llsc":
                    continue
                if not self.alias.may_alias(other.svar, b1.svar):
                    continue
                if other.condition != b1.condition:
                    return False
        return True

    def _agreement_rule(self, a: Site, b: Site, mark) -> None:
        """LL-agreement: if ``a`` sits in a window on global ``v`` and a
        successful SC(v) of another thread lands immediately after it,
        the two windows on ``v`` overlap, so both threads read the same
        value of ``v`` — their LL bindings must alias.  This closes the
        not-aliased branch of case splits whose pair bindings are the
        two windows' LL bindings (the paper's reasoning for a6)."""
        if b.action.op != "write" or b.action.via not in ("SC", "CAS"):
            return
        # b must be a successful SC: the end of one of its own windows
        b_windows = [w for w in b.ctx.windows.windows
                     if w.end_node is b.node and self._window_valid(w)]
        for w in a.ctx.windows.windows_containing(a.node):
            if not self._window_valid(w):
                continue
            if w.root.kind != "global":
                continue
            for wb in b_windows:
                if wb.root.kind != "global" \
                        or wb.root.name != w.root.name:
                    continue
                if w.ll_binding is None or wb.ll_binding is None:
                    continue
                mark((w.ll_binding, wb.ll_binding), aliased=False,
                     tag="agreement")

    # -- steps 6/7: propagation and verdicts --------------------------------------------
    def _node_atom(self, ctx: VariantContext, node: CFGNode) -> Atomicity:
        atoms = [s.atomicity for s in ctx.sites if s.node is node]
        return AT.seq_all(atoms)

    def stmt_atomicity(self, ctx: VariantContext, s: A.Stmt) -> Atomicity:
        nodes = ctx.stmt_nodes.get(s.nid, [])
        if isinstance(s, A.Block):
            return AT.seq_all([self.stmt_atomicity(ctx, x)
                               for x in s.stmts])
        if isinstance(s, A.LocalDecl):
            bind = [n for n in nodes if n.kind is NodeKind.BIND]
            head = self._node_atom(ctx, bind[0]) if bind else AT.B
            return AT.seq(head, self.stmt_atomicity(ctx, s.body))
        if isinstance(s, A.If):
            branch = [n for n in nodes if n.kind is NodeKind.BRANCH]
            cond = self._node_atom(ctx, branch[0]) if branch else AT.B
            then = self.stmt_atomicity(ctx, s.then)
            els = self.stmt_atomicity(ctx, s.els) \
                if s.els is not None else AT.B
            return AT.seq(cond, AT.join(then, els))
        if isinstance(s, A.Loop):
            return AT.iter_closure(self.stmt_atomicity(ctx, s.body))
        if isinstance(s, A.Synchronized):
            acq = [n for n in nodes if n.kind is NodeKind.ACQUIRE]
            rel = [n for n in nodes if n.kind is NodeKind.RELEASE]
            inner = self.stmt_atomicity(ctx, s.body)
            head = self._node_atom(ctx, acq[0]) if acq else AT.R
            tail = self._node_atom(ctx, rel[0]) if rel else AT.L
            return AT.seq(AT.seq(head, inner), tail)
        # simple statements: compose their node actions
        return AT.seq_all([self._node_atom(ctx, n) for n in nodes])

    def _variant_read_only(self, ctx: VariantContext) -> bool:
        from repro.analysis.purity import binding_kinds

        kinds = binding_kinds(ctx.variant.proc)
        for site in ctx.sites:
            if site.action.op != "write":
                continue
            t = site.action.target
            if t is not None and t.kind == "var":
                kind = kinds.get(t.binding)
                if kind in (A.VarKind.LOCAL, A.VarKind.PARAM):
                    continue  # procedure-local scratch
                return False  # thread-local update persists
            if not site.is_local:
                return False  # visible global/heap write
            # heap write through a unique reference persists across the
            # invocation (e.g. prv.data): not read-only
            if t is not None and t.kind in ("field", "elem") \
                    and self.unique.is_unique(t.binding):
                return False
        return True

    def _verdicts(self, variant_set: VariantSet) -> dict[str, ProcVerdict]:
        verdicts: dict[str, ProcVerdict] = {}
        for proc in self.program.procs:
            reports = []
            for variant in variant_set.of(proc.name):
                ctx = self.contexts[variant.name]
                stmt_atoms: dict[int, Atomicity] = {}
                for node in variant.proc.body.walk():
                    if isinstance(node, A.Stmt):
                        stmt_atoms[node.nid] = self.stmt_atomicity(
                            ctx, node)
                body = self.stmt_atomicity(ctx, variant.proc.body)
                reports.append(VariantReport(
                    variant, ctx, body, stmt_atoms,
                    read_only=self._variant_read_only(ctx)))
            atomic = all(AT.is_atomic(r.body_atomicity)
                         for r in reports if not r.read_only)
            verdicts[proc.name] = ProcVerdict(proc.name, atomic, reports)
        return verdicts


def analyze_program(source: A.Program | str,
                    options: InferenceOptions | None = None,
                    tracer=None,
                    metrics: MetricsRegistry | None = None,
                    profiler: Profiler | None = None,
                    source_text: str | None = None
                    ) -> AnalysisResult:
    """Convenience entry point: run the full inference."""
    return AtomicityChecker(source, options, tracer=tracer,
                            metrics=metrics, profiler=profiler,
                            source_text=source_text).run()
