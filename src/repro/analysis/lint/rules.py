"""LL/SC/VL well-formedness, ABA-discipline, and working-copy rules.

Each checker walks the per-procedure CFGs of the original program (the
linter runs *before* variant generation — diagnostics point at source
the user wrote, not at synthesized exceptional variants) and reports
through :meth:`~repro.analysis.lint.core.LintContext.report`.
"""

from __future__ import annotations

from repro.analysis.actions import node_actions
from repro.analysis.lint.core import (LintContext, Severity, checker,
                                      declare, pretty_target, region_key)
from repro.analysis.matching import matching_lls_search, matching_reads
from repro.analysis.purity import target_region
from repro.cfg.graph import CFGNode, ProcCFG
from repro.synl import ast as A

# -- rule declarations ---------------------------------------------------------

declare(
    "llsc.multi-ll", Severity.ERROR,
    "an SC/VL has more than one matching LL",
    theorem="§5.2 / Thm 5.3",
    fix="restructure the retry loop so every path to the SC/VL passes "
        "through a single LL on the region")
declare(
    "llsc.no-ll", Severity.WARNING,
    "an SC/VL has no matching LL and can never succeed",
    theorem="§5.2")
declare(
    "llsc.ll-gap", Severity.WARNING,
    "the matching-LL search escapes the procedure entry",
    theorem="§5.2",
    fix="ensure an LL on the region dominates the SC/VL")
declare(
    "llsc.nested-ll", Severity.ERROR,
    "an LL may execute while an earlier LL reservation on the same "
    "region is still pending",
    theorem="§5.2 / Thm 5.3",
    fix="conclude the first reservation with an SC before "
        "re-reserving, or restructure into a single LL per iteration")
declare(
    "llsc.plain-read", Severity.WARNING,
    "a plain read of an LL/SC-managed region inside a procedure that "
    "also holds reservations on it (stale-read hazard)",
    theorem="§3.1",
    fix="read the region through LL so the subsequent SC validates it")
declare(
    "llsc.plain-write", Severity.ERROR,
    "a plain write to an LL/SC-managed region (breaks the SC-only "
    "update discipline Thm 5.3 relies on)",
    theorem="Thm 5.3",
    fix="route the update through SC")
declare(
    "aba.unversioned-cas", Severity.ERROR,
    "a CAS with a matching read targets a region with no modification "
    "counter — an ABA reuse of the expected value makes the CAS "
    "succeed on stale state",
    theorem="§5.2 / Thm 5.4")
declare(
    "aba.cas-no-read", Severity.INFO,
    "a CAS has no matching read; this is legal (§5.2) but no "
    "Theorem 5.4 window will justify movers around it",
    theorem="§5.2")
declare(
    "aba.multi-read", Severity.WARNING,
    "a CAS has more than one matching read (the analysis assumes "
    "exactly one)",
    theorem="§5.2 / Thm 5.4")
declare(
    "aba.plain-write-versioned", Severity.ERROR,
    "a non-CAS write to a versioned region bypasses the modification "
    "counter discipline",
    theorem="Thm 5.4",
    fix="route every shared update of a versioned region through CAS")
declare(
    "unique.escape", Severity.WARNING,
    "a working copy escapes: it is consumed outside the SC that "
    "publishes it, so the uniqueness idiom (§4) cannot certify it",
    theorem="§4",
    fix="only publish the working copy through SC(g, u) and do not "
        "use it afterwards")
declare(
    "unique.broken-swap", Severity.WARNING,
    "a thread-local working copy does not follow the swap idiom "
    "(§4), so its dereferences are treated as shared accesses",
    theorem="§4")


# -- helpers -------------------------------------------------------------------

def _has_sc_on(node: CFGNode, region: tuple) -> bool:
    return any(a.via == "SC" and target_region(a.target) == region
               for a in node_actions(node))


def _has_ll_on(node: CFGNode, region: tuple) -> bool:
    return any(a.via == "LL" and a.op == "read"
               and target_region(a.target) == region
               for a in node_actions(node))


def _live_outer_lls(cfg: ProcCFG, start: CFGNode,
                    region: tuple) -> set[CFGNode]:
    """LL nodes on ``region`` backward-reachable from ``start``
    without crossing an SC on the region (whose execution would have
    concluded the earlier reservation).  ``start`` itself reached
    around a loop does not count — re-executing the same LL is the
    ordinary retry idiom."""
    matches: set[CFGNode] = set()
    seen: set[CFGNode] = {start}
    stack: list[CFGNode] = [start]
    while stack:
        node = stack.pop()
        for prev in cfg.predecessors(node):
            if prev in seen:
                continue
            seen.add(prev)
            if _has_sc_on(prev, region):
                continue  # reservation concluded before reaching start
            if _has_ll_on(prev, region):
                matches.add(prev)
                continue
            stack.append(prev)
    return matches


# -- (a) LL/SC/VL well-formedness ---------------------------------------------

@checker
def llsc_wellformedness(ctx: LintContext) -> None:
    for proc, cfg, node, action in ctx.actions():
        if action.via in ("SC", "VL"):
            label = f"{action.via}({pretty_target(action.target)})"
            search = matching_lls_search(cfg, node, action.target)
            count = len(search.matches)
            if count > 1:
                ctx.report(
                    "llsc.multi-ll",
                    f"{label} has {count} matching LLs; §5.2 assumes "
                    f"exactly one, so Thm 5.3/5.4 windows cannot be "
                    f"formed here",
                    proc=proc, node=node, target=action.target)
            elif count == 0:
                ctx.report(
                    "llsc.no-ll",
                    f"{label} has no matching LL on any path and can "
                    f"never succeed",
                    proc=proc, node=node, target=action.target)
            if count and search.reaches_entry:
                ctx.report(
                    "llsc.ll-gap",
                    f"the matching-LL search for {label} escapes the "
                    f"procedure entry: some path reaches this "
                    f"{action.via} without holding a reservation",
                    proc=proc, node=node, target=action.target)
        elif action.via == "LL":
            region = target_region(action.target)
            outer = _live_outer_lls(cfg, node, region)
            if outer:
                label = f"LL({pretty_target(action.target)})"
                ctx.report(
                    "llsc.nested-ll",
                    f"{label} may execute while an earlier LL on the "
                    f"same region is still pending ({len(outer)} "
                    f"reachable reservation site(s) with no "
                    f"intervening SC)",
                    proc=proc, node=node, target=action.target)


@checker
def llsc_plain_access(ctx: LintContext) -> None:
    if not ctx.llsc_regions:
        return
    for proc, cfg, node, action in ctx.actions():
        if action.via != "plain" or action.op not in ("read", "write"):
            continue
        target = action.target
        if target is None or target.kind == "var":
            continue
        key = region_key(target)
        if key not in ctx.llsc_regions:
            continue
        if ctx.is_private(proc, node, target):
            continue
        label = pretty_target(target)
        if action.op == "write":
            ctx.report(
                "llsc.plain-write",
                f"plain write to {label}, a region otherwise updated "
                f"through SC — the SC-only discipline of Thm 5.3 is "
                f"broken",
                proc=proc, node=node, target=target)
        else:
            if isinstance(node.stmt, A.AssertStmt):
                continue  # specification reads are deliberate
            if key not in ctx.proc_llsc_regions.get(proc, set()):
                continue  # read-only consumer procedure: plain reads ok
            if (proc, node) in ctx.cas_read_nodes():
                continue  # the CAS idiom's matching read
            ctx.report(
                "llsc.plain-read",
                f"plain read of {label} in a procedure that also "
                f"takes LL reservations on it — the value is not "
                f"validated by any SC and may be stale",
                proc=proc, node=node, target=target)


# -- (b) ABA discipline --------------------------------------------------------

def _versioned_fix(target) -> str:
    if target.kind == "global" or target.binding is None:
        return f"declare the global as `global versioned {target.name};`"
    return (f"declare the field as `versioned {target.field};` in its "
            f"class")


@checker
def aba_discipline(ctx: LintContext) -> None:
    for proc, cfg, node, action in ctx.actions():
        if action.via != "CAS" or action.op != "write":
            continue
        target = action.target
        assert isinstance(action.expr, A.CASExpr)
        reads = matching_reads(cfg, node, action.expr)
        label = f"CAS({pretty_target(target)}, ...)"
        if not reads:
            ctx.report(
                "aba.cas-no-read",
                f"{label} has no matching read (expected value is not "
                f"bound from a read of the region); legal per §5.2, "
                f"but no Thm 5.4 window protects it",
                proc=proc, node=node, target=target)
        elif not ctx.versioned(target):
            ctx.report(
                "aba.unversioned-cas",
                f"{label} compares a previously-read value but "
                f"{pretty_target(target)} carries no modification "
                f"counter: if the value is recycled (freed and "
                f"reallocated) the CAS succeeds on stale state (ABA)",
                proc=proc, node=node, target=target,
                fix=_versioned_fix(target))
        if len(reads) > 1:
            ctx.report(
                "aba.multi-read",
                f"{label} has {len(reads)} matching reads; the "
                f"analysis assumes exactly one",
                proc=proc, node=node, target=target)


@checker
def aba_counter_bypass(ctx: LintContext) -> None:
    for proc, cfg, node, action in ctx.actions():
        if action.op != "write" or action.via == "CAS":
            continue
        target = action.target
        if target is None or target.kind == "var":
            continue
        if not ctx.versioned(target):
            continue
        if ctx.is_private(proc, node, target):
            continue
        via = "SC" if action.via == "SC" else "plain"
        ctx.report(
            "aba.plain-write-versioned",
            f"{via} write to versioned region "
            f"{pretty_target(target)} bypasses the CAS modification "
            f"discipline; competing CAS windows (Thm 5.4) assume all "
            f"updates bump the counter via CAS",
            proc=proc, node=node, target=target)


# -- (c) uniqueness / working copies ------------------------------------------

def _dereferenced_threadlocals(program: A.Program) -> set[str]:
    """Thread-local names whose object is actually dereferenced
    (a Field/Index through the variable) somewhere in procedure code
    — scalars never certified by the idiom are not worth flagging."""
    out: set[str] = set()
    for proc in program.procs:
        for node in proc.walk():
            base = None
            if isinstance(node, A.Field):
                base = node.base
            elif isinstance(node, A.Index):
                base = node.base
                if isinstance(base, A.Field):
                    base = base.base
            if isinstance(base, A.Var) \
                    and base.kind is A.VarKind.THREADLOCAL:
                out.add(base.name)
    return out


def _threadlocal_span(ctx: LintContext, name: str):
    """Anchor uniqueness findings at the first procedure-code use of
    the thread-local."""
    for proc in ctx.program.procs:
        for node in proc.walk():
            if isinstance(node, A.Var) and node.name == name \
                    and node.kind is A.VarKind.THREADLOCAL \
                    and node.pos is not None:
                return proc.name, node
    return None, None


@checker
def uniqueness_rules(ctx: LintContext) -> None:
    used = _dereferenced_threadlocals(ctx.program)
    for name, reason in sorted(ctx.uniqueness.rejected.items()):
        if reason in ("never used", "no swap root"):
            continue  # nothing resembling the idiom — not a hazard
        if name not in used:
            continue  # scalar thread-local; uniqueness is irrelevant
        proc, node = _threadlocal_span(ctx, name)
        if reason == "consumed outside SC(g, u)":
            ctx.report(
                "unique.escape",
                f"working copy {name} escapes: {reason} — after the "
                f"swap publishes it, other threads may hold the same "
                f"object",
                proc=proc, node=node)
        else:
            ctx.report(
                "unique.broken-swap",
                f"thread-local {name} is swapped into shared state "
                f"but the working-copy idiom cannot be certified: "
                f"{reason}",
                proc=proc, node=node)
