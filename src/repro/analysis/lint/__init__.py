"""Rule-based static diagnostics over SYNL programs (see
docs/LINT.md for the rule catalog).

Public surface: :func:`lint_program` plus the result/diagnostic
types; the rule registry ``RULES`` is importable for docs and tests.
"""

from repro.analysis.lint.core import (CHECKERS, LINT_VERSION, RULES,
                                      Diagnostic, LintContext,
                                      LintResult, Rule, Severity, Span,
                                      lint_program, region_key)
from repro.analysis.lint import race, rules  # noqa: F401  (register rules)

__all__ = [
    "CHECKERS",
    "Diagnostic",
    "LINT_VERSION",
    "LintContext",
    "LintResult",
    "RULES",
    "Rule",
    "Severity",
    "Span",
    "lint_program",
    "region_key",
]
