"""Lockset-style static race pass over non-LL/SC shared accesses.

Eraser's discipline, statically: every shared region outside the
LL/SC/VL/CAS regime must have a *common lock* held at all of its
accesses (``analysis.locks`` supplies the must-held locksets,
``analysis.escape`` and ``analysis.uniqueness`` exempt provably
thread-private data).  Regions with any synchronized access are the
business of the llsc/aba families, not this pass; regions written
only during ``init``/``threadinit`` never reach it because the
linter only scans procedure CFGs.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.lint.core import (LintContext, Severity, checker,
                                      declare, region_key, region_label)
from repro.cfg.graph import CFGNode, NodeKind
from repro.synl import ast as A

declare(
    "race.unlocked", Severity.ERROR,
    "a shared region outside the LL/SC regime is written with no "
    "common lock across its accesses",
    theorem="§5.4 (lock-based movers)",
    fix="guard every access with a common synchronized lock, or "
        "route updates through LL/SC or a versioned CAS")


@checker
def race_pass(ctx: LintContext) -> None:
    # lock regions (acquire targets) read/written as part of locking
    lock_keys = {region_key(a.target)
                 for _p, _c, _n, a in ctx.actions()
                 if a.op == "acquire" and a.target is not None}
    sync_keys = ctx.llsc_regions | ctx.cas_regions

    accesses: list[tuple[str, CFGNode, str, object]] = []
    for proc, cfg, node, action in ctx.actions():
        if node.kind in (NodeKind.ACQUIRE, NodeKind.RELEASE):
            continue
        if isinstance(node.stmt, A.AssertStmt):
            continue  # specification-only reads
        if action.op not in ("read", "write") or action.via != "plain":
            continue
        target = action.target
        if target is None or target.kind == "var":
            continue
        key = region_key(target)
        if key in sync_keys or key in lock_keys:
            continue
        if ctx.is_private(proc, node, target):
            continue
        accesses.append((proc, node, action.op, target))

    # group accesses by may-alias on their targets (greedy, with a
    # representative per group — may_alias is symmetric and, at the
    # class-set granularity the corpus uses, effectively transitive)
    groups: list[tuple[object, list[tuple[str, CFGNode, str, object]]]] = []
    for acc in accesses:
        target = acc[3]
        for rep, members in groups:
            if ctx.alias.may_alias(rep, target):
                members.append(acc)
                break
        else:
            groups.append((target, [acc]))

    for rep, members in groups:
        writes = [m for m in members if m[2] == "write"]
        if not writes:
            continue  # read-only regions race benignly
        candidate: Optional[list] = None
        for proc, node, _op, _target in members:
            held = ctx.locks[proc].held_at(node)
            if candidate is None:
                candidate = list(held)
            else:
                candidate = [l for l in candidate
                             if any(ctx.alias.must_alias(l, h)
                                    for h in held)]
            if not candidate:
                break
        if candidate:
            continue  # a common lock protects the region
        anchor_proc, anchor_node, _op, anchor_target = min(
            writes, key=lambda m: (m[0], m[1].stmt.pos.line
                                   if m[1].stmt is not None
                                   and m[1].stmt.pos is not None
                                   else 0))
        procs = sorted({m[0] for m in members})
        ctx.report(
            "race.unlocked",
            f"shared region {region_label(anchor_target)} is written "
            f"with no common lock and no LL/SC/CAS discipline "
            f"({len(members)} access(es), {len(writes)} write(s) "
            f"across {', '.join(procs)})",
            proc=anchor_proc, node=anchor_node, target=anchor_target)
