"""Core of the discipline linter: rule registry, diagnostics,
suppressions, and the shared analysis context.

The linter checks the *side conditions* the mover theorems of the
paper assume rather than verify: unique matching LLs per SC/VL
(§5.2), the modification-counter ABA discipline behind the CAS
windows of Theorem 5.4, the working-copy uniqueness idiom (§4), and
— for shared data outside the LL/SC regime — a lockset-style race
pass in the style of Eraser.  Rules are registered by
:mod:`repro.analysis.lint.rules` and :mod:`repro.analysis.lint.race`;
:func:`lint_program` runs every registered checker over one program
and returns a :class:`LintResult`.

Findings can be suppressed in source with a trailing or preceding
comment ``// lint: ignore[rule.id]``.  The bracket list is
comma-separated; an entry matches a finding when it equals the rule
id, equals its family prefix (``llsc`` matches ``llsc.multi-ll``),
or is ``*``.  A directive applies to findings on its own line and on
the following line, so a comment-only line above a statement works.
Suppressed findings are retained separately (they still appear in
``--json`` output under ``suppressed``).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field as dc_field
from typing import Callable, Iterator, Optional, Union

from repro.analysis.actions import RawAction, Target, node_actions
from repro.analysis.alias import AliasAnalysis
from repro.analysis.escape import EscapeResult, escape_analysis
from repro.analysis.locks import LocksetResult, lockset_analysis
from repro.analysis.matching import matching_reads
from repro.analysis.typing import ClassEnv, infer_classes
from repro.analysis.uniqueness import UniquenessResult, uniqueness_analysis
from repro.cfg.builder import build_cfg
from repro.cfg.graph import CFGNode, NodeKind, ProcCFG
from repro.synl import ast as A
from repro.synl.resolve import load_program

#: version of the JSON shape produced by :meth:`LintResult.to_dict`
#: (mirrored by ``repro.obs.export.LINT_SCHEMA``)
LINT_VERSION = 1


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering is by increasing gravity so
    results sort errors first with ``-severity``."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Span:
    """1-based source span (0 = unknown).  ``end_*`` is the start of
    the last positioned node in the subtree — an anchor, not a
    precise closing column."""

    line: int = 0
    col: int = 0
    end_line: int = 0
    end_col: int = 0

    @classmethod
    def of(cls, node: Union[A.Node, CFGNode, None]) -> "Span":
        if node is None:
            return cls()
        ast = node.stmt if isinstance(node, CFGNode) else node
        if ast is None:
            return cls()
        start, end = ast.span()
        if start is None:
            return cls()
        assert end is not None
        return cls(start.line, start.col, end.line, end.col)

    def __str__(self) -> str:
        return f"{self.line}:{self.col}" if self.line else "?"


@dataclass
class Diagnostic:
    """One lint finding.  ``region_key`` is the machine-readable
    region identity (see :func:`region_key`) used by the inference
    integration to downgrade theorem applications."""

    rule: str
    severity: Severity
    message: str
    proc: Optional[str] = None
    span: Span = dc_field(default_factory=Span)
    fix: Optional[str] = None
    region: Optional[str] = None
    region_key: Optional[tuple] = None

    def to_dict(self) -> dict:
        out: dict = {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "line": self.span.line,
            "col": self.span.col,
            "end_line": self.span.end_line,
            "end_col": self.span.end_col,
        }
        if self.proc is not None:
            out["proc"] = self.proc
        if self.fix is not None:
            out["fix"] = self.fix
        if self.region is not None:
            out["region"] = self.region
        return out

    def render(self) -> str:
        where = self.proc or "<program>"
        if self.span.line:
            where += f":{self.span}"
        text = f"{self.severity}[{self.rule}] {where}: {self.message}"
        if self.fix:
            text += f"\n    fix: {self.fix}"
        return text


@dataclass(frozen=True)
class Rule:
    """Registered rule metadata (the check logic lives in checker
    functions, several of which may emit several rule ids)."""

    id: str
    severity: Severity
    summary: str
    theorem: Optional[str] = None  # paper citation, e.g. "Thm 5.4"
    fix: Optional[str] = None      # default fix hint


RULES: dict[str, Rule] = {}
CHECKERS: list[Callable[["LintContext"], None]] = []


def declare(rule_id: str, severity: Severity, summary: str, *,
            theorem: Optional[str] = None,
            fix: Optional[str] = None) -> None:
    if rule_id in RULES:
        raise ValueError(f"duplicate lint rule id {rule_id!r}")
    RULES[rule_id] = Rule(rule_id, severity, summary, theorem, fix)


def checker(fn: Callable[["LintContext"], None]):
    """Register a checker pass; it receives the :class:`LintContext`
    and reports findings through :meth:`LintContext.report`."""
    CHECKERS.append(fn)
    return fn


# -- region identity -----------------------------------------------------------

def region_key(target: Target) -> Optional[tuple]:
    """Cross-procedure region identity for a target.  Binding-based
    heap regions collapse to ``(kind, field)`` — coarser than
    ``purity.target_region`` (which is per-binding) so keys survive
    variant renumbering; global-rooted regions mirror its naming."""
    if target.kind == "global":
        return ("global", target.name)
    if target.kind == "var":
        return None  # thread-private storage has no shared region
    if target.binding is None:
        suffix = "[]" if target.kind == "elem" else ""
        name = target.name
        if target.field is not None:
            name += f".{target.field}"
        return ("global", f"{name}{suffix}")
    return ("heap", target.kind, target.field)


def pretty_target(target: Target) -> str:
    """Human-readable label for a target, e.g. ``Top`` or
    ``t.ANext``."""
    if target.kind in ("global", "var"):
        return target.name
    label = target.name
    if target.field is not None:
        label += f".{target.field}"
    if target.kind == "elem":
        label += "[...]"
    return label


def region_label(target: Target) -> str:
    """Human-readable label for the *region* of a target: globals by
    name, heap regions by field (class-agnostic, matching the
    granularity of :func:`region_key`)."""
    key = region_key(target)
    if key is None:
        return target.name
    if key[0] == "global":
        return key[1]
    _, kind, fld = key
    return f"*.{fld}" + ("[]" if kind == "elem" else "")


# -- analysis context ----------------------------------------------------------

class LintContext:
    """Shared per-program analyses plus the findings accumulator."""

    def __init__(self, program: A.Program,
                 source_text: Optional[str] = None):
        self.program = program
        self.source = source_text
        self.cfgs: dict[str, ProcCFG] = {
            p.name: build_cfg(p) for p in program.procs}
        self.escape: dict[str, EscapeResult] = {
            n: escape_analysis(c) for n, c in self.cfgs.items()}
        self.locks: dict[str, LocksetResult] = {
            n: lockset_analysis(c) for n, c in self.cfgs.items()}
        self.uniqueness: UniquenessResult = uniqueness_analysis(
            program, self.cfgs)
        self.env: ClassEnv = infer_classes(program)
        self.alias = AliasAnalysis(program, self.env)
        self.findings: list[Diagnostic] = []
        self._actions: dict[str, list[tuple[CFGNode, RawAction]]] = {
            name: [(node, a) for node in cfg.nodes
                   for a in node_actions(node)]
            for name, cfg in self.cfgs.items()}
        # region indices over procedure code (init/threadinit excluded:
        # they run before/at thread start, outside the concurrent phase)
        self.llsc_regions: set[tuple] = set()
        self.cas_regions: set[tuple] = set()
        self.proc_llsc_regions: dict[str, set[tuple]] = {}
        for name, _cfg, _node, action in self.actions():
            if action.target is None:
                continue
            key = region_key(action.target)
            if key is None:
                continue
            if action.via in ("LL", "SC", "VL"):
                self.llsc_regions.add(key)
                self.proc_llsc_regions.setdefault(name, set()).add(key)
            elif action.via == "CAS":
                self.cas_regions.add(key)
        self._cas_read_nodes: Optional[set[tuple[str, CFGNode]]] = None

    def actions(self) -> Iterator[
            tuple[str, ProcCFG, CFGNode, RawAction]]:
        for name, pairs in self._actions.items():
            cfg = self.cfgs[name]
            for node, action in pairs:
                yield name, cfg, node, action

    def versioned(self, target: Target) -> bool:
        """Mirror of the inference engine's discipline query: is the
        region of ``target`` covered by a modification counter?"""
        if target.kind == "global" or target.binding is None:
            for decl in self.program.globals:
                if decl.name == target.name:
                    return decl.versioned
            return False
        if target.kind in ("field", "elem"):
            classes = self.env.of_binding(target.binding)
            if not classes:
                return False
            for cname in classes:
                cls = self.program.class_decl(cname)
                if cls is None or target.field not in cls.versioned_fields:
                    return False
            return True
        return False

    def is_private(self, proc: str, node: CFGNode,
                   target: Target) -> bool:
        """Is the access through a binding the analyses certify as
        thread-private at this point (fresh or working-copy unique)?"""
        if target.binding is None:
            return False
        if self.uniqueness.is_unique(target.binding):
            return True
        return self.escape[proc].is_fresh(node, target.binding)

    def cas_read_nodes(self) -> set[tuple[str, CFGNode]]:
        """(proc, node) pairs acting as the matching read of some CAS
        — exempt from plain-access rules (the read *is* the idiom)."""
        if self._cas_read_nodes is None:
            out: set[tuple[str, CFGNode]] = set()
            for name, cfg, node, action in self.actions():
                if action.via != "CAS" or action.op != "write":
                    continue
                assert isinstance(action.expr, A.CASExpr)
                for read in matching_reads(cfg, node, action.expr):
                    out.add((name, read))
            self._cas_read_nodes = out
        return self._cas_read_nodes

    def report(self, rule_id: str, message: str, *,
               proc: Optional[str] = None,
               node: Union[A.Node, CFGNode, None] = None,
               span: Optional[Span] = None,
               fix: Optional[str] = None,
               target: Optional[Target] = None) -> Diagnostic:
        rule = RULES[rule_id]
        diag = Diagnostic(
            rule=rule_id,
            severity=rule.severity,
            message=message,
            proc=proc,
            span=span if span is not None else Span.of(node),
            fix=fix if fix is not None else rule.fix,
            region=region_label(target) if target is not None else None,
            region_key=region_key(target) if target is not None else None,
        )
        self.findings.append(diag)
        return diag


# -- suppressions --------------------------------------------------------------

_SUPPRESS_RE = re.compile(r"//\s*lint:\s*ignore\[([^\]]*)\]")


def suppressions(source: Optional[str]) -> dict[int, set[str]]:
    """Map 1-based line number -> suppression entries on that line."""
    out: dict[int, set[str]] = {}
    if not source:
        return out
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            entries = {e.strip() for e in match.group(1).split(",")
                       if e.strip()}
            if entries:
                out[lineno] = entries
    return out


def _entry_matches(entry: str, rule_id: str) -> bool:
    return entry == "*" or entry == rule_id \
        or rule_id.startswith(entry + ".")


def is_suppressed(diag: Diagnostic,
                  supp: dict[int, set[str]]) -> bool:
    if not supp or not diag.span.line:
        return False
    for lineno in (diag.span.line, diag.span.line - 1):
        for entry in supp.get(lineno, ()):
            if _entry_matches(entry, diag.rule):
                return True
    return False


# -- results -------------------------------------------------------------------

@dataclass
class LintResult:
    """All findings for one program, suppressions applied."""

    target: str
    findings: list[Diagnostic]
    suppressed: list[Diagnostic] = dc_field(default_factory=list)

    def _count(self, severity: Severity) -> int:
        return sum(1 for d in self.findings if d.severity is severity)

    @property
    def errors(self) -> int:
        return self._count(Severity.ERROR)

    @property
    def warnings(self) -> int:
        return self._count(Severity.WARNING)

    @property
    def infos(self) -> int:
        return self._count(Severity.INFO)

    def counts_by_rule(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for d in self.findings:
            out[d.rule] = out.get(d.rule, 0) + 1
        return dict(sorted(out.items()))

    def to_dict(self) -> dict:
        return {
            "v": LINT_VERSION,
            "target": self.target,
            "findings": [d.to_dict() for d in self.findings],
            "summary": {
                "errors": self.errors,
                "warnings": self.warnings,
                "infos": self.infos,
                "suppressed": len(self.suppressed),
            },
        }

    def render(self) -> str:
        lines = [d.render() for d in self.findings]
        lines.append(
            f"{self.target}: {self.errors} error(s), "
            f"{self.warnings} warning(s), {self.infos} info(s)"
            + (f", {len(self.suppressed)} suppressed"
               if self.suppressed else ""))
        return "\n".join(lines)


def _sort_key(d: Diagnostic) -> tuple:
    return (-int(d.severity), d.proc or "", d.span.line, d.span.col,
            d.rule, d.message)


def lint_program(source: Union[str, A.Program], *,
                 label: Optional[str] = None,
                 source_text: Optional[str] = None,
                 rules: Optional[list[str]] = None,
                 metrics=None, events=None,
                 profiler=None) -> LintResult:
    """Run every registered checker over a program (source text or a
    resolved AST).  ``rules`` optionally restricts output to the given
    rule ids / family prefixes; ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) and ``events`` (an
    :class:`~repro.obs.events.EventStream`) receive lint counters and
    ``lint.*`` events when supplied; ``profiler`` (a
    :class:`~repro.obs.profile.Profiler`) gets a timed
    ``lint.checker.<name>`` region per checker pass and per-rule
    firing counts as ``lint.rule.<id>`` work units."""
    # Checkers live in sibling modules registered on package import;
    # import them here too so calling core directly also works.
    from repro.analysis.lint import race as _race  # noqa: F401
    from repro.analysis.lint import rules as _rules  # noqa: F401

    if profiler is None:
        from repro.obs.profile import NULL_PROFILER
        profiler = NULL_PROFILER
    if isinstance(source, str):
        program = load_program(source)
        if source_text is None:
            source_text = source
    else:
        program = source
    with profiler.region("lint.context"):
        ctx = LintContext(program, source_text)
    for check in CHECKERS:
        with profiler.region(f"lint.checker.{check.__name__}"):
            check(ctx)
    findings = ctx.findings
    if rules:
        findings = [d for d in findings
                    if any(_entry_matches(r, d.rule) for r in rules)]
    supp = suppressions(source_text)
    kept: list[Diagnostic] = []
    silenced: list[Diagnostic] = []
    for diag in findings:
        (silenced if is_suppressed(diag, supp) else kept).append(diag)
    kept.sort(key=_sort_key)
    silenced.sort(key=_sort_key)
    result = LintResult(label or "<program>", kept, silenced)
    if metrics is not None:
        metrics.inc("lint.runs")
        metrics.inc("lint.findings.error", result.errors)
        metrics.inc("lint.findings.warning", result.warnings)
        metrics.inc("lint.findings.info", result.infos)
        metrics.inc("lint.findings.suppressed", len(silenced))
        for rule_id, count in result.counts_by_rule().items():
            metrics.inc(f"lint.rule.{rule_id}", count)
    for rule_id, count in result.counts_by_rule().items():
        profiler.add(f"lint.rule.{rule_id}", count)
    if events is not None:
        for diag in result.findings:
            events.emit("lint.finding", rule=diag.rule,
                        severity=str(diag.severity),
                        proc=diag.proc or "",
                        line=diag.span.line)
        events.emit("lint.run", target=result.target,
                    errors=result.errors, warnings=result.warnings,
                    infos=result.infos)
    return result
