"""SYNL sources for the paper's example programs (§6) and extras.

Each module exposes program source text constants; parse them with
:func:`repro.synl.load_program` or analyze directly with
:func:`repro.analysis.analyze_program`.
"""

from repro.corpus.queues import NFQ, NFQ_PRIME, NFQ_PRIME_BUGGY
from repro.corpus.herlihy import HERLIHY_SMALL
from repro.corpus.gao_hesselink import (GH_PROGRAM1, GH_PROGRAM2,
                                        GH_FULL, GH_FULL_FIXED)
from repro.corpus.allocator import ALLOCATOR
from repro.corpus.defects import (ABA_STACK, ABA_STACK_FIXED,
                                  DOUBLE_LL_DOWN)
from repro.corpus.extras import (BROKEN_SEMAPHORE, CAS_COUNTER,
                                 SEMAPHORE, SPIN_LOCK, TREIBER_STACK,
                                 LOCKED_REGISTER, VERSIONED_CELL)

__all__ = [
    "ABA_STACK",
    "ABA_STACK_FIXED",
    "DOUBLE_LL_DOWN",
    "NFQ",
    "NFQ_PRIME",
    "NFQ_PRIME_BUGGY",
    "HERLIHY_SMALL",
    "GH_PROGRAM1",
    "GH_PROGRAM2",
    "GH_FULL",
    "GH_FULL_FIXED",
    "ALLOCATOR",
    "BROKEN_SEMAPHORE",
    "CAS_COUNTER",
    "SEMAPHORE",
    "SPIN_LOCK",
    "TREIBER_STACK",
    "LOCKED_REGISTER",
    "VERSIONED_CELL",
]
