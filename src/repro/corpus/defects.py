"""Seeded-defect programs for the discipline linter (docs/LINT.md).

Each program violates one of the side conditions the mover theorems
assume, is flagged by ``repro lint`` with a specific rule id, *and*
has a reachable assertion violation the model checker finds — the
lint ↔ MC cross-validation pair (tests/test_lint_mc_crossval.py).

* ``ABA_STACK`` — a Treiber-style stack updated with *unversioned*
  CAS (``aba.unversioned-cas``).  ``Recycle`` pops two nodes,
  "frees" one (poisons its payload), "reallocates" the other and
  pushes it back: a paused ``PopCheck`` whose expected value was read
  before the recycling then succeeds on stale state (the classic ABA)
  and the next pop returns the poisoned payload, tripping
  ``assert(v > 0)``.  Run with threads ``PopCheck(),PopCheck()`` and
  ``Recycle()``.
* ``ABA_STACK_FIXED`` — the same program with
  ``global versioned Top``: the modification counter (§5.2) makes the
  stale CAS fail, so the assertion is unreachable.  The ``aba.*``
  errors disappear; the unguarded payload writes still (correctly)
  show up as ``race.unlocked``.
* ``DOUBLE_LL_DOWN`` — a semaphore ``Down`` that conditionally
  re-reads with a *second* ``LL(Sem)`` before its SC, so the SC has
  two matching LLs (``llsc.multi-ll``) and the inner LL runs under a
  live outer reservation (``llsc.nested-ll``).  The re-LL discards
  the validation the outer reservation would have provided: the SC
  succeeds against a value observed *after* other threads drained the
  semaphore, driving it negative.  Run with threads ``DownCond()``
  and ``DownCond(),DownCond()`` to reach ``assert(Sem >= 0)`` failing.
"""

ABA_STACK = """
class ANode { AVal; ANext; }
global Top;

init {
  local a = new ANode in
  local b = new ANode in {
    b.AVal = 2;
    b.ANext = null;
    a.AVal = 1;
    a.ANext = b;
    Top = a;
  }
}

proc PopCheck() {
  loop {
    local t = Top in {
      if (t == null) { return 0; }
      local n = t.ANext in {
        if (CAS(Top, t, n)) {
          local v = t.AVal in {
            assert(v > 0);
            return v;
          }
        }
      }
    }
  }
}

proc Recycle() {
  local x = Top in {
    if (x == null) { return 0; }
    local y = x.ANext in {
      if (CAS(Top, x, y)) {
        if (y != null) {
          local z = y.ANext in {
            if (CAS(Top, y, z)) {
              y.AVal = 0;
              x.AVal = 7;
              local h = Top in {
                x.ANext = h;
                if (CAS(Top, h, x)) { return 1; }
              }
            }
          }
        }
      }
    }
    return 0;
  }
}
"""

ABA_STACK_FIXED = ABA_STACK.replace("global Top;",
                                    "global versioned Top;")

DOUBLE_LL_DOWN = """
global Sem;

init { Sem = 2; }

proc DownCond() {
  loop {
    local t = LL(Sem) in {
      if (t > 0) {
        local u = t in {
          if (t > 1) {
            u = LL(Sem);
          }
          if (SC(Sem, u - 1)) {
            assert(Sem >= 0);
            return;
          }
        }
      }
    }
  }
}
"""
