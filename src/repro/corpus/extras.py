"""Additional non-blocking (and blocking) programs exercising the
analysis beyond the paper's four case studies.

* ``SEMAPHORE`` — the §4 example of a pure loop (Down/Up on a counting
  semaphore via LL/SC).
* ``CAS_COUNTER`` — counter with CAS under the modification-counter
  discipline (``global versioned``), exercising the CAS analogues of
  Theorems 5.3/5.4 (matching reads).
* ``TREIBER_STACK`` — Treiber's stack with LL/SC (no ABA, so no counter
  needed); exercises the escape analysis on the push-node idiom.
* ``SPIN_LOCK`` — a blocking object built from non-blocking primitives
  (the paper notes the analysis "applies equally to non-blocking objects
  and blocking objects").
* ``LOCKED_REGISTER`` — lock-based register exercising Theorem 5.1.
* ``BROKEN_SEMAPHORE`` — a *non-atomic* semaphore whose stale read
  outside the LL/SC window both defeats the analysis and gives the
  model checker a reachable assertion violation (the ``--explain-cex``
  demo program).
"""

SEMAPHORE = """
global Sem;

init { Sem = 2; }

proc Down() {
  loop {
    local tmp = LL(Sem) in {
      if (tmp > 0) {
        if (SC(Sem, tmp - 1)) { return; }
      }
    }
  }
}

proc Up() {
  loop {
    local tmp = LL(Sem) in {
      if (SC(Sem, tmp + 1)) { return; }
    }
  }
}
"""

CAS_COUNTER = """
global versioned Counter;

init { Counter = 0; }

proc Inc() {
  loop {
    local c = Counter in {
      if (CAS(Counter, c, c + 1)) { return; }
    }
  }
}

proc Get() {
  local c = Counter in {
    return c;
  }
}
"""

TREIBER_STACK = """
class SNode { Value; SNext; }
global Top;
const EMPTY = -1;

init { Top = null; }

proc Push(v) {
  local n = new SNode in {
    n.Value = v;
    loop {
      local t = LL(Top) in {
        n.SNext = t;
        if (SC(Top, n)) { return; }
      }
    }
  }
}

proc Pop() {
  loop {
    local t = LL(Top) in {
      if (t == null) { return EMPTY; }
      local next = t.SNext in {
        if (SC(Top, next)) { return t.Value; }
      }
    }
  }
}
"""

SPIN_LOCK = """
global Lck;

init { Lck = 0; }

proc Acquire() {
  loop {
    local l = LL(Lck) in {
      if (l == 0) {
        if (SC(Lck, 1)) { return; }
      }
    }
  }
}

proc Release() {
  loop {
    local l = LL(Lck) in {
      if (SC(Lck, 0)) { return; }
    }
  }
}
"""

#: Exercises the CAS discipline on *heap fields*: the counter lives in a
#: cell object whose field is declared ``versioned`` (class-level
#: modification-counter annotation), not in a global.
VERSIONED_CELL = """
class Cell { versioned V; }
global C;

init { C = new Cell; local r = C in { r.V = 0; } }

proc IncCell() {
  loop {
    local r = C in
    local v = r.V in {
      if (CAS(r.V, v, v + 1)) { return; }
    }
  }
}

proc GetCell() {
  local r = C in
  local v = r.V in {
    return v;
  }
}
"""

#: A deliberately *non-atomic* semaphore: ``DownBad`` tests the
#: counter against a *stale* plain read taken outside the LL/SC
#: window.  With ``Sem = 1`` two concurrent ``DownBad()`` calls can
#: both pass the test and both decrement, driving the count to ``-1``
#: and tripping ``assert(Sem >= 0)``.  The stale read defeats the
#: analysis (no LL match, so it stays a non-mover and the retry loop
#: is not pure) *and* gives the model checker a reachable violation,
#: which makes this the canonical demo for the annotated
#: counterexample timeline (``mc --explain-cex``).
BROKEN_SEMAPHORE = """
global Sem;

init { Sem = 1; }

proc DownBad() {
  local tmp = Sem in {
    loop {
      if (tmp > 0) {
        local cur = LL(Sem) in {
          if (SC(Sem, cur - 1)) {
            assert(Sem >= 0);
            return;
          }
        }
      }
    }
  }
}
"""

LOCKED_REGISTER = """
class LockObj { unused; }
global Lk;
global Val;

init {
  Lk = new LockObj;
  Val = 0;
}

proc Write(x) {
  synchronized (Lk) {
    Val = x;
  }
}

proc Read() {
  synchronized (Lk) {
    local v = Val in {
      return v;
    }
  }
}
"""
