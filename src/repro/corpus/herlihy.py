"""Herlihy's non-blocking algorithm for small objects (§6.2, Fig. 4).

Each thread keeps a private working copy ``prv``; an operation copies
the shared object's data, computes on the private copy, and swings the
shared reference with SC, recycling the old shared object as the new
private copy.  The VL after the copy prevents computing on an
inconsistent snapshot.

The paper's figure exits the loop with ``break`` and falls off the end
of the procedure; we ``return`` directly (equivalent control flow, same
per-line atomicity types: R B B B L B B).
"""

HERLIHY_SMALL = """
class Obj { data; }
global Q;
threadlocal prv;

init {
  local o = new Obj in {
    o.data = 0;
    Q = o;
  }
}

threadinit {
  prv = new Obj;
  prv.data = 0;
}

proc Apply(x) {
  loop {
    local m = LL(Q) in {
      prv.data = m.data;
      if (!VL(Q)) { continue; }
      prv.data = compute(prv.data, x);
      if (SC(Q, prv)) {
        prv = m;
        return;
      }
    }
  }
}

proc ReadValue() {
  loop {
    local m = LL(Q) in
    local v = m.data in {
      if (VL(Q)) { return v; }
    }
  }
}
"""
