"""Michael & Scott's non-blocking FIFO queue using LL/SC/VL (§6.1).

``NFQ`` is the original algorithm (Fig. 1): Enq and Deq *help* by
updating ``Tail`` on other threads' behalf, so their loops are not pure
and the analysis cannot show them atomic directly.

``NFQ_PRIME`` is the paper's modification (Fig. 2): all updates of
``Tail`` move into a separate procedure ``UpdateTail`` that the
environment may invoke at any time, making every loop pure.  The paper
shows (and our analysis reproduces) that AddNode, UpdateTail, and Deq'
(= ``DeqP`` here; SYNL identifiers cannot contain a prime) are atomic —
see Fig. 3 for the per-line types.

``NFQ_PRIME_BUGGY`` deletes AddNode's ``if (next != null) continue``
guard — the incorrect version used in the third row of Table 2.  Note
that the buggy AddNode is still *atomic* (atomicity is independent of
functional correctness); the model checker finds the broken queue
structure either way.
"""

_PRELUDE = """
class Node { Value; Next; }
global Head;
global Tail;
const EMPTY = -1;

init {
  local d = new Node in {
    d.Value = 0;
    d.Next = null;
    Head = d;
    Tail = d;
  }
}
"""

NFQ = _PRELUDE + """
proc Enq(value) {
  local node = new Node in {
    node.Value = value;
    node.Next = null;
    loop {
      local t = LL(Tail) in
      local next = LL(t.Next) in {
        if (!VL(Tail)) { continue; }
        if (next != null) {
          SC(Tail, next);
          continue;
        }
        if (SC(t.Next, node)) {
          SC(Tail, node);
          return;
        }
      }
    }
  }
}

proc Deq() {
  loop {
    local h = LL(Head) in
    local next = h.Next in {
      if (!VL(Head)) { continue; }
      if (next == null) { return EMPTY; }
      if (h == LL(Tail)) {
        SC(Tail, next);
        continue;
      }
      local value = next.Value in {
        if (SC(Head, next)) { return value; }
      }
    }
  }
}
"""

_ADDNODE = """
proc AddNode(value) {
  local node = new Node in {
    node.Value = value;
    node.Next = null;
    loop {
      local t = LL(Tail) in
      local next = LL(t.Next) in {
        if (!VL(Tail)) { continue; }
        if (next != null) { continue; }
        if (SC(t.Next, node)) { return; }
      }
    }
  }
}
"""

_ADDNODE_BUGGY = """
proc AddNode(value) {
  local node = new Node in {
    node.Value = value;
    node.Next = null;
    loop {
      local t = LL(Tail) in
      local next = LL(t.Next) in {
        if (!VL(Tail)) { continue; }
        if (SC(t.Next, node)) { return; }
      }
    }
  }
}
"""

_REST = """
proc UpdateTail() {
  loop {
    local t = LL(Tail) in
    local next = t.Next in {
      if (!VL(Tail)) { continue; }
      if (next != null) {
        SC(Tail, next);
        return;
      }
    }
  }
}

proc DeqP() {
  loop {
    local h = LL(Head) in
    local next = h.Next in {
      if (!VL(Head)) { continue; }
      if (next == null) { return EMPTY; }
      if (h == LL(Tail)) { continue; }
      local value = next.Value in {
        if (SC(Head, next)) { return value; }
      }
    }
  }
}
"""

NFQ_PRIME = _PRELUDE + _ADDNODE + _REST
NFQ_PRIME_BUGGY = _PRELUDE + _ADDNODE_BUGGY + _REST
