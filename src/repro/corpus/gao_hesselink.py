"""Gao & Hesselink's non-blocking algorithm for large objects (§6.3,
Figs. 5–7).

The object's fields are split into ``W`` groups; operations copy only
modified groups between the shared copy and the thread's private copy.

* ``GH_PROGRAM1`` (Fig. 5): every group is copied in every attempt.  The
  outer loop is pure (the element writes are covered by the counting
  copy loop) and the analysis shows ``Apply`` atomic directly.
* ``GH_PROGRAM2`` (Fig. 6): the copy is skipped when the values already
  agree.  The guard *reads* the private array before rewriting it, so
  the outer loop is not pure and the analysis cannot show atomicity
  directly — exactly the paper's situation; atomicity follows from the
  behavioural equivalence with Program 1 (checked operationally in the
  experiments).
* ``GH_FULL`` (Fig. 7): version numbers make the change check cheap.
  Again handled by the paper's transformation argument, not by the
  direct analysis.

  **Reproduction finding:** Fig. 7 *as printed* is not behaviourally
  equivalent to Programs 1/2.  After a failed SC the reset
  ``prvObj.version[g] = 0`` can collide with a shared version that is
  still 0, so the next attempt skips copying group ``g`` even though the
  private copy holds *dirty* data from the failed attempt — our
  operational equivalence check (``experiments.figure567``) exhibits
  divergent final values.  ``GH_FULL_FIXED`` repairs this by resetting
  to a sentinel (-1) that matches no shared version, forcing the
  recopy; the fixed version passes the equivalence check.

Group count ``W = 3`` matches the SPIN experiment in §6.3 (three integer
fields, each its own group); arrays are indexed ``1..W``.
"""

_PRELUDE = """
const W = 3;
class Obj { data; version; }
global SharedObj;
threadlocal prvObj;

init {
  local o = new Obj in {
    o.data = new int[W + 1];
    o.version = new int[W + 1];
    SharedObj = o;
  }
}

threadinit {
  prvObj = new Obj;
  prvObj.data = new int[W + 1];
  prvObj.version = new int[W + 1];
}
"""

GH_PROGRAM1 = _PRELUDE + """
proc Apply(g) {
  a2: loop {
    local m = LL(SharedObj) in
    local i = 1 in {
      loop {
        if (i > W) { break; }
        prvObj.data[i] = m.data[i];
        if (!VL(SharedObj)) { continue a2; }
        i = i + 1;
      }
      if (!VL(SharedObj)) { continue a2; }
      prvObj.data[g] = compute(prvObj.data[g], g);
      if (SC(SharedObj, prvObj)) {
        prvObj = m;
        return;
      }
    }
  }
}
"""

GH_PROGRAM2 = _PRELUDE + """
proc Apply(g) {
  a2: loop {
    local m = LL(SharedObj) in
    local i = 1 in {
      loop {
        if (i > W) { break; }
        if (prvObj.data[i] != m.data[i]) {
          prvObj.data[i] = m.data[i];
          if (!VL(SharedObj)) { continue a2; }
        }
        i = i + 1;
      }
      if (!VL(SharedObj)) { continue a2; }
      prvObj.data[g] = compute(prvObj.data[g], g);
      if (SC(SharedObj, prvObj)) {
        prvObj = m;
        return;
      }
    }
  }
}
"""

GH_FULL = _PRELUDE + """
proc Apply(g) {
  a2: loop {
    local m = LL(SharedObj) in
    local i = 1 in {
      loop {
        if (i > W) { break; }
        local newv = m.version[i] in {
          if (newv != prvObj.version[i]) {
            prvObj.data[i] = m.data[i];
            if (!VL(SharedObj)) { continue a2; }
            prvObj.version[i] = newv;
          }
        }
        i = i + 1;
      }
      if (!VL(SharedObj)) { continue a2; }
      prvObj.data[g] = compute(prvObj.data[g], g);
      prvObj.version[g] = prvObj.version[g] + 1;
      if (SC(SharedObj, prvObj)) {
        prvObj = m;
        return;
      } else {
        prvObj.version[g] = 0;
      }
    }
  }
}
"""

GH_FULL_FIXED = _PRELUDE + """
proc Apply(g) {
  a2: loop {
    local m = LL(SharedObj) in
    local i = 1 in {
      loop {
        if (i > W) { break; }
        local newv = m.version[i] in {
          if (newv != prvObj.version[i]) {
            prvObj.data[i] = m.data[i];
            if (!VL(SharedObj)) { continue a2; }
            prvObj.version[i] = newv;
          }
        }
        i = i + 1;
      }
      if (!VL(SharedObj)) { continue a2; }
      prvObj.data[g] = compute(prvObj.data[g], g);
      prvObj.version[g] = prvObj.version[g] + 1;
      if (SC(SharedObj, prvObj)) {
        prvObj = m;
        return;
      } else {
        prvObj.version[g] = 0 - 1;
      }
    }
  }
}
"""
