"""Michael's lock-free memory allocator — malloc path (§6.4).

The paper applied the analysis to the pseudo-code of ``malloc`` in
Fig. 4 of Michael (PLDI 2004), which is not reprinted in the paper.
This module is a **structural reconstruction** of those allocation
routines (documented substitution; see DESIGN.md): the synchronization
skeleton — the CAS retry loops and the order of shared accesses — follows
Michael's algorithm, while block bookkeeping is simplified to packed
integers manipulated by pure primitives:

* ``Active`` packs (superblock id, credits); ``-1`` means none.
* ``Anchors[sb]`` packs (avail, count, state) for superblock ``sb``.
* ``Partial`` holds a partial superblock id or ``-1``.
* ``FreeNext[·]`` is the in-superblock free list (written only at
  superblock initialization, before publication).

All of these words carry modification counters in Michael's algorithm
(the ABA defence of §5.2); we declare them ``versioned`` accordingly.

Like Michael's Fig. 4 we present the routines separately
(``MallocFromActive``, ``MallocFromPartial``, ``MallocFromNewSB``,
``UpdateActive``); SYNL has no calls, and the paper's analysis is
intra-procedural, so analyzing the routines separately matches analyzing
the inlined composition.  Every retry loop is pure; the analysis
partitions each routine into atomic blocks (§6.4's headline: 74 lines of
pseudocode → 15 atomic blocks).

Pure primitives (no side effects, §3.2): ``reserve``, ``popanchor``,
``packactive``, ``takeall``, ``putcount``, ``sbof``, ``creditsof``,
``availof``, ``countof`` — integer packing/unpacking helpers registered
with the interpreter.
"""

ALLOCATOR = """
const NONE = -1;
const MAXCREDITS = 4;

global versioned Active;
global versioned Partial;
global versioned PartialList;
global versioned Anchors;
global versioned NextSB;
global versioned DescAvail;
global FreeNext;
global DescNext;

init {
  FreeNext = new int[64];
  DescNext = new int[8];
  Anchors = new int[8];
  local i = 0 in {
    while (i < 63) {
      FreeNext[i] = i + 1;
      i = i + 1;
    }
  }
  local s = 0 in {
    while (s < 8) {
      // block sbfirst(s) is handed out by MallocFromNewSB itself; the
      // anchor's free list starts at the following block
      Anchors[s] = (sbfirst(s) + 1) * 64 + MAXCREDITS;
      s = s + 1;
    }
  }
  Active = -1;
  Partial = -1;
  PartialList = -1;
  DescAvail = -1;
  NextSB = 0;
}

proc MallocFromActive() {
  // phase 1 of malloc: reserve a credit from the active superblock,
  // then pop the reserved block from its free list.
  loop {
    local oldactive = Active in {
      if (oldactive == NONE) { return NONE; }
      local credits = creditsof(oldactive) in
      local newactive = reserve(oldactive, credits) in {
        if (CAS(Active, oldactive, newactive)) {
          local sb = sbof(oldactive) in {
            loop {
              local anchor = Anchors[sb] in
              local avail = availof(anchor) in
              local next = FreeNext[avail] in
              local newanchor = popanchor(anchor, next, credits) in {
                if (CAS(Anchors[sb], anchor, newanchor)) {
                  return avail;
                }
              }
            }
          }
        }
      }
    }
  }
}

proc MallocFromPartial() {
  // phase 2: adopt a partial superblock, reserve all its blocks as
  // credits, pop one block, and try to install the rest as Active.
  loop {
    local sb = Partial in {
      if (sb == NONE) { return NONE; }
      if (CAS(Partial, sb, NONE)) {
        loop {
          local anchor = Anchors[sb] in {
            if (countof(anchor) == 0) { return NONE; }
            local morecredits = takeall(anchor) in
            local avail = availof(anchor) in
            local next = FreeNext[avail] in
            local newanchor = popanchor(anchor, next, morecredits) in {
              if (CAS(Anchors[sb], anchor, newanchor)) {
                loop {
                  local oldactive = Active in {
                    if (oldactive != NONE) { return avail; }
                    local newactive = packactive(sb, morecredits) in {
                      if (CAS(Active, oldactive, newactive)) {
                        return avail;
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
}

proc MallocFromNewSB() {
  // phase 3: reserve a fresh superblock id (Michael's DescAlloc CAS
  // loop), then publish it as Active.  The publishing CAS expects the
  // constant NONE — it has no matching read and forms an atomic block
  // by itself; when it fails the superblock is retired to Partial.
  loop {
    local sb = NextSB in {
      if (CAS(NextSB, sb, sb + 1)) {
        if (CAS(Active, NONE, packactive(sb, MAXCREDITS))) {
          return sbfirst(sb);
        }
        loop {
          local p = Partial in {
            if (CAS(Partial, p, sb)) { return NONE; }
          }
        }
      }
    }
  }
}

proc UpdateActive() {
  // return unused credits: try to reinstall them as Active; if another
  // superblock became active meanwhile, flush the credits back into
  // the anchor and remember the superblock as partial.
  local sb = sbof(Reserved) in
  local morecredits = creditsof(Reserved) in {
    loop {
      local oldactive = Active in {
        if (oldactive == NONE) {
          if (CAS(Active, NONE, packactive(sb, morecredits))) { return 1; }
        } else {
          loop {
            local anchor = Anchors[sb] in
            local newanchor = putcount(anchor, morecredits) in {
              if (CAS(Anchors[sb], anchor, newanchor)) {
                loop {
                  local p = Partial in {
                    if (CAS(Partial, p, sb)) { return 0; }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
}

proc DescAlloc() {
  // pop a retired descriptor from the descriptor freelist, or carve a
  // fresh one (modelled as taking the next id) when the list is empty.
  loop {
    local d = DescAvail in {
      if (d != NONE) {
        local next = DescNext[d] in {
          if (CAS(DescAvail, d, next)) { return d; }
        }
      } else {
        local batch = NextSB in {
          if (CAS(NextSB, batch, batch + 1)) { return batch; }
        }
      }
    }
  }
}

proc HeapPutPartial(sb) {
  // make sb the heap's partial superblock; a displaced previous
  // partial overflows onto the shared partial list.
  loop {
    local prev = Partial in {
      if (CAS(Partial, prev, sb)) {
        if (prev != NONE) {
          loop {
            local head = PartialList in {
              if (CAS(PartialList, head, packlist(prev, head))) { return 1; }
            }
          }
        }
        return 0;
      }
    }
  }
}

threadlocal Reserved;

threadinit {
  Reserved = 0;
}
"""

