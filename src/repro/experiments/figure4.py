"""Figure 4 — Herlihy's small-object algorithm: the exceptional variant
and its per-line atomicity types (a1:R … a7:B), and the atomicity
verdict for the procedure.

The paper's variant ends with ``break`` (falling off the loop); ours
``return``s directly — same control flow, same line types.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import analyze_program, render_figure
from repro.analysis.inference import AnalysisResult
from repro.analysis.report import variant_lines
from repro.corpus.herlihy import HERLIHY_SMALL

#: Fig. 4's right column: a1:R a2:B a3:B a4:B a5:L a6:B a7:B
PAPER_LABELS = list("RBBBLBB")


@dataclass
class Figure4Result:
    analysis: AnalysisResult
    labels: list[str]
    matches_paper: bool
    rendered: str


def run() -> Figure4Result:
    analysis = analyze_program(HERLIHY_SMALL)
    report = analysis.verdicts["Apply"].variants[0]
    labels = [str(line.atomicity) for line in variant_lines(report, "a")]
    matches = labels == PAPER_LABELS and analysis.is_atomic("Apply")
    return Figure4Result(analysis, labels, matches,
                         render_figure(analysis))


def main() -> str:
    result = run()
    return (f"{result.rendered}\n\n"
            f"labels: {' '.join(result.labels)} "
            f"(paper: {' '.join(PAPER_LABELS)})\n"
            f"matches paper's Figure 4: {result.matches_paper}")


if __name__ == "__main__":  # pragma: no cover
    print(main())
