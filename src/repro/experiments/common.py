"""Shared helpers for the experiment drivers (one per table/figure)."""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from repro.obs.export import bench_record, write_bench


@dataclass
class Table:
    """A small fixed-width text table (paper-style rendering)."""

    title: str
    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *cells: object) -> None:
        self.rows.append(list(cells))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(str(cell)))
        lines = [self.title, ""]
        header = " | ".join(c.ljust(widths[i])
                            for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(
                str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def ratio(a: float, b: float) -> str:
    if b == 0:
        return "inf"
    return f"{a / b:.1f}x"


class BenchCollector:
    """Accumulates machine-readable benchmark records and writes them
    as ``BENCH_analysis.json`` / ``BENCH_mc.json`` (schema:
    ``{name, wall_s, states, transitions, states_per_s}`` — see
    :mod:`repro.obs.export`).  The benchmark suite shares one instance
    per session and flushes it at teardown, so the perf trajectory of
    every run lands next to the text reports under ``benchmarks/out/``.
    """

    def __init__(self) -> None:
        self.analysis: list[dict] = []
        self.mc: list[dict] = []

    @staticmethod
    def _percentiles(histogram) -> dict | None:
        if histogram is None or not histogram.count:
            return None
        snap = histogram.to_dict()
        return {k: snap[k] for k in ("p50", "p95", "p99")}

    def add_analysis(self, name: str, wall_s: float,
                     histogram=None) -> None:
        """``histogram`` is an optional per-round wall-time
        :class:`~repro.obs.metrics.Histogram` contributing tail-latency
        percentiles to the record."""
        self.analysis.append(bench_record(
            name, wall_s, percentiles=self._percentiles(histogram)))

    def add_mc(self, name: str, result, histogram=None) -> None:
        """Record an :class:`~repro.mc.explorer.MCResult` (plus the
        peak-RSS and dedup-hit-rate telemetry the explorer already
        snapshots into ``result.metrics``)."""
        self.mc.append(bench_record(
            name, result.elapsed, states=result.states,
            transitions=result.transitions,
            percentiles=self._percentiles(histogram),
            mem_peak_mb=result.metrics.get("mc.mem_peak_mb"),
            dedup_hit_rate=result.metrics.get("mc.dedup_hit_rate")))

    def write(self, out_dir) -> list[pathlib.Path]:
        out_dir = pathlib.Path(out_dir)
        out_dir.mkdir(exist_ok=True)
        written = []
        for name, records in (("BENCH_analysis.json", self.analysis),
                              ("BENCH_mc.json", self.mc)):
            if records:
                written.append(write_bench(out_dir / name, records))
        return written
