"""Shared helpers for the experiment drivers (one per table/figure)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Table:
    """A small fixed-width text table (paper-style rendering)."""

    title: str
    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *cells: object) -> None:
        self.rows.append(list(cells))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(str(cell)))
        lines = [self.title, ""]
        header = " | ".join(c.ljust(widths[i])
                            for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(
                str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def ratio(a: float, b: float) -> str:
    if b == 0:
        return "inf"
    return f"{a / b:.1f}x"
