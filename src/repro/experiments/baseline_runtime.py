"""§2 baseline — lock-based runtime atomicity checking vs. this paper.

The paper's related-work claim: runtime reduction checkers (Wang &
Stoller's block-based algorithm, Flanagan & Freund's Atomizer) "focus on
locks and [are] not effective for programs that use non-blocking
synchronization".  We run our implementation of that baseline over
random schedules of the corpus and compare its verdicts with the
paper's static analysis:

* on the lock-based register, both approaches validate the procedures;
* on every non-blocking algorithm the runtime checker reports
  non-atomic (each unprotected shared access classifies as a non-mover,
  and two non-movers cannot reduce), while the static analysis —
  understanding LL/SC windows and purity — proves atomicity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import corpus
from repro.analysis import analyze_program
from repro.dynamic import TracingInterp
from repro.experiments.common import Table
from repro.interp import ThreadSpec, run_random

#: program -> (procedures to judge, thread specs exercising them)
CONFIGS = {
    "Locked register": (
        corpus.LOCKED_REGISTER, ("Write", "Read"),
        [[("Write", 1), ("Read",)], [("Write", 2), ("Read",)]]),
    "NFQ' queue": (
        corpus.NFQ_PRIME, ("AddNode", "DeqP"),
        [[("AddNode", 1)], [("AddNode", 2)],
         [("DeqP",), ("DeqP",)]]),
    "Treiber stack": (
        corpus.TREIBER_STACK, ("Push", "Pop"),
        [[("Push", 1), ("Pop",)], [("Push", 2), ("Pop",)]]),
    "CAS counter": (
        corpus.CAS_COUNTER, ("Inc",),
        [[("Inc",), ("Inc",)], [("Inc",)]]),
    "Herlihy object": (
        corpus.HERLIHY_SMALL, ("Apply",),
        [[("Apply", 1)], [("Apply", 2)]]),
}


@dataclass
class BaselineRow:
    program: str
    proc: str
    runtime_atomic: bool
    static_atomic: bool


def run(seeds: range = range(4)) -> list[BaselineRow]:
    rows: list[BaselineRow] = []
    for name, (source, procs, spec_lists) in CONFIGS.items():
        runtime_ok = {p: True for p in procs}
        witnesses = {p: 0 for p in procs}
        for seed in seeds:
            interp = TracingInterp(source)
            world = interp.make_world(
                [ThreadSpec.of(*calls) for calls in spec_lists])
            run_random(interp, world, seed=seed, max_steps=20_000)
            for proc, verdict in interp.checker.verdicts().items():
                if proc in runtime_ok:
                    witnesses[proc] += verdict.witnesses
                    runtime_ok[proc] &= verdict.atomic
        static = analyze_program(source)
        for proc in procs:
            assert witnesses[proc] > 0, (name, proc)
            rows.append(BaselineRow(name, proc, runtime_ok[proc],
                                    static.is_atomic(proc)))
    return rows


def main() -> str:
    rows = run()
    table = Table(
        "Lock-based runtime reduction checker (§2 baseline) vs. the "
        "paper's static analysis",
        ["program", "procedure", "runtime checker", "static analysis"])
    for row in rows:
        table.add(row.program, row.proc,
                  "atomic" if row.runtime_atomic else "NOT atomic",
                  "atomic" if row.static_atomic else "NOT atomic")
    table.note("the lock-based baseline validates only the lock-based "
               "program; the paper's analysis also proves the "
               "non-blocking algorithms — its §2 claim, measured")
    return table.render()


if __name__ == "__main__":  # pragma: no cover
    print(main())
