"""Experiment drivers — one module per table/figure of the paper's
evaluation (§6), plus ablations.  Each module has ``run()`` returning
structured results and ``main()`` returning the rendered report.
See DESIGN.md's per-experiment index."""

from repro.experiments import (ablations, baseline_runtime, crossval,
                               figure3, figure4, figure567, section63,
                               section64, table2)

__all__ = [
    "figure3",
    "figure4",
    "figure567",
    "table2",
    "section63",
    "section64",
    "ablations",
    "baseline_runtime",
    "crossval",
]
