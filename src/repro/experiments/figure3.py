"""Figure 3 — exceptional variants of NFQ' with per-line atomicity types.

The paper lists four variants (AddNode, UpdateTail's success case,
Deq'1, Deq'2) with a one-letter atomicity per line.  Our analysis
regenerates the same variants and labels, plus the UpdateTail failure
variant (read-only, exempt by the state-based atomicity definition —
see :class:`repro.analysis.inference.VariantReport`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import analyze_program, render_figure
from repro.analysis.inference import AnalysisResult
from repro.analysis.report import variant_lines
from repro.corpus.queues import NFQ_PRIME

#: the paper's per-line types, keyed by variant (Fig. 3).  Deq' is
#: ``DeqP`` in our corpus (SYNL identifiers cannot contain a prime).
PAPER_LABELS: dict[str, list[str]] = {
    "AddNode": list("BBBRRBBLB"),       # a1..a9
    "UpdateTail1": list("RRBBLB"),      # b1..b6
    "DeqP1": list("RALBB"),             # c1..c5
    "DeqP2": list("RRBBABLB"),          # d1..d8
}


@dataclass
class Figure3Result:
    analysis: AnalysisResult
    labels: dict[str, list[str]]
    matches_paper: bool
    rendered: str


def run() -> Figure3Result:
    analysis = analyze_program(NFQ_PRIME)
    labels: dict[str, list[str]] = {}
    for verdict in analysis.verdicts.values():
        for report in verdict.variants:
            lines = variant_lines(report, "x")
            labels[report.variant.name] = [str(line.atomicity)
                                           for line in lines]
    matches = all(labels.get(name) == expected
                  for name, expected in PAPER_LABELS.items())
    matches = matches and all(analysis.is_atomic(p)
                              for p in ("AddNode", "UpdateTail", "DeqP"))
    return Figure3Result(analysis, labels, matches,
                         render_figure(analysis))


def main() -> str:
    result = run()
    out = [result.rendered, ""]
    out.append(f"matches paper's Figure 3 labels: {result.matches_paper}")
    out.append("procedures atomic: "
               + ", ".join(result.analysis.atomic_procedures()))
    return "\n".join(out)


if __name__ == "__main__":  # pragma: no cover
    print(main())
