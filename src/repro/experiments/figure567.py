"""Figures 5–7 — Gao & Hesselink's large-object algorithm.

The paper's argument has two parts:

1. the *direct* analysis shows the simplified Program 1 (Fig. 5)
   atomic — the copy loop is a covering write, making the outer loop
   pure;
2. Programs 2 (Fig. 6) and the full version (Fig. 7) "clearly have the
   same behaviors", so they inherit atomicity via a transformation
   argument, not via the analysis (whose purity check indeed rejects
   them — the conditional copy reads the private array first).

We reproduce both parts — the verdicts and an *operational equivalence
check* (the sets of reachable final shared data values for the same
operation mix under full interleaving).

**Reproduction finding:** the equivalence holds between Programs 1
and 2, but **fails for Fig. 7 as printed**: after a failed SC,
``prvObj.version[g] = 0`` can equal a shared version that is still 0,
so the retry skips re-copying group ``g`` although the private copy is
dirty — the checker exhibits divergent final values.  Resetting to a
sentinel no shared version can match (``GH_FULL_FIXED``) restores the
equivalence.  See ``repro.corpus.gao_hesselink``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import analyze_program
from repro.corpus.gao_hesselink import (GH_FULL, GH_FULL_FIXED,
                                        GH_PROGRAM1, GH_PROGRAM2)
from repro.interp import Interp, ThreadSpec
from repro.mc import Explorer

PROGRAMS = {
    "program1": GH_PROGRAM1,
    "program2": GH_PROGRAM2,
    "full": GH_FULL,
    "full_fixed": GH_FULL_FIXED,
}


@dataclass
class Figure567Result:
    verdicts: dict[str, bool]         # program -> Apply shown atomic?
    final_data: dict[str, frozenset]  # program -> reachable final data
    program2_equivalent: bool         # paper claim: Fig.6 ≡ Fig.5
    full_equivalent: bool             # paper claim: Fig.7 ≡ Fig.6 (FAILS)
    fixed_equivalent: bool            # our repaired Fig.7

    @property
    def matches_paper(self) -> bool:
        """The analysis side of §6.3: Program 1 directly atomic, the
        others handled by transformation; Programs 1≡2 operationally."""
        return (self.verdicts["program1"]
                and not self.verdicts["program2"]
                and not self.verdicts["full"]
                and self.program2_equivalent)


def _final_data_set(source: str, specs: list[ThreadSpec],
                    max_states: int) -> frozenset:
    """Reachable final values of all data arrays (even positions of the
    canonical array listing — each object allocates ``data`` before
    ``version`` and canonical traversal sorts fields by name) under full
    interleaving."""
    interp = Interp(source)
    result = Explorer(interp, specs, mode="full", max_states=max_states,
                      collect_quiescent=True).run()
    if result.capped:
        raise RuntimeError("state cap hit while comparing GH programs")
    out = set()
    for key in result.final:
        heap_key = key[3]
        arrays = tuple(entry[3] for entry in heap_key
                       if entry[0] == "arr")
        out.add(arrays[::2])
    return frozenset(out)


def run(ops: tuple = ((("Apply", 1),), (("Apply", 2),)),
        max_states: int = 400_000) -> Figure567Result:
    specs = [ThreadSpec.of(*op_list) for op_list in ops]
    verdicts = {name: analyze_program(source).is_atomic("Apply")
                for name, source in PROGRAMS.items()}
    final_data = {name: _final_data_set(source, specs, max_states)
                  for name, source in PROGRAMS.items()}
    return Figure567Result(
        verdicts, final_data,
        program2_equivalent=(final_data["program1"]
                             == final_data["program2"]),
        full_equivalent=(final_data["full"] == final_data["program1"]),
        fixed_equivalent=(final_data["full_fixed"]
                          == final_data["program1"]))


def main() -> str:
    result = run()
    lines = ["Gao-Hesselink large objects (Figs. 5-7)"]
    for name, atomic in result.verdicts.items():
        claim = "atomic (direct analysis)" if atomic else \
            "not directly provable (transformation argument, as in paper)"
        lines.append(f"  {name}: {claim}")
    lines.append(f"  Fig.6 == Fig.5 operationally: "
                 f"{result.program2_equivalent} (paper claims yes)")
    lines.append(f"  Fig.7-as-printed == Fig.5:    "
                 f"{result.full_equivalent} (paper claims yes; "
                 f"see the version-reset finding)")
    lines.append(f"  Fig.7-fixed == Fig.5:         "
                 f"{result.fixed_equivalent}")
    lines.append(f"  matches paper (analysis side): "
                 f"{result.matches_paper}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())
