"""Lint ↔ analysis ↔ model-checker cross-validation table.

The discipline linter (docs/LINT.md) is calibrated against two ground
truths at once:

* **soundness of silence** — on programs with *no* lint errors where
  the §5.4 analysis proves the procedures atomic, the model checker
  must find no violation, and the full-interleaving exploration must
  reach exactly the quiescent states of the atomic-mode exploration;
* **usefulness of noise** — on the seeded-defect programs
  (:mod:`repro.corpus.defects`), the lint error must coincide with a
  model-checker-reachable assertion violation, and fixing the
  discipline (``ABA_STACK_FIXED``) must silence *both*.

This driver runs every configured program through all three tools and
renders the coincidence table; ``Crossval.consistent`` is the
machine-checkable statement of both properties (asserted by
``tests/test_lint_mc_crossval.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import corpus
from repro.analysis import analyze_program
from repro.experiments.common import Table
from repro.interp import Interp, ThreadSpec
from repro.synl import load_program

#: (corpus name, thread scripts, expect lint errors, expect violation)
CASES = [
    ("SEMAPHORE", [[("Down",)], [("Up",)]], False, False),
    ("CAS_COUNTER", [[("Inc",)], [("Inc",), ("Get",)]], False, False),
    ("TREIBER_STACK", [[("Push", 1)], [("Pop",)]], False, False),
    ("VERSIONED_CELL", [[("IncCell",)], [("GetCell",)]], False, False),
    ("ABA_STACK", [[("PopCheck",), ("PopCheck",)], [("Recycle",)]],
     True, True),
    ("ABA_STACK_FIXED", [[("PopCheck",), ("PopCheck",)], [("Recycle",)]],
     True, False),  # aba.* gone; the race.unlocked payload errors remain
    ("DOUBLE_LL_DOWN", [[("DownCond",)], [("DownCond",), ("DownCond",)]],
     True, True),
]


@dataclass
class CaseResult:
    name: str
    lint_errors: int
    lint_rules: list[str]
    atomic_procs: list[str]
    violation: str
    states: int
    quiescent_match: bool | None  # None when not applicable
    expect_errors: bool
    expect_violation: bool

    @property
    def as_expected(self) -> bool:
        if bool(self.lint_errors) != self.expect_errors:
            return False
        if bool(self.violation) != self.expect_violation:
            return False
        # lint-clean + proofs ⇒ the reductions must be exact
        if not self.lint_errors and self.atomic_procs:
            return self.quiescent_match is True
        return True


@dataclass
class Crossval:
    cases: list[CaseResult] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return all(c.as_expected for c in self.cases)


def _explore(interp, specs, mode: str, collect: bool,
             max_states: int):
    from repro.mc import Explorer

    return Explorer(interp, specs, mode=mode, collect_quiescent=collect,
                    max_states=max_states).run()


def run(cases=CASES, max_states: int = 100_000) -> Crossval:
    out = Crossval()
    for name, scripts, expect_errors, expect_violation in cases:
        source = getattr(corpus, name)
        program = load_program(source)
        analysis = analyze_program(program)
        lint = analysis.lint
        error_findings = [d for d in lint.findings
                          if d.severity.name == "ERROR"]
        specs = [ThreadSpec.of(*calls) for calls in scripts]
        full = _explore(Interp(program), specs, "full", True, max_states)

        quiescent_match: bool | None = None
        atomic_procs = sorted(p for p in analysis.verdicts
                              if analysis.is_atomic(p))
        if not error_findings and atomic_procs and not full.violation:
            atomic = _explore(Interp(program), specs, "atomic", True,
                              max_states)
            quiescent_match = full.quiescent == atomic.quiescent

        out.cases.append(CaseResult(
            name=name,
            lint_errors=len(error_findings),
            lint_rules=sorted({d.rule for d in error_findings}),
            atomic_procs=atomic_procs,
            violation=full.violation or "",
            states=full.states,
            quiescent_match=quiescent_match,
            expect_errors=expect_errors,
            expect_violation=expect_violation))
    return out


def main(max_states: int = 100_000) -> str:
    result = run(max_states=max_states)
    table = Table(
        "Lint <-> analysis <-> MC cross-validation "
        "(clean corpus + seeded defects)",
        ["program", "lint errors", "atomic procs", "MC (full)",
         "quiescent", "ok"])
    for c in result.cases:
        rules = ", ".join(c.lint_rules) if c.lint_rules else "-"
        table.add(
            c.name,
            f"{c.lint_errors} ({rules})" if c.lint_errors else "0",
            ", ".join(c.atomic_procs) or "-",
            c.violation or f"no violation ({c.states} states)",
            {True: "full == atomic", False: "MISMATCH",
             None: "n/a"}[c.quiescent_match],
            "yes" if c.as_expected else "NO")
    table.note("lint-clean + proved atomic => no violation and exact "
               "quiescent sets; seeded defect => lint error + reachable "
               "violation")
    table.note(f"all cases consistent: {result.consistent}")
    return table.render()


if __name__ == "__main__":  # pragma: no cover
    print(main())
