"""§6.4 — Michael's lock-free allocator: atomic-block partitioning.

The paper: "the allocation routines contain 74 lines of pseudo-code
(actual C code may be significantly longer), and our analysis
classifies it into 15 atomic blocks."

Our reconstruction of the routines (see
:mod:`repro.corpus.allocator`) measures:

* **lines** — pseudocode lines of the routines (statement lines inside
  ``proc`` bodies; braces/comments excluded);
* **blocks** — per routine, the atomic-block partition of its longest
  exceptional variant (the full execution path), summed.

Every block must itself be atomic (type ≤ A) — the paper's "all
CAS-blocks ... are atomic", with local actions merged into neighbouring
blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import analyze_program
from repro.analysis.blocks import BlockPartition, partition_procedure
from repro.corpus.allocator import ALLOCATOR
from repro.experiments.common import Table

PAPER_LINES = 74
PAPER_BLOCKS = 15


def count_routine_lines(source: str = ALLOCATOR) -> int:
    """Pseudocode lines inside ``proc`` bodies (no braces/comments)."""
    def counted(line: str) -> bool:
        s = line.strip()
        return bool(s) and not s.startswith("//") \
            and s not in ("{", "}", "} else {")

    in_proc = False
    depth = 0
    count = 0
    for line in source.splitlines():
        s = line.strip()
        if s.startswith("proc "):
            in_proc = True
        if in_proc and counted(line):
            count += 1
        if in_proc:
            depth += s.count("{") - s.count("}")
            if depth == 0 and "}" in s:
                in_proc = False
    return count


@dataclass
class Section64Result:
    lines: int
    blocks: int
    per_proc: dict[str, int] = field(default_factory=dict)
    partitions: dict[str, list[BlockPartition]] = field(
        default_factory=dict)
    all_blocks_atomic: bool = True

    @property
    def matches_paper(self) -> bool:
        return (self.blocks == PAPER_BLOCKS
                and abs(self.lines - PAPER_LINES) <= 5
                and self.all_blocks_atomic)


def run() -> Section64Result:
    analysis = analyze_program(ALLOCATOR)
    result = Section64Result(lines=count_routine_lines(), blocks=0)
    for name in analysis.verdicts:
        parts = partition_procedure(analysis, name)
        result.partitions[name] = parts
        best = max(parts, key=lambda p: p.n_blocks)
        result.per_proc[name] = best.n_blocks
        result.blocks += best.n_blocks
        for p in parts:
            for block in p.blocks:
                if str(block.atomicity) == "N":
                    result.all_blocks_atomic = False
    return result


def main() -> str:
    result = run()
    table = Table("Section 6.4: Michael's allocator, atomic blocks",
                  ["routine", "atomic blocks (longest path)"])
    for name, blocks in result.per_proc.items():
        table.add(name, blocks)
    table.add("TOTAL", result.blocks)
    table.note(f"pseudocode lines: {result.lines} (paper: {PAPER_LINES})")
    table.note(f"atomic blocks: {result.blocks} (paper: {PAPER_BLOCKS})")
    table.note(f"every block atomic: {result.all_blocks_atomic}")
    table.note(f"matches paper: {result.matches_paper}")
    return table.render()


if __name__ == "__main__":  # pragma: no cover
    print(main())
