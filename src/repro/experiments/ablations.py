"""Ablations — which analysis ingredient carries which example.

DESIGN.md calls out the design choices; this experiment disables each
in turn (purity/variants §4–5.2, the window rules Thm 5.3/5.4, the
local-condition rule Thm 5.5, the uniqueness analysis, the LL-agreement
case split) and records which corpus procedures stop verifying.  The
expected pattern mirrors the paper's related-work discussion: without
the non-blocking–specific machinery the checker degenerates to a
locks-only atomicity system (Flanagan et al.), which proves none of the
§6 algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import corpus
from repro.analysis import InferenceOptions, analyze_program
from repro.experiments.common import Table

PROGRAMS = {
    "NFQ'": (corpus.NFQ_PRIME, ("AddNode", "UpdateTail", "DeqP")),
    "Herlihy": (corpus.HERLIHY_SMALL, ("Apply",)),
    "GH prog.1": (corpus.GH_PROGRAM1, ("Apply",)),
    "Treiber": (corpus.TREIBER_STACK, ("Push", "Pop")),
    "CAS counter": (corpus.CAS_COUNTER, ("Inc",)),
    "Semaphore": (corpus.SEMAPHORE, ("Down", "Up")),
    "Locked reg.": (corpus.LOCKED_REGISTER, ("Write", "Read")),
}

ABLATIONS = {
    "full analysis": {},
    "no purity/variants (§4)": {"enable_purity": False},
    "no window rules (Thm 5.3/5.4)": {"enable_windows": False},
    "no condition rule (Thm 5.5)": {"enable_conditions": False},
    "no uniqueness (working copies)": {"enable_uniqueness": False},
    "no LL-agreement case split": {"enable_agreement": False},
}


@dataclass
class AblationResult:
    #: ablation -> program -> fraction of target procedures verified
    verified: dict[str, dict[str, tuple[int, int]]] = field(
        default_factory=dict)

    def score(self, ablation: str) -> tuple[int, int]:
        ok = sum(v[0] for v in self.verified[ablation].values())
        total = sum(v[1] for v in self.verified[ablation].values())
        return ok, total


def run() -> AblationResult:
    result = AblationResult()
    for ablation, overrides in ABLATIONS.items():
        options = replace(InferenceOptions(), **overrides)
        per_program: dict[str, tuple[int, int]] = {}
        for name, (source, targets) in PROGRAMS.items():
            analysis = analyze_program(source, options)
            ok = sum(analysis.is_atomic(t) for t in targets)
            per_program[name] = (ok, len(targets))
        result.verified[ablation] = per_program
    return result


def main() -> str:
    result = run()
    table = Table("Ablations: procedures shown atomic per configuration",
                  ["configuration"] + list(PROGRAMS) + ["total"])
    for ablation in ABLATIONS:
        row: list[object] = [ablation]
        for name in PROGRAMS:
            ok, total = result.verified[ablation][name]
            row.append(f"{ok}/{total}")
        ok, total = result.score(ablation)
        row.append(f"{ok}/{total}")
        table.add(*row)
    return table.render()


if __name__ == "__main__":  # pragma: no cover
    print(main())
