"""Table 2 — verification of NFQ' with and without the inferred
atomicity declarations.

The paper used TVLA (shape analysis) to verify correctness properties of
NFQ' and measured the state/time cost with and without declaring each
procedure body atomic, as inferred by the analysis:

    =====================  =========== ======   ====== =====
    program                without atomic        with atomic
    ---------------------  ------------------   ------------
    unbounded AddNode      4500 states  >19h     13     3.0s
    unbounded Deq'         1285 states  88min    10     1.7s
    incorrect AddNode      13   states  5s       13     3.0s
    =====================  =========== ======   ====== =====

TVLA is unavailable; we substitute our explicit-state model checker
(DESIGN.md).  "Unbounded" threads become N concrete threads; the shape
to reproduce is the ≥100x state/time reduction for the correct rows and
the error being found quickly (few states) either way in the incorrect
row.  Properties checked: queue shape (acyclic, Tail on the chain and
lagging ≤ 1) and queue contents at quiescent states (no lost or
duplicated nodes) — the analogues of the paper's TVLA properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.queues import NFQ_PRIME, NFQ_PRIME_BUGGY
from repro.experiments.common import Table
from repro.interp import Interp, ThreadSpec
from repro.mc import Explorer, MCResult, QueueContents, QueueShape

#: the paper's Table 2, for side-by-side reporting
PAPER = {
    "unbounded AddNode": ((4500, ">19 hrs"), (13, "3.0 s")),
    "unbounded DeqP": ((1285, "88 min"), (10, "1.7 s")),
    "incorrect AddNode": ((13, "5 s"), (13, "3.0 s")),
}


@dataclass
class Table2Row:
    name: str
    full: MCResult
    atomic: MCResult

    @property
    def reduction(self) -> float:
        return self.full.states / max(1, self.atomic.states)


@dataclass
class Table2Result:
    rows: list[Table2Row] = field(default_factory=list)

    @property
    def matches_paper(self) -> bool:
        """The shape of Table 2: ≥100x state reduction on the correct
        rows; the incorrect row violates in both modes after only a
        handful of states."""
        add, deq, bad = self.rows
        return (add.full.violation is None
                and add.atomic.violation is None
                and add.reduction >= 100
                and deq.reduction >= 100
                and bad.full.violation is not None
                and bad.atomic.violation is not None
                and bad.full.states <= 100
                and bad.atomic.states <= 100)


def _specs_add_heavy(n: int) -> list[ThreadSpec]:
    """N concurrent AddNode threads, one DeqP, one UpdateTail (which
    loops, so a single repeating thread — as in the paper's setup)."""
    return ([ThreadSpec.of(("AddNode", i + 1)) for i in range(n)]
            + [ThreadSpec.of(("DeqP",)),
               ThreadSpec.of(("UpdateTail",), repeat=True)])


def _specs_deq_heavy(n: int) -> list[ThreadSpec]:
    return ([ThreadSpec.of(("AddNode", 1))]
            + [ThreadSpec.of(("DeqP",)) for _ in range(n)]
            + [ThreadSpec.of(("UpdateTail",), repeat=True)])


def _check(source: str, specs: list[ThreadSpec], mode: str,
           max_states: int) -> MCResult:
    interp = Interp(source)
    properties = [QueueShape(), QueueContents()]
    return Explorer(interp, specs, mode=mode, properties=properties,
                    max_states=max_states).run()


def run(n_threads: int = 2, max_states: int = 400_000) -> Table2Result:
    result = Table2Result()
    configs = [
        ("unbounded AddNode", NFQ_PRIME, _specs_add_heavy(n_threads)),
        ("unbounded DeqP", NFQ_PRIME, _specs_deq_heavy(n_threads)),
        # the lost-node bug needs at least two racing AddNodes
        ("incorrect AddNode", NFQ_PRIME_BUGGY,
         _specs_add_heavy(max(2, n_threads))),
    ]
    for name, source, specs in configs:
        full = _check(source, specs, "full", max_states)
        atomic = _check(source, specs, "atomic", max_states)
        result.rows.append(Table2Row(name, full, atomic))
    return result


def main(n_threads: int = 2, max_states: int = 400_000) -> str:
    result = run(n_threads, max_states)
    table = Table(
        f"Table 2 (TVLA -> our model checker; unbounded -> "
        f"{n_threads} threads)",
        ["program", "states", "time", "states(atomic)", "time(atomic)",
         "reduction", "paper states", "paper (atomic)"])
    for row in result.rows:
        paper_without, paper_with = PAPER[row.name.replace("'", "P")] \
            if row.name in PAPER else PAPER[row.name]
        def fmt(r: MCResult) -> tuple[str, str]:
            states = f">{r.states}" if r.capped else str(r.states)
            if r.violation:
                states += " (error found)"
            return states, f"{r.elapsed:.2f}s"
        fs, ft = fmt(row.full)
        as_, at = fmt(row.atomic)
        table.add(row.name, fs, ft, as_, at, f"{row.reduction:.0f}x",
                  f"{paper_without[0]} / {paper_without[1]}",
                  f"{paper_with[0]} / {paper_with[1]}")
    table.note("paper rows report TVLA states/time; ours report our "
               "model checker's — compare the reduction, not absolutes")
    table.note(f"shape matches paper: {result.matches_paper}")
    return table.render()


if __name__ == "__main__":  # pragma: no cover
    print(main())
