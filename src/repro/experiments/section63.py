"""§6.3's state-count comparison — atomicity reduction vs. a classic
partial-order reduction on Gao & Hesselink's large-object algorithm.

The paper implemented the algorithm in SPIN with "a driver with 3
threads that concurrently invoke arithmetic operations on a shared
object with 3 integer fields, each in its own group" and reports:

    no optimization                 4,069,080 states
    SPIN's partial-order reduction    452,043 states
    atomic procedure bodies            69,215 states
    both                                4,619 states

SPIN is unavailable; our model checker plays its role (DESIGN.md), with
the same driver shape.  The *ordering* no-opt ≫ POR ≫ atomic > both is
the reproduced result; absolute counts differ with the substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.gao_hesselink import GH_PROGRAM1
from repro.experiments.common import Table
from repro.interp import Interp, ThreadSpec
from repro.mc import Explorer, MCResult

PAPER = {
    "none": 4_069_080,
    "por": 452_043,
    "atomic": 69_215,
    "both": 4_619,
}


def commutes(a: tuple, b: tuple) -> bool:
    """Operation-commutativity oracle for the ``both`` mode: two Apply
    operations on different groups commute (each updates its own group
    and the analysis shows each whole operation atomic)."""
    return a[0] == "Apply" and b[0] == "Apply" and a[1] != b[1]


@dataclass
class Section63Result:
    results: dict[str, MCResult] = field(default_factory=dict)
    #: merged fleet telemetry doc when the grid ran with ``jobs > 1``
    fleet: dict | None = None

    def verdicts(self) -> dict[str, dict]:
        """Deterministic per-mode verdict map — what the ledger notes
        and what ``repro runs diff`` compares across runs.  No wall
        times: a parallel grid must diff empty against a sequential
        one."""
        return {mode: {"states": r.states,
                       "transitions": r.transitions,
                       "violation": r.violation,
                       "capped": r.capped}
                for mode, r in sorted(self.results.items())}

    @property
    def matches_paper(self) -> bool:
        none = self.results["none"].states
        por = self.results["por"].states
        atomic = self.results["atomic"].states
        both = self.results["both"].states
        return (none > por > atomic >= both
                and none / atomic > 100  # atomicity beats POR decisively
                and none / por < none / atomic)


def _run_one(mode: str, n_threads: int, max_states: int,
             events=None, profiler=None) -> MCResult:
    interp = Interp(GH_PROGRAM1)
    specs = [ThreadSpec.of(("Apply", g + 1)) for g in range(n_threads)]
    explorer = Explorer(
        interp, specs,
        mode={"none": "full"}.get(mode, mode),
        commutes=commutes if mode == "both" else None,
        max_states=max_states, events=events, profiler=profiler)
    return explorer.run()


#: MCResult fields a fleet worker ships back to the parent — the
#: deterministic verdict of one grid cell plus its wall time.  The
#: state *sets* (quiescent/final) stay in the worker; the grid only
#: compares counts.
_CELL_FIELDS = ("states", "transitions", "elapsed", "violation",
                "trace", "capped", "deadline_hit")


def run(n_threads: int = 3, max_states: int = 2_000_000,
        modes: tuple = ("none", "por", "atomic", "both"),
        jobs: int = 1, spool=None) -> Section63Result:
    """Run the §6.3 variant grid, one MC exploration per mode.

    With ``jobs > 1`` the modes are fanned across forked fleet workers
    (:mod:`repro.obs.fleet`); each cell is an independent state-space
    exploration, so the per-mode verdicts are identical to a
    sequential run — only the wall clock changes."""
    from repro.obs import ledger

    out = Section63Result()
    if jobs <= 1 and spool is None:
        # mute the recorder so each cell's Explorer doesn't note_mc
        # into the run — the grid's record is the aggregated
        # 'experiments' note, and a --jobs grid (workers never see the
        # recorder) must produce the same manifest
        with ledger.muted():
            for mode in modes:
                out.results[mode] = _run_one(mode, n_threads,
                                             max_states)
        return out

    from repro.obs import fleet

    def worker(mode, spool_handle):
        result = _run_one(mode, n_threads, max_states,
                          events=spool_handle.events,
                          profiler=spool_handle.profiler)
        return {"mode": mode,
                **{f: getattr(result, f) for f in _CELL_FIELDS}}

    cells, merge = fleet.run_fleet(list(modes), worker, jobs=jobs,
                                   spool=spool, label="section63")
    for cell in cells:
        mode = cell.pop("mode")
        out.results[mode] = MCResult(
            mode={"none": "full"}.get(mode, mode), **cell)
    out.fleet = merge.doc
    return out


def main(n_threads: int = 3, max_states: int = 2_000_000,
         jobs: int = 1, spool=None) -> str:
    result = run(n_threads, max_states, jobs=jobs, spool=spool)
    return render(result, n_threads)


def render(result: Section63Result, n_threads: int = 3) -> str:
    table = Table(
        "Section 6.3: reachable states, GH large objects "
        f"({n_threads} threads, one group each; SPIN -> our checker)",
        ["configuration", "states", "time", "paper (SPIN)"])
    names = {"none": "no optimization", "por": "partial-order reduction",
             "atomic": "atomic procedure bodies", "both": "both"}
    for mode, r in result.results.items():
        states = f">{r.states}" if r.capped else str(r.states)
        table.add(names[mode], states, f"{r.elapsed:.2f}s",
                  f"{PAPER[mode]:,}")
    table.note(f"ordering matches paper: {result.matches_paper}")
    return table.render()


if __name__ == "__main__":  # pragma: no cover
    print(main())
