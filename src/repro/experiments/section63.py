"""§6.3's state-count comparison — atomicity reduction vs. a classic
partial-order reduction on Gao & Hesselink's large-object algorithm.

The paper implemented the algorithm in SPIN with "a driver with 3
threads that concurrently invoke arithmetic operations on a shared
object with 3 integer fields, each in its own group" and reports:

    no optimization                 4,069,080 states
    SPIN's partial-order reduction    452,043 states
    atomic procedure bodies            69,215 states
    both                                4,619 states

SPIN is unavailable; our model checker plays its role (DESIGN.md), with
the same driver shape.  The *ordering* no-opt ≫ POR ≫ atomic > both is
the reproduced result; absolute counts differ with the substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.gao_hesselink import GH_PROGRAM1
from repro.experiments.common import Table
from repro.interp import Interp, ThreadSpec
from repro.mc import Explorer, MCResult

PAPER = {
    "none": 4_069_080,
    "por": 452_043,
    "atomic": 69_215,
    "both": 4_619,
}


def commutes(a: tuple, b: tuple) -> bool:
    """Operation-commutativity oracle for the ``both`` mode: two Apply
    operations on different groups commute (each updates its own group
    and the analysis shows each whole operation atomic)."""
    return a[0] == "Apply" and b[0] == "Apply" and a[1] != b[1]


@dataclass
class Section63Result:
    results: dict[str, MCResult] = field(default_factory=dict)

    @property
    def matches_paper(self) -> bool:
        none = self.results["none"].states
        por = self.results["por"].states
        atomic = self.results["atomic"].states
        both = self.results["both"].states
        return (none > por > atomic >= both
                and none / atomic > 100  # atomicity beats POR decisively
                and none / por < none / atomic)


def run(n_threads: int = 3, max_states: int = 2_000_000,
        modes: tuple = ("none", "por", "atomic", "both")
        ) -> Section63Result:
    interp = Interp(GH_PROGRAM1)
    specs = [ThreadSpec.of(("Apply", g + 1)) for g in range(n_threads)]
    out = Section63Result()
    for mode in modes:
        explorer = Explorer(
            interp, specs,
            mode={"none": "full"}.get(mode, mode),
            commutes=commutes if mode == "both" else None,
            max_states=max_states)
        out.results[mode] = explorer.run()
    return out


def main(n_threads: int = 3, max_states: int = 2_000_000) -> str:
    result = run(n_threads, max_states)
    table = Table(
        "Section 6.3: reachable states, GH large objects "
        f"({n_threads} threads, one group each; SPIN -> our checker)",
        ["configuration", "states", "time", "paper (SPIN)"])
    names = {"none": "no optimization", "por": "partial-order reduction",
             "atomic": "atomic procedure bodies", "both": "both"}
    for mode, r in result.results.items():
        states = f">{r.states}" if r.capped else str(r.states)
        table.add(names[mode], states, f"{r.elapsed:.2f}s",
                  f"{PAPER[mode]:,}")
    table.note(f"ordering matches paper: {result.matches_paper}")
    return table.render()


if __name__ == "__main__":  # pragma: no cover
    print(main())
