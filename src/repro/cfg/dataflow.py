"""A small generic worklist dataflow framework over :class:`ProcCFG`.

Analyses are described by a :class:`Problem`: direction, initial values,
a meet over predecessor/successor facts, and a per-node transfer
function.  Facts can be any values with a well-defined equality; the
solver iterates to a fixpoint.  This powers liveness
(:mod:`repro.cfg.liveness`), the escape analysis
(:mod:`repro.analysis.escape`) and the constant-freshness bits of the
uniqueness analysis.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Optional, TypeVar

from repro.cfg.graph import CFGNode, Edge, ProcCFG

Fact = TypeVar("Fact")


@dataclass
class Problem(Generic[Fact]):
    """A dataflow problem.

    ``transfer(node, fact_in)`` returns the fact at the other side of the
    node; ``meet(facts)`` combines facts from multiple CFG edges (it is
    called with at least one fact); ``boundary`` is the fact at the entry
    (forward) or exit (backward) node; ``init`` is the initial fact for
    all other nodes (typically the lattice top for must-analyses or
    bottom for may-analyses).

    ``edge_transfer(edge, fact)``, when given, refines the fact flowing
    along a specific CFG edge — used for branch-sensitive facts such as
    "freshness survives the failure edge of an SC" in the escape
    analysis.
    """

    direction: str  # "forward" | "backward"
    boundary: Fact
    init: Fact
    meet: Callable[[list[Fact]], Fact]
    transfer: Callable[[CFGNode, Fact], Fact]
    edge_transfer: Optional[Callable[[Edge, Fact], Fact]] = None


class Solution(Generic[Fact]):
    """Fixpoint facts: ``before[n]`` is the fact on the input side of node
    ``n`` (above it for forward problems, below it for backward ones) and
    ``after[n]`` the fact on the output side."""

    def __init__(self) -> None:
        self.before: dict[CFGNode, Fact] = {}
        self.after: dict[CFGNode, Fact] = {}


def solve(cfg: ProcCFG, problem: Problem[Fact]) -> Solution[Fact]:
    """Iterate ``problem`` to a fixpoint over ``cfg``."""
    forward = problem.direction == "forward"
    start = cfg.entry if forward else cfg.exit

    def in_edges(node: CFGNode) -> list:
        return cfg.in_edges(node) if forward else cfg.out_edges(node)

    def edge_src(edge) -> CFGNode:
        return edge.src if forward else edge.dst

    def outputs(node: CFGNode) -> list[CFGNode]:
        return list(cfg.successors(node) if forward
                    else cfg.predecessors(node))

    sol: Solution[Fact] = Solution()
    for node in cfg.nodes:
        sol.before[node] = problem.init
        sol.after[node] = problem.init
    sol.before[start] = problem.boundary
    sol.after[start] = problem.transfer(start, problem.boundary)

    work: deque[CFGNode] = deque(cfg.nodes)
    in_queue = set(cfg.nodes)
    while work:
        node = work.popleft()
        in_queue.discard(node)
        edges = in_edges(node)
        if node is start:
            fact_in = problem.boundary
        elif edges:
            incoming = []
            for edge in edges:
                fact = sol.after[edge_src(edge)]
                if problem.edge_transfer is not None:
                    fact = problem.edge_transfer(edge, fact)
                incoming.append(fact)
            fact_in = problem.meet(incoming)
        else:
            fact_in = problem.init
        fact_out = problem.transfer(node, fact_in)
        sol.before[node] = fact_in
        if fact_out != sol.after[node]:
            sol.after[node] = fact_out
            for nxt in outputs(node):
                if nxt not in in_queue:
                    in_queue.add(nxt)
                    work.append(nxt)
    return sol


def union_meet(facts: list[frozenset]) -> frozenset:
    out: frozenset = frozenset()
    for f in facts:
        out = out | f
    return out


def intersection_meet(facts: list[frozenset]) -> frozenset:
    out = facts[0]
    for f in facts[1:]:
        out = out & f
    return out
