"""Control-flow graph data structures.

A :class:`ProcCFG` is built per procedure (and for the program's ``init`` /
``threadinit`` blocks) by :mod:`repro.cfg.builder`.  Nodes are small
objects carrying a kind tag and a reference back into the AST; edges carry
an optional label (``True``/``False`` for branch edges, ``"back"`` for
loop back edges).

The purity analysis (§4 of the paper) relies on the loop structure
recorded here: each :class:`LoopInfo` knows its head, body nodes, the
sources of *normal-termination* back edges, and its *exceptional* exits
(``break`` / ``return`` nodes, §5.2).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.synl import ast as A

_CFG_NODE_ID = itertools.count(1)


class NodeKind(enum.Enum):
    ENTRY = "entry"
    EXIT = "exit"
    STMT = "stmt"          # Assign / Assume / Assert / ExprStmt / Skip
    BIND = "bind"          # the binding part of ``local x = e in s``
    BRANCH = "branch"      # condition of an ``if``
    LOOP_HEAD = "loop_head"
    BREAK = "break"
    CONTINUE = "continue"
    RETURN = "return"
    ACQUIRE = "acquire"    # synchronized entry
    RELEASE = "release"    # synchronized exit (explicit or implicit)


@dataclass(eq=False)
class CFGNode:
    kind: NodeKind
    stmt: Optional[A.Node] = None   # the AST node this was lowered from
    expr: Optional[A.Expr] = None   # branch condition / bind initializer
    uid: int = field(default=0, init=False)
    #: innermost enclosing Loop AST node (None outside loops)
    loop: Optional[A.Loop] = field(default=None, init=False)
    #: creation order; used for deterministic iteration
    index: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.uid = next(_CFG_NODE_ID)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        desc = ""
        if self.expr is not None:
            from repro.synl.printer import pretty_expr

            desc = f" {pretty_expr(self.expr)}"
        elif self.stmt is not None:
            desc = f" {type(self.stmt).__name__}"
        return f"<{self.kind.value}#{self.uid}{desc}>"


@dataclass(eq=False)
class Edge:
    src: CFGNode
    dst: CFGNode
    label: object = None  # None | True | False | "back"


@dataclass(eq=False)
class LoopInfo:
    """Structure of one ``loop`` statement within a procedure CFG."""

    loop: A.Loop                      # the AST node
    head: CFGNode                     # the LOOP_HEAD node
    body_nodes: list[CFGNode] = field(default_factory=list)
    #: nodes with a normal-termination edge back to ``head``
    back_sources: list[CFGNode] = field(default_factory=list)
    #: BREAK / RETURN nodes inside this loop's body (exceptional exits, §5.2)
    exceptional_exits: list[CFGNode] = field(default_factory=list)
    parent: Optional["LoopInfo"] = None

    def contains(self, node: CFGNode) -> bool:
        return node is self.head or node in self._body_set

    @property
    def _body_set(self) -> set[CFGNode]:
        cached = getattr(self, "_body_cache", None)
        if cached is None or len(cached) != len(self.body_nodes):
            cached = set(self.body_nodes)
            self._body_cache = cached
        return cached


class ProcCFG:
    """Control-flow graph of one procedure body."""

    def __init__(self, name: str, proc: Optional[A.Procedure] = None):
        self.name = name
        self.proc = proc
        self.nodes: list[CFGNode] = []
        self.entry = self.add_node(NodeKind.ENTRY)
        self.exit = self.add_node(NodeKind.EXIT)
        self.succ: dict[CFGNode, list[Edge]] = {self.entry: [], self.exit: []}
        self.pred: dict[CFGNode, list[Edge]] = {self.entry: [], self.exit: []}
        self.loops: list[LoopInfo] = []

    # -- construction -------------------------------------------------------
    def add_node(self, kind: NodeKind, stmt: Optional[A.Node] = None,
                 expr: Optional[A.Expr] = None) -> CFGNode:
        node = CFGNode(kind, stmt, expr)
        node.index = len(self.nodes)
        self.nodes.append(node)
        if not hasattr(self, "succ"):
            return node  # entry/exit created before dicts exist
        self.succ.setdefault(node, [])
        self.pred.setdefault(node, [])
        return node

    def add_edge(self, src: CFGNode, dst: CFGNode, label: object = None) -> Edge:
        edge = Edge(src, dst, label)
        self.succ.setdefault(src, []).append(edge)
        self.pred.setdefault(dst, []).append(edge)
        return edge

    # -- queries --------------------------------------------------------------
    def successors(self, node: CFGNode) -> Iterator[CFGNode]:
        for edge in self.succ.get(node, []):
            yield edge.dst

    def predecessors(self, node: CFGNode) -> Iterator[CFGNode]:
        for edge in self.pred.get(node, []):
            yield edge.src

    def out_edges(self, node: CFGNode) -> list[Edge]:
        return self.succ.get(node, [])

    def in_edges(self, node: CFGNode) -> list[Edge]:
        return self.pred.get(node, [])

    def loop_info(self, loop: A.Loop) -> LoopInfo:
        for info in self.loops:
            if info.loop is loop:
                return info
        raise KeyError(f"loop {loop!r} not in CFG of {self.name}")

    def reachable_from(self, start: CFGNode,
                       within: Optional[set[CFGNode]] = None,
                       avoid: Optional[set[CFGNode]] = None) -> set[CFGNode]:
        """Forward reachability.  ``within`` restricts the node set
        (start is always included); ``avoid`` nodes block traversal
        (they are not expanded, though they can be *reached*)."""
        seen: set[CFGNode] = {start}
        stack = [start]
        avoid = avoid or set()
        while stack:
            node = stack.pop()
            if node in avoid and node is not start:
                continue
            for nxt in self.successors(node):
                if nxt in seen:
                    continue
                if within is not None and nxt not in within:
                    continue
                seen.add(nxt)
                stack.append(nxt)
        return seen

    def reaches(self, start: CFGNode, goal: CFGNode,
                within: Optional[set[CFGNode]] = None,
                avoid: Optional[set[CFGNode]] = None) -> bool:
        return goal in self.reachable_from(start, within, avoid)

    def backward_reachable(self, starts: list[CFGNode],
                           stop: Optional[set[CFGNode]] = None) -> set[CFGNode]:
        """Nodes from which some start node is reachable.  Nodes in
        ``stop`` are included when hit but not expanded past (they
        block the backward walk)."""
        stop = stop or set()
        seen: set[CFGNode] = set(starts)
        stack = list(starts)
        while stack:
            node = stack.pop()
            if node in stop:
                continue
            for prev in self.predecessors(node):
                if prev not in seen:
                    seen.add(prev)
                    stack.append(prev)
        return seen

    def ordered(self, nodes: set[CFGNode]) -> list[CFGNode]:
        """Deterministic (creation-order) listing of a node set."""
        return sorted(nodes, key=lambda n: n.index)
