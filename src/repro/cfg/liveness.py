"""Liveness of procedure-local variables over a :class:`ProcCFG`.

A classic backward may-analysis.  The client supplies ``uses`` / ``defs``
functions mapping a CFG node to sets of *abstract locations* (hashable —
binding ids for scalar locals, ``(binding, field)`` pairs for unique
reference regions).  A def only kills when ``strong`` says so; weak
updates (array element writes) should simply not be reported in ``defs``.

The purity analysis (§4, condition (ii)) uses first-access queries in
:mod:`repro.analysis.purity`, but liveness provides the fast path for
scalars and is independently tested against a path-enumeration oracle.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.cfg.dataflow import Problem, Solution, solve, union_meet
from repro.cfg.graph import CFGNode, ProcCFG

Loc = Hashable


class LivenessResult:
    def __init__(self, sol: Solution):
        self._sol = sol

    def live_in(self, node: CFGNode) -> frozenset:
        """Locations live immediately before ``node`` executes."""
        return self._sol.after[node]

    def live_out(self, node: CFGNode) -> frozenset:
        """Locations live immediately after ``node`` executes."""
        return self._sol.before[node]


def liveness(cfg: ProcCFG,
             uses: Callable[[CFGNode], frozenset],
             defs: Callable[[CFGNode], frozenset]) -> LivenessResult:
    """Solve liveness:  live_in(n) = uses(n) ∪ (live_out(n) − defs(n))."""

    def transfer(node: CFGNode, live_out: frozenset) -> frozenset:
        return uses(node) | (live_out - defs(node))

    problem: Problem[frozenset] = Problem(
        direction="backward",
        boundary=frozenset(),
        init=frozenset(),
        meet=union_meet,
        transfer=transfer,
    )
    return LivenessResult(solve(cfg, problem))
