"""Dominator and postdominator sets for :class:`ProcCFG`.

Used by the window rules (§5.2, Theorems 5.3/5.4): an action is
*inside* the window of a successful SC/VL when the matching LL dominates
it and the successful operation postdominates it.

The CFGs here are tiny (tens of nodes), so the classic iterative set
algorithm is plenty fast.
"""

from __future__ import annotations

from repro.cfg.graph import CFGNode, ProcCFG


def _iterate(cfg: ProcCFG, start: CFGNode,
             preds_fn) -> dict[CFGNode, set[CFGNode]]:
    all_nodes = set(cfg.nodes)
    dom: dict[CFGNode, set[CFGNode]] = {n: set(all_nodes) for n in cfg.nodes}
    dom[start] = {start}
    changed = True
    while changed:
        changed = False
        for node in cfg.nodes:
            if node is start:
                continue
            preds = list(preds_fn(node))
            if preds:
                new = set.intersection(*(dom[p] for p in preds)) | {node}
            else:
                new = {node}  # unreachable: only itself
            if new != dom[node]:
                dom[node] = new
                changed = True
    return dom


class Dominators:
    """Forward dominators (from entry) and postdominators (from exit)."""

    def __init__(self, cfg: ProcCFG):
        self.cfg = cfg
        self._dom = _iterate(cfg, cfg.entry, cfg.predecessors)
        self._postdom = _iterate(cfg, cfg.exit, cfg.successors)

    def dominates(self, a: CFGNode, b: CFGNode) -> bool:
        """Every path entry→b passes through a."""
        return a in self._dom[b]

    def postdominates(self, a: CFGNode, b: CFGNode) -> bool:
        """Every path b→exit passes through a."""
        return a in self._postdom[b]

    def dom_set(self, node: CFGNode) -> set[CFGNode]:
        return set(self._dom[node])

    def postdom_set(self, node: CFGNode) -> set[CFGNode]:
        return set(self._postdom[node])
