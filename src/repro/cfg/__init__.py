"""Control-flow graphs and dataflow analyses over SYNL procedures."""

from repro.cfg.builder import (
    CFGBuilder,
    build_cfg,
    build_stmt_cfg,
    normal_iteration_nodes,
)
from repro.cfg.dataflow import Problem, Solution, solve
from repro.cfg.graph import CFGNode, Edge, LoopInfo, NodeKind, ProcCFG
from repro.cfg.liveness import LivenessResult, liveness

__all__ = [
    "CFGBuilder",
    "build_cfg",
    "build_stmt_cfg",
    "normal_iteration_nodes",
    "Problem",
    "Solution",
    "solve",
    "CFGNode",
    "Edge",
    "LoopInfo",
    "NodeKind",
    "ProcCFG",
    "LivenessResult",
    "liveness",
]
