"""Lowering of SYNL ASTs to control-flow graphs.

The builder threads a *frontier* of dangling out-edges through the
statement structure.  Jump statements (``break``, ``continue``,
``return``) produce an empty frontier and register themselves with the
loop structure:

* ``continue L`` adds a *back edge* to L's head — a **normal**
  termination of L's body (§4);
* ``break L`` / ``return`` are **exceptional** exits of every loop they
  leave (§5.2), and become exceptional-slice roots.

``synchronized`` lowers to explicit ACQUIRE/RELEASE nodes; jumps that
leave a synchronized region get the matching RELEASE nodes inserted
before them (Java monitor semantics, §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ResolveError
from repro.synl import ast as A
from repro.cfg.graph import CFGNode, LoopInfo, NodeKind, ProcCFG

#: a dangling out-edge: (source node, edge label)
Frontier = list[tuple[CFGNode, object]]


@dataclass
class _LoopCtx:
    info: LoopInfo
    breaks: Frontier = field(default_factory=list)
    sync_depth: int = 0  # open synchronized regions at loop entry


class CFGBuilder:
    def __init__(self, name: str, proc: A.Procedure | None = None):
        self.cfg = ProcCFG(name, proc)
        self.loop_stack: list[_LoopCtx] = []
        self.sync_stack: list[A.Synchronized] = []

    # -- plumbing -------------------------------------------------------------
    def _node(self, kind: NodeKind, stmt: A.Node | None = None,
              expr: A.Expr | None = None) -> CFGNode:
        node = self.cfg.add_node(kind, stmt, expr)
        for ctx in self.loop_stack:
            ctx.info.body_nodes.append(node)
        if self.loop_stack:
            node.loop = self.loop_stack[-1].info.loop
        return node

    def _attach(self, preds: Frontier, node: CFGNode) -> None:
        for src, label in preds:
            self.cfg.add_edge(src, node, label)

    def _target_loop(self, label: str | None,
                     stmt: A.Stmt) -> _LoopCtx:
        if not self.loop_stack:
            raise ResolveError("jump outside of a loop", stmt.pos)
        if label is None:
            return self.loop_stack[-1]
        for ctx in reversed(self.loop_stack):
            if ctx.info.loop.label == label:
                return ctx
        raise ResolveError(f"unknown loop label {label!r}", stmt.pos)

    def _release_chain(self, preds: Frontier, down_to: int,
                       stmt: A.Stmt) -> Frontier:
        """Insert RELEASE nodes for synchronized regions opened above
        stack depth ``down_to`` (innermost first)."""
        for sync in reversed(self.sync_stack[down_to:]):
            rel = self._node(NodeKind.RELEASE, stmt=sync, expr=sync.lock)
            self._attach(preds, rel)
            preds = [(rel, None)]
        return preds

    # -- statements -----------------------------------------------------------
    def build_stmt(self, s: A.Stmt, preds: Frontier) -> Frontier:
        if isinstance(s, A.Block):
            for sub in s.stmts:
                preds = self.build_stmt(sub, preds)
            return preds

        if isinstance(s, (A.Assign, A.Assume, A.AssertStmt, A.ExprStmt,
                          A.Skip)):
            node = self._node(NodeKind.STMT, stmt=s)
            self._attach(preds, node)
            return [(node, None)]

        if isinstance(s, A.LocalDecl):
            node = self._node(NodeKind.BIND, stmt=s, expr=s.init)
            self._attach(preds, node)
            return self.build_stmt(s.body, [(node, None)])

        if isinstance(s, A.If):
            branch = self._node(NodeKind.BRANCH, stmt=s, expr=s.cond)
            self._attach(preds, branch)
            out = self.build_stmt(s.then, [(branch, True)])
            if s.els is not None:
                out = out + self.build_stmt(s.els, [(branch, False)])
            else:
                out = out + [(branch, False)]
            return out

        if isinstance(s, A.Loop):
            head = self._node(NodeKind.LOOP_HEAD, stmt=s)
            self._attach(preds, head)
            info = LoopInfo(
                loop=s, head=head,
                parent=self.loop_stack[-1].info if self.loop_stack else None)
            self.cfg.loops.append(info)
            ctx = _LoopCtx(info, sync_depth=len(self.sync_stack))
            self.loop_stack.append(ctx)
            body_exits = self.build_stmt(s.body, [(head, None)])
            self.loop_stack.pop()
            # fall-through = normal termination: back edge to the head
            for src, label in body_exits:
                self.cfg.add_edge(src, head, "back" if label is None else label)
                info.back_sources.append(src)
            return ctx.breaks

        if isinstance(s, A.Break):
            ctx = self._target_loop(s.label, s)
            preds = self._release_chain(preds, ctx.sync_depth, s)
            node = self._node(NodeKind.BREAK, stmt=s)
            node.jump_target = ctx.info.loop
            self._attach(preds, node)
            ctx.breaks.append((node, None))
            # exceptional exit of every loop being left
            idx = self.loop_stack.index(ctx)
            for inner in self.loop_stack[idx:]:
                inner.info.exceptional_exits.append(node)
            return []

        if isinstance(s, A.Continue):
            ctx = self._target_loop(s.label, s)
            preds = self._release_chain(preds, ctx.sync_depth, s)
            node = self._node(NodeKind.CONTINUE, stmt=s)
            node.jump_target = ctx.info.loop
            self._attach(preds, node)
            self.cfg.add_edge(node, ctx.info.head, "back")
            ctx.info.back_sources.append(node)
            return []

        if isinstance(s, A.Return):
            preds = self._release_chain(preds, 0, s)
            node = self._node(NodeKind.RETURN, stmt=s)
            self._attach(preds, node)
            self.cfg.add_edge(node, self.cfg.exit)
            for ctx in self.loop_stack:
                ctx.info.exceptional_exits.append(node)
            return []

        if isinstance(s, A.Synchronized):
            acq = self._node(NodeKind.ACQUIRE, stmt=s, expr=s.lock)
            self._attach(preds, acq)
            self.sync_stack.append(s)
            body_exits = self.build_stmt(s.body, [(acq, None)])
            self.sync_stack.pop()
            rel = self._node(NodeKind.RELEASE, stmt=s, expr=s.lock)
            self._attach(body_exits, rel)
            return [(rel, None)]

        raise TypeError(f"cannot lower {type(s).__name__}")

    def build(self, body: A.Stmt) -> ProcCFG:
        exits = self.build_stmt(body, [(self.cfg.entry, None)])
        # implicit return at the end of the procedure body
        self._attach(exits, self.cfg.exit)
        return self.cfg


def build_cfg(proc: A.Procedure) -> ProcCFG:
    """Build the CFG of a procedure body."""
    return CFGBuilder(proc.name, proc).build(proc.body)


def build_stmt_cfg(name: str, stmt: A.Stmt) -> ProcCFG:
    """Build a CFG for a bare statement (init blocks, tests)."""
    return CFGBuilder(name).build(stmt)


def normal_iteration_nodes(cfg: ProcCFG, info: LoopInfo) -> set[CFGNode]:
    """Nodes whose actions *can occur in a normally terminating iteration*
    of the loop body (§4): nodes on some path head → … → head that stays
    within the loop body."""
    body = set(info.body_nodes) | {info.head}
    forward = cfg.reachable_from(info.head, within=body)
    backward = cfg.backward_reachable(
        [n for n in info.back_sources if n in body])
    backward &= body
    result = (forward & backward) - {info.head}
    return result
