"""Command-line interface.

.. code-block:: text

    python -m repro analyze FILE         # atomicity verdicts + report
    python -m repro blocks FILE          # atomic-block partition (§6.4)
    python -m repro variants FILE        # print the exceptional variants
    python -m repro run FILE T0 T1 ...   # execute under a random schedule
    python -m repro mc FILE T0 ... --mode atomic   # model-check
    python -m repro lint FILE            # discipline linter (docs/LINT.md)
    python -m repro report -o out.html   # unified HTML report artifact
    python -m repro graph stats G.jsonl  # state-graph capture analytics
    python -m repro graph diff A B       # structural drift between runs
    python -m repro top EVENTS.jsonl     # live dashboard over an events file
    python -m repro top SPOOL_DIR        # fleet dashboard over worker spools
    python -m repro analyze --corpus --jobs 4      # parallel corpus pass
    python -m repro experiments section63 --jobs 4 # parallel variant grid
    python -m repro bench run            # statistical benchmark matrix
    python -m repro bench trend          # perf trajectory sparklines
    python -m repro bench trend --changepoints   # step detection
    python -m repro bench compare A B    # noise-aware bench diff
    python -m repro perf diff A B        # attributed perf forensics
    python -m repro experiments NAME     # regenerate a table/figure
    python -m repro runs list            # persistent run ledger
    python -m repro runs diff -2 -1      # cross-run classification drift
    python -m repro replay last          # re-execute a recorded run

Thread specs for ``run``/``mc`` are comma-separated call lists, e.g.
``"AddNode(1),AddNode(2)"`` or ``"UpdateTail()*"`` (trailing ``*`` =
repeat forever).

``analyze``/``blocks``/``variants``/``run``/``mc`` accept the
observability flags ``--trace`` (per-phase span timings),
``--metrics`` (counters/gauges), ``--profile`` (ranked hotspot table;
``--profile-sample`` adds per-function ``sys.setprofile``
attribution), ``--json`` (machine-readable output), ``--trace-out
FILE`` (Chrome/Perfetto trace-event export) and ``--events-out FILE``
(structured event stream as JSONL); ``analyze`` also accepts
``--explain`` (per-line classification provenance), ``run``/``mc``
accept ``--explain-cex`` (annotated counterexample timeline on
violation), and ``mc`` accepts ``--progress N`` (live heartbeat with
EWMA throughput + ETA), ``--deadline SECS`` (graceful soft timeout,
exit :data:`EXIT_DEADLINE`), ``--trace-malloc`` (allocation-site
telemetry) and ``--graph-out FILE`` (stream the explored state graph
as schema-versioned JSONL; ``--graph-por-pruned`` additionally records
the transitions POR pruned away).  ``--profile-out FILE`` writes the
region profile in collapsed-stack format.  ``REPRO_TRACE=1`` / ``REPRO_METRICS=1`` /
``REPRO_PROFILE=1`` enable the same from the environment — see
docs/OBSERVABILITY.md.

Every command in :data:`LEDGERED_COMMANDS` additionally records a run
manifest (argv, seed, git rev, outcome, classification summary,
content-addressed artifacts) under ``.repro/runs/<run_id>/`` — the
persistent run ledger.  ``repro runs list|show|diff|gc`` inspects it,
``repro replay RUN`` re-executes a recorded invocation and checks the
outcome (exit code + counterexample fingerprint) reproduces.  Set
``REPRO_LEDGER=0`` to disable, ``REPRO_LEDGER_DIR`` to relocate.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import pathlib
import sys

from repro.analysis import analyze_program, render_figure
from repro.analysis.blocks import partition_procedure
from repro.errors import AssertionViolation, ReproError
from repro.interp import Interp, ThreadSpec, run_random
from repro.mc import Explorer
from repro.obs import ObsConfig, Tracer, ledger
from repro.synl.inline import inline_calls
from repro.synl.parser import parse_program
from repro.synl.printer import pretty
from repro.synl.resolve import resolve

#: ``repro mc`` exit code when the state cap was hit (distinct from a
#: property violation's 1 and a usage error's 2)
EXIT_CAPPED = 3

#: ``repro mc`` exit code when ``--deadline`` stopped the search: the
#: verdict is UNKNOWN but the stop was graceful (telemetry and partial
#: counts are intact), so it must not look like a cap or a crash
EXIT_DEADLINE = 4

#: commands whose invocations are recorded in the persistent run
#: ledger (the meta commands ``runs`` and ``replay`` are not — a
#: ledger query must never grow the ledger)
LEDGERED_COMMANDS = frozenset({
    "analyze", "blocks", "variants", "run", "mc", "lint", "report",
    "experiments", "bench",
})


def _load(path: str, inline: bool = True, with_text: bool = False):
    with open(path) as handle:
        text = handle.read()
    ledger.note_source(path, text)
    program = parse_program(text)
    if inline:
        program = inline_calls(program)
    resolve(program)
    return (program, text) if with_text else program


def _split_calls(text: str) -> list[str]:
    """Split on commas outside parentheses: "P(1,2),Q()" -> 2 calls."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
            continue
        depth += ch == "("
        depth -= ch == ")"
        current.append(ch)
    parts.append("".join(current))
    return [p.strip() for p in parts if p.strip()]


def _parse_spec(text: str) -> ThreadSpec:
    repeat = text.endswith("*")
    if repeat:
        text = text[:-1]
    calls = []
    for part in _split_calls(text):
        name, _, arg_text = part.partition("(")
        arg_text = arg_text.rstrip(")")
        args = tuple(int(a) for a in arg_text.split(",") if a.strip())
        calls.append((name,) + args)
    return ThreadSpec.of(*calls, repeat=repeat)


def _obs_setup(args) -> tuple[ObsConfig, Tracer]:
    """Resolve REPRO_TRACE/REPRO_METRICS/REPRO_PROFILE plus the CLI
    flags."""
    cfg = ObsConfig.from_env().with_flags(
        trace=getattr(args, "trace", False),
        metrics=getattr(args, "metrics", False),
        # --profile-out needs the region profiler recording even when
        # the ranked-table output was not asked for
        profile=getattr(args, "profile", False)
        or bool(getattr(args, "profile_out", None)),
        profile_sample=getattr(args, "profile_sample", False))
    # --trace-out needs recorded spans even without --trace output
    enabled = cfg.trace or bool(getattr(args, "trace_out", None))
    return cfg, Tracer(enabled=enabled)


def _profiler_for(cfg: ObsConfig):
    """(profiler, sampler-or-None) per the resolved config.  The
    sampler doubles as the context manager installing its
    ``sys.setprofile`` hook; when sampling is off the caller gets a
    no-op context instead."""
    from repro.obs.profile import NULL_PROFILER, Profiler, Sampler

    if not cfg.profile:
        return NULL_PROFILER, None
    profiler = Profiler()
    ledger.attach_profiler(profiler)
    return profiler, (Sampler() if cfg.profile_sample else None)


def _sampling(sampler):
    return sampler if sampler is not None else contextlib.nullcontext()


def _emit_profile(cfg: ObsConfig, profiler, sampler=None) -> None:
    """Ranked hotspot table (text mode, ``--profile``)."""
    if not cfg.profile:
        return
    print("\n-- profile (ranked hotspots) --")
    print(profiler.render())
    if sampler is not None and sampler.stats:
        print("\n-- sampled functions --")
        for entry in sampler.top(15):
            print(f"{entry['name']}: {entry['calls']} call(s), "
                  f"{entry['cum_s'] * 1000:.2f} ms")


def _events_for(args):
    """An :class:`EventStream` when any sink flag asks for one."""
    if getattr(args, "trace_out", None) or \
            getattr(args, "events_out", None):
        from repro.obs.events import EventStream
        return EventStream()
    return None


def _write_obs_outputs(args, tracer, events, profiler=None) -> None:
    if getattr(args, "events_out", None) and events is not None:
        events.write_jsonl(args.events_out)
        ledger.ref_artifact(args.events_out)
    if getattr(args, "trace_out", None):
        from repro.obs import chrometrace
        chrometrace.write_trace(args.trace_out, tracer=tracer,
                                events=events)
        ledger.ref_artifact(args.trace_out)
    if getattr(args, "profile_out", None) and profiler is not None:
        profiler.write_folded(args.profile_out)
        ledger.ref_artifact(args.profile_out)


def _note_fleet(doc: dict, spool=None) -> None:
    """Record a fleet merge in the run ledger: the merge-summary
    document as a note + artifact, and each worker's spool files as
    content-addressed sub-artifacts."""
    ledger.note("fleet", doc)
    ledger.add_artifact("fleet.json", doc)
    if spool is not None:
        for wdir in sorted(pathlib.Path(spool).glob("worker-*")):
            for name in ("worker.json", "events.jsonl"):
                if (wdir / name).exists():
                    ledger.ref_artifact(wdir / name)


def _emit_obs(cfg: ObsConfig, tracer: Tracer, metrics: dict) -> None:
    if cfg.metrics and metrics:
        print("\n-- metrics --")
        for name, value in sorted(metrics.items()):
            print(f"{name}: {value}")
    if cfg.trace:
        print("\n-- trace --")
        print(tracer.render())


def _analyze_with_obs(args):
    cfg, tracer = _obs_setup(args)
    profiler, sampler = _profiler_for(cfg)
    with tracer.span("analysis:parse-resolve"):
        program, text = _load(args.file, with_text=True)
    with _sampling(sampler):
        result = analyze_program(program, tracer=tracer,
                                 profiler=profiler,
                                 source_text=text)
    if sampler is not None and result.profile:
        result.profile = profiler.to_dict(sampler)
    return cfg, tracer, result, profiler, sampler


def _summary_store_for(args):
    """The summary store for this invocation, or None for a plain
    (non-incremental) run."""
    from repro.analysis.summaries import engine as summaries

    return summaries.resolve_store(
        getattr(args, "summary_store", None),
        getattr(args, "incremental", False))


def _analyze_incremental(args, store):
    """The --incremental analyze path: resolve through the summary
    store; a full hit replays the stored verdicts without running any
    pass."""
    from repro.analysis.summaries import engine as summaries

    cfg, tracer = _obs_setup(args)
    profiler, sampler = _profiler_for(cfg)
    events = _events_for(args)
    with open(args.file) as handle:
        text = handle.read()
    ledger.note_source(args.file, text)
    with _sampling(sampler):
        result, info = summaries.analyze_with_summaries(
            text, store=store, label=args.file, tracer=tracer,
            profiler=profiler, events=events)
    if sampler is not None and getattr(result, "profile", None):
        result.profile = profiler.to_dict(sampler)
    return cfg, tracer, result, profiler, sampler, events, info


def _figure_text(result, explain: bool) -> str:
    if getattr(result, "cached", False):
        return result.figure(explain)
    return render_figure(result, explain=explain)


def cmd_analyze(args) -> int:
    if args.corpus:
        return _cmd_analyze_corpus(args)
    if args.file is None:
        print("error: analyze needs a FILE (or --corpus)",
              file=sys.stderr)
        return 2
    store = _summary_store_for(args)
    info = None
    if store is not None:
        (cfg, tracer, result, profiler, sampler, events,
         info) = _analyze_incremental(args, store)
        _write_obs_outputs(args, tracer, events, profiler)
    else:
        cfg, tracer, result, profiler, sampler = _analyze_with_obs(args)
        _write_obs_outputs(args, tracer, None, profiler)
    ledger.note_analysis(result)
    if args.json:
        doc = result.to_dict()
        if cfg.trace and not doc.get("trace"):
            doc["trace"] = tracer.to_dict()
        ledger.add_artifact("analysis.json", doc)
        print(json.dumps(doc, indent=2))
    else:
        print(_figure_text(result, args.explain))
        print()
        for name, verdict in result.verdicts.items():
            print(f"{name}: "
                  f"{'ATOMIC' if verdict.atomic else 'not shown atomic'}")
        for diag in result.diagnostics:
            print(f"note: {diag}")
        if result.lint is not None and result.lint.findings:
            print()
            print("-- lint --")
            for finding in result.lint.findings:
                print(finding.render())
        if args.explain and result.downgrades:
            print()
            print("-- downgraded theorem applications --")
            for d in result.downgrades:
                print(f"{d['detail']}")
        if info is not None:
            print()
            print("-- summary cache --")
            print(f"procs: {len(info['hits'])} hit, "
                  f"{len(info['misses'])} miss "
                  f"({len(info['invalidated'])} invalidated); program "
                  f"{'hit (replayed)' if info['cached'] else 'miss'}")
        _emit_obs(cfg, tracer, result.metrics)
        _emit_profile(cfg, profiler, sampler)
    if info is not None and info["drift"]:
        _print_summary_drift(info["drift"])
        return 1
    return 0 if args.lenient or result.all_atomic else 1


def _print_summary_drift(drift: list[dict]) -> None:
    """Render cached-vs-fresh disagreements with the ``runs diff``
    drift-table renderer (exit 1 follows — a drifting cache is the
    soundness alarm)."""
    from repro.obs import rundiff

    print(file=sys.stderr)
    print("summary cache drift: cached verdicts disagree with a "
          "fresh recompute", file=sys.stderr)
    for entry in drift:
        print(f"\n{entry['program']} / {entry['proc']}:",
              file=sys.stderr)
        print(rundiff.render_diff(entry["diff"]), file=sys.stderr)


def _cmd_analyze_corpus(args) -> int:
    """``repro analyze --corpus``: every corpus/examples program
    through one shared summary store.  Exit 1 when any cached verdict
    disagrees with a fresh recompute, 2 when a program fails to
    analyze; atomicity verdicts do not affect the exit code (most
    corpus programs are intentionally non-atomic)."""
    from repro.analysis.summaries import engine as summaries
    from repro.obs import fleet
    from repro.obs.export import run_meta

    cfg, tracer = _obs_setup(args)
    profiler, sampler = _profiler_for(cfg)
    events = _events_for(args)
    store = _summary_store_for(args) or summaries.resolve_store(
        None, True)
    jobs = fleet.resolve_jobs(getattr(args, "jobs", None))
    spool = fleet.default_spool_root() if jobs > 1 else None
    with _sampling(sampler):
        report = summaries.analyze_corpus(store, profiler=profiler,
                                          events=events, jobs=jobs,
                                          spool=spool)
    if "fleet" in report:
        _note_fleet(report["fleet"], spool)
    _write_obs_outputs(args, tracer, events, profiler)
    if args.json:
        doc = {"programs": report["rows"],
               "errors": report["errors"],
               "drift": report["drift"],
               "stats": report["stats"],
               "run_meta": run_meta()}
        if "fleet" in report:
            doc["fleet"] = report["fleet"]
        ledger.add_artifact("corpus-analysis.json", doc)
        print(json.dumps(doc, indent=2))
    else:
        width = max((len(r["label"]) for r in report["rows"]),
                    default=8)
        print(f"{'program':<{width}}  procs  hit  miss  inval  "
              f"cached  atomic")
        for row in report["rows"]:
            print(f"{row['label']:<{width}}  "
                  f"{row['procs']:>5}  {row['hits']:>3}  "
                  f"{row['misses']:>4}  {row['invalidated']:>5}  "
                  f"{'yes' if row['cached'] else 'no':<6}  "
                  f"{'yes' if row['atomic'] else 'no'}")
        for err in report["errors"]:
            print(f"{err['label']}: error: {err['error']}")
        stats = report["stats"]
        print(f"store {stats['root']}: {stats['procs']} proc / "
              f"{stats['programs']} program record(s), "
              f"{stats['bytes']} bytes")
        if "fleet" in report:
            fdoc = report["fleet"]
            print(f"fleet: {fdoc['jobs']} worker(s), "
                  f"{fdoc['items']} target(s), straggler "
                  f"{fdoc['straggler']} ({fdoc['wall_s']:.2f}s)")
        _emit_profile(cfg, profiler, sampler)
    if report["drift"]:
        _print_summary_drift(report["drift"])
        return 1
    return 2 if report["errors"] else 0


def cmd_summaries(args) -> int:
    """Summary-store maintenance and soundness canaries
    (docs/ANALYSIS.md)."""
    from repro.analysis.summaries import engine as summaries
    from repro.obs import rundiff
    from repro.obs.export import run_meta

    if args.summaries_cmd == "canary":
        return _cmd_summaries_canary(args)
    store = summaries.resolve_store(args.store, True)
    if args.summaries_cmd == "list":
        entries = store.entries()
        if args.json:
            print(json.dumps({"entries": entries,
                              "stats": store.stats()}, indent=2))
            return 0
        for entry in entries:
            print(f"{entry['kind']:<7} {entry['key']}  "
                  f"{entry['name']} ({entry['bytes']} bytes)")
        stats = store.stats()
        print(f"{stats['procs']} proc / {stats['programs']} program "
              f"record(s), {stats['bytes']} bytes under "
              f"{stats['root']}")
        return 0
    if args.summaries_cmd == "show":
        for record in store.records():
            if record["key"].startswith(args.key):
                print(json.dumps(record, indent=2, sort_keys=True))
                return 0
        print(f"error: no summary record matches key {args.key!r}",
              file=sys.stderr)
        return 2
    if args.summaries_cmd == "gc":
        removed = store.gc(keep=args.keep)
        print(f"removed {len(removed)} record(s), kept the "
              f"{args.keep} most recent per kind under {store.root}")
        return 0
    # verify: recompute a sampled subset of stored program records
    # and diff against the stored docs — the soundness canary.
    report = summaries.verify_store(store, sample=args.sample)
    if args.json:
        print(json.dumps({**report, "run_meta": run_meta()},
                         indent=2))
    else:
        print(f"verified {report['checked']} stored program "
              f"record(s): {len(report['mismatches'])} mismatch(es)")
        for entry in report["mismatches"]:
            print(f"\n{entry['label']} ({entry['key']}):")
            print(rundiff.render_diff(entry["diff"]))
    return 1 if report["mismatches"] else 0


def _cmd_summaries_canary(args) -> int:
    """Warm-cache canary (the CI job): analyze the corpus twice into
    a fresh store; the second pass must be 100% hits with verdicts
    byte-identical modulo ``run_meta``/``cached`` and an empty
    ``runs diff``."""
    import tempfile

    from repro.analysis.summaries import engine as summaries
    from repro.obs import rundiff
    from repro.obs.export import run_meta
    from repro.obs.schemas import SUMMARY

    store_dir = args.store or tempfile.mkdtemp(prefix="repro-canary-")
    report = summaries.warm_canary(store_dir)
    doc = {"v": SUMMARY, "kind": "summary-stats", "canary": True,
           "ok": report["ok"], "programs": report["programs"],
           "rows": report["rows"], "stats": report["stats"],
           "run_meta": run_meta()}
    if args.stats_out:
        with open(args.stats_out, "w") as handle:
            json.dump(doc, handle, indent=2)
            handle.write("\n")
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        verdict = "PASS" if report["ok"] else "FAIL"
        print(f"warm-cache canary: {verdict} "
              f"({report['programs']} program(s), second pass "
              f"{'100% hits' if not report['not_cached'] else 'MISSED: ' + ', '.join(report['not_cached'])})")
        stats = report["stats"]
        print(f"store: {stats['procs']} proc / {stats['programs']} "
              f"program record(s), {stats['bytes']} bytes")
        for entry in report["mismatched"]:
            print(f"\n{entry['label']}: cold/warm verdicts differ:")
            print(rundiff.render_diff(entry["diff"]))
        for err in report["cold_errors"] + report["warm_errors"]:
            print(f"{err['label']}: error: {err['error']}")
    if report["drift"]:
        _print_summary_drift(report["drift"])
    return 0 if report["ok"] else 1


def cmd_blocks(args) -> int:
    cfg, tracer, result, profiler, sampler = _analyze_with_obs(args)
    partitions = {name: partition_procedure(result, name)
                  for name in result.verdicts}
    _write_obs_outputs(args, tracer, None, profiler)
    ledger.note_analysis(result)
    ledger.note_partitions({
        f"{name}/{p.variant_name}": [str(b.atomicity) for b in p.blocks]
        for name, parts in partitions.items() for p in parts})
    if args.json:
        doc = {
            "procedures": [
                {"name": name,
                 "partitions": [
                     {"variant": p.variant_name,
                      "n_lines": p.n_lines,
                      "n_blocks": p.n_blocks,
                      "blocks": [
                          {"atomicity": str(b.atomicity),
                           "lines": [line.text for line in b.lines]}
                          for b in p.blocks]}
                     for p in parts]}
                for name, parts in partitions.items()],
        }
        if result.metrics:
            doc["metrics"] = dict(result.metrics)
        if cfg.trace:
            doc["trace"] = tracer.to_dict()
        if result.profile:
            doc["profile"] = dict(result.profile)
        print(json.dumps(doc, indent=2))
        return 0
    for parts in partitions.values():
        for partition in parts:
            print(partition.render())
            print()
    _emit_obs(cfg, tracer, result.metrics)
    _emit_profile(cfg, profiler, sampler)
    return 0


def cmd_variants(args) -> int:
    cfg, tracer = _obs_setup(args)
    with tracer.span("variants:parse-resolve"):
        program = _load(args.file)
    result = analyze_program(program, tracer=tracer)
    _write_obs_outputs(args, tracer, None)
    ledger.note_analysis(result)
    if args.json:
        doc = {"variants": [{"name": v.name,
                             "procedure": v.proc.name,
                             "source": pretty(v.proc)}
                            for v in result.variant_set.variants]}
        if result.metrics:
            doc["metrics"] = dict(result.metrics)
        if cfg.trace:
            doc["trace"] = tracer.to_dict()
        print(json.dumps(doc, indent=2))
        return 0
    for variant in result.variant_set.variants:
        print(pretty(variant.proc))
        print()
    _emit_obs(cfg, tracer, result.metrics)
    return 0


def _explain_cex(args, result, interp):
    """Annotate a violating path against a fresh analysis of the same
    source (best-effort: an unanalyzable program still renders the
    bare timeline)."""
    from repro.mc.cex import build_cex

    try:
        analysis = analyze_program(_load(args.file))
    except ReproError:
        analysis = None
    return build_cex(result, interp, analysis)


def cmd_run(args) -> int:
    cfg, tracer = _obs_setup(args)
    events = _events_for(args)
    with tracer.span("run:parse-resolve"):
        program = _load(args.file)
    interp = Interp(program, events=events)
    specs = [_parse_spec(s) for s in args.threads]
    world = interp.make_world(specs)
    path_log = [] if (args.explain_cex or args.json) else None
    violation = None
    with tracer.span("run:execute", seed=args.seed):
        try:
            run_random(interp, world, seed=args.seed,
                       max_steps=args.max_steps, path_log=path_log,
                       events=events)
        except AssertionViolation as exc:
            violation = str(exc)
    cex = None
    if violation is not None and args.explain_cex:
        from repro.mc.cex import RunResultView
        cex = _explain_cex(
            args, RunResultView(violation, path_log), interp)
    _write_obs_outputs(args, tracer, events)
    ledger.note_run(args.seed, violation, world.history)
    done = all(t.done for t in world.threads)
    if args.json:
        doc = {
            "seed": args.seed,
            "violation": violation,
            "done": done,
            "history": [str(e) for e in world.history],
        }
        if path_log is not None:
            doc["path"] = path_log
        if cex is not None:
            doc["counterexample"] = cex.to_dict()
        if cfg.trace:
            doc["spans"] = tracer.to_dict()
        print(json.dumps(doc, indent=2))
        return 1 if violation is not None else 0
    for event in world.history:
        print(event)
    if violation is not None:
        print(f"-- assertion violation (seed={args.seed}): {violation}")
        if cex is not None:
            print()
            print(cex.render())
        return 1
    status = "all threads done" if done else "step budget exhausted"
    print(f"-- {status} (seed={args.seed})")
    _emit_obs(cfg, tracer, {})
    return 0


def cmd_mc(args) -> int:
    cfg, tracer = _obs_setup(args)
    events = _events_for(args)
    profiler, sampler = _profiler_for(cfg)
    program = _load(args.file)
    interp = Interp(program, events=events)
    specs = [_parse_spec(s) for s in args.threads]
    # uid -> (proc, text, mover) source annotations back the heatmap
    # document (--json) and the graph edges' mover tags (--graph-out);
    # best-effort — an unanalyzable program still runs, unannotated
    analysis = annotations = None
    if args.graph_out or args.json:
        from repro.obs import heatmap
        try:
            analysis = analyze_program(_load(args.file))
        except ReproError:
            analysis = None
        annotations = heatmap.uid_annotations(interp, analysis)
    graph = None
    if args.graph_out:
        from repro.obs import heatmap
        from repro.obs.graph import GraphWriter, stable_uid_map
        graph = GraphWriter(args.graph_out, mode=args.mode,
                            threads=len(specs),
                            record_pruned=args.graph_por_pruned,
                            mover_of=heatmap.mover_fn(annotations),
                            uid_map=stable_uid_map(interp),
                            events=events)
    try:
        with _sampling(sampler):
            result = Explorer(interp, specs, mode=args.mode,
                              max_states=args.max_states,
                              tracer=tracer,
                              events=events, profiler=profiler,
                              progress=args.progress,
                              trace_malloc=args.trace_malloc,
                              deadline=args.deadline,
                              graph=graph).run()
    finally:
        if graph is not None:
            graph.close()
    if graph is not None:
        ledger.ref_artifact(args.graph_out)
    if sampler is not None and result.profile:
        result.profile = profiler.to_dict(sampler)
    cex = None
    if result.violation and args.explain_cex:
        cex = _explain_cex(args, result, interp)
    _write_obs_outputs(args, tracer, events, profiler)
    if args.json:
        doc = result.to_dict()
        if annotations is not None:
            from repro.obs.heatmap import build_heatmap
            doc["heatmap"] = build_heatmap(
                result.metrics.get("mc.stmt_heat", []), annotations,
                annotated=analysis is not None)
        if cex is not None:
            doc["counterexample"] = cex.to_dict()
        if cfg.trace:
            doc["spans"] = tracer.to_dict()
        ledger.add_artifact("mc.json", doc)
        print(json.dumps(doc, indent=2))
    else:
        print(result)
        if cex is not None:
            print()
            print(cex.render())
        elif result.violation:
            for step in result.trace:
                print(f"  {step}")
        _emit_obs(cfg, tracer, result.metrics)
        _emit_profile(cfg, profiler, sampler)
    if result.violation:
        return 1
    if result.deadline_hit:
        print(f"note: deadline reached after {result.states} states "
              f"({result.elapsed:.2f}s); verdict UNKNOWN — the "
              f"search stopped gracefully with partial telemetry "
              f"intact (raise --deadline to finish)",
              file=sys.stderr)
        return EXIT_DEADLINE
    if result.capped:
        print(f"error: state cap reached ({result.states} states "
              f"explored); the search is incomplete — raise "
              f"--max-states (currently {args.max_states})",
              file=sys.stderr)
        return EXIT_CAPPED
    return 0


def cmd_lint(args) -> int:
    """Discipline linter (docs/LINT.md).  Exit codes: 0 clean (or
    manifest fully matched), 1 warnings only (or manifest deviation),
    2 errors."""
    from repro.analysis.lint import lint_program
    from repro.obs.export import LINT_REPORT_SCHEMA, validate
    from repro.obs.metrics import MetricsRegistry

    cfg, tracer = _obs_setup(args)
    events = _events_for(args)
    profiler, sampler = _profiler_for(cfg)
    registry = MetricsRegistry()
    rules = [r.strip() for r in (args.rules or "").split(",")
             if r.strip()] or None

    targets: list[tuple[str, str]] = []
    if args.corpus:
        from repro import corpus as corpus_mod
        for name in corpus_mod.__all__:
            targets.append((name, getattr(corpus_mod, name)))
    for path in args.files:
        with open(path) as handle:
            targets.append((path, handle.read()))
    if not targets:
        print("error: nothing to lint (give FILE arguments and/or "
              "--corpus)", file=sys.stderr)
        return 2

    results = []
    with _sampling(sampler):
        for label, source in targets:
            with tracer.span("lint:target", target=label):
                results.append(lint_program(
                    source, label=label, rules=rules,
                    metrics=registry, events=events,
                    profiler=profiler))
    _write_obs_outputs(args, tracer, events, profiler)
    ledger.note_lint(results)

    if args.manifest:
        with open(args.manifest) as handle:
            manifest = json.load(handle)
        expected = manifest.get("expected", {})
        failures: list[str] = []
        seen = set()
        for res in results:
            seen.add(res.target)
            want = expected.get(res.target, {})
            got = res.counts_by_rule()
            if got != want:
                for rule in sorted(set(want) | set(got)):
                    w, g = want.get(rule, 0), got.get(rule, 0)
                    if w != g:
                        failures.append(
                            f"{res.target}: {rule} expected {w}, "
                            f"got {g}")
        for name in sorted(set(expected) - seen):
            failures.append(f"{name}: listed in manifest but not "
                            f"linted in this run")
        if args.json:
            print(json.dumps({"v": 1, "matched": not failures,
                              "failures": failures}, indent=2))
        elif failures:
            for line in failures:
                print(f"MISMATCH {line}")
        else:
            print(f"manifest ok: {len(results)} target(s) match "
                  f"{args.manifest}")
        return 1 if failures else 0

    if args.json:
        doc = {"v": 1, "targets": [r.to_dict() for r in results]}
        errors = validate(doc, LINT_REPORT_SCHEMA)
        if errors:  # defensive: to_dict and schema must stay in sync
            print("error: lint JSON failed schema validation: "
                  + "; ".join(errors), file=sys.stderr)
            return 2
        ledger.add_artifact("lint.json", doc)
        print(json.dumps(doc, indent=2))
    else:
        for res in results:
            print(res.render())
        _emit_obs(cfg, tracer, registry.snapshot())
        _emit_profile(cfg, profiler, sampler)
    if any(r.errors for r in results):
        return 2
    if any(r.warnings for r in results):
        return 1
    return 0


def cmd_report(args) -> int:
    """Aggregate observability artifacts into one self-contained HTML
    file (docs/OBSERVABILITY.md).  Exit codes: 0 complete report,
    1 rendered but with missing sections (self-check failure), 2 no
    usable inputs."""
    from repro.obs import report_html

    if args.self_check:
        code, message = report_html.self_check()
        print(message)
        return code
    paths = list(args.inputs)
    if not paths and pathlib.Path("benchmarks/out").is_dir():
        paths = ["benchmarks/out"]
    if not paths:
        print("error: no inputs (pass artifact files/directories, or "
              "run from a checkout with benchmarks/out)",
              file=sys.stderr)
        return 2
    inputs = report_html.collect_inputs(paths,
                                        baseline_dir=args.baselines)
    html_text = report_html.render_report(inputs, title=args.title)
    out = pathlib.Path(args.output)
    out.write_text(html_text)
    problems = report_html.check_html(html_text)
    n_charts = html_text.count("<svg")
    print(f"wrote {out} ({len(html_text)} bytes, "
          f"{n_charts} chart(s))")
    if problems:
        print("warning: incomplete report: " + "; ".join(problems),
              file=sys.stderr)
        return 1
    return 0


def cmd_bench(args) -> int:
    """Statistical benchmark harness (docs/OBSERVABILITY.md).

    ``run`` executes the declarative matrix with warmup + N repeats,
    writes schema-versioned median-of-repeats ``BENCH_*.json`` files
    and appends one line to the append-only ``BENCH_history.jsonl``
    trajectory; ``trend`` renders per-record sparklines over that
    trajectory; ``compare`` diffs two bench record sets with
    noise-aware verdicts (exit 1 on significant drift, 2 on a usage
    error)."""
    from repro.obs import bench

    if args.bench_cmd == "run":
        if args.repeats is not None:
            repeats = bench.resolve_repeats(args.repeats)
        elif args.quick:
            repeats = 1          # --quick: 1 repeat, no warmup
        else:
            repeats = bench.resolve_repeats(None)
        warmup = args.warmup if args.warmup is not None \
            else (0 if args.quick else bench.DEFAULT_WARMUP)
        cases = bench.default_matrix(quick=args.quick)
        out_dir = pathlib.Path(args.out)
        # progress is human-readable and goes to stderr even with
        # --json: stdout must stay machine-clean either way
        progress = (lambda line: print(line, file=sys.stderr))
        docs = bench.run_matrix(cases, repeats, warmup,
                                progress=progress)
        paths = bench.write_run(docs, out_dir)
        for filename, doc in sorted(docs.items()):
            ledger.add_artifact(filename, doc)
        history_path = pathlib.Path(args.history) if args.history \
            else out_dir / bench.DEFAULT_HISTORY
        entry = bench.history_line(docs)
        bench.append_history(history_path, entry)
        ledger.ref_artifact(history_path)
        if args.json:
            print(json.dumps({"v": 1, "repeats": repeats,
                              "warmup": warmup,
                              "files": [str(p) for p in paths],
                              "history": str(history_path),
                              "entry": entry}, indent=2))
        else:
            n = sum(len(d["records"]) for d in docs.values())
            print(f"wrote {', '.join(str(p) for p in paths)} "
                  f"({n} record(s), {repeats} repeat(s), "
                  f"warmup {warmup}); appended {history_path}")
        return 0

    if args.bench_cmd == "trend":
        history = bench.load_history(args.history)
        window = history[-args.last:] if args.last else history
        steps = None
        if args.changepoints:
            from repro.obs import changepoint
            steps = changepoint.detect_history(window,
                                               metric=args.metric)
        if args.json:
            doc = {"v": 1, "runs": len(history),
                   "metric": args.metric,
                   "series": bench.trend_series(window, args.metric)}
            if steps is not None:
                doc["changepoints"] = steps
            print(json.dumps(doc, indent=2))
            return 0
        print(bench.render_trend(history, metric=args.metric,
                                 last=args.last))
        if steps is not None:
            from repro.obs import changepoint
            print(changepoint.render_steps(steps, args.metric))
        return 0

    # compare
    try:
        side_a = bench.resolve_side(args.a, baseline_dir=args.baselines)
        side_b = bench.resolve_side(args.b, baseline_dir=args.baselines)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = bench.compare_sets(side_a, side_b,
                                threshold=args.threshold)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(bench.render_compare(report))
    return 1 if report["drift"] else 0


def cmd_perf(args) -> int:
    """Perf regression forensics (docs/OBSERVABILITY.md).  ``diff``
    resolves two profile-bearing operands — ledger run tokens exactly
    like ``runs diff`` (id/prefix/'last'/-N), BENCH/profile/analysis/
    mc JSON files, ``--profile-out`` folded files, or directories of
    ``BENCH_*.json`` — and prints the ranked work-counter attribution
    table.  Exit 0 when no attributed drift (identical seeded runs
    diff empty by construction), 1 on drift, 2 on a usage error."""
    from repro.obs import perfdiff

    threshold = args.threshold if args.threshold is not None \
        else perfdiff.DEFAULT_THRESHOLD
    try:
        side_a = perfdiff.resolve_side(args.a, root=args.root)
        side_b = perfdiff.resolve_side(args.b, root=args.root)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = perfdiff.attribute(side_a, side_b, threshold=threshold)
    if args.out:
        # written regardless of the exit code — CI uploads the
        # attribution artifact from failing and passing runs alike
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2) + "\n")
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(perfdiff.render_attribution(report))
    return 1 if report["drift"] else 0


def cmd_graph(args) -> int:
    """State-graph capture analytics (docs/OBSERVABILITY.md).

    ``stats`` prints structural analytics of one capture, ``dot``
    exports small captures as GraphViz DOT, ``diff`` compares two
    captures by canonical node/edge ids (exit 0 identical, 1 drifted,
    2 usage error) — the structural twin of ``runs diff``."""
    from repro.obs import graph as graph_mod

    try:
        if args.graph_cmd == "stats":
            stats = graph_mod.graph_stats(
                graph_mod.read_graph(args.capture))
            if args.json:
                print(json.dumps(stats, indent=2))
            else:
                print(graph_mod.render_stats(stats))
            return 0
        if args.graph_cmd == "dot":
            cap = args.max_nodes if args.max_nodes is not None \
                else graph_mod.DEFAULT_DOT_CAP
            dot = graph_mod.to_dot(graph_mod.read_graph(args.capture),
                                   max_nodes=cap)
            if args.output:
                pathlib.Path(args.output).write_text(dot)
                print(f"wrote {args.output}")
            else:
                print(dot)
            return 0
        # diff
        drift = graph_mod.diff_graphs(graph_mod.read_graph(args.a),
                                      graph_mod.read_graph(args.b))
        if args.json:
            print(json.dumps(drift, indent=2))
        else:
            print(graph_mod.render_diff(drift, args.a, args.b))
        return 0 if drift["identical"] else 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def cmd_top(args) -> int:
    """Live dashboard over an ``--events-out`` JSONL (docs/
    OBSERVABILITY.md).  Attaches by tailing the file — no shared
    process state — and exits 0 once the run ends (or the duration
    elapses), 2 when no events ever appeared."""
    from repro.obs import top

    interval = args.interval if args.interval is not None \
        else top.DEFAULT_INTERVAL
    return top.run_top(args.events_file, interval=interval,
                       duration=args.duration, once=args.once,
                       as_json=args.json)


def cmd_experiments(args) -> int:
    """Regenerate a table/figure of the paper, through the obs/ledger
    substrate: the run lands in the ledger with a deterministic
    ``experiments`` note (``repro runs diff`` compares the per-mode
    verdicts, never timings), ``--json`` emits a machine-readable
    document, and ``section63 --jobs N`` fans the none/por/atomic/both
    variant grid across fleet worker processes."""
    from repro import experiments
    from repro.obs import fleet

    module = getattr(experiments, args.name, None)
    if module is None or not hasattr(module, "main"):
        names = ", ".join(experiments.__all__)
        print(f"unknown experiment {args.name!r}; one of: {names}",
              file=sys.stderr)
        return 2
    cfg, tracer = _obs_setup(args)
    profiler, sampler = _profiler_for(cfg)
    events = _events_for(args)
    note: dict = {"name": args.name}
    doc: dict = {"name": args.name}
    jobs = fleet.resolve_jobs(args.jobs)
    if args.name == "section63":
        from repro.experiments import section63

        n_threads = args.threads if args.threads is not None else 3
        kwargs = {"n_threads": n_threads, "jobs": jobs}
        if args.max_states is not None:
            kwargs["max_states"] = args.max_states
        if jobs > 1:
            kwargs["spool"] = fleet.default_spool_root()
        with _sampling(sampler):
            result = section63.run(**kwargs)
        text = section63.render(result, n_threads)
        note["verdicts"] = result.verdicts()
        note["matches_paper"] = result.matches_paper
        doc.update(note)
        if result.fleet is not None:
            doc["fleet"] = result.fleet
            _note_fleet(result.fleet, kwargs.get("spool"))
    else:
        if jobs > 1:
            print(f"note: --jobs applies to the section63 variant "
                  f"grid; running {args.name!r} in-process",
                  file=sys.stderr)
        with _sampling(sampler):
            text = module.main()
    ledger.note("experiments", note)
    ledger.add_artifact("experiment.json",
                        {"name": args.name, "text": text, **note})
    _write_obs_outputs(args, tracer, events, profiler)
    if args.json:
        doc["text"] = text
        print(json.dumps(doc, indent=2))
    else:
        print(text)
        _emit_profile(cfg, profiler, sampler)
    return 0


def cmd_runs(args) -> int:
    """Persistent run ledger queries (docs/OBSERVABILITY.md).  ``diff``
    exits 0 on zero drift, 1 when the runs drifted, 2 on a usage
    error; the other subcommands exit 0/2."""
    from repro.obs import rundiff

    root = ledger.ledger_root(args.root)
    if args.runs_cmd == "list":
        manifests = ledger.list_runs(root)
        if args.json:
            print(json.dumps([
                {"run_id": m["run_id"], "command": m["command"],
                 "outcome": m["outcome"], "exit_code": m["exit_code"],
                 "wall_s": m["wall_s"], "seed": m.get("seed"),
                 "crash": bool(m.get("crash"))}
                for m in manifests], indent=2))
            return 0
        if not manifests:
            print(f"no recorded runs under {root}")
            return 0
        for m in manifests:
            crash = " crash" if m.get("crash") else ""
            print(f"{m['run_id']}  {m['outcome']} "
                  f"(exit {m['exit_code']}, {m['wall_s']:.3f}s)"
                  f"{crash}")
        return 0
    if args.runs_cmd == "show":
        run_id = ledger.resolve_run(root, args.run)
        print(json.dumps(ledger.load_manifest(root, run_id), indent=2))
        return 0
    if args.runs_cmd == "diff":
        a = ledger.load_manifest(root, ledger.resolve_run(root, args.a))
        b = ledger.load_manifest(root, ledger.resolve_run(root, args.b))
        diff = rundiff.diff_manifests(a, b)
        if args.json:
            print(json.dumps(diff, indent=2))
        else:
            print(rundiff.render_diff(diff))
        return 0 if diff["empty"] else 1
    # gc
    removed = ledger.gc(root, keep=args.keep)
    print(f"removed {len(removed)} run(s), kept {args.keep} most "
          f"recent under {root}")
    return 0


def cmd_replay(args) -> int:
    """Re-execute a recorded run's argv and check the outcome
    reproduces: same exit code, same counterexample fingerprint, zero
    cross-run drift.  Exit 0 when reproduced, 1 when diverged."""
    import io

    root = ledger.ledger_root(args.root)
    run_id = ledger.resolve_run(root, args.run)
    manifest = ledger.load_manifest(root, run_id)
    if manifest["command"] not in LEDGERED_COMMANDS:
        print(f"error: run {run_id} recorded non-replayable command "
              f"{manifest['command']!r}", file=sys.stderr)
        return 2
    # the replay recorder collects the fresh outcome without touching
    # the ledger on disk; the nested main() sees it as current, so the
    # inner command's notes land here instead of opening a new run
    rec = ledger.start(manifest["argv"], manifest["command"],
                       root=root, persist=False, force=True)
    if rec is None:  # pragma: no cover — replay inside replay
        print("error: a run is already being recorded", file=sys.stderr)
        return 2
    buffer = io.StringIO()
    try:
        with contextlib.redirect_stdout(buffer):
            code = main(list(manifest["argv"]))
    except Exception as exc:
        ledger.stop(rec)
        fresh = rec.crash(exc)
    else:
        ledger.stop(rec)
        fresh = rec.finish(code)
    verdict = ledger.compare_replay(manifest, fresh)
    if args.json:
        print(json.dumps({"v": 1, "run_id": run_id,
                          "argv": manifest["argv"], **verdict},
                         indent=2))
    else:
        status = "reproduced" if verdict["reproduced"] else "DIVERGED"
        print(f"replay {run_id}: {status}")
        print(f"  argv: {' '.join(manifest['argv'])}")
        print(f"  exit: recorded {manifest['exit_code']}, replay "
              f"{fresh['exit_code']}")
        for key in ("mc", "run"):
            a = (manifest.get(key) or {}).get("fingerprint")
            b = (fresh.get(key) or {}).get("fingerprint")
            if a is not None or b is not None:
                match = "match" if a == b else "MISMATCH"
                print(f"  {key} fingerprint: {match} "
                      f"(recorded {a}, replay {b})")
        if not verdict["drift"]["empty"]:
            from repro.obs import rundiff
            print(rundiff.render_diff(verdict["drift"]))
    return 0 if verdict["reproduced"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Static atomicity analysis for non-blocking "
                    "programs (Wang & Stoller, PPoPP 2005)")
    sub = parser.add_subparsers(dest="command", required=True)

    obs = argparse.ArgumentParser(add_help=False)
    obs.add_argument("--trace", action="store_true",
                     help="print per-phase span timings "
                          "(also: REPRO_TRACE=1)")
    obs.add_argument("--metrics", action="store_true",
                     help="print the metrics report "
                          "(also: REPRO_METRICS=1)")
    obs.add_argument("--json", action="store_true",
                     help="emit a machine-readable JSON document "
                          "instead of text")
    obs.add_argument("--trace-out", metavar="FILE",
                     help="write spans + event stream as a Chrome/"
                          "Perfetto trace-event file")
    obs.add_argument("--events-out", metavar="FILE",
                     help="write the structured event stream as JSONL")
    obs.add_argument("--profile", action="store_true",
                     help="deterministic work-counter profiler: ranked "
                          "hotspot table in text output, 'profile' "
                          "document in --json (also: REPRO_PROFILE=1)")
    obs.add_argument("--profile-sample", action="store_true",
                     help="additionally attribute time per Python "
                          "function via sys.setprofile (slow; implies "
                          "--profile; also: REPRO_PROFILE=sample)")
    obs.add_argument("--profile-out", metavar="FILE",
                     help="write the region profile in collapsed-"
                          "stack (folded) format — one 'outer;inner "
                          "usecs' line per nesting path, flamegraph."
                          "pl/speedscope-ready (implies --profile)")

    p = sub.add_parser("analyze", parents=[obs],
                       help="run the atomicity inference")
    p.add_argument("file", nargs="?",
                   help="SYNL source file (omit with --corpus)")
    p.add_argument("--lenient", action="store_true",
                   help="exit 0 even when procedures are not atomic")
    p.add_argument("--explain", action="store_true",
                   help="annotate every line with its classification "
                        "provenance (which theorem fired)")
    p.add_argument("--incremental", action="store_true",
                   help="resolve through the content-addressed "
                        "summary cache (docs/ANALYSIS.md); also: "
                        "REPRO_SUMMARIES=DIR")
    p.add_argument("--summary-store", metavar="DIR",
                   help="summary store directory (implies "
                        "--incremental; default .repro/summaries)")
    p.add_argument("--corpus", action="store_true",
                   help="analyze every corpus/examples program "
                        "through one shared store; exit 1 when any "
                        "cached verdict disagrees with a fresh "
                        "recompute")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="with --corpus: fan targets across N forked "
                        "worker processes, each spooling per-worker "
                        "telemetry merged back into one run (also: "
                        "REPRO_JOBS); output is byte-identical to a "
                        "sequential pass")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("blocks", parents=[obs],
                       help="atomic-block partition (§6.4)")
    p.add_argument("file")
    p.set_defaults(fn=cmd_blocks)

    p = sub.add_parser("variants", parents=[obs],
                       help="print exceptional variants")
    p.add_argument("file")
    p.set_defaults(fn=cmd_variants)

    p = sub.add_parser("run", parents=[obs],
                       help="execute under a random schedule")
    p.add_argument("file")
    p.add_argument("threads", nargs="+",
                   help='thread specs, e.g. "Enq(1),Deq()" "Up()*"')
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-steps", type=int, default=100_000)
    p.add_argument("--explain-cex", action="store_true",
                   help="on violation, render the interleaving as an "
                        "annotated per-thread timeline (mover types + "
                        "theorem citations)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("mc", parents=[obs],
                       help="explicit-state model checking")
    p.add_argument("file")
    p.add_argument("threads", nargs="+")
    p.add_argument("--mode", default="full",
                   choices=["full", "por", "atomic", "both"])
    p.add_argument("--max-states", type=int, default=1_000_000,
                   help="abort the search after N states (a capped "
                        "run exits with status 3)")
    p.add_argument("--explain-cex", action="store_true",
                   help="on violation, render the counterexample as "
                        "an annotated per-thread timeline (mover "
                        "types + theorem citations)")
    p.add_argument("--progress", type=float, metavar="SECONDS",
                   default=None,
                   help="print a live heartbeat (states/transitions/"
                        "frontier/depth/RSS) to stderr every N "
                        "seconds, plus a final summary beat")
    p.add_argument("--trace-malloc", action="store_true",
                   help="record top allocation sites via tracemalloc "
                        "(mc.malloc_top metric; slows the search)")
    p.add_argument("--deadline", type=float, metavar="SECONDS",
                   default=None,
                   help="soft wall-clock budget: stop the search "
                        "gracefully after N seconds with verdict "
                        "UNKNOWN, partial counts and full telemetry "
                        f"(exit status {EXIT_DEADLINE})")
    p.add_argument("--graph-out", metavar="FILE", default=None,
                   help="stream the visited state graph as JSONL "
                        "(canonical-hash node ids, mover-tagged "
                        "edges; inspect with 'repro graph'; record "
                        "emission thins out above "
                        "$REPRO_GRAPH_NODE_CAP nodes)")
    p.add_argument("--graph-por-pruned", action="store_true",
                   help="additionally record the transitions POR "
                        "elected not to explore (separate 'pruned' "
                        "records; executes the not-taken successors, "
                        "so the search does full-expansion work)")
    p.set_defaults(fn=cmd_mc)

    p = sub.add_parser("lint", parents=[obs],
                       help="rule-based discipline linter "
                            "(docs/LINT.md); exit 2 on errors")
    p.add_argument("files", nargs="*",
                   help="SYNL source files to lint")
    p.add_argument("--corpus", action="store_true",
                   help="also lint every shipped corpus program")
    p.add_argument("--manifest", metavar="FILE",
                   help="expected-findings manifest (JSON mapping "
                        "target -> {rule: count}); exit 1 on any "
                        "deviation, 0 when everything matches")
    p.add_argument("--rules", metavar="IDS",
                   help="comma-separated rule ids or family prefixes "
                        "to report (e.g. 'llsc,race.unlocked')")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("report",
                       help="aggregate observability artifacts into "
                            "one self-contained HTML file")
    p.add_argument("inputs", nargs="*",
                   help="JSON/JSONL/TXT artifacts or directories "
                        "(default: benchmarks/out when present)")
    p.add_argument("-o", "--output", default="report.html",
                   help="output file (default: report.html)")
    p.add_argument("--baselines", default="benchmarks/baselines",
                   help="committed bench baselines for the trajectory "
                        "comparison (default: benchmarks/baselines)")
    p.add_argument("--title", default="repro report",
                   help="report title")
    p.add_argument("--self-check", action="store_true",
                   help="render the embedded fixture instead and exit "
                        "non-zero if any section is missing (CI "
                        "canary; writes nothing)")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("bench",
                       help="statistical benchmark harness: run the "
                            "matrix, render the perf trajectory, "
                            "compare runs (docs/OBSERVABILITY.md)")
    bench_sub = p.add_subparsers(dest="bench_cmd", required=True)
    q = bench_sub.add_parser(
        "run", help="execute the benchmark matrix (warmup + N "
                    "repeats), write median-of-repeats BENCH_*.json "
                    "and append the trajectory line")
    q.add_argument("--repeats", type=int, default=None, metavar="N",
                   help="timed repeats per case (default: "
                        "$REPRO_BENCH_REPEATS or 5)")
    q.add_argument("--warmup", type=int, default=None, metavar="N",
                   help="discarded warmup runs per case (default: 1; "
                        "0 under --quick)")
    q.add_argument("--quick", action="store_true",
                   help="harness smoke: 1 repeat, no warmup, minimal "
                        "matrix (one analysis + one exploration)")
    q.add_argument("--out", default="benchmarks/out", metavar="DIR",
                   help="output directory (default: benchmarks/out)")
    q.add_argument("--history", default=None, metavar="FILE",
                   help="trajectory file (default: "
                        "OUT/BENCH_history.jsonl)")
    q.add_argument("--json", action="store_true",
                   help="emit a machine-readable JSON document "
                        "instead of text")
    q.set_defaults(fn=cmd_bench)
    q = bench_sub.add_parser(
        "trend", help="per-record sparkline trajectories over "
                      "BENCH_history.jsonl")
    q.add_argument("--history", default="benchmarks/out/"
                                        "BENCH_history.jsonl",
                   metavar="FILE")
    q.add_argument("--metric", default="wall_s",
                   choices=["wall_s", "states_per_s"],
                   help="which per-record number to plot "
                        "(default: wall_s)")
    q.add_argument("--last", type=int, default=None, metavar="N",
                   help="only the most recent N runs")
    q.add_argument("--changepoints", action="store_true",
                   help="run the e-divisive-style step detector over "
                        "every (case, metric) series and annotate "
                        "detected level shifts with the nearest git "
                        "rev from the env fingerprint")
    q.add_argument("--json", action="store_true",
                   help="emit a machine-readable JSON document "
                        "instead of text")
    q.set_defaults(fn=cmd_bench)
    q = bench_sub.add_parser(
        "compare", help="noise-aware diff of two bench record sets "
                        "(exit 1 on significant drift)")
    q.add_argument("a", help="older side: a BENCH_*.json file, a "
                             "directory, 'baseline', or 'ledger'")
    q.add_argument("b", help="newer side (same forms)")
    q.add_argument("--threshold", type=float, default=0.10,
                   metavar="FRAC",
                   help="relative wall-time delta a drift must clear "
                        "(default: 0.10)")
    q.add_argument("--baselines", default="benchmarks/baselines",
                   metavar="DIR",
                   help="directory the literal 'baseline' resolves "
                        "to (default: benchmarks/baselines)")
    q.add_argument("--json", action="store_true",
                   help="emit a machine-readable JSON document "
                        "instead of text")
    q.set_defaults(fn=cmd_bench)

    p = sub.add_parser("perf",
                       help="perf regression forensics: differential "
                            "profiling with ranked attribution "
                            "(docs/OBSERVABILITY.md)")
    perf_sub = p.add_subparsers(dest="perf_cmd", required=True)
    q = perf_sub.add_parser(
        "diff", help="ranked work-counter attribution between two "
                     "profile-bearing runs (exit 1 on attributed "
                     "drift, 0 when identical seeded runs diff empty)")
    q.add_argument("a", help="older side: ledger run (id/prefix/"
                             "'last'/-N), a BENCH/profile/analysis/mc "
                             "JSON file, a --profile-out folded file, "
                             "or a directory of BENCH_*.json")
    q.add_argument("b", help="newer side (same forms)")
    q.add_argument("--threshold", type=float, default=None,
                   metavar="FRAC",
                   help="relative attributed-work growth a region "
                        "must exceed to gate (default: 0.25, the "
                        "watchdog's wall_s threshold)")
    q.add_argument("--out", metavar="FILE", default=None,
                   help="also write the attribution document as JSON "
                        "(written on drift and no-drift alike — the "
                        "CI artifact)")
    q.add_argument("--root", default=None, metavar="DIR",
                   help="ledger directory for run operands (default: "
                        "$REPRO_LEDGER_DIR or .repro/runs)")
    q.add_argument("--json", action="store_true",
                   help="emit the attribution document instead of "
                        "the table")
    q.set_defaults(fn=cmd_perf)

    p = sub.add_parser("graph",
                       help="state-graph capture analytics: stats, "
                            "DOT export, structural diff "
                            "(docs/OBSERVABILITY.md)")
    graph_sub = p.add_subparsers(dest="graph_cmd", required=True)
    q = graph_sub.add_parser(
        "stats", help="node/edge/pruned counts, branching and "
                      "in-degree distributions, depth layers, "
                      "terminal/quiescent sets, POR reduction ratio")
    q.add_argument("capture", help="a --graph-out JSONL capture")
    q.add_argument("--json", action="store_true",
                   help="emit a machine-readable JSON document "
                        "instead of text")
    q.set_defaults(fn=cmd_graph)
    q = graph_sub.add_parser(
        "dot", help="export a small capture as GraphViz DOT "
                    "(mover-coloured edges, pruned edges dotted)")
    q.add_argument("capture", help="a --graph-out JSONL capture")
    q.add_argument("-o", "--output", default=None, metavar="FILE",
                   help="write to FILE instead of stdout")
    q.add_argument("--max-nodes", type=int, default=None,
                   metavar="N", help="refuse captures with more than "
                                     "N retained nodes (default: 250)")
    q.set_defaults(fn=cmd_graph)
    q = graph_sub.add_parser(
        "diff", help="compare two captures by canonical node/edge "
                     "ids (exit 1 on drift) — the structural twin "
                     "of 'runs diff'")
    q.add_argument("a", help="older capture")
    q.add_argument("b", help="newer capture")
    q.add_argument("--json", action="store_true",
                   help="emit a machine-readable JSON document "
                        "instead of text")
    q.set_defaults(fn=cmd_graph)

    p = sub.add_parser("top",
                       help="live dashboard over a running "
                            "exploration's --events-out JSONL, or a "
                            "fleet spool directory "
                            "(docs/OBSERVABILITY.md)")
    p.add_argument("events_file", metavar="EVENTS_JSONL_OR_SPOOL",
                   help="the file a running 'repro mc --events-out' "
                        "is streaming to, or a --jobs run's spool "
                        "directory (one row per worker plus "
                        "aggregate throughput)")
    p.add_argument("--interval", type=float, default=None,
                   metavar="SECONDS",
                   help="refresh period (default: 1.0)")
    p.add_argument("--duration", type=float, default=None,
                   metavar="SECONDS",
                   help="detach after N seconds (default: 60)")
    p.add_argument("--once", action="store_true",
                   help="render one frame from the file's current "
                        "contents and exit (no TTY needed)")
    p.add_argument("--json", action="store_true",
                   help="print the final dashboard state as JSON")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser("experiments", parents=[obs],
                       help="regenerate a table/figure of the paper")
    p.add_argument("name", help="figure3, figure4, figure567, table2, "
                                "section63, section64, ablations, or "
                                "crossval")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="section63: fan the none/por/atomic/both "
                        "variant grid across N forked worker "
                        "processes (also: REPRO_JOBS); per-mode "
                        "verdicts are identical to a sequential run")
    p.add_argument("--threads", type=int, default=None, metavar="N",
                   help="section63: driver threads (default: 3)")
    p.add_argument("--max-states", type=int, default=None,
                   metavar="N",
                   help="section63: per-mode state cap (default: "
                        "2000000)")
    p.set_defaults(fn=cmd_experiments)

    ledger_common = argparse.ArgumentParser(add_help=False)
    ledger_common.add_argument(
        "--root", default=None, metavar="DIR",
        help="ledger directory (default: $REPRO_LEDGER_DIR or "
             ".repro/runs)")
    ledger_common.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON document instead of text")

    p = sub.add_parser("runs",
                       help="inspect the persistent run ledger "
                            "(docs/OBSERVABILITY.md)")
    runs_sub = p.add_subparsers(dest="runs_cmd", required=True)
    q = runs_sub.add_parser("list", parents=[ledger_common],
                            help="recorded runs, oldest first")
    q.set_defaults(fn=cmd_runs)
    q = runs_sub.add_parser("show", parents=[ledger_common],
                            help="print one run's manifest as JSON")
    q.add_argument("run", help="run id, unique prefix, 'last', or a "
                               "negative index (-1 = most recent)")
    q.set_defaults(fn=cmd_runs)
    q = runs_sub.add_parser("diff", parents=[ledger_common],
                            help="cross-run drift: classification, "
                                 "theorems, lint, execution (exit 1 "
                                 "on any drift)")
    q.add_argument("a", help="older run (id/prefix/'last'/-N)")
    q.add_argument("b", help="newer run (id/prefix/'last'/-N)")
    q.set_defaults(fn=cmd_runs)
    q = runs_sub.add_parser("gc", parents=[ledger_common],
                            help="delete all but the most recent runs")
    q.add_argument("--keep", type=int, metavar="N",
                   default=ledger.DEFAULT_KEEP,
                   help=f"runs to keep (default: "
                        f"{ledger.DEFAULT_KEEP})")
    q.set_defaults(fn=cmd_runs)

    p = sub.add_parser("summaries",
                       help="inspect the incremental-analysis "
                            "summary store (docs/ANALYSIS.md)")
    sum_common = argparse.ArgumentParser(add_help=False)
    sum_common.add_argument("--store", metavar="DIR",
                            help="summary store directory (default: "
                                 "$REPRO_SUMMARIES or "
                                 ".repro/summaries)")
    sum_common.add_argument("--json", action="store_true",
                            help="emit JSON instead of text")
    sum_sub = p.add_subparsers(dest="summaries_cmd", required=True)
    q = sum_sub.add_parser("list", parents=[sum_common],
                           help="stored summary records")
    q.set_defaults(fn=cmd_summaries)
    q = sum_sub.add_parser("show", parents=[sum_common],
                           help="print one record as JSON")
    q.add_argument("key", help="record key (or unique prefix)")
    q.set_defaults(fn=cmd_summaries)
    q = sum_sub.add_parser("gc", parents=[sum_common],
                           help="drop all but the most recent "
                                "records")
    q.add_argument("--keep", type=int, metavar="N", default=256,
                   help="records to keep per kind (default: 256)")
    q.set_defaults(fn=cmd_summaries)
    q = sum_sub.add_parser("verify", parents=[sum_common],
                           help="recompute a sampled subset and diff "
                                "against the stored verdicts (exit 1 "
                                "on any mismatch)")
    q.add_argument("--sample", type=int, metavar="N", default=5,
                   help="program records to recompute (default: 5)")
    q.set_defaults(fn=cmd_summaries)
    q = sum_sub.add_parser("canary", parents=[sum_common],
                           help="warm-cache canary: corpus twice "
                                "into a fresh store; second pass "
                                "must be 100%% hits with identical "
                                "verdicts (exit 1 otherwise)")
    q.add_argument("--stats-out", metavar="FILE",
                   help="write the canary/store stats document "
                        "(the CI artifact; renders as the report's "
                        "'Summary cache' block)")
    q.set_defaults(fn=cmd_summaries)

    p = sub.add_parser("replay", parents=[ledger_common],
                       help="re-execute a recorded run and check the "
                            "outcome reproduces (exit 1 on "
                            "divergence)")
    p.add_argument("run", help="run id, unique prefix, 'last', or a "
                               "negative index (-1 = most recent)")
    p.set_defaults(fn=cmd_replay)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    real_argv = list(argv) if argv is not None else sys.argv[1:]
    recorder = None
    if args.command in LEDGERED_COMMANDS:
        # returns None when REPRO_LEDGER=0 or a recorder is already
        # active (nested invocation via `repro replay`)
        recorder = ledger.start(real_argv, args.command)
    try:
        code = args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = 2
    except BaseException as exc:
        if recorder is not None:
            ledger.stop(recorder)
            recorder.crash(exc)
        raise
    if recorder is not None:
        ledger.stop(recorder)
        recorder.finish(code)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
