"""Command-line interface.

.. code-block:: text

    python -m repro analyze FILE         # atomicity verdicts + report
    python -m repro blocks FILE          # atomic-block partition (§6.4)
    python -m repro variants FILE        # print the exceptional variants
    python -m repro run FILE T0 T1 ...   # execute under a random schedule
    python -m repro mc FILE T0 ... --mode atomic   # model-check
    python -m repro experiments NAME     # regenerate a table/figure

Thread specs for ``run``/``mc`` are comma-separated call lists, e.g.
``"AddNode(1),AddNode(2)"`` or ``"UpdateTail()*"`` (trailing ``*`` =
repeat forever).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import analyze_program, render_figure
from repro.analysis.blocks import partition_procedure
from repro.errors import ReproError
from repro.interp import Interp, ThreadSpec, run_random
from repro.mc import Explorer
from repro.synl.inline import inline_calls
from repro.synl.parser import parse_program
from repro.synl.printer import pretty
from repro.synl.resolve import resolve


def _load(path: str, inline: bool = True):
    with open(path) as handle:
        text = handle.read()
    program = parse_program(text)
    if inline:
        program = inline_calls(program)
    resolve(program)
    return program


def _split_calls(text: str) -> list[str]:
    """Split on commas outside parentheses: "P(1,2),Q()" -> 2 calls."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
            continue
        depth += ch == "("
        depth -= ch == ")"
        current.append(ch)
    parts.append("".join(current))
    return [p.strip() for p in parts if p.strip()]


def _parse_spec(text: str) -> ThreadSpec:
    repeat = text.endswith("*")
    if repeat:
        text = text[:-1]
    calls = []
    for part in _split_calls(text):
        name, _, arg_text = part.partition("(")
        arg_text = arg_text.rstrip(")")
        args = tuple(int(a) for a in arg_text.split(",") if a.strip())
        calls.append((name,) + args)
    return ThreadSpec.of(*calls, repeat=repeat)


def cmd_analyze(args) -> int:
    result = analyze_program(_load(args.file))
    print(render_figure(result))
    print()
    for name, verdict in result.verdicts.items():
        print(f"{name}: {'ATOMIC' if verdict.atomic else 'not shown atomic'}")
    for diag in result.diagnostics:
        print(f"note: {diag}")
    return 0 if args.lenient or result.all_atomic else 1


def cmd_blocks(args) -> int:
    result = analyze_program(_load(args.file))
    for name in result.verdicts:
        for partition in partition_procedure(result, name):
            print(partition.render())
            print()
    return 0


def cmd_variants(args) -> int:
    result = analyze_program(_load(args.file))
    for variant in result.variant_set.variants:
        print(pretty(variant.proc))
        print()
    return 0


def cmd_run(args) -> int:
    program = _load(args.file)
    interp = Interp(program)
    specs = [_parse_spec(s) for s in args.threads]
    world = interp.make_world(specs)
    run_random(interp, world, seed=args.seed, max_steps=args.max_steps)
    for event in world.history:
        print(event)
    done = all(t.done for t in world.threads)
    print(f"-- {'all threads done' if done else 'step budget exhausted'}")
    return 0


def cmd_mc(args) -> int:
    program = _load(args.file)
    interp = Interp(program)
    specs = [_parse_spec(s) for s in args.threads]
    result = Explorer(interp, specs, mode=args.mode,
                      max_states=args.max_states).run()
    print(result)
    if result.violation:
        for step in result.trace:
            print(f"  {step}")
        return 1
    return 0


def cmd_experiments(args) -> int:
    from repro import experiments

    module = getattr(experiments, args.name, None)
    if module is None or not hasattr(module, "main"):
        names = ", ".join(experiments.__all__)
        print(f"unknown experiment {args.name!r}; one of: {names}",
              file=sys.stderr)
        return 2
    print(module.main())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Static atomicity analysis for non-blocking "
                    "programs (Wang & Stoller, PPoPP 2005)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="run the atomicity inference")
    p.add_argument("file")
    p.add_argument("--lenient", action="store_true",
                   help="exit 0 even when procedures are not atomic")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("blocks", help="atomic-block partition (§6.4)")
    p.add_argument("file")
    p.set_defaults(fn=cmd_blocks)

    p = sub.add_parser("variants", help="print exceptional variants")
    p.add_argument("file")
    p.set_defaults(fn=cmd_variants)

    p = sub.add_parser("run", help="execute under a random schedule")
    p.add_argument("file")
    p.add_argument("threads", nargs="+",
                   help='thread specs, e.g. "Enq(1),Deq()" "Up()*"')
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-steps", type=int, default=100_000)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("mc", help="explicit-state model checking")
    p.add_argument("file")
    p.add_argument("threads", nargs="+")
    p.add_argument("--mode", default="full",
                   choices=["full", "por", "atomic", "both"])
    p.add_argument("--max-states", type=int, default=1_000_000)
    p.set_defaults(fn=cmd_mc)

    p = sub.add_parser("experiments",
                       help="regenerate a table/figure of the paper")
    p.add_argument("name", help="figure3, figure4, figure567, table2, "
                                "section63, section64, or ablations")
    p.set_defaults(fn=cmd_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
