"""Operation histories extracted from interpreter runs.

A history is a sequence of invocation/response events (§2,
Herlihy & Wing).  Operations that were invoked but never responded are
*pending*: a linearization may either include them (they took effect
before the crash/cut) or drop them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.interp.state import Event, World


@dataclass(frozen=True)
class Op:
    op_id: int
    tid: int
    proc: str
    args: tuple
    result: object
    invoke_seq: int
    return_seq: Optional[int]  # None = pending

    @property
    def pending(self) -> bool:
        return self.return_seq is None

    def __repr__(self) -> str:
        ret = "pending" if self.pending else repr(self.result)
        return f"{self.proc}{self.args}={ret}@t{self.tid}"


def history_ops(events: list[Event]) -> list[Op]:
    """Pair invoke/return events into operations, in invocation order."""
    ops: list[Op] = []
    open_by_tid: dict[int, int] = {}
    for event in events:
        if event.kind == "invoke":
            open_by_tid[event.tid] = len(ops)
            ops.append(Op(len(ops), event.tid, event.proc, event.args,
                          None, event.seq, None))
        elif event.kind == "return":
            idx = open_by_tid.pop(event.tid)
            prev = ops[idx]
            ops[idx] = Op(prev.op_id, prev.tid, prev.proc, prev.args,
                          event.result, prev.invoke_seq, event.seq)
    return ops


def world_history(world: World) -> list[Op]:
    return history_ops(world.history)


def precedes(a: Op, b: Op) -> bool:
    """Real-time order: a's response happens before b's invocation."""
    return a.return_seq is not None and a.return_seq < b.invoke_seq
