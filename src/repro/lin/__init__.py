"""Linearizability checking (the paper's §2 target condition)."""

from repro.lin.checker import (LinResult, linearizable,
                               linearizable_bruteforce)
from repro.lin.history import Op, history_ops, precedes, world_history
from repro.lin.specs import (CounterSpec, FifoQueueSpec, HerlihyObjectSpec,
                             RegisterSpec, SemaphoreSpec, SequentialSpec,
                             StackSpec)

__all__ = [
    "LinResult",
    "linearizable",
    "linearizable_bruteforce",
    "Op",
    "history_ops",
    "world_history",
    "precedes",
    "SequentialSpec",
    "FifoQueueSpec",
    "StackSpec",
    "CounterSpec",
    "RegisterSpec",
    "SemaphoreSpec",
    "HerlihyObjectSpec",
]
