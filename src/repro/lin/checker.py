"""Wing–Gong style linearizability checker.

Searches for a legal sequential ordering of a concurrent history that
respects the real-time partial order (§2).  An operation can linearize
next iff no *other* unlinearized operation responded before it was
invoked.  Completed operations must produce the result they actually
returned; pending operations may linearize with any result or be
dropped entirely.

The search memoizes on (set of remaining operations, spec state), which
makes it exponential only in genuinely ambiguous histories — fine for
the history sizes the test suite and examples generate.  A brute-force
permutation oracle (:func:`linearizable_bruteforce`) cross-checks it in
the property tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.lin.history import Op
from repro.lin.specs import SequentialSpec


@dataclass
class LinResult:
    ok: bool
    witness: list[Op] = field(default_factory=list)
    explored: int = 0

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def _result_matches(expected, op: Op) -> bool:
    if op.pending:
        return True
    return expected == op.result and \
        isinstance(expected, bool) == isinstance(op.result, bool)


def linearizable(ops: list[Op], spec: SequentialSpec,
                 max_nodes: int = 2_000_000) -> LinResult:
    """Check linearizability of a history against a sequential spec."""
    n = len(ops)
    full_mask = (1 << n) - 1
    # precompute, for each op, the mask of ops whose response precedes
    # its invocation (those must linearize first)
    must_precede = [0] * n
    for i, a in enumerate(ops):
        for j, b in enumerate(ops):
            if i != j and b.return_seq is not None \
                    and b.return_seq < a.invoke_seq:
                must_precede[i] |= 1 << j

    seen: set[tuple[int, object]] = set()
    explored = 0

    def search(done_mask: int, state) -> Optional[list[Op]]:
        nonlocal explored
        if done_mask == full_mask:
            return []
        key = (done_mask, state)
        if key in seen:
            return None
        seen.add(key)
        explored += 1
        if explored > max_nodes:
            raise RuntimeError("linearizability search budget exceeded")
        remaining_completed = [i for i in range(n)
                               if not done_mask >> i & 1
                               and not ops[i].pending]
        # can we drop every remaining pending op and finish?
        if not remaining_completed:
            return []
        for i in range(n):
            if done_mask >> i & 1:
                continue
            if must_precede[i] & ~done_mask:
                continue  # some predecessor not yet linearized
            outcome = spec.apply(state, ops[i].proc, ops[i].args)
            if outcome is None:
                continue  # operation not allowed in this state
            new_state, expected = outcome
            if not _result_matches(expected, ops[i]):
                continue
            rest = search(done_mask | 1 << i, new_state)
            if rest is not None:
                return [ops[i]] + rest
        return None

    witness = search(0, spec.initial())
    return LinResult(witness is not None, witness or [], explored)


def linearizable_bruteforce(ops: list[Op],
                            spec: SequentialSpec) -> bool:
    """Oracle: try all permutations of all subsets that keep every
    completed op (pending ops optional).  Exponential; tiny inputs only."""
    completed = [o for o in ops if not o.pending]
    pending = [o for o in ops if o.pending]
    for r in range(len(pending) + 1):
        for extra in itertools.combinations(pending, r):
            chosen = completed + list(extra)
            for perm in itertools.permutations(chosen):
                if _legal(perm, spec):
                    return True
    return False


def _legal(perm, spec: SequentialSpec) -> bool:
    # real-time order
    for i, a in enumerate(perm):
        for b in perm[i + 1:]:
            if b.return_seq is not None and b.return_seq < a.invoke_seq:
                return False
    state = spec.initial()
    for op in perm:
        outcome = spec.apply(state, op.proc, op.args)
        if outcome is None:
            return False
        state, expected = outcome
        if not _result_matches(expected, op):
            return False
    return True
