"""Sequential specifications for linearizability checking.

A spec maps (state, operation, args) to the successor state and the
expected result.  States must be hashable (they key the checker's
memoization).  The paper's two-step approach (§1/§6.1): first show the
implementation run sequentially satisfies such a spec, then use the
atomicity analysis to lift it to concurrent executions.
"""

from __future__ import annotations

from typing import Optional


class SequentialSpec:
    """Interface: override ``initial`` and ``apply``."""

    def initial(self):
        raise NotImplementedError

    def apply(self, state, proc: str, args: tuple):
        """Return (new_state, result) or None when the operation is not
        allowed in this state (e.g. semaphore Down at zero — the op
        cannot linearize here)."""
        raise NotImplementedError


class FifoQueueSpec(SequentialSpec):
    """FIFO queue with EMPTY-returning dequeue.  Matches NFQ (Enq/Deq)
    and NFQ' (AddNode/DeqP); UpdateTail is a no-op helper."""

    def __init__(self, empty: int = -1,
                 enq: tuple = ("Enq", "AddNode"),
                 deq: tuple = ("Deq", "DeqP"),
                 noop: tuple = ("UpdateTail",)):
        self.empty = empty
        self.enq = enq
        self.deq = deq
        self.noop = noop

    def initial(self):
        return ()

    def apply(self, state: tuple, proc: str, args: tuple):
        if proc in self.enq:
            return state + (args[0],), None
        if proc in self.deq:
            if not state:
                return state, self.empty
            return state[1:], state[0]
        if proc in self.noop:
            return state, None
        raise KeyError(proc)


class StackSpec(SequentialSpec):
    """LIFO stack with EMPTY-returning pop (Treiber)."""

    def __init__(self, empty: int = -1, push: str = "Push",
                 pop: str = "Pop"):
        self.empty = empty
        self.push = push
        self.pop = pop

    def initial(self):
        return ()

    def apply(self, state: tuple, proc: str, args: tuple):
        if proc == self.push:
            return state + (args[0],), None
        if proc == self.pop:
            if not state:
                return state, self.empty
            return state[:-1], state[-1]
        raise KeyError(proc)


class CounterSpec(SequentialSpec):
    """Counter with Inc/Get (the CAS counter corpus)."""

    def initial(self):
        return 0

    def apply(self, state: int, proc: str, args: tuple):
        if proc == "Inc":
            return state + 1, None
        if proc == "Get":
            return state, state
        raise KeyError(proc)


class RegisterSpec(SequentialSpec):
    """Read/write register (the locked-register corpus).  Reads return
    the last written value (initially ``initial_value``)."""

    def __init__(self, initial_value=0, write: str = "Write",
                 read: str = "Read"):
        self.initial_value = initial_value
        self.write = write
        self.read = read

    def initial(self):
        return self.initial_value

    def apply(self, state, proc: str, args: tuple):
        if proc == self.write:
            return args[0], None
        if proc == self.read:
            return state, state
        raise KeyError(proc)


class SemaphoreSpec(SequentialSpec):
    """Counting semaphore: Down blocks (cannot linearize) at zero."""

    def __init__(self, initial_value: int = 2):
        self.initial_value = initial_value

    def initial(self):
        return self.initial_value

    def apply(self, state: int, proc: str, args: tuple):
        if proc == "Down":
            if state == 0:
                return None  # not allowed here
            return state - 1, None
        if proc == "Up":
            return state + 1, None
        raise KeyError(proc)


class HerlihyObjectSpec(SequentialSpec):
    """The small-object corpus: Apply(x) sets v := compute(v, x) =
    v + x + 1; ReadValue returns v."""

    def initial(self):
        return 0

    def apply(self, state: int, proc: str, args: tuple):
        if proc == "Apply":
            return state + args[0] + 1, None
        if proc == "ReadValue":
            return state, state
        raise KeyError(proc)
