"""Explicit-state model checking substrate (stands in for TVLA in
Table 2 and for SPIN in §6.3 — see DESIGN.md for the substitution
rationale)."""

from repro.mc.atomic import AtomicOutcome, run_to_commit, run_variant
from repro.mc.canonical import quiescent_key, shared_key, state_key
from repro.mc.explorer import Explorer, MCResult, explore
from repro.mc.por import SafetyCache
from repro.mc.properties import (NoAssertFailures, Property, QueueContents,
                                 QueueShape)

__all__ = [
    "Explorer",
    "MCResult",
    "explore",
    "state_key",
    "quiescent_key",
    "shared_key",
    "run_to_commit",
    "run_variant",
    "AtomicOutcome",
    "SafetyCache",
    "Property",
    "QueueShape",
    "QueueContents",
    "NoAssertFailures",
]
