"""Atomic-block transitions for the model checker (§1, §6.1, §6.3).

When the static analysis has shown procedures atomic, each procedure
body "can be treated as a single transition during subsequent analysis";
this module implements that reduction in two flavours:

* **run-to-commit** — execute the thread's next invocation of the
  *original* procedure to completion as one transition.  A pure spin
  (e.g. UpdateTail waiting for a lagging Tail) revisits a state inside
  the run and makes the transition *disabled* — the operation simply
  cannot complete from here, and will be retried after another thread
  moves.
* **variant mode** — execute one *exceptional variant* (§5.2) of the
  procedure per transition, straight-line under its TRUE(...)
  assumptions; a failed assumption disables that variant.  This is
  precisely the reduction Theorems 4.1/5.2 justify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import AssertionViolation, InterpError
from repro.interp.interp import AssumeFailed, Interp
from repro.interp.state import Event, World
from repro.mc.canonical import state_key


@dataclass
class AtomicOutcome:
    """Result of attempting one atomic transition."""

    world: Optional[World] = None          # successor (None if disabled)
    events: list[Event] = field(default_factory=list)
    violation: Optional[str] = None
    desc: str = ""


def run_to_commit(interp: Interp, world: World, tid: int,
                  step_budget: int = 10_000) -> AtomicOutcome:
    """Run thread ``tid``'s next whole invocation as one transition."""
    w = world.copy()
    thread = w.threads[tid]
    name, args = thread.current_call()
    outcome = AtomicOutcome(desc=f"t{tid}:{name}{args}")
    seen = {state_key(w)}
    for _ in range(step_budget):
        try:
            event = interp.step(w, tid)
        except AssumeFailed:
            return outcome  # disabled
        except AssertionViolation as exc:
            outcome.violation = f"assertion failed in {name}: {exc}"
            return outcome
        if event is not None:
            outcome.events.append(event)
        if thread.frame is None and thread.steps > 0 \
                and outcome.events and outcome.events[-1].kind == "return":
            outcome.world = w
            return outcome
        key = state_key(w)
        if key in seen:
            return outcome  # pure spinning: disabled from this state
        seen.add(key)
    raise InterpError(
        f"atomic run of {name} exceeded {step_budget} steps")


def run_variant(original: Interp, variant_interp: Interp, world: World,
                tid: int, variant_name: str,
                step_budget: int = 10_000) -> AtomicOutcome:
    """Run one exceptional variant of the thread's next invocation as a
    single transition (under the variant program's CFGs)."""
    w = world.copy()
    thread = w.threads[tid]
    name, args = thread.current_call()
    outcome = AtomicOutcome(desc=f"t{tid}:{name}{args} via {variant_name}")
    variant_interp.begin_call(w, tid, variant_name, args, display=name)
    outcome.events.append(w.history[-1])
    seen = {state_key(w)}
    for _ in range(step_budget):
        try:
            event = variant_interp.step(w, tid)
        except AssumeFailed:
            return outcome  # this variant's assumptions do not hold
        except AssertionViolation as exc:
            outcome.violation = f"assertion failed in {variant_name}: {exc}"
            return outcome
        if event is not None:
            outcome.events.append(event)
        if thread.frame is None:
            outcome.world = w
            return outcome
        key = state_key(w)
        if key in seen:
            return outcome  # residual loop spins: disabled
        seen.add(key)
    raise InterpError(
        f"atomic variant {variant_name} exceeded {step_budget} steps")
