"""Ample-set partial-order reduction (§2, §6.3).

A deliberately *classic* reduction, as a stand-in for SPIN's: it
exploits commutativity of invisible actions but — unlike the paper's
analysis — "does not distinguish left-movers and right-movers" and
ignores the synchronization context of operations.  At each state we
look for a thread whose next transition is *safe* (touches only
thread-private state) and expand only it, subject to the cycle proviso
(the chosen successor must not close a cycle on the DFS stack).

Statement safety is syntactic: a CFG node is safe when every action it
performs targets a local variable or is an allocation, plus the control
pseudo-nodes (loop heads, jumps, invoke/return boundaries).
"""

from __future__ import annotations

from repro.analysis.actions import node_actions
from repro.cfg.graph import CFGNode, NodeKind
from repro.interp.interp import Interp
from repro.interp.state import World

# RETURN is *not* safe: completing an invocation flips the thread to
# idle, which is visible to the quiescent-state properties (and updates
# ghost state).  Invocations are visible for the same reason.
_SAFE_KINDS = {NodeKind.LOOP_HEAD, NodeKind.BREAK, NodeKind.CONTINUE,
               NodeKind.ENTRY}


class SafetyCache:
    """Caches per-node safety classifications.

    ``hits``/``misses`` count cache lookups for the explorer's metrics
    report (``mc.safety_cache_*``) — plain ints, maintained on the DFS
    hot path without locks (the explorer is single-threaded)."""

    def __init__(self) -> None:
        self._cache: dict[int, bool] = {}
        self.hits = 0
        self.misses = 0

    def node_safe(self, node: CFGNode) -> bool:
        cached = self._cache.get(node.uid)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        if node.kind in _SAFE_KINDS:
            safe = True
        elif node.kind in (NodeKind.ACQUIRE, NodeKind.RELEASE,
                           NodeKind.RETURN):
            safe = False
        else:
            safe = all(
                action.op == "alloc"
                or (action.target is not None
                    and action.target.kind == "var")
                for action in node_actions(node))
        self._cache[node.uid] = safe
        return safe

    def thread_safe(self, interp: Interp, world: World, tid: int) -> bool:
        """Is the thread's next transition safe (invisible)?"""
        thread = world.threads[tid]
        if thread.frame is None:
            return False  # invoking ends quiescence: visible
        node = thread.frame.node
        if node is None:
            return False  # an implicit return: visible (ends the call)
        return self.node_safe(node)
