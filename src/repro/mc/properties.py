"""Safety properties for the model checker.

A property carries *ghost state* (updated from history events by the
explorer — e.g. the multiset of enqueued and dequeued values) and two
checks: ``check_state`` runs in every explored state, ``check_quiescent``
only when all threads are idle (the states at which the atomicity
definition of §3.2 compares executions).  Ghost state is part of the
canonical state key, mirroring TVLA's instrumentation predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.interp.interp import Interp
from repro.interp.state import Event, World
from repro.interp.values import HeapObject, Ref


class Property:
    """Base class: stateless checks with trivial ghost."""

    def initial_ghost(self):
        return None

    def on_event(self, ghost, event: Event):
        return ghost

    def check_state(self, world: World, interp: Interp,
                    ghost) -> Optional[str]:
        return None

    def check_quiescent(self, world: World, interp: Interp,
                        ghost) -> Optional[str]:
        return None


@dataclass
class QueueShape(Property):
    """Structural invariant of the Michael–Scott queue: the Head chain is
    acyclic, Tail is on it, and Tail lags the last node by at most one
    link."""

    head: str = "Head"
    tail: str = "Tail"
    next_field: str = "Next"
    max_len: int = 64

    def _chain(self, world: World) -> Optional[list[int]]:
        ref = world.globals.get(self.head)
        chain: list[int] = []
        seen: set[int] = set()
        while isinstance(ref, Ref):
            if ref.oid in seen or len(chain) > self.max_len:
                return None  # cycle
            seen.add(ref.oid)
            chain.append(ref.oid)
            obj = world.heap.get(ref)
            if not isinstance(obj, HeapObject):
                return None
            ref = obj.fields.get(self.next_field)
        return chain

    def check_state(self, world: World, interp: Interp,
                    ghost) -> Optional[str]:
        chain = self._chain(world)
        if chain is None:
            return "queue chain is cyclic or malformed"
        tail = world.globals.get(self.tail)
        if not isinstance(tail, Ref):
            return "Tail is not an object reference"
        if tail.oid not in chain:
            return "Tail not reachable from Head"
        if chain.index(tail.oid) < len(chain) - 2:
            return "Tail lags the last node by more than one link"
        return None


@dataclass(frozen=True)
class _QueueGhost:
    enqueued: tuple = ()   # values whose AddNode/Enq returned
    dequeued: tuple = ()   # values returned by Deq (except EMPTY)


@dataclass
class QueueContents(Property):
    """Functional invariant checked at quiescent states: the multiset of
    values in the queue equals completed enqueues minus completed
    dequeues, and each thread's values come out in FIFO order.  This
    catches the lost-node bug of the incorrect AddNode in Table 2."""

    enq_procs: tuple = ("AddNode", "Enq")
    deq_procs: tuple = ("Deq", "DeqP")
    head: str = "Head"
    next_field: str = "Next"
    value_field: str = "Value"
    empty: int = -1

    def initial_ghost(self):
        return _QueueGhost()

    def on_event(self, ghost: _QueueGhost, event: Event):
        if event.kind != "return":
            return ghost
        if event.proc in self.enq_procs:
            return _QueueGhost(ghost.enqueued + (event.args[0],),
                               ghost.dequeued)
        if event.proc in self.deq_procs and event.result != self.empty:
            return _QueueGhost(ghost.enqueued,
                               ghost.dequeued + (event.result,))
        return ghost

    def _values(self, world: World) -> Optional[list]:
        ref = world.globals.get(self.head)
        if not isinstance(ref, Ref):
            return None
        values = []
        seen: set[int] = set()
        obj = world.heap.get(ref)
        ref = obj.fields.get(self.next_field)  # skip the dummy node
        while isinstance(ref, Ref):
            if ref.oid in seen:
                return None
            seen.add(ref.oid)
            node = world.heap.get(ref)
            values.append(node.fields.get(self.value_field))
            ref = node.fields.get(self.next_field)
        return values

    def check_quiescent(self, world: World, interp: Interp,
                        ghost: _QueueGhost) -> Optional[str]:
        values = self._values(world)
        if values is None:
            return "queue chain is malformed"
        expect = list(ghost.enqueued)
        for v in ghost.dequeued:
            if v in expect:
                expect.remove(v)
            else:
                return f"dequeued value {v!r} was never enqueued"
        if sorted(map(repr, values)) != sorted(map(repr, expect)):
            return (f"queue contents {values!r} != outstanding "
                    f"enqueues {expect!r} (lost or duplicated node)")
        return None


@dataclass
class NoAssertFailures(Property):
    """Placeholder: assertion statements are reported by the explorer
    directly; this property exists so harnesses can opt in explicitly."""
