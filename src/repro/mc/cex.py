"""Counterexample explainability: annotated interleaving timelines.

When the model checker (or a random-schedule ``run``) hits a
violation, the raw trace is a list of opaque ``t0@17`` transition
descriptors.  This module reconstructs that path into a
:class:`Counterexample` — one step per transition, carrying

* the executing thread and the source statement it ran,
* the *mover classification* the §5.4 inference assigned to that
  statement, and
* the theorem that justified it (Thm 3.1/3.2/5.1/5.3/5.4/5.5, reusing
  the per-site provenance chains of :mod:`repro.obs.provenance`),

so the user can see *which* step broke the ``R*;(A|ε);L*`` reduction
pattern and why the analysis could not exclude the interleaving.  This
is the presentation argued for by runtime atomicity debuggers (render
the concrete buggy interleaving) combined with the paper's
theorem-level reasoning.

Mapping runtime steps back to analysis lines is textual: exceptional
variants rewrite ``if (SC(v, e)) ...`` into ``TRUE(SC(v, e));`` /
``TRUE(!SC(v, e));``, so an executed branch is matched first by exact
line text, then by its condition appearing inside a variant line
(preferring the success branch, then theorem-bearing provenance).
Control-only transitions (loop heads, branches over procedure-local
data that the variants elided) are both-movers by Theorem 3.1 and are
annotated as such.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.cfg.graph import CFGNode, NodeKind
from repro.synl.printer import pretty_expr

from repro.obs.schemas import CEX as SCHEMA_VERSION

#: annotation used for transitions that touch no shared state
_CONTROL = ("B", "Thm 3.1: thread-local control flow")

_CONTROL_KINDS = (NodeKind.LOOP_HEAD, NodeKind.BREAK, NodeKind.CONTINUE,
                  NodeKind.ENTRY, NodeKind.EXIT)


def describe_node(node: CFGNode) -> str:
    """A compact one-line source rendering of a CFG node."""
    from repro.analysis.report import _one_line

    kind = node.kind
    if kind is NodeKind.BRANCH:
        return f"if ({pretty_expr(node.expr)}) ..."
    if kind is NodeKind.ACQUIRE:
        return f"monitor-enter ({pretty_expr(node.expr)})"
    if kind is NodeKind.RELEASE:
        return f"monitor-exit ({pretty_expr(node.expr)})"
    if kind is NodeKind.LOOP_HEAD:
        return "loop ..."
    if kind is NodeKind.BREAK:
        return "break;"
    if kind is NodeKind.CONTINUE:
        return "continue;"
    if node.stmt is not None:
        return _one_line(node.stmt)
    return kind.value


@dataclass
class LineAnnotation:
    """One analysis report line: its mover type and provenance."""

    variant: str
    text: str
    mover: str
    provenance: list = field(default_factory=list)

    @property
    def theorems(self) -> list[str]:
        """Every theorem cited anywhere in the provenance chain,
        including the per-theorem tallies of step-4 aggregates."""
        out = set()
        for j in self.provenance:
            if j.theorem is not None:
                out.add(j.theorem)
            out.update(t for t in j.counts if t[:1].isdigit())
        return sorted(out)

    def citation(self) -> str:
        """The most informative single justification, rendered."""
        chain = self.provenance
        best = next((j for j in chain
                     if j.mover == self.mover and j.theorem is not None),
                    None)
        if best is None:
            best = next((j for j in chain if j.mover == self.mover), None)
        if best is None:
            best = next((j for j in chain if j.theorem is not None), None)
        if best is None and chain:
            best = chain[0]
        return best.render() if best is not None else "no provenance"


class _ProcIndex:
    """Lookup from runtime statement text to analysis annotations for
    one procedure (across all of its exceptional variants)."""

    def __init__(self, verdict):
        from repro.analysis.report import line_provenance, variant_lines

        self.verdict = verdict
        self.lines: list[LineAnnotation] = []
        for report in verdict.variants:
            for line in variant_lines(report, "x"):
                self.lines.append(LineAnnotation(
                    report.variant.name, line.text,
                    str(line.atomicity),
                    line_provenance(report, line)))

    @property
    def body_mover(self) -> str:
        reports = self.verdict.variants
        return str(reports[0].body_atomicity) if reports else "B"

    def match(self, text: str) -> Optional[LineAnnotation]:
        for la in self.lines:
            if la.text == text:
                return la
        # branch → TRUE(...) variant-line fallback
        m = re.fullmatch(r"if \((.+)\) \.\.\.", text)
        needles = []
        if m:
            cond = m.group(1)
            needles = [f"TRUE({cond});", cond, cond.lstrip("!")]
        else:
            # last resort: shared sync sub-expressions
            needles = re.findall(r"(?:LL|SC|VL|CAS)\([^()]*(?:\([^()]*"
                                 r"\)[^()]*)*\)", text)
        for needle in needles:
            hits = [la for la in self.lines if needle in la.text]
            if not hits:
                continue
            exact = [la for la in hits if la.text == f"TRUE({needle});"]
            cited = [la for la in hits if la.theorems]
            return (exact or cited or hits)[0]
        return None


@dataclass
class CexStep:
    """One annotated transition of the violating interleaving."""

    seq: int
    tid: int
    kind: str                    # 'invoke'|'stmt'|'return'|'atomic'
    desc: str                    # raw explorer descriptor
    text: str                    # source-level rendering
    proc: Optional[str] = None
    variant: Optional[str] = None
    mover: str = "B"
    citation: str = _CONTROL[1]
    theorems: list[str] = field(default_factory=list)
    provenance: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq, "tid": self.tid, "kind": self.kind,
            "desc": self.desc, "text": self.text, "proc": self.proc,
            "variant": self.variant, "mover": self.mover,
            "citation": self.citation, "theorems": list(self.theorems),
            "provenance": [j.to_dict() for j in self.provenance],
        }


@dataclass
class Counterexample:
    """A fully annotated violating interleaving."""

    violation: str
    mode: str
    steps: list[CexStep]
    annotated: bool   # False when no analysis result was supplied
    #: lint-driven theorem downgrades carried over from the analysis
    #: (see ``AnalysisResult.downgrades``) — cited in the footer so a
    #: reader knows which mover arguments were deliberately withheld
    downgrades: list = field(default_factory=list)

    def to_dict(self) -> dict:
        out = {
            "v": SCHEMA_VERSION,
            "violation": self.violation,
            "mode": self.mode,
            "annotated": self.annotated,
            "steps": [s.to_dict() for s in self.steps],
        }
        if self.downgrades:
            out["downgrades"] = [dict(d) for d in self.downgrades]
        return out

    def render(self, max_col: int = 44) -> str:
        """Per-thread timeline: one column per thread, each step
        annotated with its mover tag and theorem citation."""
        tids = sorted({s.tid for s in self.steps})
        widths = {
            tid: min(max_col, max([len(s.text) for s in self.steps
                                   if s.tid == tid] or [4]) + 2)
            for tid in tids}
        lines = [f"counterexample: {self.violation}",
                 f"mode={self.mode}  steps={len(self.steps)}  "
                 f"threads={len(tids)}", ""]
        header = "step  " + "".join(
            f"t{tid}".ljust(widths[tid]) for tid in tids) + "  note"
        lines.append(header)
        lines.append("-" * len(header))
        for s in self.steps:
            cells = "".join(
                (s.text[:widths[tid] - 1].ljust(widths[tid])
                 if tid == s.tid else " " * widths[tid])
                for tid in tids)
            lines.append(f"{s.seq:>4}  {cells}  [{s.mover}] {s.citation}")
        lines.append("")
        lines.append(f"violation after step {self.steps[-1].seq}: "
                     f"{self.violation}" if self.steps else self.violation)
        if self.downgrades:
            lines.append("")
            lines.append("lint downgrades in effect during analysis:")
            for d in self.downgrades:
                rules = ", ".join(d.get("rules", []))
                lines.append(f"  - Thm {d['theorem']} on "
                             f"{d['region']} ({rules})")
        return "\n".join(lines)


def _annotate_stmt(step: CexStep, node: CFGNode,
                   index: Optional[_ProcIndex]) -> None:
    if node.kind in _CONTROL_KINDS:
        step.mover, step.citation = _CONTROL
        step.theorems = ["3.1"]
        return
    if index is None:
        step.mover, step.citation = "?", "no analysis available"
        return
    la = index.match(step.text)
    if la is None:
        # the variants elided this statement: it contributed no shared
        # action to any variant, so it moves freely (Thm 3.1)
        step.mover, step.citation = _CONTROL
        step.theorems = ["3.1"]
        return
    if not la.provenance:
        # matched a pure-control line (return;, skip;): both-mover
        step.mover, step.citation = la.mover, _CONTROL[1]
        step.theorems = ["3.1"]
        return
    step.variant = la.variant
    step.mover = la.mover
    step.citation = la.citation()
    step.theorems = la.theorems or ["3.1"]
    step.provenance = list(la.provenance)


def build_cex(result, interp, analysis=None,
              variant_interp=None) -> Counterexample:
    """Reconstruct the violating path of an
    :class:`~repro.mc.explorer.MCResult` (or a ``run`` ``path_log`` —
    anything exposing ``violation``/``mode``/``path``) into an
    annotated :class:`Counterexample`.

    ``analysis`` is the :class:`~repro.analysis.inference.AnalysisResult`
    for the *same* program; without it the timeline still renders, but
    steps carry no mover/theorem annotations.
    """
    if not result.violation:
        raise ValueError("result has no violation to explain")
    uid_map: dict[int, CFGNode] = {}
    for source in (interp, variant_interp):
        if source is None:
            continue
        for cfg in source.cfgs.values():
            for node in cfg.nodes:
                uid_map[node.uid] = node
    indexes: dict[str, _ProcIndex] = {}
    if analysis is not None:
        indexes = {name: _ProcIndex(verdict)
                   for name, verdict in analysis.verdicts.items()}

    steps: list[CexStep] = []
    for raw in result.path:
        kind = raw.get("kind")
        if kind == "init":
            continue
        proc = raw.get("proc")
        index = indexes.get(proc)
        step = CexStep(seq=len(steps) + 1, tid=raw["tid"], kind=kind,
                       desc=raw["desc"], text=raw["desc"], proc=proc,
                       variant=raw.get("via"))
        if kind == "invoke":
            step.text = f"call {proc}()"
            if index is not None:
                step.mover = index.body_mover
                step.citation = (
                    "procedure shown atomic (reducible, §3.3)"
                    if index.verdict.atomic else
                    "procedure NOT shown atomic — its steps interleave")
                step.theorems = sorted(
                    {t for la in index.lines for t in la.theorems})
        elif kind == "return":
            step.text = f"return from {proc}"
            step.mover, step.citation = _CONTROL
            step.theorems = ["3.1"]
        elif kind == "atomic":
            suffix = f" via {raw['via']}" if raw.get("via") else ""
            step.text = f"{proc}(){suffix} as one atomic transition"
            if index is not None:
                step.mover = index.body_mover
                step.citation = ("whole invocation is one transition "
                                 "(Thm 4.1/5.2 reduction)")
                step.theorems = sorted(
                    {t for la in index.lines for t in la.theorems})
        else:  # stmt
            node = uid_map.get(raw.get("uid"))
            if node is not None:
                step.text = describe_node(node)
                _annotate_stmt(step, node, index)
            else:
                step.mover, step.citation = "?", "unknown CFG node"
        steps.append(step)
    return Counterexample(violation=result.violation,
                          mode=getattr(result, "mode", "run"),
                          steps=steps, annotated=analysis is not None,
                          downgrades=[dict(d) for d in
                                      getattr(analysis, "downgrades",
                                              None) or []])


@dataclass
class RunResultView:
    """Adapter giving a random-schedule ``run`` the same face as an
    :class:`~repro.mc.explorer.MCResult` for :func:`build_cex`."""

    violation: str
    path: list[dict]
    mode: str = "run"
