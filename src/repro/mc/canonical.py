"""Canonical hashing of interpreter worlds for explicit-state search.

Heap object ids are renamed by first-visit order along a deterministic
traversal (globals in name order, then threads in tid order), so states
differing only in allocation order collapse.  Two unbounded components
are abstracted relationally, keeping the state space finite:

* LL/SC *reservations* store only the set of currently-valid reserved
  addresses (an invalid reservation is indistinguishable from no
  reservation: both make SC fail);
* per-address *modification counters* store, per thread, only the set of
  addresses whose last observed counter is still current (all a
  versioned CAS can test).

Repeating thread scripts wrap their op index modulo the script length.
"""

from __future__ import annotations

from typing import Optional

from repro.interp.state import Thread, World
from repro.interp.values import HeapArray, HeapObject, Ref, Value


class _Canonicalizer:
    def __init__(self, world: World):
        self.world = world
        self.ids: dict[int, int] = {}
        self.pending: list[int] = []

    def ref(self, value: Value):
        if isinstance(value, Ref):
            if value.oid not in self.ids:
                self.ids[value.oid] = len(self.ids) + 1
                self.pending.append(value.oid)
            return ("ref", self.ids[value.oid])
        return value

    def addr(self, addr: tuple) -> Optional[tuple]:
        kind = addr[0]
        if kind == "g":
            return addr
        if kind in ("f", "e"):
            oid = addr[1]
            if oid not in self.ids:
                return None  # unreachable object: reservation is moot
            return (kind, self.ids[oid], addr[2])
        return None  # thread-private: never invalidated, never contested

    def heap_contents(self) -> tuple:
        out = []
        i = 0
        while i < len(self.pending):
            oid = self.pending[i]
            i += 1
            obj = self.world.heap.objects[oid]
            if isinstance(obj, HeapObject):
                fields = tuple(sorted(
                    (name, self.ref(v)) for name, v in obj.fields.items()))
                out.append(("obj", self.ids[oid], obj.class_name, fields))
            else:
                assert isinstance(obj, HeapArray)
                cells = tuple(self.ref(v) for v in obj.cells)
                out.append(("arr", self.ids[oid], obj.class_name, cells))
        return tuple(out)

    def thread_key(self, thread: Thread) -> tuple:
        spec = thread.spec
        if spec.repeat and spec.ops:
            op_index = thread.op_index % len(spec.ops)
        else:
            op_index = thread.op_index
        tls = tuple(sorted(
            (name, self.ref(v)) for name, v in thread.threadlocals.items()))
        if thread.frame is None:
            frame_key: tuple | None = None
        else:
            env = tuple(sorted(
                (b, self.ref(v)) for b, v in thread.frame.env.items()))
            node_uid = thread.frame.node.uid \
                if thread.frame.node is not None else -1
            frame_key = (thread.frame.proc_name, node_uid, env,
                         tuple(self.ref(a) for a in thread.frame.args))
        valid = []
        for addr, ok in thread.reservations.items():
            if not ok:
                continue
            canon = self.addr(addr)
            if canon is not None:
                valid.append(canon)
        current = []
        for addr, counter in thread.observed.items():
            if counter != self.world.versions.get(addr, 0):
                continue
            canon = self.addr(addr)
            if canon is not None:
                current.append(canon)
        return (op_index, tls, frame_key,
                tuple(sorted(valid)), tuple(sorted(current)))


def state_key(world: World) -> tuple:
    """Full canonical key of a world (threads included)."""
    canon = _Canonicalizer(world)
    globals_key = tuple(
        (name, canon.ref(world.globals[name]))
        for name in sorted(world.globals))
    # visit thread roots before serializing heap contents so the id
    # assignment covers everything reachable
    thread_keys = tuple(canon.thread_key(t) for t in world.threads)
    heap_key = canon.heap_contents()
    locks_key = tuple(sorted(
        (canon.ids.get(oid, 0), owner)
        for oid, owner in world.locks.items() if oid in canon.ids))
    return (globals_key, thread_keys, heap_key, locks_key)


def rebase_node_uids(world_key: tuple, uid_map: dict) -> tuple:
    """Rewrite the CFG-node uids embedded in a :func:`state_key` tuple
    (each thread's ``frame_key[1]`` program counter) through
    ``uid_map``.

    CFG node uids come from a process-global counter, so the *same*
    program rebuilt later in one process gets shifted uids and
    otherwise-equal state keys stop comparing equal across builds.
    Graph capture (:mod:`repro.obs.graph`) uses this to rebase keys
    onto a build-independent dense numbering before hashing them into
    node ids, making captures comparable across runs and processes.
    Unmapped uids pass through unchanged."""
    globals_key, thread_keys, heap_key, locks_key = world_key
    threads = []
    for op_index, tls, frame_key, valid, current in thread_keys:
        if frame_key is not None:
            proc, uid, env, args = frame_key
            frame_key = (proc, uid_map.get(uid, uid), env, args)
        threads.append((op_index, tls, frame_key, valid, current))
    return (globals_key, tuple(threads), heap_key, locks_key)


def shared_key(world: World) -> tuple:
    """Canonical key of the *shared* state only: globals, the heap
    reachable from them, and the lock table.  Thread-private residue
    (working copies, script progress) is projected away.  This is the
    granularity at which the ``both`` mode's operation-commutativity
    ample sets preserve reachability: two commuting operations leave the
    same shared state either way, but may leave different private
    scratch objects."""
    canon = _Canonicalizer(world)
    globals_key = tuple(
        (name, canon.ref(world.globals[name]))
        for name in sorted(world.globals))
    heap_key = canon.heap_contents()
    locks_key = tuple(sorted(
        (canon.ids.get(oid, 0), owner)
        for oid, owner in world.locks.items() if oid in canon.ids))
    return (globals_key, heap_key, locks_key)


def quiescent_key(world: World) -> tuple:
    """Canonical key of the *shared* state plus each thread's script
    progress — the granularity at which the atomicity definition of
    §3.2 compares executions.  Stale reservations and observation sets
    are dropped: every procedure in the corpus re-reads (LL / matching
    read) before any SC/CAS, so they cannot influence future behaviour
    from a quiescent state."""
    canon = _Canonicalizer(world)
    globals_key = tuple(
        (name, canon.ref(world.globals[name]))
        for name in sorted(world.globals))
    progress = []
    tl_keys = []
    for thread in world.threads:
        spec = thread.spec
        if spec.repeat and spec.ops:
            progress.append(thread.op_index % len(spec.ops))
        else:
            progress.append(thread.op_index)
        tl_keys.append(tuple(sorted(
            (name, canon.ref(v))
            for name, v in thread.threadlocals.items())))
    heap_key = canon.heap_contents()
    locks_key = tuple(sorted(
        (canon.ids.get(oid, 0), owner)
        for oid, owner in world.locks.items() if oid in canon.ids))
    return (globals_key, tuple(progress), tuple(tl_keys), heap_key,
            locks_key)
