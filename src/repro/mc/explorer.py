"""Explicit-state model checker over SYNL worlds.

Modes (the four configurations of §6.3):

* ``"full"``   — every enabled thread's next statement, full interleaving;
* ``"por"``    — ample-set partial-order reduction (SPIN-style stand-in);
* ``"atomic"`` — each procedure invocation is one transition (the
  reduction licensed by the paper's atomicity analysis); sub-modes
  ``run_to_commit`` (default) and exceptional-variant execution;
* ``"both"``   — atomic transitions plus an ample-set reduction at
  operation granularity, driven by an operation-commutativity oracle.

The explorer is a DFS with canonical state hashing, property checking
(per state and at quiescent states), optional collection of the
quiescent-state set (used by the soundness tests, which verify that the
reduced explorations reach exactly the quiescent states of the full
one), a state cap, and violation traces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import AssertionViolation
from repro.interp.interp import AssumeFailed, Interp
from repro.interp.state import Event, ThreadSpec, World
from repro.mc.atomic import AtomicOutcome, run_to_commit, run_variant
from repro.mc.canonical import quiescent_key, shared_key, state_key
from repro.mc.por import SafetyCache
from repro.mc.properties import Property
from repro.obs.tracing import NULL_TRACER


@dataclass
class MCResult:
    mode: str
    states: int = 0
    transitions: int = 0
    elapsed: float = 0.0
    violation: Optional[str] = None
    trace: list[str] = field(default_factory=list)
    #: structured counterpart of ``trace`` (only on violation): one
    #: ``{tid, uid, desc, kind, via}`` dict per transition, enough to
    #: rebuild an annotated interleaving (:mod:`repro.mc.cex`).
    #: ``kind`` is ``init`` | ``invoke`` | ``stmt`` | ``atomic``; ``uid``
    #: is the CFG-node uid for ``stmt`` steps, else ``None``.
    path: list[dict] = field(default_factory=list)
    capped: bool = False
    #: explorer metrics snapshot (states/sec, canonical-hash cache
    #: hits, ample-set reduction counts, …) — see ``Explorer._finish``
    metrics: dict = field(default_factory=dict)
    quiescent: Optional[set] = None
    #: quiescent states where every thread's script has completed.
    #: ``full``/``por``/``atomic`` preserve the whole quiescent set;
    #: the op-level ample sets of ``both`` preserve the final *shared*
    #: projection (``final_shared``) — commuting operations may leave
    #: different thread-private scratch objects.
    final: Optional[set] = None
    final_shared: Optional[set] = None

    @property
    def states_per_s(self) -> float:
        return self.states / self.elapsed if self.elapsed > 0 else 0.0

    def to_dict(self) -> dict:
        from repro.obs.export import mc_to_dict

        return mc_to_dict(self)

    def __str__(self) -> str:
        status = self.violation or ("CAPPED" if self.capped else "ok")
        return (f"[{self.mode}] states={self.states} "
                f"transitions={self.transitions} "
                f"time={self.elapsed:.2f}s {status}")


@dataclass
class _Succ:
    desc: str
    world: Optional[World]
    events: list[Event]
    violation: Optional[str] = None
    # provenance for counterexample reconstruction
    tid: int = -1
    uid: Optional[int] = None        # CFG node uid ('stmt' steps only)
    kind: str = "stmt"               # 'invoke'|'stmt'|'return'|'atomic'
    via: Optional[str] = None        # exceptional-variant name, if any
    proc: Optional[str] = None       # procedure being executed/invoked

    def step_info(self) -> dict:
        return {"tid": self.tid, "uid": self.uid, "desc": self.desc,
                "kind": self.kind, "via": self.via, "proc": self.proc}


class Explorer:
    def __init__(self, interp: Interp, specs: list[ThreadSpec],
                 mode: str = "full",
                 properties: Optional[list[Property]] = None,
                 max_states: Optional[int] = None,
                 variant_interp: Optional[Interp] = None,
                 variant_map: Optional[dict[str, list[str]]] = None,
                 commutes: Optional[Callable] = None,
                 collect_quiescent: bool = False,
                 atomic_step_budget: int = 10_000,
                 tracer=None, events=None):
        if mode not in ("full", "por", "atomic", "both"):
            raise ValueError(f"unknown mode {mode!r}")
        self.interp = interp
        self.specs = specs
        self.mode = mode
        self.properties = properties or []
        self.max_states = max_states
        self.variant_interp = variant_interp
        self.variant_map = variant_map
        self.commutes = commutes
        self.collect_quiescent = collect_quiescent
        self.atomic_step_budget = atomic_step_budget
        self.safety = SafetyCache()
        self.tracer = tracer or NULL_TRACER
        #: optional :class:`repro.obs.events.EventStream` receiving
        #: ``mc.push`` / ``mc.pop`` / ``mc.ample`` / ``mc.violation`` /
        #: ``mc.cap`` events (None = off)
        self.events = events
        # ample-set bookkeeping (plain ints: DFS is single-threaded)
        self._ample_reduced = 0
        self._ample_full = 0

    # -- successor generation --------------------------------------------------
    def _step_thread(self, world: World, tid: int) -> _Succ:
        w = world.copy()
        thread = w.threads[tid]
        frame = thread.frame
        node = frame.node if frame is not None else None
        uid = node.uid if node is not None else None
        if frame is None:
            kind, proc = "invoke", thread.current_call()[0]
        else:
            kind = "stmt" if node is not None else "return"
            proc = frame.proc_name
        desc = f"t{tid}@{node.uid if node else 'call'}"
        try:
            event = self.interp.step(w, tid)
        except AssumeFailed:
            return _Succ(desc, None, [], tid=tid, uid=uid, kind=kind,
                         proc=proc)
        except AssertionViolation as exc:
            return _Succ(desc, None, [], violation=str(exc),
                         tid=tid, uid=uid, kind=kind, proc=proc)
        return _Succ(desc, w, [event] if event is not None else [],
                     tid=tid, uid=uid, kind=kind, proc=proc)

    def _interleaved(self, world: World,
                     on_stack: set) -> list[_Succ]:
        enabled = self.interp.enabled_threads(world)
        if self.mode == "por":
            for tid in enabled:
                if not self.safety.thread_safe(self.interp, world, tid):
                    continue
                succ = self._step_thread(world, tid)
                if succ.violation is not None:
                    return [succ]
                if succ.world is None:
                    continue
                if state_key(succ.world) in on_stack:
                    continue  # cycle proviso: fall back to full expansion
                self._ample_reduced += 1
                if self.events is not None:
                    self.events.emit("mc.ample", tid=tid, desc=succ.desc)
                return [succ]
            self._ample_full += 1
        return [self._step_thread(world, tid) for tid in enabled]

    def _atomic_one(self, world: World, tid: int) -> list[_Succ]:
        if self.variant_interp is not None and self.variant_map is not None:
            name, _args = world.threads[tid].current_call()
            out: list[_Succ] = []
            for vname in self.variant_map.get(name, [name]):
                outcome = run_variant(self.interp, self.variant_interp,
                                      world, tid, vname,
                                      self.atomic_step_budget)
                out.append(_Succ(outcome.desc, outcome.world,
                                 outcome.events, outcome.violation,
                                 tid=tid, kind="atomic", via=vname,
                                 proc=name))
            return out
        name, _args = world.threads[tid].current_call()
        outcome = run_to_commit(self.interp, world, tid,
                                self.atomic_step_budget)
        return [_Succ(outcome.desc, outcome.world, outcome.events,
                      outcome.violation, tid=tid, kind="atomic",
                      proc=name)]

    def _atomic(self, world: World, on_stack: set) -> list[_Succ]:
        live = [t.tid for t in world.threads if not t.done]
        if self.mode == "both" and self.commutes is not None:
            # ample set at operation granularity: a thread whose next
            # operation commutes with every other live thread's next
            # operation may be explored alone (cycle proviso applies)
            for tid in live:
                mine = world.threads[tid].current_call()
                if not all(self.commutes(mine,
                                         world.threads[o].current_call())
                           for o in live if o != tid):
                    continue
                succs = [s for s in self._atomic_one(world, tid)]
                if any(s.violation for s in succs):
                    return succs
                real = [s for s in succs if s.world is not None]
                if not real:
                    continue  # disabled here; try another thread
                if any(state_key(s.world) in on_stack for s in real):
                    continue
                self._ample_reduced += 1
                if self.events is not None:
                    self.events.emit("mc.ample", tid=tid,
                                     desc=real[0].desc)
                return succs
        if self.mode == "both":
            self._ample_full += 1
        out: list[_Succ] = []
        for tid in live:
            out.extend(self._atomic_one(world, tid))
        return out

    def _successors(self, world: World, on_stack: set) -> list[_Succ]:
        if self.mode in ("full", "por"):
            return self._interleaved(world, on_stack)
        return self._atomic(world, on_stack)

    # -- property plumbing -------------------------------------------------------
    def _apply_events(self, ghosts: tuple, events: list[Event]) -> tuple:
        out = list(ghosts)
        for i, prop in enumerate(self.properties):
            g = out[i]
            for event in events:
                g = prop.on_event(g, event)
            out[i] = g
        return tuple(out)

    def _check(self, world: World, ghosts: tuple) -> Optional[str]:
        for prop, ghost in zip(self.properties, ghosts):
            message = prop.check_state(world, self.interp, ghost)
            if message is not None:
                return message
            if world.quiescent():
                message = prop.check_quiescent(world, self.interp, ghost)
                if message is not None:
                    return message
        return None

    # -- the search ---------------------------------------------------------------
    def _finish(self, result: MCResult, start: float,
                cache_hits: int, max_depth: int) -> MCResult:
        """Stamp timing and the metrics snapshot onto the result."""
        result.elapsed = time.perf_counter() - start
        lookups = cache_hits + result.states
        ample_total = self._ample_reduced + self._ample_full
        result.metrics = {
            "mc.states": result.states,
            "mc.transitions": result.transitions,
            "mc.states_per_s": round(result.states_per_s, 3),
            "mc.cache_hits": cache_hits,
            "mc.cache_hit_ratio":
                round(cache_hits / lookups, 6) if lookups else 0.0,
            "mc.max_depth": max_depth,
            "mc.ample_reduced": self._ample_reduced,
            "mc.ample_full": self._ample_full,
            "mc.ample_reduction_ratio":
                round(self._ample_reduced / ample_total, 6)
                if ample_total else 0.0,
            "mc.safety_cache_hits": self.safety.hits,
            "mc.safety_cache_misses": self.safety.misses,
        }
        return result

    def run(self) -> MCResult:
        with self.tracer.span("mc:run", mode=self.mode):
            return self._run()

    def _run(self) -> MCResult:
        start = time.perf_counter()
        self._ample_reduced = 0
        self._ample_full = 0
        cache_hits = 0  # canonical-hash lookups that found a seen state
        max_depth = 1
        result = MCResult(self.mode)
        if self.collect_quiescent:
            result.quiescent = set()
            result.final = set()
            result.final_shared = set()

        def record_quiescent(world: World) -> None:
            if not self.collect_quiescent or not world.quiescent():
                return
            key = quiescent_key(world)
            result.quiescent.add(key)
            if all(t.done for t in world.threads):
                result.final.add(key)
                result.final_shared.add(shared_key(world))

        with self.tracer.span("mc:init"):
            world0 = self.interp.make_world(self.specs)
            ghosts0 = tuple(p.initial_ghost() for p in self.properties)
            key0 = (state_key(world0), ghosts0)
            seen = {key0}
            result.states = 1
            message = self._check(world0, ghosts0)
        if message is not None:
            result.violation = message
            return self._finish(result, start, cache_hits, max_depth)
        record_quiescent(world0)

        dfs_span = self.tracer.span("mc:dfs")
        dfs_span.__enter__()
        on_stack = {key0[0]}
        init_step = {"tid": -1, "uid": None, "desc": "init",
                     "kind": "init", "via": None}

        def record_violation(message: str, succ: _Succ) -> None:
            result.violation = message
            result.path = [dict(e[5]) for e in stack] \
                + [succ.step_info()]
            result.trace = [s["desc"] for s in result.path]
            if self.events is not None:
                self.events.emit("mc.violation", desc=succ.desc,
                                 message=message)

        # stack entries: (key, world, ghosts, successor list, index, step)
        stack = [[key0, world0, ghosts0, None, 0, init_step]]
        while stack:
            entry = stack[-1]
            key, world, ghosts, succs, index, _step = entry
            if succs is None:
                succs = self._successors(world, on_stack)
                entry[3] = succs
            if index >= len(succs):
                stack.pop()
                on_stack.discard(key[0])
                if self.events is not None:
                    self.events.emit("mc.pop", depth=len(stack))
                continue
            entry[4] += 1
            succ = succs[index]
            if succ.violation is not None:
                record_violation(succ.violation, succ)
                break
            if succ.world is None:
                continue  # disabled transition
            result.transitions += 1
            new_ghosts = self._apply_events(ghosts, succ.events)
            new_key = (state_key(succ.world), new_ghosts)
            if new_key in seen:
                cache_hits += 1
                continue
            seen.add(new_key)
            result.states += 1
            message = self._check(succ.world, new_ghosts)
            if message is not None:
                record_violation(message, succ)
                break
            record_quiescent(succ.world)
            if self.max_states is not None \
                    and result.states >= self.max_states:
                result.capped = True
                if self.events is not None:
                    self.events.emit("mc.cap", states=result.states)
                break
            on_stack.add(new_key[0])
            stack.append([new_key, succ.world, new_ghosts, None, 0,
                          succ.step_info()])
            if len(stack) > max_depth:
                max_depth = len(stack)
            if self.events is not None:
                self.events.emit("mc.push", depth=len(stack),
                                 desc=succ.desc, states=result.states)
        dfs_span.__exit__(None, None, None)

        return self._finish(result, start, cache_hits, max_depth)


def explore(interp: Interp, specs: list[ThreadSpec], mode: str = "full",
            **kwargs) -> MCResult:
    """Convenience wrapper around :class:`Explorer`."""
    return Explorer(interp, specs, mode=mode, **kwargs).run()
