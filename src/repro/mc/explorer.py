"""Explicit-state model checker over SYNL worlds.

Modes (the four configurations of §6.3):

* ``"full"``   — every enabled thread's next statement, full interleaving;
* ``"por"``    — ample-set partial-order reduction (SPIN-style stand-in);
* ``"atomic"`` — each procedure invocation is one transition (the
  reduction licensed by the paper's atomicity analysis); sub-modes
  ``run_to_commit`` (default) and exceptional-variant execution;
* ``"both"``   — atomic transitions plus an ample-set reduction at
  operation granularity, driven by an operation-commutativity oracle.

The explorer is a DFS with canonical state hashing, property checking
(per state and at quiescent states), optional collection of the
quiescent-state set (used by the soundness tests, which verify that the
reduced explorations reach exactly the quiescent states of the full
one), a state cap, and violation traces.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import AssertionViolation
from repro.interp.interp import AssumeFailed, Interp
from repro.interp.state import Event, ThreadSpec, World
from repro.mc.atomic import AtomicOutcome, run_to_commit, run_variant
from repro.mc.canonical import quiescent_key, shared_key, state_key
from repro.mc.por import SafetyCache
from repro.mc.properties import Property
from repro.obs import ledger
from repro.obs.export import MIN_RATE_WINDOW_S
from repro.obs.metrics import EwmaRate
from repro.obs.profile import NULL_PROFILER, malloc_top, peak_rss_mb
from repro.obs.tracing import NULL_TRACER

#: the DFS checks the progress/heartbeat clock once per this many loop
#: iterations — cheap enough to leave always on
_BEAT_CHECK_MASK = 0xFF

#: frontier-size sampling starts at this transition stride and doubles
#: (halving the retained samples) whenever the buffer fills, keeping
#: the per-run series bounded no matter how long the search runs
_FRONTIER_SAMPLE_STRIDE = 64
_FRONTIER_MAX_SAMPLES = 256


def _depth_summary(depth_counts: dict[int, int]) -> dict:
    """Exact summary statistics over a ``{depth: pushes}`` histogram
    (unlike the log-bucketed Histogram sketch, depths are small ints
    so exact percentiles are free)."""
    total = sum(depth_counts.values())
    if not total:
        return {"count": 0, "min": 0, "max": 0, "mean": 0.0,
                "p50": 0, "p95": 0, "p99": 0}
    ordered = sorted(depth_counts)
    out = {"count": total, "min": ordered[0], "max": ordered[-1],
           "mean": round(sum(d * n for d, n in depth_counts.items())
                         / total, 3)}
    for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
        rank = max(1, int(q * total + 0.999999))
        seen = 0
        value = ordered[-1]
        for depth in ordered:
            seen += depth_counts[depth]
            if seen >= rank:
                value = depth
                break
        out[name] = value
    return out


@dataclass
class MCResult:
    mode: str
    states: int = 0
    transitions: int = 0
    elapsed: float = 0.0
    violation: Optional[str] = None
    trace: list[str] = field(default_factory=list)
    #: structured counterpart of ``trace`` (only on violation): one
    #: ``{tid, uid, desc, kind, via}`` dict per transition, enough to
    #: rebuild an annotated interleaving (:mod:`repro.mc.cex`).
    #: ``kind`` is ``init`` | ``invoke`` | ``stmt`` | ``atomic``; ``uid``
    #: is the CFG-node uid for ``stmt`` steps, else ``None``.
    path: list[dict] = field(default_factory=list)
    capped: bool = False
    #: the --deadline soft timeout fired: the search stopped
    #: gracefully with the verdict UNKNOWN — no violation was found,
    #: but the state space was not exhausted either.  Partial state/
    #: transition counts and the full coverage telemetry are
    #: preserved, exactly as for a capped run.
    deadline_hit: bool = False
    #: explorer metrics snapshot (states/sec, canonical-hash cache
    #: hits, ample-set reduction counts, coverage telemetry such as
    #: ``mc.depth`` / ``mc.frontier_samples`` / ``mc.mem_peak_mb``)
    #: — see ``Explorer._finish``
    metrics: dict = field(default_factory=dict)
    #: ranked hotspot document (``Profiler.to_dict`` shape) when the
    #: exploration ran with a profiler, else empty
    profile: dict = field(default_factory=dict)
    quiescent: Optional[set] = None
    #: quiescent states where every thread's script has completed.
    #: ``full``/``por``/``atomic`` preserve the whole quiescent set;
    #: the op-level ample sets of ``both`` preserve the final *shared*
    #: projection (``final_shared``) — commuting operations may leave
    #: different thread-private scratch objects.
    final: Optional[set] = None
    final_shared: Optional[set] = None

    @property
    def states_per_s(self) -> float:
        """Throughput, 0.0 for runs shorter than
        :data:`~repro.obs.export.MIN_RATE_WINDOW_S` — a rate computed
        over a sub-millisecond window is timer noise and must not be
        compared against real baselines."""
        if self.elapsed <= MIN_RATE_WINDOW_S:
            return 0.0
        return self.states / self.elapsed

    def to_dict(self) -> dict:
        from repro.obs.export import mc_to_dict

        return mc_to_dict(self)

    def __str__(self) -> str:
        if self.violation:
            status = self.violation
        elif self.deadline_hit:
            status = "UNKNOWN (deadline)"
        elif self.capped:
            status = "CAPPED"
        else:
            status = "ok"
        return (f"[{self.mode}] states={self.states} "
                f"transitions={self.transitions} "
                f"time={self.elapsed:.2f}s {status}")


@dataclass
class _Succ:
    desc: str
    world: Optional[World]
    events: list[Event]
    violation: Optional[str] = None
    # provenance for counterexample reconstruction
    tid: int = -1
    uid: Optional[int] = None        # CFG node uid ('stmt' steps only)
    kind: str = "stmt"               # 'invoke'|'stmt'|'return'|'atomic'
    via: Optional[str] = None        # exceptional-variant name, if any
    proc: Optional[str] = None       # procedure being executed/invoked

    def step_info(self) -> dict:
        return {"tid": self.tid, "uid": self.uid, "desc": self.desc,
                "kind": self.kind, "via": self.via, "proc": self.proc}


class Explorer:
    def __init__(self, interp: Interp, specs: list[ThreadSpec],
                 mode: str = "full",
                 properties: Optional[list[Property]] = None,
                 max_states: Optional[int] = None,
                 variant_interp: Optional[Interp] = None,
                 variant_map: Optional[dict[str, list[str]]] = None,
                 commutes: Optional[Callable] = None,
                 collect_quiescent: bool = False,
                 atomic_step_budget: int = 10_000,
                 tracer=None, events=None, profiler=None,
                 progress: Optional[float] = None,
                 progress_sink: Optional[Callable[[str], None]] = None,
                 trace_malloc: bool = False,
                 deadline: Optional[float] = None,
                 graph=None):
        if mode not in ("full", "por", "atomic", "both"):
            raise ValueError(f"unknown mode {mode!r}")
        self.interp = interp
        self.specs = specs
        self.mode = mode
        self.properties = properties or []
        self.max_states = max_states
        self.variant_interp = variant_interp
        self.variant_map = variant_map
        self.commutes = commutes
        self.collect_quiescent = collect_quiescent
        self.atomic_step_budget = atomic_step_budget
        self.safety = SafetyCache()
        self.tracer = tracer or NULL_TRACER
        #: optional :class:`repro.obs.events.EventStream` receiving
        #: ``mc.push`` / ``mc.pop`` / ``mc.ample`` / ``mc.violation`` /
        #: ``mc.cap`` events (None = off)
        self.events = events
        #: work-counter profiler attributing cost per explorer
        #: sub-step (``mc.successors`` / ``mc.canonicalize`` /
        #: ``mc.dedup`` / ``mc.por_ample``); NULL_PROFILER = off
        self.profiler = profiler or NULL_PROFILER
        #: heartbeat period in seconds (None = no heartbeat); each
        #: beat prints one progress line and emits an
        #: ``explorer.progress`` event
        self.progress = progress
        self.progress_sink = progress_sink or (
            lambda line: print(line, file=sys.stderr))
        #: when True, collect tracemalloc top-allocation sites into
        #: ``metrics["mc.malloc_top"]`` (starts tracing if needed)
        self.trace_malloc = trace_malloc
        #: soft wall-clock budget in seconds (None = unbounded): the
        #: DFS checks the clock on the heartbeat stride and stops
        #: gracefully once exceeded, preserving all telemetry and
        #: reporting the verdict UNKNOWN (``MCResult.deadline_hit``)
        self.deadline = deadline
        #: optional :class:`repro.obs.graph.GraphWriter` streaming the
        #: visited state graph to JSONL (None = off); node records are
        #: emitted exactly when a state is counted and edge records
        #: exactly when a transition is counted, so the capture totals
        #: reconcile with the result by construction
        self.graph = graph
        #: EWMA states/sec estimator feeding the heartbeat's rate/ETA
        self._rate = EwmaRate()
        # ample-set bookkeeping (plain ints: DFS is single-threaded)
        self._ample_reduced = 0
        self._ample_full = 0
        self._prof_on = self.profiler.enabled
        self._ample_wall = 0.0
        self._ample_checks = 0
        # POR-pruned transition capture (only with a graph writer that
        # asked for it): ample-set code stashes the not-taken
        # successors here; the DFS drains the buffer into the writer
        self._record_pruned = graph is not None and graph.record_pruned
        self._pruned_buf: list[_Succ] = []
        # always-on per-statement heat: uid -> [visits, switches, tidmask]
        self._stmt_heat: dict[int, list] = {}
        self._cache_hits = 0

    # -- successor generation --------------------------------------------------
    def _step_thread(self, world: World, tid: int) -> _Succ:
        w = world.copy()
        thread = w.threads[tid]
        frame = thread.frame
        node = frame.node if frame is not None else None
        uid = node.uid if node is not None else None
        if frame is None:
            kind, proc = "invoke", thread.current_call()[0]
        else:
            kind = "stmt" if node is not None else "return"
            proc = frame.proc_name
        desc = f"t{tid}@{node.uid if node else 'call'}"
        try:
            event = self.interp.step(w, tid)
        except AssumeFailed:
            return _Succ(desc, None, [], tid=tid, uid=uid, kind=kind,
                         proc=proc)
        except AssertionViolation as exc:
            return _Succ(desc, None, [], violation=str(exc),
                         tid=tid, uid=uid, kind=kind, proc=proc)
        return _Succ(desc, w, [event] if event is not None else [],
                     tid=tid, uid=uid, kind=kind, proc=proc)

    def _interleaved(self, world: World,
                     on_stack: set) -> list[_Succ]:
        enabled = self.interp.enabled_threads(world)
        if self.mode == "por":
            for tid in enabled:
                if self._prof_on:
                    t0 = time.perf_counter()
                    safe = self.safety.thread_safe(self.interp, world,
                                                   tid)
                    self._ample_wall += time.perf_counter() - t0
                    self._ample_checks += 1
                else:
                    safe = self.safety.thread_safe(self.interp, world,
                                                   tid)
                if not safe:
                    continue
                succ = self._step_thread(world, tid)
                if succ.violation is not None:
                    return [succ]
                if succ.world is None:
                    continue
                if state_key(succ.world) in on_stack:
                    continue  # cycle proviso: fall back to full expansion
                self._ample_reduced += 1
                if self.events is not None:
                    self.events.emit("mc.ample", tid=tid, desc=succ.desc)
                if self._record_pruned:
                    # the transitions a full expansion would also have
                    # taken, executed solely to capture their targets
                    self._pruned_buf = [self._step_thread(world, o)
                                        for o in enabled if o != tid]
                return [succ]
            self._ample_full += 1
        return [self._step_thread(world, tid) for tid in enabled]

    def _atomic_one(self, world: World, tid: int) -> list[_Succ]:
        if self.variant_interp is not None and self.variant_map is not None:
            name, _args = world.threads[tid].current_call()
            out: list[_Succ] = []
            for vname in self.variant_map.get(name, [name]):
                outcome = run_variant(self.interp, self.variant_interp,
                                      world, tid, vname,
                                      self.atomic_step_budget)
                out.append(_Succ(outcome.desc, outcome.world,
                                 outcome.events, outcome.violation,
                                 tid=tid, kind="atomic", via=vname,
                                 proc=name))
            return out
        name, _args = world.threads[tid].current_call()
        outcome = run_to_commit(self.interp, world, tid,
                                self.atomic_step_budget)
        return [_Succ(outcome.desc, outcome.world, outcome.events,
                      outcome.violation, tid=tid, kind="atomic",
                      proc=name)]

    def _atomic(self, world: World, on_stack: set) -> list[_Succ]:
        live = [t.tid for t in world.threads if not t.done]
        if self.mode == "both" and self.commutes is not None:
            # ample set at operation granularity: a thread whose next
            # operation commutes with every other live thread's next
            # operation may be explored alone (cycle proviso applies)
            for tid in live:
                mine = world.threads[tid].current_call()
                if self._prof_on:
                    t0 = time.perf_counter()
                    alone = all(
                        self.commutes(mine,
                                      world.threads[o].current_call())
                        for o in live if o != tid)
                    self._ample_wall += time.perf_counter() - t0
                    self._ample_checks += 1
                else:
                    alone = all(
                        self.commutes(mine,
                                      world.threads[o].current_call())
                        for o in live if o != tid)
                if not alone:
                    continue
                succs = [s for s in self._atomic_one(world, tid)]
                if any(s.violation for s in succs):
                    return succs
                real = [s for s in succs if s.world is not None]
                if not real:
                    continue  # disabled here; try another thread
                if any(state_key(s.world) in on_stack for s in real):
                    continue
                self._ample_reduced += 1
                if self.events is not None:
                    self.events.emit("mc.ample", tid=tid,
                                     desc=real[0].desc)
                if self._record_pruned:
                    self._pruned_buf = [
                        s for o in live if o != tid
                        for s in self._atomic_one(world, o)]
                return succs
        if self.mode == "both":
            self._ample_full += 1
        out: list[_Succ] = []
        for tid in live:
            out.extend(self._atomic_one(world, tid))
        return out

    def _successors(self, world: World, on_stack: set) -> list[_Succ]:
        if self.mode in ("full", "por"):
            return self._interleaved(world, on_stack)
        return self._atomic(world, on_stack)

    # -- property plumbing -------------------------------------------------------
    def _apply_events(self, ghosts: tuple, events: list[Event]) -> tuple:
        out = list(ghosts)
        for i, prop in enumerate(self.properties):
            g = out[i]
            for event in events:
                g = prop.on_event(g, event)
            out[i] = g
        return tuple(out)

    def _check(self, world: World, ghosts: tuple) -> Optional[str]:
        for prop, ghost in zip(self.properties, ghosts):
            message = prop.check_state(world, self.interp, ghost)
            if message is not None:
                return message
            if world.quiescent():
                message = prop.check_quiescent(world, self.interp, ghost)
                if message is not None:
                    return message
        return None

    # -- the search ---------------------------------------------------------------
    def _finish(self, result: MCResult, start: float,
                cache_hits: int, max_depth: int) -> MCResult:
        """Stamp timing, the metrics snapshot, and the coverage
        telemetry onto the result (``time.perf_counter`` throughout —
        monotonic, immune to wall-clock jumps)."""
        result.elapsed = time.perf_counter() - start
        self._cache_hits = cache_hits
        lookups = cache_hits + result.states
        hit_rate = round(cache_hits / lookups, 6) if lookups else 0.0
        ample_total = self._ample_reduced + self._ample_full
        depth_counts = getattr(self, "_depth_counts", {})
        result.metrics = {
            "mc.states": result.states,
            "mc.transitions": result.transitions,
            "mc.states_per_s": round(result.states_per_s, 3),
            "mc.cache_hits": cache_hits,
            "mc.cache_hit_ratio": hit_rate,
            # alias of cache_hit_ratio under the name the bench
            # records and the regression watchdog use
            "mc.dedup_hit_rate": hit_rate,
            "mc.max_depth": max_depth,
            "mc.ample_reduced": self._ample_reduced,
            "mc.ample_full": self._ample_full,
            "mc.ample_reduction_ratio":
                round(self._ample_reduced / ample_total, 6)
                if ample_total else 0.0,
            "mc.safety_cache_hits": self.safety.hits,
            "mc.safety_cache_misses": self.safety.misses,
            "mc.deadline_hit": bool(result.deadline_hit),
            "mc.mem_peak_mb": peak_rss_mb(),
            "mc.depth": _depth_summary(depth_counts),
            "mc.depth_hist": [[d, depth_counts[d]]
                              for d in sorted(depth_counts)],
            "mc.frontier_samples": [
                list(pair)
                for pair in getattr(self, "_frontier_samples", [])],
            # per-statement heat: [uid, visits, switches, n_threads]
            # (always on — the source-heatmap substrate)
            "mc.stmt_heat": [
                [uid, heat[0], heat[1], bin(heat[2]).count("1")]
                for uid, heat in sorted(self._stmt_heat.items())],
        }
        if self.trace_malloc:
            result.metrics["mc.malloc_top"] = malloc_top()
        if self._prof_on:
            prof = self.profiler
            prof.acc("mc.por_ample", self._ample_wall,
                     work=self._ample_checks,
                     calls=self._ample_checks)
            # dedup: calls = canonical-key lookups, work = hits
            prof.acc("mc.dedup", 0.0, work=cache_hits, calls=lookups)
            result.profile = prof.to_dict()
            prof.emit_hotspots(self.events)
        if self.progress is not None:
            self._beat(result, start, final=True)
        # outcome capture for the persistent run ledger: verdict +
        # counterexample fingerprint (no-op outside a recorded run)
        ledger.note_mc(result)
        return result

    def _eta_fields(self, result: MCResult, now: float,
                    elapsed: float) -> tuple[str, dict]:
        """EWMA rate + ETA for the heartbeat: the suffix of the
        stderr line and the extra event fields.  The ETA targets the
        state cap when one is set; a running deadline additionally
        reports its remaining budget."""
        rate = self._rate.update(result.states, now)
        text = f" rate={rate:,.0f}/s"
        fields: dict = {"rate_states_per_s": round(rate, 1)}
        if self.max_states is not None:
            eta = self._rate.eta_s(self.max_states - result.states)
            text += f" eta_cap={eta:.1f}s" if eta is not None \
                else " eta_cap=?"
            if eta is not None:
                fields["eta_cap_s"] = round(eta, 3)
        if self.deadline is not None:
            left = max(0.0, self.deadline - elapsed)
            text += f" deadline_in={left:.1f}s"
            fields["deadline_in_s"] = round(left, 3)
        return text, fields

    def _beat(self, result: MCResult, start: float,
              final: bool = False) -> None:
        """One ``--progress`` heartbeat: a stderr line plus an
        ``explorer.progress`` event."""
        now = time.perf_counter()
        elapsed = now - start
        frontier = getattr(self, "_stack_len", 0)
        tag = "done " if final else ""
        eta_text, eta_fields = self._eta_fields(result, now, elapsed)
        self.progress_sink(
            f"[mc:{self.mode}] {tag}t={elapsed:.1f}s "
            f"states={result.states} trans={result.transitions} "
            f"frontier={frontier} "
            f"depth_max={getattr(self, '_max_depth_seen', 0)} "
            f"mem={peak_rss_mb():.1f}MB{eta_text}")
        if self.events is not None:
            hits = self._cache_hits
            lookups = hits + result.states
            self.events.emit("explorer.progress",
                             states=result.states,
                             transitions=result.transitions,
                             depth=getattr(self, "_max_depth_seen", 0),
                             frontier=frontier,
                             elapsed_s=round(elapsed, 3),
                             dedup_hit_rate=round(hits / lookups, 6)
                             if lookups else 0.0,
                             mem_mb=round(peak_rss_mb(), 1),
                             final=final,
                             **eta_fields)

    def run(self) -> MCResult:
        with self.tracer.span("mc:run", mode=self.mode):
            return self._run()

    def _run(self) -> MCResult:
        start = time.perf_counter()
        self._ample_reduced = 0
        self._ample_full = 0
        self._prof_on = self.profiler.enabled
        self._ample_wall = 0.0
        self._ample_checks = 0
        # coverage telemetry (plain containers: DFS is single-threaded)
        self._depth_counts: dict[int, int] = {}
        self._frontier_samples: list[tuple[int, int]] = []
        self._stack_len = 1
        self._max_depth_seen = 1
        self._stmt_heat = {}
        self._cache_hits = 0
        graph = self.graph
        self._record_pruned = graph is not None and graph.record_pruned
        self._pruned_buf = []
        sample_stride = _FRONTIER_SAMPLE_STRIDE
        next_sample = sample_stride
        if self.trace_malloc:
            import tracemalloc
            if not tracemalloc.is_tracing():
                tracemalloc.start()
        next_beat = start + self.progress \
            if self.progress is not None else None
        deadline_at = start + self.deadline \
            if self.deadline is not None else None
        check_clock = next_beat is not None or deadline_at is not None
        self._rate = EwmaRate()
        loop_i = 0
        # profiler hot-loop accumulators, flushed once at the end
        succ_wall = 0.0
        succ_calls = 0
        succ_work = 0
        canon_wall = 0.0
        canon_calls = 0
        cache_hits = 0  # canonical-hash lookups that found a seen state
        max_depth = 1
        result = MCResult(self.mode)
        if self.collect_quiescent:
            result.quiescent = set()
            result.final = set()
            result.final_shared = set()

        def record_quiescent(world: World) -> None:
            if not self.collect_quiescent or not world.quiescent():
                return
            key = quiescent_key(world)
            result.quiescent.add(key)
            if all(t.done for t in world.threads):
                result.final.add(key)
                result.final_shared.add(shared_key(world))

        with self.tracer.span("mc:init"):
            world0 = self.interp.make_world(self.specs)
            ghosts0 = tuple(p.initial_ghost() for p in self.properties)
            key0 = (state_key(world0), ghosts0)
            seen = {key0}
            result.states = 1
            gid0 = graph.node(key0, 1, init=True,
                              quiescent=world0.quiescent()) \
                if graph is not None else None
            message = self._check(world0, ghosts0)
        if message is not None:
            result.violation = message
            return self._finish(result, start, cache_hits, max_depth)
        record_quiescent(world0)

        dfs_span = self.tracer.span("mc:dfs")
        dfs_span.__enter__()
        on_stack = {key0[0]}
        init_step = {"tid": -1, "uid": None, "desc": "init",
                     "kind": "init", "via": None}

        def record_violation(message: str, succ: _Succ) -> None:
            result.violation = message
            result.path = [dict(e[5]) for e in stack] \
                + [succ.step_info()]
            result.trace = [s["desc"] for s in result.path]
            if self.events is not None:
                self.events.emit("mc.violation", desc=succ.desc,
                                 message=message)

        # stack entries: (key, world, ghosts, successor list, index,
        # step, graph node id)
        stack = [[key0, world0, ghosts0, None, 0, init_step, gid0]]
        prof_on = self._prof_on
        while stack:
            loop_i += 1
            if check_clock and not (loop_i & _BEAT_CHECK_MASK):
                now = time.perf_counter()
                if deadline_at is not None and now >= deadline_at:
                    # graceful stop: keep every counter and the
                    # telemetry; the verdict becomes UNKNOWN
                    result.deadline_hit = True
                    if self.events is not None:
                        self.events.emit("mc.deadline",
                                         states=result.states,
                                         deadline_s=self.deadline)
                    break
                if next_beat is not None and now >= next_beat:
                    self._stack_len = len(stack)
                    self._max_depth_seen = max_depth
                    self._cache_hits = cache_hits
                    self._beat(result, start)
                    next_beat = now + self.progress
            entry = stack[-1]
            key, world, ghosts, succs, index, step = entry[:6]
            if succs is None:
                if prof_on:
                    t0 = time.perf_counter()
                    succs = self._successors(world, on_stack)
                    succ_wall += time.perf_counter() - t0
                    succ_calls += 1
                    succ_work += len(succs)
                else:
                    succs = self._successors(world, on_stack)
                entry[3] = succs
                if self._pruned_buf:
                    # POR elected not to take these from this state;
                    # record the would-be edges (same filters as the
                    # counting path: disabled and violating successors
                    # never become transitions)
                    for s in self._pruned_buf:
                        if s.world is None or s.violation is not None:
                            continue
                        graph.pruned(
                            entry[6],
                            (state_key(s.world),
                             self._apply_events(ghosts, s.events)),
                            tid=s.tid, uid=s.uid, op=s.kind)
                    self._pruned_buf = []
            if index >= len(succs):
                stack.pop()
                on_stack.discard(key[0])
                if self.events is not None:
                    self.events.emit("mc.pop", depth=len(stack))
                continue
            entry[4] += 1
            succ = succs[index]
            if succ.violation is not None:
                record_violation(succ.violation, succ)
                break
            if succ.world is None:
                continue  # disabled transition
            result.transitions += 1
            if succ.uid is not None:
                # always-on source heat: visits / context switches /
                # which threads ran this statement (one dict op per
                # transition — noise next to the canonical-hash walk)
                heat = self._stmt_heat.get(succ.uid)
                if heat is None:
                    heat = self._stmt_heat[succ.uid] = [0, 0, 0]
                heat[0] += 1
                parent_tid = step["tid"]
                if 0 <= parent_tid != succ.tid:
                    heat[1] += 1
                if succ.tid >= 0:
                    heat[2] |= 1 << succ.tid
            if result.transitions >= next_sample:
                self._frontier_samples.append(
                    (result.transitions, len(stack)))
                if len(self._frontier_samples) >= _FRONTIER_MAX_SAMPLES:
                    self._frontier_samples = \
                        self._frontier_samples[::2]
                    sample_stride *= 2
                next_sample = result.transitions + sample_stride
            new_ghosts = self._apply_events(ghosts, succ.events)
            if prof_on:
                t0 = time.perf_counter()
                new_key = (state_key(succ.world), new_ghosts)
                canon_wall += time.perf_counter() - t0
                canon_calls += 1
            else:
                new_key = (state_key(succ.world), new_ghosts)
            dup = new_key in seen
            if graph is not None:
                graph.edge(entry[6], new_key, tid=succ.tid,
                           uid=succ.uid, op=succ.kind, dup=dup)
            if dup:
                cache_hits += 1
                continue
            seen.add(new_key)
            result.states += 1
            new_gid = graph.node(new_key, len(stack) + 1,
                                 quiescent=succ.world.quiescent()) \
                if graph is not None else None
            message = self._check(succ.world, new_ghosts)
            if message is not None:
                record_violation(message, succ)
                break
            record_quiescent(succ.world)
            if self.max_states is not None \
                    and result.states >= self.max_states:
                result.capped = True
                if self.events is not None:
                    self.events.emit("mc.cap", states=result.states)
                break
            on_stack.add(new_key[0])
            stack.append([new_key, succ.world, new_ghosts, None, 0,
                          succ.step_info(), new_gid])
            depth = len(stack)
            self._depth_counts[depth] = \
                self._depth_counts.get(depth, 0) + 1
            if depth > max_depth:
                max_depth = depth
            if self.events is not None:
                self.events.emit("mc.push", depth=depth,
                                 desc=succ.desc, states=result.states)
        dfs_span.__exit__(None, None, None)

        self._stack_len = len(stack)
        self._max_depth_seen = max_depth
        if prof_on:
            self.profiler.acc("mc.successors", succ_wall,
                              work=succ_work, calls=succ_calls)
            self.profiler.acc("mc.canonicalize", canon_wall,
                              calls=canon_calls, work=canon_calls)
        return self._finish(result, start, cache_hits, max_depth)


def explore(interp: Interp, specs: list[ThreadSpec], mode: str = "full",
            **kwargs) -> MCResult:
    """Convenience wrapper around :class:`Explorer`."""
    return Explorer(interp, specs, mode=mode, **kwargs).run()
