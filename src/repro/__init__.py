"""repro — reproduction of Wang & Stoller, *Static Analysis of Atomicity
for Programs with Non-Blocking Synchronization* (PPoPP 2005).

Public API highlights
---------------------
* :func:`repro.synl.load_program` — parse + resolve SYNL source.
* :func:`repro.analysis.analyze_program` — run the full atomicity
  inference (§5.4 steps 1–7) and get per-procedure verdicts.
* :class:`repro.mc.Explorer` — explicit-state model checker with
  partial-order and atomic-block reductions.
* :mod:`repro.lin` — linearizability checking of recorded histories.
* :mod:`repro.corpus` — the paper's example programs in SYNL.
* :mod:`repro.experiments` — regenerate every table/figure of §6.
"""

__version__ = "1.0.0"
