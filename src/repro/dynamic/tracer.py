"""Interpreter instrumentation feeding the runtime atomicity checker."""

from __future__ import annotations

from typing import Optional

from repro.dynamic.checker import RuntimeAtomicityChecker
from repro.interp.interp import Interp
from repro.interp.state import Addr, Event, Thread, World


class TracingInterp(Interp):
    """An :class:`Interp` that records every shared access (with the
    lockset held at that moment) into a
    :class:`RuntimeAtomicityChecker`."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.checker = RuntimeAtomicityChecker(events=self.events)
        self._current: dict[int, int] = {}  # tid -> invocation index

    # -- helpers ------------------------------------------------------------
    def _locks_of(self, world: World, tid: int) -> frozenset:
        return frozenset(oid for oid, (owner, _depth) in
                         world.locks.items() if owner == tid)

    def _observe(self, world: World, thread: Thread, op: str,
                 addr: Addr) -> None:
        if addr[0] not in ("g", "f", "e"):
            return  # thread-private
        invocation = self._current.get(thread.tid)
        if invocation is None:
            return  # init/threadinit or outside any procedure
        self.checker.record(invocation, thread.tid, op, addr,
                            self._locks_of(world, thread.tid))

    # -- instrumented hooks ----------------------------------------------------
    def _record_read(self, world: World, thread: Thread,
                     addr: Addr) -> None:
        super()._record_read(world, thread, addr)
        self._observe(world, thread, "read", addr)

    def _store(self, world: World, thread: Thread, addr: Addr,
               value) -> None:
        super()._store(world, thread, addr, value)
        self._observe(world, thread, "write", addr)

    def step(self, world: World, tid: Optional[int],
             thread: Optional[Thread] = None) -> Optional[Event]:
        real_tid = thread.tid if thread is not None else tid
        before = dict(world.locks)
        event = super().step(world, tid, thread=thread)
        after = world.locks
        if real_tid is not None and real_tid >= 0:
            invocation = self._current.get(real_tid)
            if invocation is not None and before != after:
                grew = len(after) > len(before) or any(
                    after.get(oid, (None, 0))[1] > depth
                    for oid, (_o, depth) in before.items())
                for oid in set(before) | set(after):
                    if before.get(oid) != after.get(oid):
                        op = "acquire" if grew else "release"
                        self.checker.record(
                            invocation, real_tid, op, ("lock", oid),
                            self._locks_of(world, real_tid))
        if event is not None and event.tid >= 0:
            if event.kind == "invoke":
                self._current[event.tid] = self.checker.begin(
                    event.tid, event.proc)
            elif event.kind == "return":
                self._current.pop(event.tid, None)
        return event
