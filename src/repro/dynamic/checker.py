"""A lock-based *runtime* atomicity checker (the §2 baseline).

The paper positions itself against runtime reduction checkers — Wang &
Stoller's block-based algorithm and Flanagan & Freund's Atomizer — and
notes that "all of this work focuses on locks and is not effective for
programs that use non-blocking synchronization".  This module
implements that baseline so the claim can be measured (see
``experiments/baseline_runtime.py``):

* the interpreter records, per procedure invocation, the sequence of
  shared actions with the lockset held at each;
* actions are classified by Lipton reduction *as the lock-based
  checkers do*: lock acquires are right-movers, releases left-movers; a
  shared access is a both-mover when every concurrent access to the
  same location (anywhere in the trace) holds a common lock, and
  non-mover (atomic) otherwise;
* an invocation is reduction-atomic when its sequence matches
  ``R*;(A|ε);L*`` — folded with the same §3.3 calculus.

On lock-based code this validates atomic procedures; on non-blocking
code every LL/SC/CAS access is lock-unprotected, so any procedure with
two shared accesses fails — exactly the weakness the paper's static
analysis overcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import atomicity as AT
from repro.analysis.atomicity import Atomicity


@dataclass(frozen=True)
class TraceAction:
    """One shared action observed at runtime."""

    tid: int
    op: str                 # 'read' | 'write' | 'acquire' | 'release'
    addr: tuple             # interpreter address, or lock oid
    locks: frozenset        # lock oids held while performing it
    invocation: int         # invocation index this action belongs to


@dataclass
class Invocation:
    index: int
    tid: int
    proc: str
    actions: list[TraceAction] = field(default_factory=list)


@dataclass
class RuntimeVerdict:
    proc: str
    atomic: bool
    witnesses: int                 # invocations observed
    failing: list[int] = field(default_factory=list)


class RuntimeAtomicityChecker:
    """Block-based reduction check over a recorded trace."""

    def __init__(self, events=None) -> None:
        self.trace: list[TraceAction] = []
        self.invocations: list[Invocation] = []
        #: classification depends only on (op, addr, locks, tid); cache it
        self._protected_cache: dict[tuple, bool] = {}
        #: optional :class:`repro.obs.events.EventStream` receiving
        #: ``dyn.invocation`` / ``dyn.verdict`` events
        self.events = events

    # -- recording ------------------------------------------------------------
    def begin(self, tid: int, proc: str) -> int:
        inv = Invocation(len(self.invocations), tid, proc)
        self.invocations.append(inv)
        if self.events is not None:
            self.events.emit("dyn.invocation", tid=tid, proc=proc,
                             index=inv.index)
        return inv.index

    def record(self, invocation: int, tid: int, op: str, addr: tuple,
               locks: frozenset) -> None:
        action = TraceAction(tid, op, addr, locks, invocation)
        self.trace.append(action)
        self.invocations[invocation].actions.append(action)

    # -- classification (locks-only, as in the baselines) -----------------------
    def _protected(self, action: TraceAction) -> bool:
        """Is every concurrent access to this location guarded by a
        common lock?  (The classic lockset argument.)"""
        key = (action.tid, action.op, action.addr, action.locks)
        cached = self._protected_cache.get(key)
        if cached is not None:
            return cached
        out = True
        for other in self.trace:
            if other.tid == action.tid or other.addr != action.addr:
                continue
            if "write" not in (other.op, action.op):
                continue  # read/read never conflicts
            if not (other.locks & action.locks):
                out = False
                break
        self._protected_cache[key] = out
        return out

    def classify(self, action: TraceAction) -> Atomicity:
        if action.op == "acquire":
            return AT.R
        if action.op == "release":
            return AT.L
        return AT.B if self._protected(action) else AT.A

    # -- verdicts --------------------------------------------------------------
    def check_invocation(self, inv: Invocation) -> bool:
        seq = [self.classify(a) for a in inv.actions]
        return AT.is_atomic(AT.seq_all(seq))

    def verdicts(self) -> dict[str, RuntimeVerdict]:
        out: dict[str, RuntimeVerdict] = {}
        for inv in self.invocations:
            verdict = out.setdefault(
                inv.proc, RuntimeVerdict(inv.proc, True, 0))
            verdict.witnesses += 1
            if not self.check_invocation(inv):
                verdict.atomic = False
                verdict.failing.append(inv.index)
        if self.events is not None:
            for verdict in out.values():
                self.events.emit("dyn.verdict", proc=verdict.proc,
                                 atomic=verdict.atomic,
                                 witnesses=verdict.witnesses)
        return out
