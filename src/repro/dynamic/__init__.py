"""Runtime (dynamic) atomicity checking — the lock-based baseline the
paper's related work compares against (§2)."""

from repro.dynamic.checker import (Invocation, RuntimeAtomicityChecker,
                                   RuntimeVerdict, TraceAction)
from repro.dynamic.tracer import TracingInterp

__all__ = [
    "RuntimeAtomicityChecker",
    "RuntimeVerdict",
    "TraceAction",
    "Invocation",
    "TracingInterp",
]
