"""Deterministic work-counter profiling (zero-dep).

The span tracer answers *which phase* was slow; this module answers
*which work inside a phase* cost the time.  Two collectors, one
report:

* the **region profiler** — scoped ``profiler.region("name")``
  contexts (plus the lock-free :meth:`Profiler.acc` hot-loop form)
  accumulate three numbers per dotted name: ``calls``, ``work`` (an
  explicit, deterministic unit count — sites classified, states
  expanded, rule firings, …) and ``wall_s``.  Work and call counts
  are *deterministic*: two identical runs produce identical counters,
  so they diff cleanly across commits even though wall times jitter;
* the **sampling fallback** — a ``sys.setprofile``-based collector
  (:class:`Sampler`) that attributes call counts and cumulative time
  per Python function, for code that carries no region
  instrumentation yet.  It is far more intrusive (every function
  call/return pays the hook), so it is opt-in behind
  ``--profile-sample`` / ``REPRO_PROFILE=sample``.

Region scopes additionally maintain a live nesting stack feeding a
**collapsed-stack accumulator**: every ``acc``/region exit credits its
wall time to the full ``outer;inner`` path, so
:meth:`Profiler.folded_lines` emits standard folded format (integer
microsecond counts, flamegraph.pl/speedscope-ready, ``--profile-out``)
and ``repro report`` renders an inline SVG flame chart from the same
data.

The report surface is :meth:`Profiler.hotspots` — entries ranked by
wall time (deterministic ``work`` then name break ties) with each
entry's share of the total *attributed* time.  Regions may nest and
overlap, so shares are an attribution summary, not a partition of the
run.  :meth:`Profiler.to_dict` emits the schema-validated document
embedded in analysis/MC JSON output
(:data:`repro.obs.export.PROFILE_SCHEMA`).

Disabled profilers follow the ``NULL_TRACER`` pattern: the shared
:data:`NULL_PROFILER` hands back one reusable no-op context manager
and every mutator returns after a single attribute check, so
instrumented hot paths cost nothing measurable when profiling is off.
"""

from __future__ import annotations

import sys
import time
from typing import Optional

from repro.obs.schemas import PROFILE as PROFILE_VERSION


class _NullRegion:
    """Reusable no-op context manager for disabled profilers."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_REGION = _NullRegion()


# -- folded-path escaping ------------------------------------------------------
#
# The collapsed-stack format is line-oriented: frames joined with ";",
# then a space and the sample count.  A region name containing ";" or
# whitespace would silently corrupt the file (extra frames, shifted
# counts), so frames are escaped at path-build time and every consumer
# (``parse_folded_lines`` / ``split_path``) round-trips them back.

_ESCAPES = {"\\": "\\\\", ";": "\\;", " ": "\\s",
            "\t": "\\t", "\n": "\\n"}
_UNESCAPES = {"\\": "\\", ";": ";", "s": " ", "t": "\t", "n": "\n"}
_ESC_CACHE: dict[str, str] = {}


def escape_frame(name: str) -> str:
    """Escape one stack frame for the folded format (``\\\\``, ``\\;``,
    ``\\s``, ``\\t``, ``\\n``).  Cached: region names form a small
    fixed vocabulary, so the hot path is one dict hit."""
    cached = _ESC_CACHE.get(name)
    if cached is None:
        if len(_ESC_CACHE) > 4096:  # pragma: no cover — runaway guard
            _ESC_CACHE.clear()
        if any(c in name for c in "\\; \t\n"):
            cached = "".join(_ESCAPES.get(c, c) for c in name)
        else:
            cached = name
        _ESC_CACHE[name] = cached
    return cached


def unescape_frame(frame: str) -> str:
    """Inverse of :func:`escape_frame` for a single frame."""
    if "\\" not in frame:
        return frame
    out: list[str] = []
    i = 0
    while i < len(frame):
        ch = frame[i]
        if ch == "\\" and i + 1 < len(frame):
            out.append(_UNESCAPES.get(frame[i + 1], frame[i + 1]))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def split_path(path: str) -> list[str]:
    """Split an escaped folded path on unescaped ``;`` into raw
    (unescaped) frame names.  A regex lookbehind would misread
    ``\\\\;`` (escaped backslash before a real separator), so this is
    a manual scan."""
    frames: list[str] = []
    cur: list[str] = []
    i = 0
    while i < len(path):
        ch = path[i]
        if ch == "\\" and i + 1 < len(path):
            cur.append(ch)
            cur.append(path[i + 1])
            i += 2
        elif ch == ";":
            frames.append(unescape_frame("".join(cur)))
            cur = []
            i += 1
        else:
            cur.append(ch)
            i += 1
    frames.append(unescape_frame("".join(cur)))
    return frames


def parse_folded_lines(lines) -> dict[str, int]:
    """Parse folded-format lines back into ``{path: usecs}`` (paths
    kept escaped, exactly as written — feed them to
    :func:`split_path` for raw frames).  Escaped frames contain no
    literal whitespace, so the count is everything after the last
    space.  Blank and malformed lines are skipped."""
    out: dict[str, int] = {}
    for line in lines:
        line = line.strip("\n")
        if not line.strip():
            continue
        path, sep, count = line.rpartition(" ")
        if not sep or not path:
            continue
        try:
            usecs = int(count)
        except ValueError:
            continue
        out[path] = out.get(path, 0) + usecs
    return out


class _Region:
    __slots__ = ("profiler", "name", "start")

    def __init__(self, profiler: "Profiler", name: str):
        self.profiler = profiler
        self.name = name
        self.start = 0.0

    def __enter__(self) -> "_Region":
        self.profiler._stack.append(self.name)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = time.perf_counter() - self.start
        stack = self.profiler._stack
        if stack and stack[-1] == self.name:
            stack.pop()
        self.profiler.acc(self.name, elapsed)
        return False


class Profiler:
    """Named accumulator of ``(calls, work, wall_s)`` triples.

    Not thread-safe by design: the inference pipeline and the DFS are
    single-threaded, and the hot-loop contract mirrors
    :class:`~repro.obs.metrics.MetricsRegistry` — accumulate locally,
    flush once.
    """

    __slots__ = ("enabled", "_entries", "_stack", "_folded")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        # name -> [calls, work, wall_s]
        self._entries: dict[str, list] = {}
        # live region-nesting stack (region() scopes push/pop) and
        # the collapsed-stack accumulator it feeds:
        # "outer;inner" -> cumulative wall_s, flame-chart/folded food
        self._stack: list[str] = []
        self._folded: dict[str, float] = {}

    # -- accumulation ------------------------------------------------------
    def region(self, name: str):
        """Timed scope: one call + elapsed wall time on ``name``."""
        if not self.enabled:
            return _NULL_REGION
        return _Region(self, name)

    def add(self, name: str, work: float = 1) -> None:
        """Count deterministic work units (no timing)."""
        if not self.enabled or not work:
            return
        entry = self._entries.get(name)
        if entry is None:
            entry = self._entries[name] = [0, 0, 0.0]
        entry[1] += work

    def acc(self, name: str, wall_s: float, work: float = 0,
            calls: int = 1) -> None:
        """Flush locally accumulated hot-loop numbers in one call."""
        if not self.enabled:
            return
        entry = self._entries.get(name)
        if entry is None:
            entry = self._entries[name] = [0, 0, 0.0]
        entry[0] += calls
        entry[1] += work
        entry[2] += wall_s
        if wall_s > 0:
            if self._stack:
                path = ";".join(
                    escape_frame(f) for f in self._stack) \
                    + ";" + escape_frame(name)
            else:
                path = escape_frame(name)
            self._folded[path] = self._folded.get(path, 0.0) + wall_s

    # -- reporting ---------------------------------------------------------
    def counters(self) -> dict[str, dict]:
        """``{name: {calls, work}}`` — the deterministic part only
        (wall times excluded), for run-to-run comparison."""
        return {name: {"calls": e[0], "work": e[1]}
                for name, e in sorted(self._entries.items())}

    def hotspots(self, limit: Optional[int] = None) -> list[dict]:
        """Entries ranked by wall time (desc), then work, then name.
        ``share`` is the entry's fraction of the total attributed wall
        time (regions may nest, so shares can sum past 1)."""
        total = sum(e[2] for e in self._entries.values())
        ranked = sorted(
            self._entries.items(),
            key=lambda kv: (-kv[1][2], -kv[1][1], kv[0]))
        if limit is not None:
            ranked = ranked[:limit]
        return [{"name": name,
                 "calls": entry[0],
                 "work": entry[1],
                 "wall_s": round(entry[2], 6),
                 "share": round(entry[2] / total, 4) if total else 0.0}
                for name, entry in ranked]

    def folded(self) -> dict[str, float]:
        """Collapsed-stack view: ``{"outer;inner": wall_s}`` per
        region-nesting path (parents include their children's time —
        region scopes are cumulative)."""
        return dict(self._folded)

    def folded_lines(self) -> list[str]:
        """Brendan-Gregg folded format: one ``path count`` line per
        nesting path, counts in integer microseconds — feed straight
        into ``flamegraph.pl`` or speedscope."""
        return [f"{path} {max(1, round(wall * 1_000_000))}"
                for path, wall in sorted(self._folded.items())]

    def write_folded(self, path) -> None:
        """Write :meth:`folded_lines` to ``path``."""
        import pathlib

        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("\n".join(self.folded_lines()) + "\n")

    def to_dict(self, sampler: Optional["Sampler"] = None,
                limit: Optional[int] = None) -> dict:
        out: dict = {"v": PROFILE_VERSION,
                     "hotspots": self.hotspots(limit)}
        if self._folded:
            out["folded"] = {path: round(wall, 6)
                             for path, wall in
                             sorted(self._folded.items())}
        if sampler is not None and sampler.stats:
            out["sampled"] = sampler.top(25)
        return out

    def render(self, limit: int = 20) -> str:
        """Ranked hotspot table (fixed-width text)."""
        rows = self.hotspots(limit)
        if not rows:
            return "(no profile data)"
        width = max(len(r["name"]) for r in rows)
        lines = [f"{'region'.ljust(width)}  {'wall_ms':>9} "
                 f"{'share':>6} {'calls':>8} {'work':>10}"]
        for r in rows:
            lines.append(
                f"{r['name'].ljust(width)}  "
                f"{r['wall_s'] * 1000:>9.2f} "
                f"{r['share'] * 100:>5.1f}% "
                f"{r['calls']:>8} {r['work']:>10}")
        return "\n".join(lines)

    def emit_hotspots(self, events, limit: int = 10) -> None:
        """Mirror the top hotspots into an
        :class:`~repro.obs.events.EventStream` (``profile.hotspot``
        kind), so ``--events-out`` / Chrome-trace export carry them
        without new plumbing."""
        if events is None:
            return
        for entry in self.hotspots(limit):
            events.emit("profile.hotspot", name=entry["name"],
                        wall_s=entry["wall_s"], work=entry["work"],
                        calls=entry["calls"])

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler's entries into this one."""
        if not self.enabled:
            return
        for name, entry in other._entries.items():
            entry_self = self._entries.get(name)
            if entry_self is None:
                entry_self = self._entries[name] = [0, 0, 0.0]
            entry_self[0] += entry[0]
            entry_self[1] += entry[1]
            entry_self[2] += entry[2]
        for path, wall in other._folded.items():
            self._folded[path] = self._folded.get(path, 0.0) + wall

    def state(self) -> dict:
        """Raw JSON-ready state for cross-process transport: the full
        ``(calls, work, wall_s)`` triples plus the collapsed-stack
        accumulator — unlike :meth:`counters` (which drops wall) and
        :meth:`to_dict` (which ranks and rounds), a profiler
        round-tripped through :meth:`from_state` merges losslessly."""
        return {"entries": {name: [e[0], e[1], e[2]]
                            for name, e in sorted(self._entries.items())},
                "folded": {path: wall
                           for path, wall in sorted(self._folded.items())}}

    @classmethod
    def from_state(cls, doc: dict) -> "Profiler":
        inst = cls()
        inst._entries = {name: [e[0], e[1], float(e[2])]
                         for name, e in (doc.get("entries") or {}).items()}
        inst._folded = {path: float(wall)
                        for path, wall in (doc.get("folded") or {}).items()}
        return inst


#: shared disabled profiler — the default for instrumented call sites.
NULL_PROFILER = Profiler(enabled=False)


def peak_rss_mb() -> float:
    """Peak resident set size of this process in MB (0.0 when the
    platform has no ``resource`` module, e.g. Windows)."""
    try:
        import resource
    except ImportError:  # pragma: no cover — POSIX-only module
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KB on Linux, bytes on macOS
    if sys.platform == "darwin":  # pragma: no cover
        return round(peak / (1024 * 1024), 3)
    return round(peak / 1024, 3)


def malloc_top(limit: int = 10) -> list[dict]:
    """Top current allocation sites from :mod:`tracemalloc` (must
    already be tracing; returns [] otherwise).  Each entry is
    ``{site, kb, count}`` — opt-in memory attribution for the
    explorer's state store."""
    import tracemalloc

    if not tracemalloc.is_tracing():
        return []
    snapshot = tracemalloc.take_snapshot()
    stats = snapshot.statistics("lineno")[:limit]
    return [{"site": f"{s.traceback[0].filename}:"
                     f"{s.traceback[0].lineno}",
             "kb": round(s.size / 1024, 1),
             "count": s.count}
            for s in stats]


class Sampler:
    """``sys.setprofile``-based per-function cost attribution.

    Tracks every Python call/return while active and accumulates
    ``{(module, qualname): [calls, cum_s]}``; C calls are ignored.
    Use as a context manager around the region of interest.  The hook
    slows execution substantially (every frame pays it) — this is the
    fallback for code without ``region`` instrumentation, not the
    default path.
    """

    def __init__(self, prefix: str = "repro"):
        self.prefix = prefix
        self.stats: dict[tuple, list] = {}
        self._stack: list[tuple] = []
        self._prev = None

    def _hook(self, frame, event, arg):
        if event == "call":
            self._stack.append((frame.f_code, time.perf_counter()))
        elif event == "return" and self._stack:
            code, start = self._stack.pop()
            if code is not frame.f_code:
                return  # unwound through an exception; drop the frame
            module = frame.f_globals.get("__name__", "?")
            if not module.startswith(self.prefix):
                return
            key = (module, code.co_qualname)
            entry = self.stats.get(key)
            if entry is None:
                entry = self.stats[key] = [0, 0.0]
            entry[0] += 1
            entry[1] += time.perf_counter() - start

    def __enter__(self) -> "Sampler":
        self._prev = sys.getprofile()
        sys.setprofile(self._hook)
        return self

    def __exit__(self, *exc) -> None:
        sys.setprofile(self._prev)
        self._stack.clear()

    def top(self, limit: int = 25) -> list[dict]:
        """Functions ranked by cumulative time."""
        ranked = sorted(self.stats.items(),
                        key=lambda kv: (-kv[1][1], kv[0]))
        return [{"name": f"{module}.{qual}",
                 "calls": entry[0],
                 "cum_s": round(entry[1], 6)}
                for (module, qual), entry in ranked[:limit]]
