"""Chrome trace-event export for span trees and event streams.

Serializes a :class:`~repro.obs.tracing.Tracer`'s span tree (as ``"X"``
complete events) and an :class:`~repro.obs.events.EventStream` (as
``"i"`` instant events) into the Trace Event Format understood by
``chrome://tracing`` and https://ui.perfetto.dev.  Both sources stamp
``time.perf_counter()`` so their timelines line up without any clock
reconciliation: the earliest timestamp across both becomes the trace
epoch and everything is exported as microseconds since it.

Spans are laid out one *track* (Chrome "thread") per root-span thread;
instant events get their own track per event domain (``mc``, ``sched``,
``interp``, ``dyn``) so a violation marker is visually aligned with the
DFS span it interrupted.

Events carrying a ``pid`` stamp (every record since the fleet layer —
see :mod:`repro.obs.events`) land on that pid's *process* lane, so a
merged multi-worker stream renders one labelled lane per worker
process instead of interleaving into a single unreadable track; when
more than one pid appears, ``process_name`` metadata rows name each
lane (``worker-00 (pid 4242)``).
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional, Union

#: pid used for every emitted event (single-process tool)
_PID = 1

#: tid assigned to span tracks, per originating thread name
_SPAN_TRACK_BASE = 1
#: tid range for event-domain tracks (mc/sched/interp/dyn)
_EVENT_TRACK_BASE = 100


def _span_events(span, track: int, epoch: float, out: list) -> None:
    end = span.end if span.end is not None else span.start
    args = dict(span.attrs)
    out.append({
        "name": span.name,
        "ph": "X",
        "pid": _PID,
        "tid": track,
        "ts": round((span.start - epoch) * 1e6, 3),
        "dur": round((end - span.start) * 1e6, 3),
        **({"args": args} if args else {}),
    })
    for child in span.children:
        _span_events(child, track, epoch, out)


def _min_timestamp(tracer, events) -> Optional[float]:
    stamps = []
    if tracer is not None:
        stamps.extend(s.start for s in tracer.roots)
    if events is not None:
        snap = events.snapshot()
        if snap:
            stamps.append(snap[0]["t"])
    return min(stamps) if stamps else None


def to_trace_events(tracer=None, events=None) -> list[dict]:
    """Flatten spans + stream events into a trace-event list."""
    epoch = _min_timestamp(tracer, events)
    if epoch is None:
        return []
    out: list[dict] = []
    tracks: dict[str, int] = {}

    def track_of(name: str, base: int) -> int:
        if name not in tracks:
            tracks[name] = base + len(
                [t for t in tracks.values() if t >= base and t < base + 90])
        return tracks[name]

    if tracer is not None:
        for root in tracer.roots:
            thread = root.thread or "main"
            _span_events(root, track_of(f"span:{thread}",
                                        _SPAN_TRACK_BASE), epoch, out)
    pids: dict[int, Optional[str]] = {}
    if events is not None:
        snap = events.snapshot()
        for ev in snap:
            pid = ev.get("pid")
            if pid is None:
                continue
            if pid not in pids or ev.get("worker"):
                pids[pid] = ev.get("worker", pids.get(pid))
        # per-process lanes only for genuinely multi-process streams
        # (fleet merges): a single-process run keeps everything on the
        # legacy pid-1 lane, aligned with its span tracks
        fleet = len(pids) > 1
        for ev in snap:
            domain = ev["kind"].split(".", 1)[0]
            args = {k: v for k, v in ev.items()
                    if k not in ("v", "seq", "t", "kind", "pid",
                                 "worker")}
            args["seq"] = ev["seq"]
            pid = ev.get("pid", _PID) if fleet else _PID
            out.append({
                "name": ev["kind"],
                "ph": "i",
                "s": "t",   # thread-scoped instant
                "pid": pid,
                "tid": track_of(f"events:{domain}", _EVENT_TRACK_BASE),
                "ts": round((ev["t"] - epoch) * 1e6, 3),
                "args": args,
            })
    # name the tracks so Perfetto shows "span:MainThread" / "events:mc"
    for name, tid in sorted(tracks.items(), key=lambda kv: kv[1]):
        out.append({
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "args": {"name": name},
        })
    # name the per-worker process lanes when more than one pid appears
    if len(pids) > 1:
        for pid, worker in sorted(pids.items()):
            label = f"{worker} (pid {pid})" if worker else f"pid {pid}"
            out.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            })
    return out


def write_trace(path: Union[str, pathlib.Path], tracer=None,
                events=None) -> pathlib.Path:
    """Write a ``chrome://tracing``-loadable JSON object file."""
    doc = {
        "traceEvents": to_trace_events(tracer=tracer, events=events),
        "displayTimeUnit": "ms",
    }
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=1) + "\n")
    return path
