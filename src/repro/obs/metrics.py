"""Thread-safe metric primitives and a flat registry.

Three instrument kinds, one registry:

* :class:`Counter` — monotonically increasing (``inc``);
* :class:`Gauge` — last-write-wins scalar (``set``);
* :class:`Histogram` — streaming count/sum/min/max/mean plus
  fixed-bucket p50/p95/p99 estimates (``observe``).

All instruments take an internal lock per update, so they aggregate
correctly when the explorer or test harness drives them from several
threads.  Hot loops that cannot afford a lock per event (the DFS inner
loop, the O(sites²) conflict scan) accumulate plain integers locally
and flush them into the registry once at the end — the registry is the
*reporting* surface, not the accumulation surface.

``snapshot()`` flattens everything into a JSON-ready ``dict``:
counters/gauges as numbers, histograms as
``{count, total, min, max, mean, p50, p95, p99}`` sub-dicts.

Every instrument (and the registry) also supports cross-process
**merge**: ``state()`` serializes the raw internal state (including
the sparse histogram buckets ``to_dict()`` throws away),
``from_state()`` reconstructs it in another process, and ``merge()``
folds one instrument into another.  Merge is associative, commutative,
and identity-preserving by construction — counters and histogram
buckets add, min/max combine, and gauges take the **max of set
values** (every gauge in this codebase is a peak: ``mem_peak_mb``,
``depth_max``), with a never-``set()`` gauge acting as the identity.
This is the contract the fleet aggregator (:mod:`repro.obs.fleet`)
relies on to merge N worker spools into one registry in any order.

Percentiles use fixed log-spaced buckets (4 per power of two, so the
upper-bound estimate is within ~19% of the true value) rather than
kept samples: memory stays O(1) per histogram no matter how many
observations, which matters when the DFS loop observes per-state
timings.  Estimates are clamped to the observed min/max, so histograms
with a single value report it exactly.
"""

from __future__ import annotations

import math
import threading
from typing import Optional, Union

#: log-spaced bucket resolution: boundaries at ``2**(i / 4)``
_BUCKETS_PER_OCTAVE = 4
#: quarter-octave index clamp — covers ~1e-9 .. ~1e9
_BUCKET_LO = -30 * _BUCKETS_PER_OCTAVE
_BUCKET_HI = 30 * _BUCKETS_PER_OCTAVE


def _bucket_index(value: float) -> int:
    if value <= 0:
        return _BUCKET_LO
    i = math.floor(math.log2(value) * _BUCKETS_PER_OCTAVE)
    return max(_BUCKET_LO, min(_BUCKET_HI, i))


class Counter:
    """Monotonic counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: Union[int, float] = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> Union[int, float]:
        return self._value

    def merge(self, other: "Counter") -> None:
        """Fold another counter in: values add."""
        with self._lock:
            self._value += other.value

    def state(self) -> dict:
        return {"value": self._value}

    @classmethod
    def from_state(cls, doc: dict) -> "Counter":
        inst = cls()
        inst._value = doc.get("value", 0)
        return inst


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("_value", "_set", "_lock")

    def __init__(self) -> None:
        self._value: Union[int, float] = 0
        self._set = False
        self._lock = threading.Lock()

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self._value = value
            self._set = True

    @property
    def value(self) -> Union[int, float]:
        return self._value

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge in: max of *set* values (gauges here are
        peaks — ``mem_peak_mb`` and friends); a never-set gauge is the
        merge identity, so merge order never matters."""
        with self._lock:
            if other._set:
                if not self._set or other._value > self._value:
                    self._value = other._value
                self._set = True

    def state(self) -> dict:
        return {"value": self._value, "set": self._set}

    @classmethod
    def from_state(cls, doc: dict) -> "Gauge":
        inst = cls()
        inst._value = doc.get("value", 0)
        inst._set = bool(doc.get("set", doc.get("value", 0) != 0))
        return inst


class Histogram:
    """Streaming summary statistics over sparse log-spaced buckets
    (no samples kept; percentiles are upper-bound estimates)."""

    __slots__ = ("count", "total", "min", "max", "_buckets", "_lock")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: dict[int, int] = {}
        self._lock = threading.Lock()

    def observe(self, value: Union[int, float]) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            index = _bucket_index(value)
            self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (``0 < q <= 1``): the upper bound
        of the bucket holding the rank-``ceil(q * count)`` sample,
        clamped to the observed range."""
        with self._lock:
            if not self.count:
                return None
            rank = max(1, math.ceil(q * self.count))
            seen = 0
            for index in sorted(self._buckets):
                seen += self._buckets[index]
                if seen >= rank:
                    upper = 2 ** ((index + 1) / _BUCKETS_PER_OCTAVE)
                    return max(self.min, min(self.max, upper))
            return self.max  # pragma: no cover — rank <= count

    def to_dict(self) -> dict:
        """Snapshot schema: ``{count, total, min, max, mean, p50, p95,
        p99}``.  The percentile fields are *upper-bound estimates*:
        each is the upper boundary of the log-spaced bucket holding
        the rank sample, clamped to ``[min, max]`` — so they can
        overstate the true quantile by up to one bucket width (~19%
        at 4 buckets/octave) but never understate past the bucket,
        and a single-observation histogram reports the value exactly.
        All percentile fields are None when the histogram is empty."""
        def rounded(value: Optional[float]) -> Optional[float]:
            return round(value, 9) if value is not None else None

        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max,
                "mean": round(self.mean, 9),
                "p50": rounded(self.percentile(0.50)),
                "p95": rounded(self.percentile(0.95)),
                "p99": rounded(self.percentile(0.99))}

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in: counts/totals add, min/max
        combine, sparse buckets add per index — so percentile
        estimates over the merged histogram are exactly what a single
        histogram fed both observation streams would report."""
        with self._lock:
            self.count += other.count
            self.total += other.total
            if other.min is not None and (self.min is None
                                          or other.min < self.min):
                self.min = other.min
            if other.max is not None and (self.max is None
                                          or other.max > self.max):
                self.max = other.max
            for index, n in other._buckets.items():
                self._buckets[index] = self._buckets.get(index, 0) + n

    def state(self) -> dict:
        """Raw internal state for cross-process transport — unlike
        :meth:`to_dict` this keeps the sparse buckets, so a histogram
        round-tripped through JSON still merges losslessly."""
        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max,
                "buckets": {str(i): n
                            for i, n in sorted(self._buckets.items())}}

    @classmethod
    def from_state(cls, doc: dict) -> "Histogram":
        inst = cls()
        inst.count = doc.get("count", 0)
        inst.total = doc.get("total", 0.0)
        inst.min = doc.get("min")
        inst.max = doc.get("max")
        inst._buckets = {int(i): n
                         for i, n in (doc.get("buckets") or {}).items()}
        return inst


class EwmaRate:
    """Exponentially-weighted throughput estimator with an ETA.

    Feeds the explorer's ``--progress`` heartbeat: each
    :meth:`update` takes a *cumulative* monotonic count (states seen
    so far) and a timestamp, computes the instantaneous rate since the
    previous update, and folds it into an EWMA so one slow beat does
    not whipsaw the ETA.  Edge cases are deliberate:

    * the first update only baselines (rate stays 0 — no window yet);
    * a non-increasing count re-baselines without poisoning the rate
      (restarted searches, clock-adjacent beats);
    * a zero/negative time delta is ignored entirely;
    * :meth:`eta_s` is ``None`` until the rate is positive, and 0.0
      once the remaining work is gone — callers can always render it.
    """

    __slots__ = ("alpha", "rate", "_last_count", "_last_t")

    def __init__(self, alpha: float = 0.3):
        self.alpha = alpha
        self.rate = 0.0
        self._last_count: Optional[float] = None
        self._last_t = 0.0

    def update(self, count: float, now: float) -> float:
        """Fold one observation; returns the smoothed rate."""
        if self._last_count is None:
            self._last_count, self._last_t = count, now
            return self.rate
        dt = now - self._last_t
        if dt <= 0:
            return self.rate
        if count < self._last_count:
            self._last_count, self._last_t = count, now
            return self.rate
        inst = (count - self._last_count) / dt
        self.rate = inst if self.rate == 0.0 \
            else self.alpha * inst + (1 - self.alpha) * self.rate
        self._last_count, self._last_t = count, now
        return self.rate

    def eta_s(self, remaining: float) -> Optional[float]:
        """Seconds until ``remaining`` units drain at the current
        rate; None when no positive rate has been established."""
        if remaining <= 0:
            return 0.0
        if self.rate <= 0:
            return None
        return remaining / self.rate


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter()
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge()
            return inst

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram()
            return inst

    # -- convenience -------------------------------------------------------
    def inc(self, name: str, n: Union[int, float] = 1) -> None:
        self.counter(name).inc(n)

    def set(self, name: str, value: Union[int, float]) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: Union[int, float]) -> None:
        self.histogram(name).observe(value)

    def merge_counts(self, counts: dict) -> None:
        """Flush a plain ``{name: n}`` dict of locally accumulated
        counts (the lock-free hot-path pattern) into real counters."""
        for name, n in counts.items():
            self.counter(name).inc(n)

    # -- cross-process merge -------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: instruments merge per kind, names
        union.  Associative, commutative (up to gauge ties), and a
        fresh registry is the identity — so N worker registries merge
        to the same result in any order."""
        with other._lock:
            counters = dict(other._counters)
            gauges = dict(other._gauges)
            histograms = dict(other._histograms)
        for name, c in counters.items():
            self.counter(name).merge(c)
        for name, g in gauges.items():
            self.gauge(name).merge(g)
        for name, h in histograms.items():
            self.histogram(name).merge(h)

    def state(self) -> dict:
        """JSON-ready raw state (see :meth:`Histogram.state`) for
        worker spools: ``{"counters": ..., "gauges": ...,
        "histograms": ...}``, keys sorted."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.state()
                         for n, c in sorted(counters.items())},
            "gauges": {n: g.state()
                       for n, g in sorted(gauges.items())},
            "histograms": {n: h.state()
                           for n, h in sorted(histograms.items())},
        }

    @classmethod
    def from_state(cls, doc: dict) -> "MetricsRegistry":
        inst = cls()
        for name, sub in (doc.get("counters") or {}).items():
            inst._counters[name] = Counter.from_state(sub)
        for name, sub in (doc.get("gauges") or {}).items():
            inst._gauges[name] = Gauge.from_state(sub)
        for name, sub in (doc.get("histograms") or {}).items():
            inst._histograms[name] = Histogram.from_state(sub)
        return inst

    def snapshot(self) -> dict:
        """Flat JSON-ready view, keys sorted for stable output."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        out: dict = {}
        for name, c in counters.items():
            out[name] = c.value
        for name, g in gauges.items():
            out[name] = g.value
        for name, h in histograms.items():
            out[name] = h.to_dict()
        return dict(sorted(out.items()))

    def render(self) -> str:
        lines = []
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                inner = " ".join(f"{k}={v}" for k, v in value.items())
                lines.append(f"{name}: {inner}")
            else:
                lines.append(f"{name}: {value}")
        return "\n".join(lines)
