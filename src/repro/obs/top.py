"""``repro top`` — attachable live dashboard over an events file.

Attach to a *running* (or finished) exploration by tailing the JSONL
file its ``--events-out`` flag streams to::

    repro mc prog.synl "Apply(1)" "Apply(2)" --events-out /tmp/ev.jsonl &
    repro top /tmp/ev.jsonl

There is no shared process state — the dashboard re-reads whatever the
explorer has flushed so far, which is exactly the transport that will
let one ``top`` watch many sharded explorer processes later.  The
``explorer.progress`` heartbeats drive the headline numbers (EWMA
throughput, frontier, dedup hit rate, peak RSS, cap-ETA / deadline);
``mc.push`` events accumulate a depth histogram for the percentile
row; terminal events (``mc.violation`` / ``mc.cap`` / ``mc.deadline``
/ a ``final`` heartbeat / ``mc.graph``) flip the status line.

Rendering degrades gracefully: an ANSI in-place dashboard when stdout
is a TTY, one summary line per new heartbeat otherwise (CI-safe), and
``--once`` renders a single frame from the current file contents and
exits — the no-TTY smoke-test mode.

**Fleet mode**: point ``repro top`` at a *spool directory* (the
per-run layout :mod:`repro.obs.fleet` writes — ``worker-*/
events.jsonl`` per worker process) and it tails every worker's stream
at once, re-globbing each poll so late-starting workers appear as they
spool up.  The frame shows one row per worker (status, progress,
throughput, peak RSS from the ``fleet.heartbeat`` beats) plus an
aggregate line; the loop ends when every observed worker has emitted
its ``final`` beat.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import IO, Optional

from repro.obs.metrics import EwmaRate

#: default refresh period in seconds
DEFAULT_INTERVAL = 1.0

#: ``top`` gives up waiting for a first event after this many seconds
#: unless ``--duration`` says otherwise
DEFAULT_DURATION = 60.0

_SPARK = " .:-=+*#%@"


def _bar(value: float, peak: float, width: int = 24) -> str:
    """A filled proportional bar (``peak`` <= 0 renders empty)."""
    if peak <= 0:
        return "·" * width
    filled = max(0, min(width, round(width * value / peak)))
    return "█" * filled + "·" * (width - filled)


@dataclass
class TopState:
    """Accumulated view of one events file."""

    progress: dict = field(default_factory=dict)  # last heartbeat
    beats: int = 0
    events: int = 0
    depth_counts: dict = field(default_factory=dict)  # mc.push depths
    status: str = "waiting"
    graph: Optional[dict] = None                  # last mc.graph event
    rate: EwmaRate = field(default_factory=EwmaRate)
    ewma_rate: float = 0.0
    peak_rate: float = 0.0

    def feed(self, event: dict) -> bool:
        """Fold one event in; True when the frame should refresh."""
        self.events += 1
        kind = event.get("kind")
        if kind == "explorer.progress":
            self.progress = event
            self.beats += 1
            self.ewma_rate = self.rate.update(
                event.get("states", 0),
                event.get("elapsed_s", event.get("t", 0.0)))
            if self.ewma_rate > self.peak_rate:
                self.peak_rate = self.ewma_rate
            if self.status == "waiting":
                self.status = "running"
            if event.get("final"):
                self.status = "done" if self.status == "running" \
                    else self.status
            return True
        if kind == "fleet.heartbeat":
            # worker-process progress beat: same shape of fold as
            # explorer.progress, with done/total instead of states
            self.progress = event
            self.beats += 1
            self.ewma_rate = self.rate.update(
                event.get("done", 0),
                event.get("elapsed_s", event.get("t", 0.0)))
            if self.ewma_rate > self.peak_rate:
                self.peak_rate = self.ewma_rate
            if self.status == "waiting":
                self.status = "running"
            if event.get("final"):
                self.status = "done" if self.status == "running" \
                    else self.status
            return True
        if kind == "mc.push":
            depth = event.get("depth", 0)
            self.depth_counts[depth] = \
                self.depth_counts.get(depth, 0) + 1
        elif kind == "mc.violation":
            self.status = f"VIOLATION: {event.get('message', '?')}"
        elif kind == "mc.cap":
            self.status = f"CAPPED at {event.get('states')} states"
        elif kind == "mc.deadline":
            self.status = (f"DEADLINE after {event.get('states')} "
                           f"states")
        elif kind == "mc.graph":
            self.graph = event
        return False

    def depth_percentiles(self) -> tuple[int, int, int]:
        """(p50, p95, max) over observed push depths."""
        total = sum(self.depth_counts.values())
        if not total:
            return (0, 0, 0)
        ordered = sorted(self.depth_counts)
        out = []
        for q in (0.50, 0.95):
            rank = max(1, int(q * total + 0.999999))
            seen = 0
            value = ordered[-1]
            for depth in ordered:
                seen += self.depth_counts[depth]
                if seen >= rank:
                    value = depth
                    break
            out.append(value)
        return (out[0], out[1], ordered[-1])

    def to_dict(self) -> dict:
        p50, p95, dmax = self.depth_percentiles()
        return {"status": self.status, "beats": self.beats,
                "events": self.events,
                "ewma_rate": round(self.ewma_rate, 1),
                "depth_p50": p50, "depth_p95": p95, "depth_max": dmax,
                "progress": dict(self.progress),
                "graph": dict(self.graph) if self.graph else None}


def render_frame(state: TopState, path: str) -> list[str]:
    """The dashboard frame as a list of lines."""
    p = state.progress
    p50, p95, dmax = state.depth_percentiles()
    rate = state.ewma_rate or p.get("rate_states_per_s", 0.0)
    frontier = p.get("frontier", 0)
    lines = [
        f"repro top — {path}",
        f"status: {state.status}   beats: {state.beats}   "
        f"events: {state.events}",
        f"states      {p.get('states', 0):>12,}   "
        f"transitions {p.get('transitions', 0):>12,}",
        f"throughput  {rate:>10,.0f}/s   "
        f"{_bar(rate, state.peak_rate or rate)}",
        f"frontier    {frontier:>12,}   "
        f"dedup hit rate {p.get('dedup_hit_rate', 0.0):>7.1%}",
        f"depth       p50={p50} p95={p95} max={dmax}",
        f"peak RSS    {p.get('mem_mb', 0.0):>9.1f} MB   "
        f"elapsed {p.get('elapsed_s', 0.0):.1f}s",
    ]
    eta_bits = []
    if p.get("eta_cap_s") is not None:
        eta_bits.append(f"ETA to cap {p['eta_cap_s']:.1f}s")
    if p.get("deadline_in_s") is not None:
        eta_bits.append(f"deadline in {p['deadline_in_s']:.1f}s")
    if eta_bits:
        lines.append("            " + "   ".join(eta_bits))
    if state.graph is not None:
        g = state.graph
        lines.append(
            f"graph       {g.get('nodes')} nodes, {g.get('edges')} "
            f"edges, {g.get('pruned')} pruned -> {g.get('path')}")
    return lines


def render_line(state: TopState) -> str:
    """One-line summary (line-mode / non-TTY fallback)."""
    p = state.progress
    return (f"[top] {state.status} states={p.get('states', 0)} "
            f"trans={p.get('transitions', 0)} "
            f"frontier={p.get('frontier', 0)} "
            f"rate={state.ewma_rate:,.0f}/s "
            f"dedup={p.get('dedup_hit_rate', 0.0):.1%} "
            f"mem={p.get('mem_mb', 0.0):.1f}MB")


class _Tail:
    """Incremental JSONL reader that survives partially-written last
    lines (the writer may be mid-``write`` when we poll)."""

    def __init__(self, path: str):
        self.path = path
        self._fh: Optional[IO] = None
        self._buf = ""

    def poll(self) -> list[dict]:
        if self._fh is None:
            if not os.path.exists(self.path):
                return []
            self._fh = open(self.path)
        chunk = self._fh.read()
        if not chunk:
            return []
        self._buf += chunk
        out = []
        while "\n" in self._buf:
            line, self._buf = self._buf.split("\n", 1)
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn line: wait for the rest
        return out

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class FleetTail:
    """Tails every ``worker-*/events.jsonl`` under a spool directory,
    one :class:`_Tail` + :class:`TopState` per worker.  The directory
    is re-globbed on every poll, so workers that spool up late (or
    whose file appears mid-run) are picked up without a restart."""

    def __init__(self, root: str):
        self.root = root
        self.tails: dict[str, _Tail] = {}
        self.states: dict[str, TopState] = {}

    def poll(self) -> bool:
        """Feed all fresh events; True when any frame-worthy event
        arrived on any worker."""
        import glob as _glob

        fresh = False
        pattern = os.path.join(self.root, "worker-*", "events.jsonl")
        for ev_file in sorted(_glob.glob(pattern)):
            worker = os.path.basename(os.path.dirname(ev_file))
            if worker not in self.tails:
                self.tails[worker] = _Tail(ev_file)
                self.states[worker] = TopState()
                fresh = True
            state = self.states[worker]
            for event in self.tails[worker].poll():
                fresh = state.feed(event) or fresh
        return fresh

    @property
    def events(self) -> int:
        return sum(s.events for s in self.states.values())

    def finished(self) -> bool:
        """Every observed worker reached a terminal status (and at
        least one worker was observed)."""
        if not self.states:
            return False
        return all(s.status.startswith(("done", "VIOLATION", "CAPPED",
                                        "DEADLINE"))
                   for s in self.states.values())

    def aggregate(self) -> dict:
        done = sum(s.progress.get("done", s.progress.get("states", 0))
                   for s in self.states.values())
        rate = sum(s.ewma_rate for s in self.states.values())
        rss = sum(s.progress.get("rss_mb", s.progress.get("mem_mb", 0.0))
                  for s in self.states.values())
        return {"workers": len(self.states), "done": done,
                "rate": round(rate, 1), "rss_mb": round(rss, 1),
                "events": self.events}

    def to_dict(self) -> dict:
        return {"workers": {name: state.to_dict()
                            for name, state in sorted(self.states.items())},
                "aggregate": self.aggregate()}

    def close(self) -> None:
        for tail in self.tails.values():
            tail.close()


def render_fleet_frame(fleet: FleetTail, path: str) -> list[str]:
    """The fleet dashboard frame: one row per worker + an aggregate."""
    lines = [f"repro top — fleet {path}",
             f"{'worker':<12} {'status':<10} {'done':>8} {'total':>8} "
             f"{'rate/s':>9} {'rss MB':>7} {'elapsed':>8}"]
    for name in sorted(fleet.states):
        state = fleet.states[name]
        p = state.progress
        total = p.get("total")
        lines.append(
            f"{name:<12} {state.status[:10]:<10} "
            f"{p.get('done', p.get('states', 0)):>8,} "
            f"{total if total is not None else '?':>8} "
            f"{(state.ewma_rate or p.get('rate', 0.0)):>9,.1f} "
            f"{p.get('rss_mb', p.get('mem_mb', 0.0)):>7.1f} "
            f"{p.get('elapsed_s', 0.0):>7.1f}s")
    agg = fleet.aggregate()
    lines.append(
        f"{'TOTAL':<12} {'':<10} {agg['done']:>8,} {'':>8} "
        f"{agg['rate']:>9,.1f} {agg['rss_mb']:>7.1f} "
        f"{agg['events']:>7} ev")
    return lines


def render_fleet_line(fleet: FleetTail) -> str:
    """One-line fleet summary (line-mode / non-TTY fallback)."""
    agg = fleet.aggregate()
    running = sum(1 for s in fleet.states.values()
                  if not s.status.startswith(("done", "VIOLATION",
                                              "CAPPED", "DEADLINE")))
    return (f"[top] fleet workers={agg['workers']} running={running} "
            f"done={agg['done']} rate={agg['rate']:,.1f}/s "
            f"rss={agg['rss_mb']:.1f}MB events={agg['events']}")


def _run_top_fleet(path: str, *, interval: float,
                   duration: Optional[float], once: bool,
                   as_json: bool, out: IO,
                   is_tty: bool) -> int:
    fleet = FleetTail(path)
    deadline = time.monotonic() + (duration if duration is not None
                                   else DEFAULT_DURATION)
    painted = 0

    def paint() -> None:
        nonlocal painted
        lines = render_fleet_frame(fleet, path)
        if is_tty and painted:
            out.write(f"\x1b[{painted}F\x1b[J")
        out.write("\n".join(lines) + "\n")
        out.flush()
        painted = len(lines)

    try:
        if once:
            fleet.poll()
            if as_json:
                out.write(json.dumps(fleet.to_dict(), indent=2) + "\n")
            else:
                out.write("\n".join(render_fleet_frame(fleet, path))
                          + "\n")
            return 0 if fleet.events else 2
        while time.monotonic() < deadline:
            if fleet.poll():
                if is_tty:
                    paint()
                else:
                    out.write(render_fleet_line(fleet) + "\n")
                    out.flush()
            if fleet.finished():
                break
            time.sleep(interval)
        if as_json:
            out.write(json.dumps(fleet.to_dict(), indent=2) + "\n")
        elif is_tty:
            paint()
        else:
            out.write(render_fleet_line(fleet) + "\n")
        return 0 if fleet.events else 2
    finally:
        fleet.close()


def run_top(path: str, *, interval: float = DEFAULT_INTERVAL,
            duration: Optional[float] = None, once: bool = False,
            as_json: bool = False, out: Optional[IO] = None,
            force_tty: Optional[bool] = None) -> int:
    """Drive the dashboard; returns the process exit code.

    ``once`` renders a single frame from the file's current contents
    (no waiting — works without a TTY and without a live writer).
    ``duration`` bounds the attach time in seconds (default
    :data:`DEFAULT_DURATION`); the loop also ends on a ``final``
    heartbeat or a terminal event.

    When ``path`` is a *directory* it is treated as a fleet spool
    (``worker-*/events.jsonl`` per worker — see
    :mod:`repro.obs.fleet`): per-worker rows plus an aggregate line,
    ending once every observed worker emitted its final heartbeat.
    """
    out = out or sys.stdout
    is_tty = force_tty if force_tty is not None \
        else getattr(out, "isatty", lambda: False)()
    if os.path.isdir(path):
        return _run_top_fleet(path, interval=interval,
                              duration=duration, once=once,
                              as_json=as_json, out=out, is_tty=is_tty)
    tail = _Tail(path)
    state = TopState()
    deadline = time.monotonic() + (duration if duration is not None
                                   else DEFAULT_DURATION)
    painted = 0

    def paint() -> None:
        nonlocal painted
        lines = render_frame(state, path)
        if is_tty and painted:
            out.write(f"\x1b[{painted}F\x1b[J")  # up + clear below
        out.write("\n".join(lines) + "\n")
        out.flush()
        painted = len(lines)

    try:
        if once:
            for event in tail.poll():
                state.feed(event)
            if state.status == "running":
                state.status = "running (snapshot)"
            elif state.status == "waiting" and state.events:
                state.status = ("no heartbeats recorded "
                                "(run mc with --progress)")
            if as_json:
                out.write(json.dumps(state.to_dict(), indent=2) + "\n")
            else:
                out.write("\n".join(render_frame(state, path)) + "\n")
            return 0 if state.events else 2
        while time.monotonic() < deadline:
            fresh = False
            for event in tail.poll():
                fresh = state.feed(event) or fresh
            if fresh:
                if is_tty:
                    paint()
                else:
                    out.write(render_line(state) + "\n")
                    out.flush()
            if state.status.startswith(("done", "VIOLATION", "CAPPED",
                                        "DEADLINE")):
                break
            time.sleep(interval)
        if as_json:
            out.write(json.dumps(state.to_dict(), indent=2) + "\n")
        elif is_tty:
            paint()
        else:
            out.write(render_line(state) + "\n")
        return 0 if state.events else 2
    finally:
        tail.close()
