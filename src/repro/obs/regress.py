"""Bench regression watchdog: gate fresh ``BENCH_*.json`` files
against committed baselines.

The benchmark suite writes machine-readable perf records
(``benchmarks/out/BENCH_analysis.json`` / ``BENCH_mc.json``, schema in
:mod:`repro.obs.export`).  This module compares a fresh set against
the committed baselines under ``benchmarks/baselines/`` with
per-metric relative thresholds:

* ``wall_s`` — regression when more than 25% *slower*;
* ``states_per_s`` — regression when more than 25% lower throughput;
* ``percentiles.p95`` — regression when tail latency grew over 30%
  (only checked when both sides carry percentiles, clear
  :data:`P95_FLOOR_S`, and estimate the tail from a real sample —
  harness records with fewer than :data:`MIN_P95_REPEATS` repeats
  skip the gate, because their p95 is just the sample maximum);
* ``mem_peak_mb`` — regression when the peak RSS grew over 30%
  (only checked when both sides carry the field; growths under
  :data:`MEM_FLOOR_MB` are allocator jitter, not leaks).

Timings under a 5 ms noise floor are never flagged (interpreter-level
micro-benchmarks jitter far more than 25% at that scale); state or
transition *count* changes are reported as notes, not failures — the
searches are deterministic, so a count drift means the checker itself
changed and the baseline wants a refresh.

Records produced by the statistical bench harness (``repro bench
run``) are gated on **median-of-repeats**: the comparison uses
``stats.median`` and only flags a wall-time regression when the delta
also clears the combined interquartile-range noise band of the two
records (floored at :data:`NOISE_FLOOR_S` absolute), so single-sample
jitter cannot fail CI.  When both sides carry a v2 env fingerprint
that differs in platform or CPU count, timing regressions are
downgraded to notes — cross-machine wall comparisons measure the
hardware delta, not the code — while structural findings still gate.
v2 wrapped bench
files (``{v, env, records}``) are accepted interchangeably with the
legacy bare arrays.

When a gate fails, the watchdog auto-writes a ranked
``PERFDIFF_attribution.json`` next to the fresh files — a
differential-profiling diff of the baseline's deterministic work
counters against the fresh run's (:mod:`repro.obs.perfdiff`) — so a
red CI run says *where the work went*, not just that it drifted.
Verdict lines name the baseline each comparison used
(``[vs benchmarks/baselines/BENCH_mc.json]`` or ``[vs
ledger:<run_id>]``).

Every check appends one JSON line to an append-only history file
(``benchmarks/out/REGRESS_history.jsonl`` by default), giving CI a
perf trajectory that survives baseline refreshes.  When the run
ledger is enabled the same line is mirrored into
``<ledger-root>/REGRESS_history.jsonl`` so the trajectory rides along
with the recorded runs, and the report is noted into any active
:mod:`repro.obs.ledger` recorder.

CLI (also ``python -m repro.obs.regress``)::

    python -m repro.obs.regress --check benchmarks/out
    python -m repro.obs.regress --check benchmarks/out --update
    python -m repro.obs.regress --check benchmarks/out --json
    python -m repro.obs.regress --check benchmarks/out \
        --baselines ledger       # baselines = newest ledgered bench

``--baselines ledger`` resolves the baseline records from the most
recent ledger run that recorded each ``BENCH_*`` artifact, instead of
the committed files — handy for "did this change regress perf versus
my last local run" without touching the checkout.

Exit codes: 0 = within thresholds, 1 = regression, 2 = usage error
(missing files, malformed records).
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass
from typing import Optional, Union

from repro.obs.export import validate_bench_file

#: maximum allowed relative increase (wall_s, p95) / decrease
#: (states_per_s) before a record is flagged
DEFAULT_THRESHOLDS = {
    "wall_s": 0.25,
    "states_per_s": 0.25,
    "p95": 0.30,
    "mem_peak_mb": 0.30,
}

#: timings at or below this are pure scheduler jitter — never flagged
NOISE_FLOOR_S = 0.005

#: tail-latency (p95) estimates from a handful of repeats need even
#: more headroom than medians before a relative threshold means
#: anything — p95 comparisons under this floor are never flagged
P95_FLOOR_S = 2 * NOISE_FLOOR_S

#: peak-RSS growths below this many MB are allocator noise (the
#: interpreter's baseline RSS dwarfs any per-benchmark allocation)
MEM_FLOOR_MB = 1.0

#: the file pair the watchdog knows about
BENCH_FILES = ("BENCH_analysis.json", "BENCH_mc.json")

DEFAULT_HISTORY = "REGRESS_history.jsonl"


@dataclass
class Finding:
    """One comparison outcome for (record, metric)."""

    file: str
    name: str
    metric: str
    severity: str            # 'regression' | 'note'
    message: str
    baseline: Optional[float] = None
    fresh: Optional[float] = None
    #: which baseline the verdict compared against (file path or
    #: ``ledger:<run_id>``) — a multi-file gate failure must say which
    #: BENCH_*.json tripped it
    source: Optional[str] = None

    def to_dict(self) -> dict:
        out: dict = {"file": self.file, "name": self.name,
                     "metric": self.metric, "severity": self.severity,
                     "message": self.message}
        if self.baseline is not None:
            out["baseline"] = self.baseline
        if self.fresh is not None:
            out["fresh"] = self.fresh
        if self.source is not None:
            out["source"] = self.source
        return out

    def render(self) -> str:
        flag = "REGRESSION" if self.severity == "regression" else "note"
        src = f" [vs {self.source}]" if self.source else ""
        return f"[{flag}] {self.file} {self.name}: {self.message}{src}"


def _pct(new: float, old: float) -> float:
    return (new - old) / old * 100.0


def compare_records(fresh: list[dict], baseline: list[dict],
                    thresholds: Optional[dict] = None,
                    file: str = "",
                    source: Optional[str] = None) -> list[Finding]:
    """Compare two record lists (matched by ``name``).  ``source``
    names where the baseline records came from; it is stamped onto
    every finding so verdict lines identify their baseline."""
    limits = dict(DEFAULT_THRESHOLDS, **(thresholds or {}))
    by_name = {r["name"]: r for r in baseline}
    findings: list[Finding] = []
    seen = set()
    for record in fresh:
        name = record["name"]
        seen.add(name)
        base = by_name.get(name)
        if base is None:
            findings.append(Finding(
                file, name, "presence", "note",
                "new record with no committed baseline"))
            continue
        findings.extend(_compare_one(file, name, record, base, limits))
    for name in sorted(set(by_name) - seen):
        findings.append(Finding(
            file, name, "presence", "regression",
            "baseline record missing from the fresh run"))
    if source:
        for finding in findings:
            finding.source = source
    return findings


def _median_wall(record: dict) -> float:
    """The gated wall time: ``stats.median`` when the record came from
    the statistical bench harness (``repro bench run``), else the
    single-shot ``wall_s``.  Harness records set wall_s = median, so
    this is belt-and-braces for hand-edited files."""
    stats = record.get("stats") or {}
    return float(stats.get("median", record["wall_s"]))


def _iqr(record: dict) -> float:
    return float((record.get("stats") or {}).get("iqr", 0.0))


#: below this many repeats a p95 is just the sample maximum — gating
#: on it flags scheduler jitter, not tail regressions
MIN_P95_REPEATS = 10


def _p95_meaningful(record: dict) -> bool:
    """Harness records stamp ``stats.repeats``; with a small sample
    the p95 degenerates to the max and is pure noise, so the p95 gate
    only applies to records whose percentiles came from a real
    distribution (multi-round histograms, or >= :data:`MIN_P95_REPEATS`
    repeats).  Records without ``stats`` predate the harness and keep
    the historical behavior."""
    stats = record.get("stats")
    if not stats:
        return True
    return int(stats.get("repeats", 0)) >= MIN_P95_REPEATS


def _compare_one(file: str, name: str, fresh: dict, base: dict,
                 limits: dict) -> list[Finding]:
    out: list[Finding] = []

    def slower(metric: str, new: float, old: float, limit: float,
               floor: float = 0.0, noise: float = 0.0) -> None:
        if max(new, old) <= floor:
            return
        if old > 0 and new > old * (1 + limit) and new - old > noise:
            out.append(Finding(
                file, name, metric, "regression",
                f"{metric} {old:.6g} -> {new:.6g} "
                f"(+{_pct(new, old):.1f}%, limit +{limit * 100:.0f}%)",
                baseline=old, fresh=new))

    # median-of-repeats gating: compare the medians and additionally
    # require the delta to clear the combined IQR noise band — and
    # always the absolute noise floor, so a few-ms wobble on a small
    # benchmark cannot flag a phantom regression no matter how large
    # it is relatively
    slower("wall_s", _median_wall(fresh), _median_wall(base),
           limits["wall_s"], floor=NOISE_FLOOR_S,
           noise=max(NOISE_FLOOR_S, _iqr(fresh) + _iqr(base)))

    new_rate, old_rate = fresh["states_per_s"], base["states_per_s"]
    # rate gating only matters for real searches, and only when the
    # baseline wall time clears the noise floor
    if old_rate > 0 and base["wall_s"] > NOISE_FLOOR_S \
            and new_rate < old_rate * (1 - limits["states_per_s"]):
        out.append(Finding(
            file, name, "states_per_s", "regression",
            f"states_per_s {old_rate:.6g} -> {new_rate:.6g} "
            f"({_pct(new_rate, old_rate):.1f}%, limit "
            f"-{limits['states_per_s'] * 100:.0f}%)",
            baseline=old_rate, fresh=new_rate))

    fresh_p = fresh.get("percentiles")
    base_p = base.get("percentiles")
    if fresh_p and base_p and _p95_meaningful(fresh) \
            and _p95_meaningful(base):
        # tail estimates from a handful of repeats are the noisiest
        # number in the record — the IQR band applies here too
        slower("p95", fresh_p["p95"], base_p["p95"],
               limits["p95"], floor=P95_FLOOR_S,
               noise=_iqr(fresh) + _iqr(base))

    new_mem = fresh.get("mem_peak_mb")
    old_mem = base.get("mem_peak_mb")
    if new_mem is not None and old_mem is not None and old_mem > 0 \
            and new_mem - old_mem > MEM_FLOOR_MB \
            and new_mem > old_mem * (1 + limits["mem_peak_mb"]):
        out.append(Finding(
            file, name, "mem_peak_mb", "regression",
            f"mem_peak_mb {old_mem:.6g} -> {new_mem:.6g} "
            f"(+{_pct(new_mem, old_mem):.1f}%, limit "
            f"+{limits['mem_peak_mb'] * 100:.0f}%)",
            baseline=old_mem, fresh=new_mem))

    for metric in ("states", "transitions"):
        if fresh[metric] != base[metric]:
            out.append(Finding(
                file, name, metric, "note",
                f"{metric} changed {base[metric]} -> {fresh[metric]} "
                f"(deterministic search drift — refresh the baseline "
                f"if intended)",
                baseline=float(base[metric]),
                fresh=float(fresh[metric])))
    return out


def baselines_from_ledger(root: Union[None, str, pathlib.Path] = None,
                          sources: Optional[dict] = None
                          ) -> dict[str, list]:
    """Baseline records from the run ledger: for each ``BENCH_*``
    file, the copy recorded by the most recent ledgered run (schema-
    validated; unreadable artifacts are skipped).  When ``sources`` is
    a dict it is filled with ``{name: "ledger:<run_id>"}`` so verdict
    lines can name the winning run."""
    from repro.obs import ledger
    from repro.obs.export import (BENCH_FILE_SCHEMA, BENCH_RUN_SCHEMA,
                                  bench_records, validate)

    ledger_root = ledger.ledger_root(root)
    out: dict[str, list] = {}
    for manifest in ledger.list_runs(ledger_root):   # oldest first
        for artifact in manifest.get("artifacts", []):
            if artifact.get("name") not in BENCH_FILES \
                    or not artifact.get("path"):
                continue
            path = ledger_root / manifest["run_id"] / artifact["path"]
            try:
                doc = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            schema = BENCH_RUN_SCHEMA if isinstance(doc, dict) \
                else BENCH_FILE_SCHEMA
            if not validate(doc, schema):
                out[artifact["name"]] = bench_records(doc)  # newest wins
                if sources is not None:
                    sources[artifact["name"]] = \
                        f"ledger:{manifest['run_id']}"
    return out


#: env-fingerprint fields whose mismatch makes absolute timings
#: incomparable (a different machine class, not a different moment)
_ENV_TIMING_FIELDS = ("platform", "cpu_count")

#: metrics that measure time — the ones an env mismatch invalidates
_TIMING_METRICS = ("wall_s", "states_per_s", "p95")


def _file_env(path: pathlib.Path) -> Optional[dict]:
    """The v2 env fingerprint of a bench file, or ``None`` for v1
    arrays (which carry no provenance)."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if isinstance(doc, dict):
        env = doc.get("env")
        return env if isinstance(env, dict) else None
    return None


def _env_mismatch(fresh_env: Optional[dict],
                  base_env: Optional[dict]) -> Optional[str]:
    """A human-readable description of why the two sides' timings are
    not comparable, or ``None`` when they are (unknown provenance is
    treated as comparable — v1 files keep the historical behavior)."""
    if not fresh_env or not base_env:
        return None
    diffs = [f"{key} {base_env.get(key)} -> {fresh_env.get(key)}"
             for key in _ENV_TIMING_FIELDS
             if fresh_env.get(key) != base_env.get(key)]
    return "; ".join(diffs) if diffs else None


def _timing_as_note(finding: Finding, mismatch: str) -> Finding:
    """Cross-machine wall comparisons measure the hardware delta, not
    the code: downgrade timing regressions to informational notes and
    leave structural findings (counts, memory, missing records) to
    gate as usual."""
    if finding.severity != "regression" \
            or finding.metric not in _TIMING_METRICS:
        return finding
    return Finding(
        finding.file, finding.name, finding.metric, "note",
        finding.message + f" [env mismatch: {mismatch} — timing "
        f"informational, refresh baselines from this environment]",
        baseline=finding.baseline, fresh=finding.fresh,
        source=finding.source)


def check_dir(out_dir: Union[str, pathlib.Path],
              baseline_dir: Union[str, pathlib.Path],
              thresholds: Optional[dict] = None) -> dict:
    """Compare every known bench file present in ``out_dir`` against
    its committed baseline — or, when ``baseline_dir`` is the literal
    string ``"ledger"``, against the newest bench artifacts in the run
    ledger.  Returns a JSON-ready report; raises ``ValueError`` when a
    present file is malformed or has no baseline."""
    out_dir = pathlib.Path(out_dir)
    from_ledger: Optional[dict] = None
    ledger_sources: dict = {}
    if str(baseline_dir) == "ledger":
        from_ledger = baselines_from_ledger(sources=ledger_sources)
    baseline_dir = pathlib.Path(baseline_dir)
    findings: list[Finding] = []
    compared: list[str] = []
    baseline_sources: dict[str, str] = {}
    env_mismatch: Optional[str] = None
    for filename in BENCH_FILES:
        fresh_path = out_dir / filename
        if not fresh_path.exists():
            continue
        base_env: Optional[dict] = None
        if from_ledger is not None:
            baseline = from_ledger.get(filename)
            if baseline is None:
                raise ValueError(
                    f"{fresh_path} has no ledgered baseline — no "
                    f"recorded run carries a {filename} artifact")
            source = ledger_sources.get(filename, "ledger")
        else:
            baseline_path = baseline_dir / filename
            if not baseline_path.exists():
                raise ValueError(
                    f"{fresh_path} has no baseline {baseline_path} — "
                    f"run with --update to record one")
            baseline = validate_bench_file(baseline_path)
            base_env = _file_env(baseline_path)
            source = str(baseline_path)
        fresh = validate_bench_file(fresh_path)
        mismatch = _env_mismatch(_file_env(fresh_path), base_env)
        file_findings = compare_records(fresh, baseline, thresholds,
                                        file=filename, source=source)
        if mismatch:
            env_mismatch = mismatch
            file_findings = [_timing_as_note(f, mismatch)
                             for f in file_findings]
        findings.extend(file_findings)
        compared.append(filename)
        baseline_sources[filename] = source
    if not compared:
        raise ValueError(f"no {' / '.join(BENCH_FILES)} under {out_dir}")
    regressions = [f for f in findings if f.severity == "regression"]
    report = {
        "compared": compared,
        "baseline_sources": baseline_sources,
        "status": "regression" if regressions else "ok",
        "regressions": len(regressions),
        "notes": len(findings) - len(regressions),
        "findings": [f.to_dict() for f in findings],
    }
    if env_mismatch:
        report["env_mismatch"] = env_mismatch
    return report


def update_baselines(out_dir: Union[str, pathlib.Path],
                     baseline_dir: Union[str, pathlib.Path]
                     ) -> list[pathlib.Path]:
    """Copy (validated) fresh bench files over the baselines."""
    out_dir = pathlib.Path(out_dir)
    baseline_dir = pathlib.Path(baseline_dir)
    baseline_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for filename in BENCH_FILES:
        fresh_path = out_dir / filename
        if not fresh_path.exists():
            continue
        validate_bench_file(fresh_path)
        target = baseline_dir / filename
        target.write_text(fresh_path.read_text())
        written.append(target)
    if not written:
        raise ValueError(f"no bench files under {out_dir} to promote")
    return written


def append_history(path: Union[str, pathlib.Path],
                   report: dict) -> pathlib.Path:
    """Append one summary line (never rewrites earlier entries)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    entry = {
        "at": round(time.time(), 3),
        "status": report["status"],
        "regressions": report["regressions"],
        "notes": report["notes"],
        "compared": report["compared"],
    }
    with path.open("a") as handle:
        handle.write(json.dumps(entry) + "\n")
    return path


#: filename of the attribution artifact a failed gate auto-emits
ATTRIBUTION_FILE = "PERFDIFF_attribution.json"


def write_attribution(out_dir: Union[str, pathlib.Path],
                      baseline_dir: Union[str, pathlib.Path]
                      ) -> Optional[pathlib.Path]:
    """On a failed gate, answer *where the work went*: diff the
    baseline's deterministic profile counters against the fresh run's
    and write the ranked attribution document
    (:mod:`repro.obs.perfdiff`) next to the fresh bench files.
    Best-effort — records predating the counters block simply yield
    no artifact (``None``)."""
    from repro.obs import bench, ledger, perfdiff

    out_dir = pathlib.Path(out_dir)
    try:
        base_set = bench.resolve_side(str(baseline_dir))
        fresh_set = bench.resolve_side(str(out_dir))
    except ValueError:
        return None
    base = perfdiff.side_from_records(
        f"baseline:{baseline_dir}",
        [r for records in base_set.values() for r in records])
    fresh = perfdiff.side_from_records(
        f"fresh:{out_dir}",
        [r for records in fresh_set.values() for r in records])
    report = perfdiff.attribute(base, fresh)
    if not report["rows"]:
        return None
    path = out_dir / ATTRIBUTION_FILE
    path.write_text(json.dumps(report, indent=2) + "\n")
    ledger.add_artifact(ATTRIBUTION_FILE, report)
    return path


def _mirror_history_to_ledger(report: dict) -> None:
    """Mirror the history line next to the recorded runs and note the
    report into any active run recorder (both best-effort)."""
    from repro.obs import ledger

    ledger.note("regress", {"status": report["status"],
                            "regressions": report["regressions"],
                            "notes": report["notes"],
                            "compared": report["compared"]})
    if not ledger.enabled():
        return
    root = ledger.ledger_root()
    try:
        append_history(root / DEFAULT_HISTORY, report)
    except OSError:
        pass


def main(argv: Optional[list[str]] = None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="compare fresh BENCH_*.json files against "
                    "committed baselines")
    parser.add_argument("--check", metavar="DIR",
                        default="benchmarks/out",
                        help="directory holding the fresh bench files "
                             "(default: benchmarks/out)")
    parser.add_argument("--baselines", metavar="DIR",
                        default="benchmarks/baselines",
                        help="committed baseline directory (default: "
                             "benchmarks/baselines), or the literal "
                             "'ledger' to compare against the newest "
                             "bench artifacts in the run ledger")
    parser.add_argument("--update", action="store_true",
                        help="promote the fresh files to baselines "
                             "instead of checking")
    parser.add_argument("--history", metavar="FILE",
                        help="append-only JSONL perf history (default: "
                             "<check-dir>/REGRESS_history.jsonl; "
                             "'-' disables)")
    parser.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    args = parser.parse_args(argv)

    if args.update:
        try:
            written = update_baselines(args.check, args.baselines)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for path in written:
            print(f"baseline updated: {path}")
        return 0

    try:
        report = check_dir(args.check, args.baselines)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    history = args.history
    if history != "-":
        if history is None:
            history = pathlib.Path(args.check) / DEFAULT_HISTORY
        append_history(history, report)
        _mirror_history_to_ledger(report)
    attribution: Optional[pathlib.Path] = None
    if report["status"] == "regression":
        attribution = write_attribution(args.check, args.baselines)
        if attribution is not None:
            report["attribution"] = str(attribution)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        for finding in report["findings"]:
            flag = ("REGRESSION" if finding["severity"] == "regression"
                    else "note")
            src = f" [vs {finding['source']}]" \
                if finding.get("source") else ""
            print(f"[{flag}] {finding['file']} {finding['name']}: "
                  f"{finding['message']}{src}")
        print(f"{report['status']}: {report['regressions']} "
              f"regression(s), {report['notes']} note(s) across "
              f"{', '.join(report['compared'])} (baselines: "
              + ", ".join(f"{k} vs {v}" for k, v in sorted(
                  report.get("baseline_sources", {}).items())) + ")")
        if attribution is not None:
            print(f"attribution written: {attribution} "
                  f"(repro perf diff — where the work went)")
    return 1 if report["status"] == "regression" else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
