"""Schema-versioned structured event stream (bounded ring + JSONL).

The diagnostics layer's third leg (next to spans and metrics): a
low-overhead stream of discrete *events* emitted from the MC explorer,
the interpreter, the schedulers, and the dynamic checker.  Each event
is a flat dict::

    {"v": 1, "seq": 17, "t": 3.21e-05, "kind": "interp.sc",
     "tid": 0, "addr": "('g', 'Sem')", "ok": true}

* ``v``    — schema version (:data:`SCHEMA_VERSION`);
* ``seq``  — per-stream monotone sequence number;
* ``t``    — ``time.perf_counter()`` timestamp (same clock as the span
  tracer, so events and spans merge onto one Chrome-trace timeline);
* ``kind`` — dotted event name (see :data:`KINDS`);
* remaining keys are kind-specific and JSON-scalar only.

The stream keeps the most recent ``capacity`` events in a ring buffer
(``collections.deque(maxlen=...)``) so unbounded MC runs cannot exhaust
memory, and optionally mirrors *every* event to a JSONL sink before it
can be evicted.  Call sites hold an ``Optional[EventStream]`` and guard
with ``if stream is not None`` — disabled instrumentation costs one
attribute check.
Every record is additionally stamped with the emitting process id
(``pid``), and — when the stream was created by a fleet worker — the
worker label (``worker``), so events from N merged worker spools stay
attributable and land on per-process Chrome-trace lanes.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import weakref
from collections import deque
from typing import IO, Optional, Union

from repro.obs.schemas import EVENTS as SCHEMA_VERSION

#: the emitted event vocabulary (kind -> kind-specific keys)
KINDS = {
    "mc.push": ("depth", "desc", "states"),          # DFS pushed a state
    "mc.pop": ("depth",),                            # DFS backtracked
    "mc.ample": ("tid", "desc"),                     # singleton ample set
    "mc.violation": ("desc", "message"),             # property/assert hit
    "mc.cap": ("states",),                           # --max-states abort
    "mc.deadline": ("states", "deadline_s"),         # --deadline stop
    # graph-capture summary (GraphWriter.close): exact totals + cap
    "mc.graph": ("nodes", "edges", "pruned", "truncated", "path"),
    "interp.sc": ("tid", "addr", "ok"),              # SC attempt
    "interp.cas": ("tid", "addr", "ok"),             # CAS attempt
    "sched.seed": ("seed",),                         # scheduler seeded
    "sched.switch": ("tid", "prev"),                 # context switch
    "dyn.invocation": ("tid", "proc", "index"),      # checker saw a call
    "dyn.verdict": ("proc", "atomic", "witnesses"),  # checker concluded
    "lint.finding": ("rule", "severity", "proc", "line"),  # one diagnostic
    "lint.run": ("target", "errors", "warnings", "infos"),  # lint summary
    # ranked profiler entry (Profiler.emit_hotspots, top-N at run end)
    "profile.hotspot": ("name", "wall_s", "work", "calls"),
    # --progress heartbeat from the DFS (also printed to stderr);
    # `repro top` tails these — the final beat carries final=True so
    # an attached dashboard knows the run ended
    "explorer.progress": ("states", "transitions", "depth", "frontier",
                          "elapsed_s", "dedup_hit_rate", "mem_mb",
                          "final"),
    # summary-cache traffic (analysis/summaries/engine.py)
    "summary.resolve": ("label", "hits", "misses", "invalidated",
                        "cached"),
    "summary.replay": ("label", "procs"),
    "summary.emit": ("label", "procs", "drift"),
    # fleet worker heartbeat (obs.fleet.WorkerSpool): progress + rss +
    # throughput per worker process; `repro top SPOOL_DIR` tails these
    "fleet.heartbeat": ("done", "total", "rss_mb", "rate",
                        "elapsed_s", "final"),
    # fleet merge summary (obs.fleet.merge_spools)
    "fleet.merge": ("workers", "events", "wall_s"),
}

#: JSON-schema (export.validate subset) for one event
EVENT_SCHEMA = {
    "type": "object",
    "required": ["v", "seq", "t", "kind"],
    "properties": {
        "v": {"type": "integer"},
        "seq": {"type": "integer"},
        "t": {"type": "number"},
        "kind": {"type": "string", "enum": sorted(KINDS)},
        "pid": {"type": "integer"},
        "worker": {"type": "string"},
    },
}

EVENT_FILE_SCHEMA = {"type": "array", "items": EVENT_SCHEMA}


class EventStream:
    """Bounded in-memory ring of structured events, with an optional
    always-complete JSONL sink."""

    def __init__(self, capacity: int = 4096,
                 sink: Union[None, str, pathlib.Path, IO] = None,
                 worker: Optional[str] = None):
        self._ring: deque = deque(maxlen=capacity)
        self._seq = 0
        self._emitted = 0
        # cached once: streams are constructed post-fork, so the pid
        # stamped on every record is the emitting process, and the
        # stamp costs no syscall per event
        self._pid = os.getpid()
        self._worker = worker
        self._fh: Optional[IO] = None
        self._owns_fh = False
        if sink is not None:
            if hasattr(sink, "write"):
                self._fh = sink
            else:
                sink = pathlib.Path(sink)
                sink.parent.mkdir(parents=True, exist_ok=True)
                self._fh = open(sink, "w")
                self._owns_fh = True
        _register(self)

    # -- emission ----------------------------------------------------------
    def emit(self, kind: str, **fields) -> dict:
        event = {"v": SCHEMA_VERSION, "seq": self._seq,
                 "t": time.perf_counter(), "kind": kind,
                 "pid": self._pid}
        if self._worker is not None:
            event["worker"] = self._worker
        event.update(fields)
        self._seq += 1
        self._emitted += 1
        self._ring.append(event)
        if self._fh is not None:
            self._fh.write(json.dumps(event) + "\n")
        return event

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    @property
    def emitted(self) -> int:
        """Total events emitted (>= len() once the ring wraps)."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Events evicted from the ring (still in the sink, if any)."""
        return self._emitted - len(self._ring)

    def snapshot(self, kind: Optional[str] = None) -> list[dict]:
        """The retained events, oldest first (optionally one kind)."""
        if kind is None:
            return [dict(e) for e in self._ring]
        return [dict(e) for e in self._ring if e["kind"] == kind]

    def drain(self, limit: Optional[int] = None) -> list[dict]:
        """The most recent ``limit`` retained events (all when None) —
        the bounded drain a crash bundle captures."""
        events = [dict(e) for e in self._ring]
        if limit is not None and limit < len(events):
            return events[-limit:]
        return events

    # -- output ------------------------------------------------------------
    def write_jsonl(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Dump the *retained* ring contents as JSONL."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            for event in self._ring:
                fh.write(json.dumps(event) + "\n")
        return path

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            if self._owns_fh:
                self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# the most recently constructed stream, for crash bundles: the ledger
# drains it when a run dies so the last events survive (weakref — the
# registry must not keep a closed stream alive)
_ACTIVE: Optional["weakref.ref[EventStream]"] = None


def _register(stream: "EventStream") -> None:
    global _ACTIVE
    _ACTIVE = weakref.ref(stream)


def active() -> Optional["EventStream"]:
    """The live stream a crash bundle should drain, if any."""
    return _ACTIVE() if _ACTIVE is not None else None


def read_jsonl(path: Union[str, pathlib.Path]) -> list[dict]:
    """Load a JSONL event file and validate each record against
    :data:`EVENT_SCHEMA` (raises ``ValueError`` on violations)."""
    from repro.obs.export import validate

    events = []
    with open(path) as fh:
        for i, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            errors = validate(event, EVENT_SCHEMA, path=f"$[{i}]")
            if errors:
                raise ValueError(f"{path}: " + "; ".join(errors))
            events.append(event)
    return events
