"""Statistical benchmark harness: the perf-trajectory substrate.

Single-shot ``BENCH_*.json`` samples are noise: a 25% wall-time swing
on a shared runner is routine, so a "5-10x faster" claim for the
compact-state/sharding arc (ROADMAP items 1-3) cannot be demonstrated
from one sample per commit.  This module makes every perf number a
*population statistic* over a declarative benchmark matrix:

* :func:`default_matrix` — the cases to time: the steps-1-7 analysis
  over the corpus, and the explorer over the Figure-3 NFQ' driver
  (all reduction modes) plus bounded Table-2/§6.3 Gao-Hesselink
  configurations;
* :func:`run_case` — warmup runs (discarded) then N timed repeats,
  summarized as ``{repeats, min, max, mean, median, iqr}``.  The
  emitted record's ``wall_s`` IS the median, so every downstream
  consumer (watchdog, report, compare) gates on the low-noise number;
  one *extra* profiled pass after the repeats stamps deterministic
  ``counters`` into the record (:func:`case_counters`) — the substrate
  ``repro perf diff`` attributes regressions with;
* :func:`run_matrix` — executes the matrix and splits the records
  into v2 ``BENCH_analysis.json`` / ``BENCH_mc.json`` documents
  (``{v, at, env, repeats, records}``) stamped with an environment
  fingerprint (git rev, python, platform, cpu count);
* :func:`append_history` / :func:`load_history` — the append-only
  ``BENCH_history.jsonl`` trajectory: one compact line per ``bench
  run`` carrying the per-record medians, so cross-commit trends
  survive baseline refreshes;
* :func:`render_trend` — per-record sparkline trajectories over the
  history (``repro bench trend``);
* :func:`compare_sets` — noise-aware record diffing with per-record
  verdicts (``repro bench compare``): a delta only counts as drift
  when it clears both the relative threshold and the combined IQR
  noise band of the two sides.

Repeat count resolves from ``--repeats`` > ``REPRO_BENCH_REPEATS`` >
:data:`DEFAULT_REPEATS`.  ``--quick`` (1 repeat, no warmup, small
matrix) keeps a tier-1-adjacent CI smoke of the harness itself cheap.

CLI surface: ``repro bench run|trend|compare`` (:mod:`repro.cli`).
"""

from __future__ import annotations

import json
import os
import pathlib
import platform as _platform
import sys
import time
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.obs.export import (BENCH_SCHEMA_VERSION, bench_record,
                              validate_bench_file, write_bench)
from repro.obs.profile import NULL_PROFILER, Profiler

DEFAULT_REPEATS = 5
DEFAULT_WARMUP = 1

DEFAULT_HISTORY = "BENCH_history.jsonl"

#: relative wall-time delta below which compare_sets never reports
#: drift, even when the IQR band is zero (single-repeat records)
DEFAULT_REL_THRESHOLD = 0.10

#: wall times at or below this are scheduler jitter — compare_sets
#: reports them as ``~`` regardless of relative delta
NOISE_FLOOR_S = 0.005

SPARK_CHARS = "▁▂▃▄▅▆▇█"


# -- repeat statistics ---------------------------------------------------------

def median(samples: list[float]) -> float:
    """Exact median (mean-of-middle-two on even N; 0.0 on empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def iqr(samples: list[float]) -> float:
    """Interquartile range via Tukey hinges (median of each half,
    halves share the middle sample on odd N).  Well-defined down to
    N=1, where it is 0 — small-N repeat counts must not blow up the
    noise band."""
    n = len(samples)
    if n < 2:
        return 0.0
    ordered = sorted(samples)
    mid = n // 2
    lower = ordered[:mid + (n % 2)]
    upper = ordered[mid:]
    return median(upper) - median(lower)


def summarize(samples: list[float]) -> dict:
    """The ``stats`` block of a bench record."""
    return {
        "repeats": len(samples),
        "min": min(samples) if samples else 0.0,
        "max": max(samples) if samples else 0.0,
        "mean": sum(samples) / len(samples) if samples else 0.0,
        "median": median(samples),
        "iqr": iqr(samples),
    }


def percentiles_of(samples: list[float]) -> Optional[dict]:
    """Exact p50/p95/p99 from raw repeat samples (nearest-rank), or
    None when there are no samples."""
    if not samples:
        return None
    ordered = sorted(samples)
    n = len(ordered)

    def rank(q: float) -> float:
        import math
        return ordered[min(n - 1, max(0, math.ceil(q * n) - 1))]

    return {"p50": rank(0.50), "p95": rank(0.95), "p99": rank(0.99)}


# -- environment fingerprint ---------------------------------------------------

def env_fingerprint() -> dict:
    """What produced these numbers: git rev, interpreter, platform,
    cpu count.  Compared loudly by ``bench compare`` — cross-machine
    numbers must never silently pass for a same-machine trend."""
    from repro.obs.ledger import git_rev

    return {
        "git_rev": git_rev(),
        "python": sys.version.split()[0],
        "platform": _platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def resolve_repeats(flag: Optional[int] = None) -> int:
    """``--repeats`` > ``REPRO_BENCH_REPEATS`` > default."""
    if flag is not None:
        return max(1, int(flag))
    raw = os.environ.get("REPRO_BENCH_REPEATS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return DEFAULT_REPEATS


# -- the benchmark matrix ------------------------------------------------------

@dataclass(frozen=True)
class BenchCase:
    """One matrix entry.  ``run()`` executes the workload once and
    returns ``(wall_s, fields)`` where ``fields`` are the non-timing
    record columns (states, transitions, mem_peak_mb, …).  Matrix
    runners additionally accept a ``profiler`` keyword (default
    disabled): :func:`run_case` uses it for one dedicated profiled
    pass *after* the timed repeats, so records carry deterministic
    ``counters`` for ``repro perf diff`` without profiling overhead
    ever touching a timed sample."""

    name: str            # record name, e.g. "mc/nfq_prime/por"
    kind: str            # 'analysis' | 'mc' — selects the output file
    run: Callable[..., tuple]


def _analysis_case(name: str, source: str) -> BenchCase:
    from repro.analysis import analyze_program

    def run(profiler=NULL_PROFILER) -> tuple:
        start = time.perf_counter()
        result = analyze_program(source, profiler=profiler)
        wall = time.perf_counter() - start
        assert result.verdicts
        return wall, {}

    return BenchCase(f"analysis/{name}", "analysis", run)


#: corpus subset driven through the summary cache by the cold/warm
#: cache benchmarks (mirrors the standalone analysis cases)
_CACHE_CORPUS = ("NFQ_PRIME", "HERLIHY_SMALL", "GH_PROGRAM1",
                 "ALLOCATOR", "TREIBER_STACK", "CAS_COUNTER")


def _corpus_cache_cases() -> list[BenchCase]:
    """``analysis/corpus-cold`` vs ``analysis/corpus-warm``: the same
    corpus subset analyzed through the summary cache, once into a
    fresh store per repeat and once into a pre-populated store (100%
    replay).  Each record carries ``work_units`` — the deterministic
    profiler calls+work total — so the warm/cold speedup is gated on
    work counters, not just wall clock."""
    import shutil
    import tempfile

    from repro import corpus
    from repro.analysis.summaries import (
        SummaryStore,
        analyze_with_summaries,
    )

    targets = [(f"corpus/{name.lower()}", getattr(corpus, name))
               for name in _CACHE_CORPUS]

    def pass_over(store: SummaryStore, profiler=None) -> tuple:
        profiler = profiler if profiler is not None \
            and profiler.enabled else Profiler()
        start = time.perf_counter()
        for label, source in targets:
            result, _ = analyze_with_summaries(
                source, store=store, label=label, profiler=profiler)
            assert result.verdicts
        wall = time.perf_counter() - start
        work = sum(int(entry["calls"] + entry["work"])
                   for entry in profiler.counters().values())
        return wall, {"work_units": work}

    def run_cold(profiler=None) -> tuple:
        tmp = tempfile.mkdtemp(prefix="repro-bench-cold-")
        try:
            return pass_over(SummaryStore(tmp), profiler)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    warm_dir = tempfile.mkdtemp(prefix="repro-bench-warm-")
    warm_store = SummaryStore(warm_dir)
    populated = []

    def run_warm(profiler=None) -> tuple:
        if not populated:
            pass_over(warm_store)       # populate, untimed
            populated.append(True)
        return pass_over(warm_store, profiler)

    return [BenchCase("analysis/corpus-cold", "analysis", run_cold),
            BenchCase("analysis/corpus-warm", "analysis", run_warm)]


def _corpus_jobs_cases() -> list[BenchCase]:
    """``analysis/corpus-jobs1`` vs ``analysis/corpus-jobs4``: the same
    cold-store corpus pass run sequentially and fanned across four
    forked workers (:func:`repro.obs.fleet.run_fleet`).  The jobs1
    case gates sequential-path overhead like any other; the jobs4 case
    gates the parallel path's fixed cost (fork + spool + merge), and
    the recorded jobs1/jobs4 wall ratio is the fleet speedup — ~1x on
    a single-core host, approaching ``min(4, cores)`` elsewhere, which
    is why the watchdog gates each case against its *own* baseline
    rather than the pair against each other.  ``work_units`` is
    identical across the pair by construction (same targets, same
    passes, merged worker profilers), so work-counter attribution
    stays meaningful across the jobs axis."""
    import shutil
    import tempfile

    from repro import corpus
    from repro.analysis.summaries import SummaryStore
    from repro.analysis.summaries.engine import analyze_corpus

    targets = [(f"corpus/{name.lower()}", getattr(corpus, name))
               for name in _CACHE_CORPUS]

    def jobs_runner(jobs: int):
        def run(profiler=None) -> tuple:
            profiler = profiler if profiler is not None \
                and profiler.enabled else Profiler()
            store_dir = tempfile.mkdtemp(
                prefix=f"repro-bench-jobs{jobs}-")
            spool_dir = tempfile.mkdtemp(
                prefix="repro-bench-spool-") if jobs > 1 else None
            try:
                start = time.perf_counter()
                report = analyze_corpus(
                    SummaryStore(store_dir), targets=targets,
                    profiler=profiler, jobs=jobs, spool=spool_dir)
                wall = time.perf_counter() - start
                assert not report["errors"]
            finally:
                shutil.rmtree(store_dir, ignore_errors=True)
                if spool_dir is not None:
                    shutil.rmtree(spool_dir, ignore_errors=True)
            work = sum(int(entry["calls"] + entry["work"])
                       for entry in profiler.counters().values())
            return wall, {"work_units": work}

        return run

    return [BenchCase("analysis/corpus-jobs1", "analysis",
                      jobs_runner(1)),
            BenchCase("analysis/corpus-jobs4", "analysis",
                      jobs_runner(4))]


def _mc_case(name: str, source: str, specs_fn: Callable, mode: str,
             max_states: int = 200_000,
             commutes: Optional[Callable] = None) -> BenchCase:
    from repro.interp import Interp
    from repro.mc import Explorer

    def run(profiler=NULL_PROFILER) -> tuple:
        interp = Interp(source)
        result = Explorer(interp, specs_fn(), mode=mode,
                          commutes=commutes, profiler=profiler,
                          max_states=max_states).run()
        fields = {
            "states": result.states,
            "transitions": result.transitions,
            "mem_peak_mb": result.metrics.get("mc.mem_peak_mb"),
            "dedup_hit_rate": result.metrics.get("mc.dedup_hit_rate"),
        }
        return result.elapsed, fields

    return BenchCase(f"mc/{name}", "mc", run)


def default_matrix(quick: bool = False) -> list[BenchCase]:
    """The declarative benchmark matrix.  ``quick`` shrinks it to one
    analysis case + one exploration (the harness-rot CI canary);
    the full matrix covers the corpus analyses, the Figure-3 NFQ'
    driver across reduction modes, and bounded Table-2/§6.3
    Gao-Hesselink configurations."""
    from repro import corpus
    from repro.experiments.section63 import commutes
    from repro.interp import ThreadSpec

    def nfq_specs():
        return [ThreadSpec.of(("AddNode", 1), ("UpdateTail",)),
                ThreadSpec.of(("DeqP",), ("UpdateTail",))]

    def gh_specs(n: int):
        return lambda: [ThreadSpec.of(("Apply", g + 1))
                        for g in range(n)]

    if quick:
        return [
            _analysis_case("nfq_prime", corpus.NFQ_PRIME),
            _mc_case("nfq_prime/por", corpus.NFQ_PRIME, nfq_specs,
                     "por"),
        ]
    cases = [
        _analysis_case("nfq_prime", corpus.NFQ_PRIME),
        _analysis_case("herlihy", corpus.HERLIHY_SMALL),
        _analysis_case("gh_program1", corpus.GH_PROGRAM1),
        _analysis_case("allocator", corpus.ALLOCATOR),
        _analysis_case("treiber", corpus.TREIBER_STACK),
    ]
    cases.extend(_corpus_cache_cases())
    cases.extend(_corpus_jobs_cases())
    for mode in ("full", "por", "atomic"):
        cases.append(_mc_case(f"nfq_prime/{mode}", corpus.NFQ_PRIME,
                              nfq_specs, mode))
    # §6.3's Gao-Hesselink driver at 2 threads: the reduced modes stay
    # bench-sized while exercising the atomic/commutativity machinery
    # the full-scale reproduction relies on
    cases.append(_mc_case("gh/atomic-2t", corpus.GH_PROGRAM1,
                          gh_specs(2), "atomic"))
    cases.append(_mc_case("gh/both-2t", corpus.GH_PROGRAM1,
                          gh_specs(2), "both", commutes=commutes))
    return cases


def case_counters(case: BenchCase) -> dict:
    """One dedicated profiled pass: the deterministic ``{region:
    {calls, work}}`` counters for ``repro perf diff`` attribution.
    Runs *after* the timed repeats so profiling overhead never touches
    a timed sample; counters need no repeats because identical runs
    produce identical counts.  Cases whose runner predates the
    ``profiler`` keyword simply yield no counters."""
    import inspect

    try:
        params = inspect.signature(case.run).parameters
    except (TypeError, ValueError):  # pragma: no cover — C callables
        return {}
    if "profiler" not in params:
        return {}
    profiler = Profiler()
    case.run(profiler=profiler)
    return profiler.counters()


def run_case(case: BenchCase, repeats: int,
             warmup: int = DEFAULT_WARMUP) -> dict:
    """Warmup (discarded) + N timed repeats -> one median-of-repeats
    bench record.  Non-timing fields come from the last repeat (the
    workloads are deterministic, so any repeat agrees)."""
    for _ in range(max(0, warmup)):
        case.run()
    samples: list[float] = []
    fields: dict = {}
    for _ in range(max(1, repeats)):
        wall, fields = case.run()
        samples.append(wall)
    record = bench_record(
        case.name, median(samples),
        states=fields.get("states", 0),
        transitions=fields.get("transitions", 0),
        percentiles=percentiles_of(samples),
        mem_peak_mb=fields.get("mem_peak_mb"),
        dedup_hit_rate=fields.get("dedup_hit_rate"),
        stats=summarize(samples))
    # deterministic profiler work total (summary-cache cases) — the
    # bench schema ignores unknown keys, so plain records stay valid
    if "work_units" in fields:
        record["work_units"] = fields["work_units"]
    counters = case_counters(case)
    if counters:
        record["counters"] = counters
    return record


def run_matrix(cases: list[BenchCase], repeats: int,
               warmup: int = DEFAULT_WARMUP,
               progress: Optional[Callable[[str], None]] = None
               ) -> dict:
    """Execute the matrix; returns ``{filename: run_document}`` with
    one v2 document per populated output file."""
    by_kind: dict[str, list[dict]] = {"analysis": [], "mc": []}
    for case in cases:
        record = run_case(case, repeats, warmup)
        by_kind[case.kind].append(record)
        if progress is not None:
            stats = record["stats"]
            progress(f"{case.name}: median {stats['median'] * 1000:.2f}"
                     f"ms  iqr {stats['iqr'] * 1000:.2f}ms  "
                     f"({stats['repeats']} repeat(s))")
    env = env_fingerprint()
    at = round(time.time(), 3)
    out: dict[str, dict] = {}
    for kind, filename in (("analysis", "BENCH_analysis.json"),
                           ("mc", "BENCH_mc.json")):
        if by_kind[kind]:
            out[filename] = {"v": BENCH_SCHEMA_VERSION, "at": at,
                             "env": env, "repeats": int(repeats),
                             "warmup": int(warmup),
                             "records": by_kind[kind]}
    return out


def write_run(docs: dict, out_dir: Union[str, pathlib.Path]
              ) -> list[pathlib.Path]:
    """Persist every run document under ``out_dir``."""
    out_dir = pathlib.Path(out_dir)
    return [write_bench(out_dir / filename, doc)
            for filename, doc in sorted(docs.items())]


# -- the append-only trajectory ------------------------------------------------

def history_line(docs: dict) -> dict:
    """One compact ``BENCH_history.jsonl`` entry for a matrix run:
    per-record medians + throughput, keyed by record name."""
    metrics: dict[str, dict] = {}
    env: dict = {}
    at = time.time()
    repeats = 0
    for doc in docs.values():
        env = doc.get("env", env)
        at = doc.get("at", at)
        repeats = doc.get("repeats", repeats)
        for record in doc["records"]:
            entry = {"wall_s": record["wall_s"]}
            if record.get("states_per_s"):
                entry["states_per_s"] = record["states_per_s"]
            stats = record.get("stats")
            if stats:
                entry["iqr"] = stats["iqr"]
            metrics[record["name"]] = entry
    return {"at": round(at, 3), "repeats": repeats, "env": env,
            "metrics": metrics}


def append_history(path: Union[str, pathlib.Path],
                   entry: dict) -> pathlib.Path:
    """Append one trajectory line (never rewrites earlier entries)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        handle.write(json.dumps(entry) + "\n")
    return path


def load_history(path: Union[str, pathlib.Path]) -> list[dict]:
    """All trajectory entries, oldest first (empty when absent)."""
    path = pathlib.Path(path)
    if not path.is_file():
        return []
    out = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict) and "metrics" in entry:
            out.append(entry)
    return out


def sparkline(values: list[float]) -> str:
    """Unicode sparkline over a value series (min..max scaled)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return SPARK_CHARS[0] * len(values)
    return "".join(
        SPARK_CHARS[min(len(SPARK_CHARS) - 1,
                        int((v - lo) / span * len(SPARK_CHARS)))]
        for v in values)


def trend_series(history: list[dict], metric: str = "wall_s"
                 ) -> dict[str, list]:
    """``{record_name: [(entry_index, value), ...]}`` over the
    trajectory; entries missing a record simply skip it."""
    series: dict[str, list] = {}
    for i, entry in enumerate(history):
        for name, values in entry.get("metrics", {}).items():
            if metric in values:
                series.setdefault(name, []).append((i, values[metric]))
    return series


def render_trend(history: list[dict], metric: str = "wall_s",
                 last: Optional[int] = None) -> str:
    """Text trajectory: sparkline + first->latest per record."""
    if last is not None:
        history = history[-last:]
    if not history:
        return ("no trajectory yet — repro bench run appends to "
                "BENCH_history.jsonl")
    series = trend_series(history, metric)
    scale = 1000.0 if metric == "wall_s" else 1.0
    unit = "ms" if metric == "wall_s" else "/s"
    width = max((len(n) for n in series), default=6)
    lines = [f"bench trajectory — {metric} over "
             f"{len(history)} run(s)"]
    if len(history) == 1:
        lines.append("(1 sample — deltas appear from the second "
                     "bench run onward)")
    for name in sorted(series):
        values = [v for _, v in series[name]]
        first, latest = values[0], values[-1]
        delta = ""
        if first > 0 and len(values) > 1:
            delta = f"  {(latest - first) / first * 100:+.1f}%"
        lines.append(
            f"{name.ljust(width)}  {sparkline(values)}  "
            f"{first * scale:.2f}{unit} -> {latest * scale:.2f}{unit}"
            f"{delta}")
    return "\n".join(lines)


# -- noise-aware comparison ----------------------------------------------------

def _stat(record: dict, key: str, fallback: float = 0.0) -> float:
    stats = record.get("stats") or {}
    if key in stats:
        return float(stats[key])
    if key == "median":
        return float(record["wall_s"])
    return fallback


def compare_records_stats(a: list[dict], b: list[dict],
                          threshold: float = DEFAULT_REL_THRESHOLD
                          ) -> list[dict]:
    """Per-record verdict rows comparing run ``a`` (older) to ``b``
    (newer).  Verdicts: ``~`` (within noise), ``slower``, ``faster``,
    ``new``, ``missing``.  A delta is significant only when it clears
    the relative ``threshold`` and the summed IQR noise bands (floored
    at the absolute :data:`NOISE_FLOOR_S`), and at least one side is
    above the absolute noise floor."""
    rows: list[dict] = []
    a_by = {r["name"]: r for r in a}
    b_by = {r["name"]: r for r in b}
    for name in sorted(set(a_by) | set(b_by)):
        old, new = a_by.get(name), b_by.get(name)
        if old is None:
            rows.append({"name": name, "verdict": "new",
                         "detail": "no record in the older run"})
            continue
        if new is None:
            rows.append({"name": name, "verdict": "missing",
                         "detail": "record absent from the newer run"})
            continue
        old_w, new_w = _stat(old, "median"), _stat(new, "median")
        # the absolute floor backstops the IQR band: a few-ms wobble
        # on a small benchmark is machine-load jitter regardless of
        # its relative size
        noise = max(NOISE_FLOOR_S,
                    _stat(old, "iqr") + _stat(new, "iqr"))
        delta = new_w - old_w
        rel = delta / old_w if old_w > 0 else 0.0
        row = {"name": name, "verdict": "~",
               "old_wall_s": round(old_w, 6),
               "new_wall_s": round(new_w, 6),
               "delta_pct": round(rel * 100, 1),
               "noise_s": round(noise, 6)}
        significant = (max(old_w, new_w) > NOISE_FLOOR_S
                       and abs(rel) > threshold
                       and abs(delta) > noise)
        if significant:
            row["verdict"] = "slower" if delta > 0 else "faster"
        rows.append(row)
    return rows


def compare_sets(a: dict[str, list], b: dict[str, list],
                 threshold: float = DEFAULT_REL_THRESHOLD) -> dict:
    """Compare two ``{filename: records}`` sets file-by-file.  The
    report's ``drift`` is True when any record got significantly
    slower or a baseline record disappeared — new records and
    speedups never fail a comparison."""
    files: dict[str, list] = {}
    for filename in sorted(set(a) | set(b)):
        files[filename] = compare_records_stats(
            a.get(filename, []), b.get(filename, []), threshold)
    flat = [row for rows in files.values() for row in rows]
    regressions = sum(r["verdict"] in ("slower", "missing")
                      for r in flat)
    improvements = sum(r["verdict"] == "faster" for r in flat)
    return {
        "v": 1,
        "drift": regressions > 0,
        "regressions": regressions,
        "improvements": improvements,
        "within_noise": sum(r["verdict"] == "~" for r in flat),
        "files": files,
    }


def render_compare(report: dict) -> str:
    lines = []
    for filename, rows in sorted(report["files"].items()):
        lines.append(f"{filename}:")
        for row in rows:
            if "old_wall_s" in row:
                lines.append(
                    f"  [{row['verdict']:>6}] {row['name']}: "
                    f"{row['old_wall_s'] * 1000:.2f}ms -> "
                    f"{row['new_wall_s'] * 1000:.2f}ms "
                    f"({row['delta_pct']:+.1f}%, noise band "
                    f"{row['noise_s'] * 1000:.2f}ms)")
            else:
                lines.append(f"  [{row['verdict']:>6}] {row['name']}: "
                             f"{row['detail']}")
    verdict = "DRIFT" if report["drift"] else "no significant drift"
    lines.append(
        f"{verdict}: {report['regressions']} regression(s), "
        f"{report['improvements']} improvement(s), "
        f"{report['within_noise']} within noise")
    return "\n".join(lines)


def resolve_side(spec: str,
                 baseline_dir: Union[str, pathlib.Path]
                 = "benchmarks/baselines") -> dict[str, list]:
    """Resolve one ``bench compare`` operand to ``{filename:
    records}``: a bench JSON file, a directory of ``BENCH_*.json``,
    the literal ``baseline`` (committed baselines), or ``ledger``
    (newest ledgered bench artifacts)."""
    if spec == "baseline":
        spec = str(baseline_dir)
    if spec == "ledger":
        from repro.obs.regress import baselines_from_ledger
        ledgered = baselines_from_ledger()  # {name: records}
        if not ledgered:
            raise ValueError("no ledgered bench artifacts found")
        return dict(ledgered)
    path = pathlib.Path(spec)
    if path.is_dir():
        out = {p.name: validate_bench_file(p)
               for p in sorted(path.glob("BENCH_*.json"))}
        if not out:
            raise ValueError(f"no BENCH_*.json under {path}")
        return out
    if path.is_file():
        return {path.name: validate_bench_file(path)}
    raise ValueError(f"cannot resolve bench side {spec!r} (expected a "
                     f"file, directory, 'baseline', or 'ledger')")
