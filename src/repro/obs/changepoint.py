"""Step-change detection over the perf trajectory (zero-dep).

``BENCH_history.jsonl`` accumulates one ``{at, env, metrics}`` line
per statistical bench run; the trend view plots it, but a plot cannot
*gate* — someone has to notice the step.  This module runs an
e-divisive-style binary segmentation over each ``(case, metric)``
series: recursively pick the split point maximizing a t-like contrast
statistic

    |mean(left) - mean(right)| / (s * sqrt(1/n_left + 1/n_right))

where ``s`` is a robust scale estimate (median absolute deviation of
the first differences, so a single step does not inflate the
noise estimate the way a global stddev would).  A split is accepted
only when the statistic clears ``z_threshold`` AND the mean shift is
material — above both a relative floor (``min_rel`` of the pooled
mean) and the absolute noise floor — which keeps the detector silent
on IQR-level jitter.

Each accepted step is annotated with the nearest git rev from the
history line's env fingerprint, so ``repro bench trend
--changepoints`` prints "states_per_s stepped -18% at entry 7
(git 9e7ce818)" instead of a bare index.
"""

from __future__ import annotations

from typing import Optional

#: contrast statistic a split must clear to count as a step
Z_THRESHOLD = 4.0
#: minimum relative mean shift (fraction of the pooled mean)
MIN_REL = 0.10
#: minimum points on each side of a candidate split
MIN_SEG = 3


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if not n:
        return 0.0
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def robust_scale(values: list[float]) -> float:
    """Noise scale of a series that may contain steps: MAD of the
    first differences (a step contributes one outlier difference,
    which the median ignores), rescaled to be sigma-consistent for
    Gaussian noise (differences have variance 2*sigma^2, and
    MAD ~= 0.6745*sigma)."""
    if len(values) < 3:
        return 0.0
    diffs = [values[i + 1] - values[i] for i in range(len(values) - 1)]
    med = _median(diffs)
    mad = _median([abs(d - med) for d in diffs])
    return mad / (0.6745 * 1.4142135623730951)


def _contrast(values: list[float], split: int, scale: float) -> float:
    left, right = values[:split], values[split:]
    spread = scale * (1 / len(left) + 1 / len(right)) ** 0.5
    return abs(_mean(left) - _mean(right)) / spread if spread else 0.0


def detect_steps(values: list[float], *,
                 z_threshold: float = Z_THRESHOLD,
                 min_rel: float = MIN_REL,
                 noise_floor: float = 0.0,
                 min_seg: int = MIN_SEG) -> list[dict]:
    """Indices where the series steps to a new level, by recursive
    binary segmentation.  Each entry is ``{index, before_mean,
    after_mean, delta, delta_pct}`` — ``index`` is the first point of
    the new regime.  Empty list on short or steady series."""
    steps: list[dict] = []
    scale = robust_scale(values)
    # a perfectly flat (deterministic-counter) series has scale 0:
    # fall back to a sliver of the mean so a genuine step still
    # registers while identical values never do
    if scale <= 0:
        scale = max(abs(_mean(values)) * 1e-6, 1e-12)
    scale = max(scale, 1e-12)

    def segment(lo: int, hi: int) -> None:
        seg = values[lo:hi]
        if len(seg) < 2 * min_seg:
            return
        best_split, best_stat = 0, 0.0
        for split in range(min_seg, len(seg) - min_seg + 1):
            stat = _contrast(seg, split, scale)
            if stat > best_stat:
                best_split, best_stat = split, stat
        if not best_split or best_stat < z_threshold:
            return
        before = _mean(seg[:best_split])
        after = _mean(seg[best_split:])
        delta = after - before
        pooled = abs(_mean(seg)) or 1.0
        if abs(delta) < max(min_rel * pooled, noise_floor):
            return
        steps.append({
            "index": lo + best_split,
            "before_mean": round(before, 6),
            "after_mean": round(after, 6),
            "delta": round(delta, 6),
            "delta_pct": round(delta / before * 100, 1)
            if before else 0.0,
        })
        segment(lo, lo + best_split)
        segment(lo + best_split, hi)

    segment(0, len(values))
    steps.sort(key=lambda s: s["index"])
    return steps


def detect_history(history: list[dict],
                   metric: str = "wall_s", *,
                   z_threshold: float = Z_THRESHOLD,
                   min_rel: float = MIN_REL) -> list[dict]:
    """Run :func:`detect_steps` over every case series of ``metric``
    in a loaded ``BENCH_history.jsonl`` (list of ``{at, env,
    metrics}`` lines).  Steps gain ``name``, ``metric``, ``at`` and
    the ``git_rev`` of the entry where the new regime starts.  The
    per-case noise floor is the median recorded ``iqr`` when the
    history carries repeat stats (timing jitter the detector must not
    flag)."""
    series: dict[str, list[tuple[int, float, dict]]] = {}
    for i, entry in enumerate(history):
        for name, metrics in (entry.get("metrics") or {}).items():
            value = metrics.get(metric)
            if value is None:
                continue
            series.setdefault(name, []).append((i, float(value), entry))
    out: list[dict] = []
    for name in sorted(series):
        points = series[name]
        values = [v for _, v, _ in points]
        iqrs = [float(entry.get("metrics", {}).get(name, {})
                      .get("iqr") or 0.0)
                for _, _, entry in points]
        noise_floor = _median([q for q in iqrs if q > 0]) \
            if any(q > 0 for q in iqrs) else 0.0
        for step in detect_steps(values, z_threshold=z_threshold,
                                 min_rel=min_rel,
                                 noise_floor=noise_floor):
            idx, _, entry = points[step["index"]]
            env = entry.get("env") or {}
            out.append({"name": name, "metric": metric,
                        "entry": idx,
                        "at": entry.get("at"),
                        "git_rev": env.get("git_rev"),
                        **step})
    return out


def render_steps(steps: list[dict],
                 metric: Optional[str] = None) -> str:
    """Human-readable step list for ``bench trend --changepoints``."""
    if not steps:
        return "no changepoints detected" \
               + (f" ({metric})" if metric else "")
    lines = []
    for s in steps:
        rev = (s.get("git_rev") or "?")[:12]
        sign = "+" if s["delta"] >= 0 else ""
        lines.append(
            f"[STEP] {s['name']} {s['metric']}: "
            f"{sign}{s['delta_pct']:.1f}% at entry {s['entry']} "
            f"({s['before_mean']:g} -> {s['after_mean']:g}, "
            f"git {rev})")
    return "\n".join(lines)
