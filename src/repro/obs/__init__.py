"""Structured observability for the analysis pipeline (zero-dep).

Three concerns, one package:

* :mod:`repro.obs.tracing` — hierarchical wall-clock spans around the
  §5.4 pipeline steps and the model checker's DFS phases;
* :mod:`repro.obs.metrics` — thread-safe counters/gauges/histograms
  (states/sec, canonical-hash cache hits, ample-set reduction ratio,
  per-theorem exclusion counts, …);
* :mod:`repro.obs.provenance` — per-action justification chains naming
  the theorem (5.1/5.3/5.4/5.5, …) behind every mover classification;
* :mod:`repro.obs.events` — a schema-versioned, bounded structured
  event stream (ring buffer + optional JSONL sink) fed by the model
  checker, the scheduler, and the dynamic checker;
* :mod:`repro.obs.chrometrace` — span-tree + event-stream export in
  Chrome trace-event format (``--trace-out``, loadable in Perfetto);
* :mod:`repro.obs.profile` — deterministic work-counter profiler
  (scoped regions + ``sys.setprofile`` sampling fallback, ranked
  hotspot tables, ``--profile``);
* :mod:`repro.obs.regress` — the bench regression watchdog
  (``python -m repro.obs.regress``);
* :mod:`repro.obs.report_html` — the ``repro report`` self-contained
  HTML artifact (trace + metrics + hotspots + coverage + lint +
  bench trajectory + run ledger);
* :mod:`repro.obs.ledger` — the persistent run ledger: one schema-
  versioned manifest (argv, seed, git rev, outcome, classification
  summary, content-addressed artifacts, crash bundle) per CLI
  invocation under ``.repro/runs/``, plus the hooks the explorer and
  scheduler feed (``repro runs``, ``repro replay``);
* :mod:`repro.obs.rundiff` — cross-run drift diffing over ledger
  manifests (``repro runs diff``).

:mod:`repro.obs.export` serializes analysis/model-checking results (and
the ``BENCH_*.json`` benchmark records) against small self-validated
JSON schemas; :mod:`repro.obs.config` reads the ``REPRO_TRACE`` /
``REPRO_METRICS`` / ``REPRO_LEDGER`` environment switches.

``export`` is imported lazily (it reaches back into
:mod:`repro.analysis`); everything else here is import-cycle-free.
"""

from repro.obs.config import ObsConfig
from repro.obs.events import EventStream
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry)
from repro.obs.profile import NULL_PROFILER, Profiler, Sampler
from repro.obs.provenance import Justification
from repro.obs.tracing import NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "EventStream",
    "Gauge",
    "Histogram",
    "Justification",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_TRACER",
    "ObsConfig",
    "Profiler",
    "Sampler",
    "Span",
    "Tracer",
]
