"""Environment-variable configuration for the observability layer.

Switches mirroring the CLI flags:

* ``REPRO_TRACE``   — enable span tracing (as if ``--trace``);
* ``REPRO_METRICS`` — enable the metrics report (as if ``--metrics``);
* ``REPRO_PROFILE`` — enable the work-counter profiler (as if
  ``--profile``); the value ``sample`` additionally turns on the
  ``sys.setprofile`` sampling fallback (as if ``--profile-sample``).

Values ``""``, ``"0"``, ``"false"``, ``"no"``, ``"off"`` (any case)
mean *off*; anything else means *on*.  CLI flags OR into the
environment settings — either source can enable a feature.

The persistent run ledger (:mod:`repro.obs.ledger`) is the one
default-*on* surface: ``REPRO_LEDGER=0`` disables recording, and
``REPRO_LEDGER_DIR`` moves the ledger root away from the default
``.repro/runs``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping, Optional

_FALSY = {"", "0", "false", "no", "off"}


def _truthy(value: Optional[str]) -> bool:
    return value is not None and value.strip().lower() not in _FALSY


@dataclass
class ObsConfig:
    """Resolved observability switches."""

    trace: bool = False
    metrics: bool = False
    profile: bool = False
    profile_sample: bool = False
    #: persistent run ledger (default ON; REPRO_LEDGER=0 disables)
    ledger: bool = True
    #: ledger root directory (REPRO_LEDGER_DIR overrides)
    ledger_dir: str = ".repro/runs"

    @classmethod
    def from_env(cls, env: Optional[Mapping[str, str]] = None
                 ) -> "ObsConfig":
        env = os.environ if env is None else env
        prof = env.get("REPRO_PROFILE")
        sample = _truthy(prof) and prof.strip().lower() == "sample"
        raw_ledger = env.get("REPRO_LEDGER")
        return cls(trace=_truthy(env.get("REPRO_TRACE")),
                   metrics=_truthy(env.get("REPRO_METRICS")),
                   profile=_truthy(prof),
                   profile_sample=sample,
                   ledger=True if raw_ledger is None
                   else _truthy(raw_ledger),
                   ledger_dir=env.get("REPRO_LEDGER_DIR")
                   or ".repro/runs")

    def with_flags(self, trace: bool = False, metrics: bool = False,
                   profile: bool = False,
                   profile_sample: bool = False) -> "ObsConfig":
        """OR command-line flags into the env-derived settings
        (``--profile-sample`` implies ``--profile``)."""
        return ObsConfig(
            trace=self.trace or trace,
            metrics=self.metrics or metrics,
            profile=self.profile or profile or profile_sample,
            profile_sample=self.profile_sample or profile_sample,
            ledger=self.ledger,
            ledger_dir=self.ledger_dir)
