"""Central registry of per-subsystem schema versions.

Every versioned artifact the observability stack emits — event
streams, bench files, state-graph captures, profiles, counterexample
documents, run-ledger manifests — stamps a ``"v"`` field so consumers
can reject incompatible layouts.  Before this module the version
literals were scattered across their emitting modules (and had already
drifted once: the ledger reported ``bench: 1`` while the bench emitter
wrote v2 files).  This registry is now the single source of truth:

* emitting modules import their constant from here
  (``events.SCHEMA_VERSION is schemas.EVENTS``);
* :func:`repro.obs.ledger.schema_versions` — the block recorded in
  every run manifest and ``run_meta`` — is :func:`registry` verbatim;
* ``repro report --self-check`` calls :func:`check_registry`, which
  re-imports the live constants from each emitting module and fails
  loudly if any module ever re-diverges.

Bump a constant here when (and only when) the corresponding document
layout changes incompatibly.
"""

from __future__ import annotations

#: structured event stream records (:mod:`repro.obs.events`)
EVENTS = 1

#: v2 wrapped bench run documents (:mod:`repro.obs.export`); bare v1
#: record arrays carry no stamp and remain accepted everywhere
BENCH = 2

#: JSONL state-graph capture artifacts (:mod:`repro.obs.graph`)
GRAPH = 1

#: ranked-hotspot profile documents (:mod:`repro.obs.profile`)
PROFILE = 1

#: run-ledger manifests and crash bundles (:mod:`repro.obs.ledger`)
MANIFEST = 1

#: lint run documents (``repro lint --json``)
LINT = 1

#: annotated counterexample documents (:mod:`repro.mc.cex`)
CEX = 1

#: per-statement source heatmap documents (:mod:`repro.obs.heatmap`)
HEATMAP = 1

#: content-addressed procedure/program summary records
#: (:mod:`repro.analysis.summaries.store`)
#: v2: name-insensitive proc slices (no pretty-printed text / lint
#: messages), full-key filenames, callee-closure interference
SUMMARY = 2

#: differential-profiling attribution documents
#: (:mod:`repro.obs.perfdiff` — ``repro perf diff --json`` and the
#: ``PERFDIFF_attribution.json`` artifact the watchdog auto-emits)
PERFDIFF = 1

#: fleet merge-summary documents and worker spool layout
#: (:mod:`repro.obs.fleet` — per-worker telemetry spools and the
#: cross-process aggregator behind ``--jobs``)
FLEET = 1


def registry() -> dict:
    """``{subsystem: version}`` for every versioned document schema —
    the block stamped into run manifests and ``run_meta``."""
    return {
        "events": EVENTS,
        "bench": BENCH,
        "graph": GRAPH,
        "profile": PROFILE,
        "manifest": MANIFEST,
        "lint": LINT,
        "cex": CEX,
        "heatmap": HEATMAP,
        "summary": SUMMARY,
        "perfdiff": PERFDIFF,
        "fleet": FLEET,
    }


def check_registry() -> list[str]:
    """Cross-check the registry against the live constants of every
    emitting module (empty list = consistent).  ``repro report
    --self-check`` runs this so CI notices the moment a module grows
    a local version literal again."""
    from repro.analysis.summaries import store as summary_store
    from repro.mc import cex
    from repro.obs import (events, fleet, graph, heatmap, ledger,
                           perfdiff, profile)
    from repro.obs.export import BENCH_SCHEMA_VERSION

    live = {
        "events": events.SCHEMA_VERSION,
        "bench": BENCH_SCHEMA_VERSION,
        "graph": graph.SCHEMA_VERSION,
        "profile": profile.PROFILE_VERSION,
        "manifest": ledger.SCHEMA_VERSION,
        "cex": cex.SCHEMA_VERSION,
        "heatmap": heatmap.SCHEMA_VERSION,
        "summary": summary_store.SCHEMA_VERSION,
        "perfdiff": perfdiff.SCHEMA_VERSION,
        "fleet": fleet.SCHEMA_VERSION,
    }
    problems = []
    reg = registry()
    for name, version in live.items():
        if reg.get(name) != version:
            problems.append(
                f"schema registry drift: {name} registry={reg.get(name)}"
                f" module={version}")
    return problems
