"""Source-level state-space heatmaps.

The explorer keeps always-on per-statement counters — for every
explored transition that executed CFG node ``uid``: how many times it
ran (*visits*), how many of those runs were a context switch (the
scheduled thread differed from the thread that took the parent step —
*switches*, a direct measure of interleaving pressure at that
statement), and which threads ever ran it.  The counters cost one dict
operation per transition, noise next to the canonical-hash walk the
same loop iteration performs, so they need no flag.

This module turns those raw ``[[uid, visits, switches, tid_mask]]``
rows into a *source overlay*: each CFG uid is resolved back to its
procedure, one-line source text (:func:`repro.mc.cex.describe_node`),
and — when an analysis result is supplied — the mover classification
the §5.4 inference assigned to that line (reusing the textual matcher
counterexample explanations use).  The HTML report renders the overlay
as the "State space" section: statement text × visit intensity ×
mover class, the localization layer repair tools need.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.schemas import HEATMAP as SCHEMA_VERSION


def uid_annotations(interp, analysis=None,
                    variant_interp=None) -> dict[int, dict]:
    """Map every CFG node uid to ``{proc, text, mover}``.

    ``mover`` is the static classification (``"R"|"L"|"B"|"N"``) when
    ``analysis`` covers the statement, ``"B"`` for pure control flow
    (Thm 3.1), else None (no analysis / no textual match)."""
    from repro.mc.cex import _CONTROL_KINDS, _ProcIndex, describe_node

    indexes: dict[str, _ProcIndex] = {}
    if analysis is not None:
        indexes = {name: _ProcIndex(verdict)
                   for name, verdict in analysis.verdicts.items()}
    out: dict[int, dict] = {}
    for source in (interp, variant_interp):
        if source is None:
            continue
        for proc_name, cfg in source.cfgs.items():
            index = indexes.get(proc_name)
            for node in cfg.nodes:
                text = describe_node(node)
                mover: Optional[str] = None
                if node.kind in _CONTROL_KINDS:
                    mover = "B"
                elif index is not None:
                    la = index.match(text)
                    # statements the variants elided contribute no
                    # shared action: both-mover by Thm 3.1
                    mover = la.mover if la is not None else "B"
                out[node.uid] = {"proc": proc_name, "text": text,
                                 "mover": mover}
    return out


def mover_fn(annotations: dict[int, dict]
             ) -> Callable[[Optional[int]], Optional[str]]:
    """A uid → mover lookup suitable for
    :class:`repro.obs.graph.GraphWriter`'s ``mover_of``."""
    def mover_of(uid: Optional[int]) -> Optional[str]:
        if uid is None:
            return None
        record = annotations.get(uid)
        return record["mover"] if record is not None else None
    return mover_of


def build_heatmap(stmt_heat: list, annotations: dict[int, dict],
                  annotated: bool = True) -> dict:
    """Assemble the schema-versioned heatmap document from the
    explorer's raw rows (``metrics["mc.stmt_heat"]``).

    Rows are ordered by procedure then uid — source order within a
    procedure — and uids the annotation map does not know (e.g. a
    variant interp was live but not passed here) still appear, with
    null proc/text."""
    rows = []
    for uid, visits, switches, threads in stmt_heat:
        meta = annotations.get(uid) or {"proc": None, "text": None,
                                        "mover": None}
        rows.append({"uid": uid, "proc": meta["proc"],
                     "text": meta["text"], "mover": meta["mover"],
                     "visits": visits, "switches": switches,
                     "threads": threads})
    rows.sort(key=lambda r: (r["proc"] or "~", r["uid"]))
    return {"v": SCHEMA_VERSION, "annotated": annotated,
            "total_visits": sum(r["visits"] for r in rows),
            "rows": rows}
