"""Unified ``repro report`` HTML artifact (zero-dep, self-contained).

Aggregates the JSON artifacts the other observability surfaces write —
analysis documents (``repro analyze --json``), MC documents
(``repro mc --json``), lint reports (``repro lint --json``), event
streams (``--events-out`` JSONL), bench records
(``benchmarks/out/BENCH_*.json`` + committed baselines) and the
append-only ``REGRESS_history.jsonl`` perf trajectory — into ONE HTML
file with no external assets: styles are one inline ``<style>`` block
and every chart is inline SVG, so the artifact can be attached to CI,
mailed, or opened from ``file://`` with nothing else present.

Sections (each ``<section id="sec-NAME">``, see :data:`SECTIONS`):

* ``overview``  — what was aggregated, headline verdicts/violations;
* ``trace``     — per-phase span trees from analysis/MC documents;
* ``metrics``   — flat counter/gauge tables;
* ``hotspots``  — ranked profiler tables (+ share bar chart);
* ``coverage``  — depth histogram + frontier-size chart per MC run;
* ``statespace`` — graph-capture analytics (``--graph-out`` JSONL:
  depth layers, branching, POR reduction) plus the always-on
  source-level statement heatmap embedded in MC documents;
* ``lint``      — findings grouped by target;
* ``summary``   — incremental-analysis summary-cache traffic
  (``repro summaries canary --stats-out`` / store stats documents):
  per-program hit/miss rows and store totals;
* ``crossval``  — preformatted experiment/cross-validation tables;
* ``bench``     — baseline vs fresh comparison and the regression
  history sparkline;
* ``trend``     — the perf trajectory: per-record sparklines + line
  charts over the append-only ``BENCH_history.jsonl`` written by
  ``repro bench run`` (a placeholder, never dropped, when absent);
* ``runs``      — the persistent run ledger: one row per recorded
  invocation (pass the ledger root, e.g. ``.repro/runs``);
* ``forensics`` — perf-regression forensics: differential-profiling
  attribution documents (``repro perf diff --json`` or the
  ``PERFDIFF_attribution.json`` the watchdog auto-writes on a gate
  failure) with per-region delta bars, plus changepoint-annotated
  trajectory charts over the bench history.

Profiler documents carrying a collapsed-stack ``folded`` view
additionally render an inline SVG flame chart in ``hotspots``.  Bench
inputs may be legacy bare record arrays or v2 ``{v, env, records}``
run documents (``repro bench run``) — both are accepted.

Inputs are classified by *shape*, not by filename (see
:func:`classify`), so ``repro report out/*.json benchmarks/out`` just
works.  :func:`check_html` verifies a rendered artifact contains every
section (used by the HTML test and by ``repro report --self-check``,
which renders an embedded fixture and exits non-zero on any missing
section — a CI canary that the generator and checker stay in sync).
"""

from __future__ import annotations

import html as _html
import json
import pathlib
from dataclasses import dataclass, field
from typing import Optional, Union

#: version stamp embedded in the artifact's <meta> generator tag
REPORT_VERSION = 1

#: required section ids; check_html() fails on any that is missing
SECTIONS = ("overview", "trace", "metrics", "hotspots", "coverage",
            "statespace", "lint", "summary", "crossval", "bench",
            "trend", "runs", "fleet", "forensics")


# -- input collection ----------------------------------------------------------

@dataclass
class ReportInputs:
    """Everything the renderer may aggregate.  Each doc list holds
    ``(label, doc)`` pairs; missing inputs render as an explanatory
    placeholder, never as a dropped section."""

    analyses: list[tuple] = field(default_factory=list)
    mcs: list[tuple] = field(default_factory=list)
    lints: list[tuple] = field(default_factory=list)
    events: list[tuple] = field(default_factory=list)
    bench_fresh: dict = field(default_factory=dict)
    bench_baseline: dict = field(default_factory=dict)
    history: list[dict] = field(default_factory=list)
    bench_history: list[dict] = field(default_factory=list)
    tables: list[tuple] = field(default_factory=list)  # (label, text)
    runs: list[dict] = field(default_factory=list)     # ledger manifests
    graphs: list[tuple] = field(default_factory=list)  # graph captures
    summaries: list[tuple] = field(default_factory=list)  # cache stats
    perfdiffs: list[tuple] = field(default_factory=list)  # attributions
    fleets: list[tuple] = field(default_factory=list)  # merge summaries


def classify(label: str, doc) -> Optional[str]:
    """Which input bucket a loaded JSON document belongs to, from its
    shape: ``analysis`` | ``mc`` | ``lint`` | ``bench`` | ``events``;
    None when unrecognized."""
    if isinstance(doc, list):
        if all(isinstance(e, dict) and "kind" in e and "seq" in e
               for e in doc):
            return "events" if doc else None
        if all(isinstance(r, dict) and "wall_s" in r and "name" in r
               for r in doc):
            return "bench" if doc else None
        return None
    if not isinstance(doc, dict):
        return None
    if "run_id" in doc and "argv" in doc and "outcome" in doc:
        return "manifest"
    if doc.get("kind") == "summary-stats":
        return "summary"
    if doc.get("kind") == "perfdiff":
        return "perfdiff"
    if doc.get("kind") == "fleet":
        return "fleet"
    if "procedures" in doc and "all_atomic" in doc:
        return "analysis"
    if "mode" in doc and "states" in doc and "transitions" in doc:
        return "mc"
    if "targets" in doc or ("findings" in doc and "summary" in doc):
        return "lint"
    if isinstance(doc.get("records"), list) and "env" in doc:
        return "bench"          # v2 bench run document
    return None


def _read_jsonl(path: pathlib.Path) -> list[dict]:
    out = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out


def collect_inputs(paths: list[Union[str, pathlib.Path]],
                   baseline_dir: Optional[Union[str, pathlib.Path]]
                   = None) -> ReportInputs:
    """Load and classify input files.  Directories are scanned one
    level deep for ``*.json`` / ``*.jsonl`` / ``*.txt``; inside a
    scanned directory, ``BENCH_*.json`` become fresh bench records,
    ``REGRESS_history.jsonl`` the perf trajectory, and any child
    directory holding a ``manifest.json`` a run-ledger entry (so
    passing ``.repro/runs`` populates the Runs section).
    ``baseline_dir`` (e.g. ``benchmarks/baselines``) supplies the
    comparison side.  Paths that do not exist are skipped, so a CI
    job may always pass ``.repro/runs`` even before any run."""
    inputs = ReportInputs()
    files: list[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.extend(sorted(
                p for p in path.iterdir()
                if p.suffix in (".json", ".jsonl", ".txt")))
            files.extend(sorted(
                p / "manifest.json" for p in path.iterdir()
                if (p / "manifest.json").is_file()))
            # a --jobs run's merge summary is stored as a hashed
            # artifact beside its manifest — surface it in the report
            files.extend(sorted(
                f for p in path.iterdir()
                for f in sorted((p / "artifacts").glob("*-fleet.json"))
                if f.is_file()))
        elif path.exists():
            files.append(path)
    for path in files:
        label = path.name
        if path.suffix == ".txt":
            inputs.tables.append((label, path.read_text()))
            continue
        if path.suffix == ".jsonl":
            records = _read_jsonl(path)
            if records and isinstance(records[0], dict) \
                    and records[0].get("kind") == "graph.header":
                from repro.obs import graph as _graph
                try:
                    inputs.graphs.append(
                        (label, _graph.from_records(records, label)))
                except ValueError:
                    pass        # unreadable capture: skip, don't crash
                continue
            if label == "BENCH_history.jsonl" or (records and all(
                    isinstance(r, dict) and "metrics" in r
                    and "at" in r for r in records)):
                inputs.bench_history.extend(records)
            elif label == "REGRESS_history.jsonl" or all(
                    "status" in r and "at" in r for r in records):
                inputs.history.extend(records)
            else:
                inputs.events.append((label, records))
            continue
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError:
            continue
        kind = classify(label, doc)
        if kind == "manifest":
            inputs.runs.append(doc)
        elif kind == "analysis":
            inputs.analyses.append((label, doc))
        elif kind == "mc":
            inputs.mcs.append((label, doc))
        elif kind == "lint":
            for target in doc.get("targets", [doc]):
                inputs.lints.append((label, target))
        elif kind == "bench":
            from repro.obs.export import bench_records
            inputs.bench_fresh[label] = bench_records(doc)
        elif kind == "events":
            inputs.events.append((label, doc))
        elif kind == "summary":
            inputs.summaries.append((label, doc))
        elif kind == "perfdiff":
            inputs.perfdiffs.append((label, doc))
        elif kind == "fleet":
            inputs.fleets.append((label, doc))
    if baseline_dir is not None:
        from repro.obs.export import bench_records
        base = pathlib.Path(baseline_dir)
        if base.is_dir():
            for path in sorted(base.glob("BENCH_*.json")):
                try:
                    inputs.bench_baseline[path.name] = bench_records(
                        json.loads(path.read_text()))
                except json.JSONDecodeError:
                    continue
    return inputs


# -- SVG helpers ---------------------------------------------------------------

def _esc(text) -> str:
    return _html.escape(str(text), quote=True)


def _svg_bars(pairs: list[tuple], width: int = 460, height: int = 140,
              color: str = "#4878a8", title: str = "") -> str:
    """Vertical bar chart over ``(label, value)`` pairs; labels land
    in <title> tooltips so the chart stays readable at any count."""
    if not pairs:
        return "<p class='empty'>(no data)</p>"
    top = max(v for _, v in pairs) or 1
    pad, axis = 4, 18
    plot_h = height - axis
    bar_w = max(1.0, (width - pad * 2) / len(pairs) - 1)
    parts = [f"<svg viewBox='0 0 {width} {height}' class='chart' "
             f"role='img' aria-label='{_esc(title)}'>"]
    for i, (label, value) in enumerate(pairs):
        h = plot_h * (value / top)
        x = pad + i * (bar_w + 1)
        parts.append(
            f"<rect x='{x:.1f}' y='{plot_h - h:.1f}' "
            f"width='{bar_w:.1f}' height='{max(h, 0.5):.1f}' "
            f"fill='{color}'><title>{_esc(label)}: {_esc(value)}"
            f"</title></rect>")
    first, last = pairs[0][0], pairs[-1][0]
    parts.append(f"<text x='{pad}' y='{height - 4}' "
                 f"class='tick'>{_esc(first)}</text>")
    parts.append(f"<text x='{width - pad}' y='{height - 4}' "
                 f"text-anchor='end' class='tick'>{_esc(last)}</text>")
    parts.append("</svg>")
    return "".join(parts)


def _svg_line(points: list[tuple], width: int = 460, height: int = 120,
              color: str = "#2e7d32", title: str = "") -> str:
    """Polyline chart over ``(x, y)`` points (x need not be uniform)."""
    if not points:
        return "<p class='empty'>(no data)</p>"
    xs = [float(x) for x, _ in points]
    ys = [float(y) for _, y in points]
    x0, x1 = min(xs), max(xs)
    y1 = max(ys) or 1.0
    pad = 4
    span_x = (x1 - x0) or 1.0
    plot_w, plot_h = width - pad * 2, height - pad * 2

    def px(x: float) -> float:
        return pad + plot_w * (x - x0) / span_x

    def py(y: float) -> float:
        return pad + plot_h * (1 - y / y1)

    if len(points) == 1:
        coords = f"{px(xs[0]):.1f},{py(ys[0]):.1f}"
        body = (f"<circle cx='{px(xs[0]):.1f}' cy='{py(ys[0]):.1f}' "
                f"r='2.5' fill='{color}'/>")
    else:
        coords = " ".join(f"{px(x):.1f},{py(y):.1f}"
                          for x, y in zip(xs, ys))
        body = (f"<polyline points='{coords}' fill='none' "
                f"stroke='{color}' stroke-width='1.5'/>")
    return (f"<svg viewBox='0 0 {width} {height}' class='chart' "
            f"role='img' aria-label='{_esc(title)}'>{body}"
            f"<title>{_esc(title)} (max {y1:g})</title></svg>")


def _svg_hbars(pairs: list[tuple], width: int = 460,
               color: str = "#a85948", title: str = "") -> str:
    """Horizontal share bars for the hotspot table (one row each)."""
    if not pairs:
        return "<p class='empty'>(no data)</p>"
    row_h, label_w = 16, 190
    height = row_h * len(pairs) + 4
    top = max(v for _, v in pairs) or 1
    parts = [f"<svg viewBox='0 0 {width} {height}' class='chart' "
             f"role='img' aria-label='{_esc(title)}'>"]
    for i, (label, value) in enumerate(pairs):
        y = 2 + i * row_h
        w = (width - label_w - 8) * (value / top)
        parts.append(
            f"<text x='{label_w - 4}' y='{y + 11}' text-anchor='end' "
            f"class='tick'>{_esc(label)}</text>"
            f"<rect x='{label_w}' y='{y + 2}' width='{max(w, 0.5):.1f}'"
            f" height='{row_h - 5}' fill='{color}'>"
            f"<title>{_esc(label)}: {value:g}</title></rect>")
    parts.append("</svg>")
    return "".join(parts)


_FLAME_COLORS = ("#d98a5e", "#c9734a", "#e0a070", "#b86a48",
                 "#d67d52", "#cc8b63")


def _svg_flame(folded: dict, width: int = 460,
               title: str = "") -> str:
    """Icicle-style flame chart over a collapsed-stack profile
    (``{"outer;inner": wall_s}``).  Frame widths are proportional to
    wall time within the parent; region scopes are cumulative, so a
    parent frame spans at least its children."""
    if not folded:
        return "<p class='empty'>(no folded data)</p>"
    # build the nesting tree: name -> [own_cumulative_s, children]
    root: dict = {}
    for path, wall in sorted(folded.items()):
        level = root
        parts = path.split(";")
        for i, part in enumerate(parts):
            node = level.setdefault(part, [0.0, {}])
            if i == len(parts) - 1:
                node[0] += float(wall)
            level = node[1]
    row_h = 16

    def depth_of(level: dict) -> int:
        return 1 + max((depth_of(n[1]) for n in level.values()),
                       default=0) if level else 0

    height = row_h * depth_of(root) + 2
    total = sum(n[0] for n in root.values()) or 1.0
    parts_out = [f"<svg viewBox='0 0 {width} {height}' class='chart' "
                 f"role='img' aria-label='{_esc(title)}'>"]

    def emit(level: dict, x: float, w: float, depth: int,
             budget: float) -> None:
        for i, (name, (value, children)) in enumerate(
                sorted(level.items(), key=lambda kv: -kv[1][0])):
            fw = min(w, w * (value / budget)) if budget > 0 else 0.0
            if fw < 0.5:
                continue
            color = _FLAME_COLORS[(depth + i) % len(_FLAME_COLORS)]
            y = 1 + depth * row_h
            parts_out.append(
                f"<rect x='{x:.1f}' y='{y}' width='{fw:.1f}' "
                f"height='{row_h - 2}' fill='{color}' rx='1'>"
                f"<title>{_esc(name)}: {value * 1000:.2f} ms"
                f"</title></rect>")
            if fw > 40:
                parts_out.append(
                    f"<text x='{x + 3:.1f}' y='{y + 11}' "
                    f"class='tick'>{_esc(name)}</text>")
            if children:
                emit(children, x, fw, depth + 1, value or budget)
            x += fw

    emit(root, 2.0, width - 4.0, 0, total)
    parts_out.append("</svg>")
    return "".join(parts_out)


# -- section renderers ---------------------------------------------------------

def _table(headers: list[str], rows: list[list],
           cls: str = "") -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in row) + "</tr>"
        for row in rows)
    return (f"<table class='{cls}'><thead><tr>{head}</tr></thead>"
            f"<tbody>{body}</tbody></table>")


def _placeholder(what: str, hint: str) -> str:
    return (f"<p class='empty'>no {_esc(what)} artifacts supplied "
            f"&mdash; {_esc(hint)}</p>")


def _sec(name: str, title: str, body: str) -> str:
    return (f"<section id='sec-{name}'><h2>{_esc(title)}</h2>"
            f"{body}</section>")


def _overview(inputs: ReportInputs) -> str:
    rows = []
    for label, doc in inputs.analyses:
        verdict = "all atomic" if doc.get("all_atomic") else \
            "NOT all atomic"
        rows.append(["analysis", label,
                     f"{len(doc.get('procedures', []))} procedure(s), "
                     f"{verdict}"])
    for label, doc in inputs.mcs:
        out = (f"mode={doc.get('mode')} states={doc.get('states')} "
               f"transitions={doc.get('transitions')}")
        if doc.get("violation"):
            out += f" VIOLATION: {doc['violation']}"
        rows.append(["mc", label, out])
    for label, doc in inputs.lints:
        summary = doc.get("summary", {})
        rows.append(["lint", f"{label}:{doc.get('target', '?')}",
                     f"{summary.get('errors', 0)} error(s), "
                     f"{summary.get('warnings', 0)} warning(s)"])
    for name, records in sorted(inputs.bench_fresh.items()):
        rows.append(["bench", name, f"{len(records)} record(s)"])
    for label, events in inputs.events:
        rows.append(["events", label, f"{len(events)} event(s)"])
    for label, doc in inputs.graphs:
        summary = doc.get("summary") or {}
        rows.append(["graph", label,
                     f"{summary.get('nodes', len(doc['nodes']))} "
                     f"node(s), "
                     f"{summary.get('edges', len(doc['edges']))} "
                     f"edge(s), "
                     f"{summary.get('pruned', len(doc['pruned']))} "
                     f"pruned"])
    for label, doc in inputs.perfdiffs:
        drifted = doc.get("drifted") or []
        rows.append(["perfdiff", label,
                     f"{len(doc.get('rows', []))} region(s), "
                     + (f"DRIFT: {', '.join(drifted)}" if drifted
                        else "no attributed drift")])
    for label, _text in inputs.tables:
        rows.append(["table", label, "preformatted"])
    if inputs.runs:
        rows.append(["runs", "ledger",
                     f"{len(inputs.runs)} recorded run(s)"])
    if inputs.history:
        rows.append(["history", "REGRESS_history.jsonl",
                     f"{len(inputs.history)} check(s)"])
    if inputs.bench_history:
        rows.append(["trend", "BENCH_history.jsonl",
                     f"{len(inputs.bench_history)} bench run(s)"])
    if not rows:
        return _placeholder(
            "input", "pass JSON artifacts or a directory such as "
            "benchmarks/out")
    return _table(["kind", "source", "summary"], rows)


def _span_rows(span: dict, depth: int, rows: list) -> None:
    rows.append([(" " * depth) + span.get("name", "?"),
                 f"{span.get('duration_s', 0) * 1000:.2f}"])
    for child in span.get("children", []):
        _span_rows(child, depth + 1, rows)


def _trace(inputs: ReportInputs) -> str:
    parts = []
    for label, doc in inputs.analyses + inputs.mcs:
        spans = doc.get("trace") or doc.get("spans") or []
        if not spans:
            continue
        rows: list[list] = []
        for span in spans:
            _span_rows(span, 0, rows)
        parts.append(f"<h3>{_esc(label)}</h3>"
                     + _table(["span", "wall (ms)"], rows, "mono"))
    if not parts:
        return _placeholder(
            "trace", "re-run with --trace (or REPRO_TRACE=1) and "
            "--json to embed span trees")
    return "".join(parts)


def _metrics(inputs: ReportInputs) -> str:
    parts = []
    for label, doc in inputs.analyses + inputs.mcs:
        metrics = doc.get("metrics") or {}
        flat = [[k, v] for k, v in sorted(metrics.items())
                if not isinstance(v, (dict, list))]
        if not flat:
            continue
        parts.append(f"<h3>{_esc(label)}</h3>"
                     + _table(["metric", "value"], flat, "mono"))
    if not parts:
        return _placeholder(
            "metrics", "re-run with --metrics (or REPRO_METRICS=1) "
            "and --json")
    return "".join(parts)


def _hotspots(inputs: ReportInputs) -> str:
    parts = []
    for label, doc in inputs.analyses + inputs.mcs:
        profile = doc.get("profile") or {}
        spots = profile.get("hotspots") or []
        if not spots:
            continue
        top = spots[:12]
        parts.append(
            f"<h3>{_esc(label)}</h3>"
            + _svg_hbars([(s["name"], s["wall_s"] * 1000)
                          for s in top],
                         title=f"hotspot wall ms — {label}")
            + _table(["region", "wall (ms)", "share", "calls", "work"],
                     [[s["name"], f"{s['wall_s'] * 1000:.2f}",
                       f"{s.get('share', 0) * 100:.1f}%",
                       s["calls"], s["work"]] for s in spots],
                     "mono"))
        folded = profile.get("folded") or {}
        if folded:
            parts.append(
                "<h4>flame chart (collapsed region stacks)</h4>"
                + _svg_flame(folded, title=f"flame chart — {label}"))
        sampled = profile.get("sampled") or []
        if sampled:
            parts.append(
                "<h4>sampled functions</h4>"
                + _table(["function", "calls", "cum (ms)"],
                         [[s["name"], s["calls"],
                           f"{s['cum_s'] * 1000:.2f}"]
                          for s in sampled[:15]], "mono"))
    if not parts:
        return _placeholder(
            "profile", "re-run with --profile (or REPRO_PROFILE=1) "
            "and --json to embed ranked hotspot tables")
    return "".join(parts)


def _coverage(inputs: ReportInputs) -> str:
    parts = []
    for label, doc in inputs.mcs:
        metrics = doc.get("metrics") or {}
        hist = metrics.get("mc.depth_hist") or []
        frontier = metrics.get("mc.frontier_samples") or []
        depth = metrics.get("mc.depth") or {}
        if not (hist or frontier or depth):
            continue
        parts.append(f"<h3>{_esc(label)}</h3>")
        facts = [[k, metrics[k]] for k in (
            "mc.states", "mc.transitions", "mc.dedup_hit_rate",
            "mc.mem_peak_mb", "mc.max_depth",
            "mc.ample_reduction_ratio") if k in metrics]
        for key in ("mean", "p50", "p95", "p99"):
            if key in depth:
                facts.append([f"depth.{key}", depth[key]])
        if facts:
            parts.append(_table(["telemetry", "value"], facts, "mono"))
        if hist:
            parts.append("<h4>depth histogram (pushes per depth)</h4>"
                         + _svg_bars([(f"depth {d}", n)
                                      for d, n in hist],
                                     title=f"depth histogram {label}"))
        if frontier:
            parts.append(
                "<h4>frontier size over transitions</h4>"
                + _svg_line([(t, f) for t, f in frontier],
                            title=f"frontier size {label}"))
    # explorer.progress events also carry coverage
    for label, events in inputs.events:
        beats = [e for e in events
                 if e.get("kind") == "explorer.progress"]
        if beats:
            parts.append(
                f"<h3>{_esc(label)} (progress heartbeats)</h3>"
                + _svg_line([(e["elapsed_s"], e["states"])
                             for e in beats],
                            title=f"states over time {label}"))
    if not parts:
        return _placeholder(
            "coverage telemetry", "re-run repro mc --json (the "
            "explorer always embeds mc.depth_hist and "
            "mc.frontier_samples in its metrics)")
    return "".join(parts)


#: mover class -> badge color (mirrors the DOT export palette)
_MOVER_COLORS = {"R": "#2b8cbe", "L": "#e34a33", "B": "#31a354",
                 "N": "#756bb1"}


def _heat_rows(heatmap: dict) -> str:
    """Annotated-source overlay: statement text × visit intensity ×
    mover class, one row per executed CFG statement."""
    rows = heatmap.get("rows") or []
    if not rows:
        return "<p class='empty'>(no statements visited)</p>"
    peak = max(r.get("visits", 0) for r in rows) or 1
    parts = ["<table class='mono heat'><thead><tr><th>proc</th>"
             "<th>statement</th><th>mover</th><th>visits</th>"
             "<th></th><th>switches</th><th>threads</th></tr>"
             "</thead><tbody>"]
    for r in rows:
        visits = r.get("visits", 0)
        mover = r.get("mover")
        color = _MOVER_COLORS.get(mover or "", "#999")
        badge = (f"<span class='mover' style='background:{color}'>"
                 f"{_esc(mover)}</span>" if mover else "—")
        # heat shade: visit share as a background alpha on the text cell
        alpha = 0.08 + 0.72 * (visits / peak)
        text = r.get("text") or f"uid {r.get('uid')}"
        parts.append(
            f"<tr><td>{_esc(r.get('proc') or '?')}</td>"
            f"<td style='background:rgba(224,112,64,{alpha:.2f})'>"
            f"{_esc(text)}</td>"
            f"<td>{badge}</td>"
            f"<td>{visits:,}</td>"
            f"<td>{_esc('█' * max(1, round(12 * visits / peak)))}</td>"
            f"<td>{r.get('switches', 0):,}</td>"
            f"<td>{r.get('threads', 0)}</td></tr>")
    parts.append("</tbody></table>")
    return "".join(parts)


def _statespace(inputs: ReportInputs) -> str:
    """Graph-capture analytics + the source-level statement heatmap."""
    from repro.obs.graph import graph_stats
    parts = []
    for label, doc in inputs.graphs:
        stats = graph_stats(doc)
        parts.append(f"<h3>{_esc(label)} (graph capture, mode="
                     f"{_esc(doc['header'].get('mode', '?'))})</h3>")
        facts = [["nodes", f"{stats['nodes']:,}"
                  + (" (emission truncated by cap)"
                     if stats["truncated"] else "")],
                 ["edges", f"{stats['edges']:,}"],
                 ["pruned (POR)", f"{stats['pruned']:,}"],
                 ["POR reduction ratio",
                  f"{stats['por_reduction_ratio']:.1%}"],
                 ["max depth", stats["max_depth"]],
                 ["terminal states", f"{stats['terminal']:,}"],
                 ["quiescent states", f"{stats['quiescent']:,}"],
                 ["branching (min/mean/max)",
                  f"{stats['branching']['min']} / "
                  f"{stats['branching']['mean']} / "
                  f"{stats['branching']['max']}"]]
        parts.append(_table(["graph", "value"], facts, "mono"))
        if stats["depth_layers"]:
            parts.append(
                "<h4>depth layers (states first seen per depth)</h4>"
                + _svg_bars([(f"depth {d}", n)
                             for d, n in stats["depth_layers"]],
                            color="#6a51a3",
                            title=f"depth layers — {label}"))
        branching_hist = stats["branching"]["hist"]
        if branching_hist:
            parts.append(
                "<h4>branching factor (out-degree histogram)</h4>"
                + _svg_bars([(f"out-degree {k}", n)
                             for k, n in branching_hist],
                            color="#31a354",
                            title=f"branching — {label}"))
    for label, doc in inputs.mcs:
        heatmap = doc.get("heatmap") or {}
        if not heatmap.get("rows"):
            continue
        note = "" if heatmap.get("annotated") else \
            " — mover classes unavailable (analysis did not run)"
        parts.append(
            f"<h3>{_esc(label)} (statement heatmap, "
            f"{heatmap.get('total_visits', 0):,} visits){_esc(note)}"
            f"</h3>" + _heat_rows(heatmap))
    if not parts:
        return _placeholder(
            "state-space introspection", "re-run repro mc --json "
            "(embeds the statement heatmap) and/or with --graph-out "
            "capture.jsonl, then pass those artifacts")
    return "".join(parts)


def _lint(inputs: ReportInputs) -> str:
    docs = list(inputs.lints)
    for label, doc in inputs.analyses:
        if doc.get("lint"):
            docs.append((label, doc["lint"]))
    if not docs:
        return _placeholder(
            "lint", "re-run repro lint --json (or repro analyze "
            "--json, which embeds its lint run)")
    parts = []
    for label, doc in docs:
        summary = doc.get("summary", {})
        parts.append(
            f"<h3>{_esc(doc.get('target', label))} &mdash; "
            f"{summary.get('errors', 0)} error(s), "
            f"{summary.get('warnings', 0)} warning(s), "
            f"{summary.get('infos', 0)} info(s)</h3>")
        findings = doc.get("findings") or []
        if findings:
            parts.append(_table(
                ["severity", "rule", "where", "message"],
                [[f.get("severity"), f.get("rule"),
                  f"{f.get('proc', '')}:{f.get('line', 0)}",
                  f.get("message")] for f in findings], "mono"))
    return "".join(parts)


def _summary(inputs: ReportInputs) -> str:
    """Summary-cache traffic: per-program hit/miss rows from canary
    stats documents plus the store totals."""
    if not inputs.summaries:
        return _placeholder(
            "summary cache", "run repro summaries canary --stats-out "
            "FILE (or repro analyze --corpus) and pass the stats "
            "document")
    parts = []
    for label, doc in inputs.summaries:
        rows = doc.get("rows") or []
        stats = doc.get("stats") or doc
        if "ok" in doc:
            verdict = "PASS" if doc.get("ok") else "FAIL"
            cached = sum(1 for r in rows if r.get("cached"))
            parts.append(
                f"<h3>{_esc(label)} &mdash; warm-cache canary "
                f"{verdict}: {cached} of {len(rows)} program(s) "
                f"replayed from cache</h3>")
        else:
            parts.append(f"<h3>{_esc(label)}</h3>")
        if rows:
            hits = sum(r.get("hits", 0) for r in rows)
            misses = sum(r.get("misses", 0) for r in rows)
            invalidated = sum(r.get("invalidated", 0) for r in rows)
            parts.append(_svg_bars(
                [("proc hits", hits), ("proc misses", misses),
                 ("invalidated", invalidated)],
                title="summary-cache traffic"))
            parts.append(_table(
                ["program", "procs", "hits", "misses", "invalidated",
                 "cached", "drift"],
                [[r.get("label"), r.get("procs"), r.get("hits"),
                  r.get("misses"), r.get("invalidated"),
                  "yes" if r.get("cached") else "no",
                  r.get("drift", 0)] for r in rows], "mono"))
        parts.append(_table(
            ["store", "proc records", "program records", "bytes",
             "schema refused"],
            [[stats.get("root", "?"), stats.get("procs", 0),
              stats.get("programs", 0), stats.get("bytes", 0),
              stats.get("schema_refused", 0)]], "mono"))
    return "".join(parts)


def _crossval(inputs: ReportInputs) -> str:
    if not inputs.tables:
        return _placeholder(
            "cross-validation table", "save experiment output, e.g. "
            "python -m repro experiments crossval > crossval.txt, "
            "and pass the file (or its directory)")
    parts = []
    for label, text in inputs.tables:
        parts.append(f"<h3>{_esc(label)}</h3>"
                     f"<pre>{_esc(text.rstrip())}</pre>")
    return "".join(parts)


def _bench(inputs: ReportInputs) -> str:
    parts = []
    for name in sorted(set(inputs.bench_fresh)
                       | set(inputs.bench_baseline)):
        fresh = {r["name"]: r for r in inputs.bench_fresh.get(name, [])}
        base = {r["name"]: r
                for r in inputs.bench_baseline.get(name, [])}
        if not fresh and not base:
            continue
        rows = []
        for rec_name in sorted(set(fresh) | set(base)):
            f, b = fresh.get(rec_name), base.get(rec_name)
            delta = ""
            if f and b and b["wall_s"]:
                pct = (f["wall_s"] - b["wall_s"]) / b["wall_s"] * 100
                delta = f"{pct:+.1f}%"
            iqr_ms = ""
            if f and isinstance(f.get("stats"), dict):
                iqr_ms = f"{f['stats'].get('iqr', 0) * 1000:.2f}"
            rows.append([
                rec_name,
                f"{b['wall_s'] * 1000:.2f}" if b else "—",
                f"{f['wall_s'] * 1000:.2f}" if f else "—",
                delta, iqr_ms,
                f.get("mem_peak_mb", "") if f else "",
                f.get("dedup_hit_rate", "") if f else ""])
        parts.append(
            f"<h3>{_esc(name)}</h3>"
            + _table(["record", "baseline (ms)", "fresh (ms)",
                      "Δ wall", "iqr (ms)", "mem_peak_mb",
                      "dedup_hit_rate"],
                     rows, "mono"))
        chart = [(r["name"], r["wall_s"] * 1000)
                 for r in inputs.bench_fresh.get(name, [])]
        if chart:
            parts.append(_svg_bars(chart,
                                   title=f"fresh wall ms — {name}"))
    if inputs.history:
        parts.append(
            "<h3>regression history</h3>"
            + _svg_line(
                [(i, e.get("regressions", 0))
                 for i, e in enumerate(inputs.history)],
                color="#c62828",
                title="regressions per watchdog check")
            + _table(["#", "status", "regressions", "notes",
                      "compared"],
                     [[i, e.get("status"), e.get("regressions"),
                       e.get("notes"),
                       ", ".join(e.get("compared", []))]
                      for i, e in enumerate(inputs.history[-20:])],
                     "mono"))
    if not parts:
        return _placeholder(
            "bench", "pass benchmarks/out (fresh BENCH_*.json + "
            "REGRESS_history.jsonl); baselines come from "
            "--baselines (default benchmarks/baselines)")
    return "".join(parts)


def _trend(inputs: ReportInputs) -> str:
    """Perf trajectory over the append-only ``BENCH_history.jsonl``
    written by ``repro bench run``.  Always renders — a placeholder
    explains how to start the trajectory when no history exists."""
    if not inputs.bench_history:
        return _placeholder(
            "bench trajectory", "repro bench run appends one line "
            "per run to benchmarks/out/BENCH_history.jsonl — pass "
            "that file (or its directory) to grow per-record "
            "sparkline trajectories here")
    from repro.obs.bench import sparkline, trend_series
    history = inputs.bench_history
    series = trend_series(history, "wall_s")
    env = (history[-1].get("env") or {})
    parts = [f"<p>{len(history)} bench run(s); latest on "
             f"{_esc(env.get('platform', '?'))}, python "
             f"{_esc(env.get('python', '?'))}, git "
             f"{_esc((env.get('git_rev') or '?')[:10])}</p>"]
    if len(history) == 1:
        parts.append("<p>1 sample — deltas appear from the second "
                     "bench run onward</p>")
    rows = []
    for name in sorted(series):
        values = [v for _, v in series[name]]
        delta = ""
        if len(values) > 1 and values[0] > 0:
            delta = f"{(values[-1] - values[0]) / values[0] * 100:+.1f}%"
        rows.append([name, sparkline(values),
                     f"{values[0] * 1000:.2f}",
                     f"{values[-1] * 1000:.2f}", delta])
    parts.append(_table(
        ["record", "trajectory", "first (ms)", "latest (ms)",
         "Δ wall"], rows, "mono"))
    for name in sorted(series)[:6]:
        points = [(i, v * 1000) for i, v in series[name]]
        parts.append(f"<h4>{_esc(name)} — wall ms per run</h4>"
                     + _svg_line(points,
                                 title=f"wall ms trend — {name}"))
    return "".join(parts)


def _runs(inputs: ReportInputs) -> str:
    if not inputs.runs:
        return _placeholder(
            "run ledger", "ledgered commands record manifests under "
            ".repro/runs — pass that directory (repro runs list / "
            "diff inspect it from the CLI)")
    ordered = sorted(inputs.runs, key=lambda m: m.get("run_id", ""))
    rows = []
    for m in ordered:
        rev = (m.get("git_rev") or "")[:10]
        crash = (m.get("crash") or {}).get("reason", "")
        rows.append([
            m.get("run_id", "?"), m.get("command", "?"),
            m.get("outcome", "?"), m.get("exit_code", ""),
            f"{m.get('wall_s', 0):.3f}",
            "" if m.get("seed") is None else m["seed"],
            rev, crash])
    parts = [_table(["run", "command", "outcome", "exit", "wall (s)",
                     "seed", "git", "bundle"], rows, "mono")]
    outcomes: dict[str, int] = {}
    for m in ordered:
        key = m.get("outcome", "?")
        outcomes[key] = outcomes.get(key, 0) + 1
    if len(ordered) > 1:
        parts.append("<h4>outcomes</h4>"
                     + _svg_bars(sorted(outcomes.items()),
                                 title="runs per outcome"))
    return "".join(parts)


def _svg_line_marked(points: list[tuple], marks: list[int],
                     width: int = 460, height: int = 120,
                     color: str = "#2e7d32",
                     mark_color: str = "#c62828",
                     title: str = "") -> str:
    """Polyline chart with dashed vertical rules at ``marks`` (x
    values) — the changepoint-annotated trajectory."""
    if not points:
        return "<p class='empty'>(no data)</p>"
    xs = [float(x) for x, _ in points]
    ys = [float(y) for _, y in points]
    x0, x1 = min(xs), max(xs)
    y1 = max(ys) or 1.0
    pad = 4
    span_x = (x1 - x0) or 1.0
    plot_w, plot_h = width - pad * 2, height - pad * 2

    def px(x: float) -> float:
        return pad + plot_w * (x - x0) / span_x

    def py(y: float) -> float:
        return pad + plot_h * (1 - y / y1)

    coords = " ".join(f"{px(x):.1f},{py(y):.1f}"
                      for x, y in zip(xs, ys))
    parts = [f"<svg viewBox='0 0 {width} {height}' class='chart' "
             f"role='img' aria-label='{_esc(title)}'>"
             f"<polyline points='{coords}' fill='none' "
             f"stroke='{color}' stroke-width='1.5'/>"]
    for mark in marks:
        mx = px(float(mark))
        parts.append(
            f"<line x1='{mx:.1f}' y1='{pad}' x2='{mx:.1f}' "
            f"y2='{height - pad}' stroke='{mark_color}' "
            f"stroke-width='1' stroke-dasharray='3,2'>"
            f"<title>step at entry {mark}</title></line>")
    parts.append(f"<title>{_esc(title)} (max {y1:g})</title></svg>")
    return "".join(parts)


def _forensics(inputs: ReportInputs) -> str:
    """Perf forensics: ranked differential-profiling attribution
    tables + per-region delta bars from perfdiff documents, and a
    changepoint scan over the bench trajectory with annotated
    charts."""
    parts = []
    for label, doc in inputs.perfdiffs:
        drifted = doc.get("drifted") or []
        verdict = (f"DRIFT: {', '.join(drifted)}" if drifted
                   else "no attributed drift")
        parts.append(
            f"<h3>{_esc(label)} &mdash; {_esc(doc.get('a', '?'))} "
            f"&rarr; {_esc(doc.get('b', '?'))} ({_esc(verdict)})</h3>"
            f"<p>drift above "
            f"+{doc.get('threshold', 0) * 100:.0f}% attributed work "
            f"(deterministic calls+work counters; speedups never "
            f"flag)</p>")
        rows = doc.get("rows") or []
        if rows:
            parts.append(_table(
                ["region", "group", "units A", "units B", "Δ units",
                 "Δ %", "drift"],
                [[r["name"], r["group"], r["units_a"], r["units_b"],
                  f"{r['delta']:+d}", f"{r['delta_pct']:+.1f}%",
                  "DRIFT" if r.get("drift") else ""]
                 for r in rows[:25]], "mono"))
            bars = [(f"{r['name']} {r['delta_pct']:+.1f}%",
                     abs(r["delta"]))
                    for r in rows[:12] if r["delta"]]
            if bars:
                parts.append(
                    "<h4>per-region work delta (|Δ units|)</h4>"
                    + _svg_hbars(bars,
                                 title=f"work deltas — {label}"))
        paths = doc.get("paths") or []
        if paths:
            parts.append(
                "<h4>collapsed-stack wall deltas (informational)"
                "</h4>"
                + _table(["path", "A (ms)", "B (ms)", "Δ (ms)"],
                         [[p["path"],
                           f"{p['wall_a_s'] * 1000:.2f}",
                           f"{p['wall_b_s'] * 1000:.2f}",
                           f"{p['delta_s'] * 1000:+.2f}"]
                          for p in paths[:10]], "mono"))
    if inputs.bench_history:
        from repro.obs import changepoint
        steps = changepoint.detect_history(inputs.bench_history,
                                           metric="wall_s")
        parts.append("<h3>changepoint scan (wall_s trajectory)</h3>")
        if steps:
            parts.append(_table(
                ["case", "entry", "before", "after", "Δ %", "git"],
                [[s["name"], s["entry"], f"{s['before_mean']:g}",
                  f"{s['after_mean']:g}", f"{s['delta_pct']:+.1f}%",
                  (s.get("git_rev") or "?")[:10]] for s in steps],
                "mono"))
            series: dict[str, list[tuple]] = {}
            for i, entry in enumerate(inputs.bench_history):
                for name, metrics in (entry.get("metrics")
                                      or {}).items():
                    if metrics.get("wall_s") is not None:
                        series.setdefault(name, []).append(
                            (i, metrics["wall_s"] * 1000))
            for name in sorted({s["name"] for s in steps})[:6]:
                marks = [s["entry"] for s in steps
                         if s["name"] == name]
                parts.append(
                    f"<h4>{_esc(name)} — wall ms with step "
                    f"marker(s)</h4>"
                    + _svg_line_marked(
                        series.get(name, []), marks,
                        title=f"changepoint trajectory — {name}"))
        else:
            parts.append("<p>no changepoints detected — the "
                         "trajectory is step-free at the current "
                         "thresholds</p>")
    if not parts:
        return _placeholder(
            "perf forensics", "run repro perf diff A B --json (or "
            "let a failing repro bench regress gate auto-write "
            "PERFDIFF_attribution.json into the check directory), "
            "then pass the document; repro bench trend "
            "--changepoints scans the trajectory from the CLI")
    return "".join(parts)


def _fleet(inputs: ReportInputs) -> str:
    """Fleet telemetry: per-worker lanes from merged ``--jobs``
    spools — the worker table with straggler attribution, per-worker
    wall bars, and the merge summary."""
    parts = []
    for label, doc in inputs.fleets:
        straggler = doc.get("straggler")
        title = (f"{label} &mdash; {doc.get('jobs', '?')} worker(s), "
                 f"{doc.get('items', 0)} item(s)")
        if doc.get("label"):
            title += f", {_esc(doc['label'])}"
        parts.append(f"<h3>{title}</h3>")
        rows = []
        for w in doc.get("workers", []):
            name = w.get("worker", "?")
            rows.append([
                name + (" *" if name == straggler else ""),
                w.get("pid", "?"), w.get("items", 0),
                w.get("events", 0),
                f"{w.get('wall_s', 0.0):.3f}",
                f"{w.get('rss_mb', 0.0):.1f}"])
        parts.append(_table(
            ["worker", "pid", "items", "events", "wall s", "rss MB"],
            rows, "mono"))
        parts.append(
            f"<p>merged {doc.get('events', 0)} event(s) across "
            f"{len(doc.get('workers', []))} spool(s); straggler "
            f"{_esc(str(straggler))} (*) bounds the fleet wall clock "
            f"at {doc.get('wall_s', 0.0):.3f}s</p>")
        bars = [(w.get("worker", "?"), w.get("wall_s", 0.0))
                for w in doc.get("workers", [])]
        if any(v for _, v in bars):
            parts.append(_svg_hbars(
                bars, title=f"per-worker wall — {label}"))
    if not parts:
        return _placeholder(
            "fleet telemetry", "run repro analyze --corpus --jobs N "
            "(or repro experiments section63 --jobs N) and pass the "
            "run's fleet.json merge summary")
    return "".join(parts)


# -- document assembly ---------------------------------------------------------

_STYLE = """
body{font:14px/1.45 system-ui,sans-serif;margin:0 auto;max-width:60em;
  padding:0 1em 3em;color:#1a1a1a}
h1{border-bottom:2px solid #4878a8;padding-bottom:.2em}
h2{margin-top:2em;border-bottom:1px solid #ccc;padding-bottom:.15em}
h3{margin-bottom:.3em}
nav a{margin-right:.8em}
table{border-collapse:collapse;margin:.5em 0}
th,td{border:1px solid #ddd;padding:.15em .5em;text-align:left}
th{background:#f0f4f8}
table.mono td{font-family:ui-monospace,monospace;font-size:12px}
pre{background:#f6f8fa;padding:.6em;overflow-x:auto;font-size:12px}
svg.chart{display:block;max-width:100%;margin:.4em 0;
  background:#fafbfc;border:1px solid #eee}
svg .tick{font:9px ui-monospace,monospace;fill:#666}
p.empty{color:#777;font-style:italic}
span.mover{color:#fff;padding:0 .35em;border-radius:2px;
  font-weight:bold}
"""


def render_report(inputs: ReportInputs,
                  title: str = "repro report") -> str:
    """Render the complete self-contained HTML artifact."""
    sections = {
        "overview": ("Overview", _overview(inputs)),
        "trace": ("Trace spans", _trace(inputs)),
        "metrics": ("Metrics", _metrics(inputs)),
        "hotspots": ("Profiler hotspots", _hotspots(inputs)),
        "coverage": ("State-space coverage", _coverage(inputs)),
        "statespace": ("State space", _statespace(inputs)),
        "lint": ("Lint findings", _lint(inputs)),
        "summary": ("Summary cache", _summary(inputs)),
        "crossval": ("Cross-validation tables", _crossval(inputs)),
        "bench": ("Bench vs baseline", _bench(inputs)),
        "trend": ("Perf trajectory", _trend(inputs)),
        "runs": ("Run ledger", _runs(inputs)),
        "fleet": ("Fleet", _fleet(inputs)),
        "forensics": ("Perf forensics", _forensics(inputs)),
    }
    nav = "".join(f"<a href='#sec-{name}'>{_esc(label)}</a>"
                  for name, (label, _) in sections.items())
    body = "".join(_sec(name, label, content)
                   for name, (label, content) in sections.items())
    return (
        "<!DOCTYPE html>\n<html lang='en'><head>"
        "<meta charset='utf-8'>"
        f"<meta name='generator' content='repro-report v"
        f"{REPORT_VERSION}'>"
        f"<title>{_esc(title)}</title>"
        f"<style>{_STYLE}</style></head><body>"
        f"<h1>{_esc(title)}</h1><nav>{nav}</nav>"
        f"{body}</body></html>\n")


def check_html(html_text: str) -> list[str]:
    """Names of required sections missing from a rendered artifact
    (empty list = complete).  Also flags external asset references —
    the artifact must stay self-contained."""
    missing = [name for name in SECTIONS
               if f"id='sec-{name}'" not in html_text
               and f'id="sec-{name}"' not in html_text]
    for marker in ("<script src", "<link rel='stylesheet'",
                   '<link rel="stylesheet"', "src='http", 'src="http'):
        if marker in html_text:
            missing.append(f"external-asset:{marker.strip('<')}")
    return missing


# -- self-check fixture --------------------------------------------------------

#: minimal artifact set exercising every section; --self-check renders
#: it and fails on any missing section, so CI notices immediately when
#: the generator and check_html() drift apart
SELF_CHECK_FIXTURE = {
    "analysis.json": {
        "procedures": [{"name": "Inc", "atomic": True, "variants": []}],
        "all_atomic": True,
        "diagnostics": [],
        "metrics": {"analysis.sites": 12,
                    "analysis.exclusions.thm5.3": 4},
        "trace": [{"name": "analysis:run", "duration_s": 0.004,
                   "children": [{"name": "analysis:classify",
                                 "duration_s": 0.002}]}],
        "profile": {"v": 1, "hotspots": [
            {"name": "analysis.classify", "calls": 1, "work": 12,
             "wall_s": 0.002, "share": 0.5},
            {"name": "theorem.5.3", "calls": 0, "work": 4,
             "wall_s": 0.0, "share": 0.0}]},
        "lint": {"v": 1, "target": "fixture", "findings": [
            {"rule": "llsc.multi-ll", "severity": "error",
             "message": "two LLs for one SC", "line": 3, "col": 1,
             "proc": "Inc"}],
            "summary": {"errors": 1, "warnings": 0, "infos": 0,
                        "suppressed": 0}},
    },
    "mc.json": {
        "mode": "por", "states": 64, "transitions": 96,
        "elapsed_s": 0.01, "states_per_s": 6400.0,
        "violation": None, "capped": False, "trace": [],
        "metrics": {"mc.states": 64, "mc.transitions": 96,
                    "mc.dedup_hit_rate": 0.33, "mc.mem_peak_mb": 21.5,
                    "mc.max_depth": 9,
                    "mc.depth": {"count": 63, "min": 1, "max": 9,
                                 "mean": 4.2, "p50": 4, "p95": 8,
                                 "p99": 9},
                    "mc.depth_hist": [[1, 2], [2, 6], [3, 12], [4, 18],
                                      [5, 12], [6, 8], [7, 3], [8, 1],
                                      [9, 1]],
                    "mc.frontier_samples": [[16, 4], [32, 7],
                                            [64, 5], [96, 1]]},
        "profile": {"v": 1, "hotspots": [
            {"name": "mc.successors", "calls": 64, "work": 96,
             "wall_s": 0.004, "share": 0.6},
            {"name": "mc.canonicalize", "calls": 96, "work": 96,
             "wall_s": 0.002, "share": 0.3}],
            "folded": {"mc.run": 0.008,
                       "mc.run;mc.successors": 0.004,
                       "mc.run;mc.successors;mc.canonicalize": 0.002,
                       "mc.run;mc.dedup": 0.001}},
        "heatmap": {"v": 1, "annotated": True, "total_visits": 160,
                    "rows": [
                        {"uid": 0, "proc": "Inc",
                         "text": "t = LL(&this.count)", "mover": "R",
                         "visits": 64, "switches": 20, "threads": 2},
                        {"uid": 1, "proc": "Inc",
                         "text": "ok = SC(&this.count, t + 1)",
                         "mover": "L", "visits": 60, "switches": 12,
                         "threads": 2},
                        {"uid": 2, "proc": "Inc",
                         "text": "if ok", "mover": "B", "visits": 36,
                         "switches": 4, "threads": 2}]},
    },
    "graph.jsonl": [
        {"kind": "graph.header", "v": 1, "mode": "por", "threads": 2,
         "node_cap": 200000, "por_pruned": True},
        {"kind": "node", "id": "aa00", "depth": 1, "init": True,
         "q": True},
        {"kind": "node", "id": "bb11", "depth": 2},
        {"kind": "node", "id": "cc22", "depth": 2},
        {"kind": "node", "id": "dd33", "depth": 3, "q": True},
        {"kind": "edge", "src": "aa00", "dst": "bb11", "tid": 0,
         "uid": 0, "op": "stmt", "mover": "R", "dup": False},
        {"kind": "edge", "src": "aa00", "dst": "cc22", "tid": 1,
         "uid": 0, "op": "stmt", "mover": "R", "dup": False},
        {"kind": "edge", "src": "bb11", "dst": "dd33", "tid": 0,
         "uid": 1, "op": "stmt", "mover": "L", "dup": False},
        {"kind": "edge", "src": "cc22", "dst": "dd33", "tid": 1,
         "uid": 1, "op": "stmt", "mover": "L", "dup": True},
        {"kind": "pruned", "src": "bb11", "dst": "cc22", "tid": 1,
         "uid": 0, "op": "stmt"},
        {"kind": "graph.summary", "nodes": 4, "edges": 4, "pruned": 1,
         "nodes_written": 4, "edges_written": 4, "truncated": False,
         "max_depth": 3}],
    "events.jsonl": [
        {"v": 1, "seq": 0, "t": 0.001, "kind": "explorer.progress",
         "states": 20, "transitions": 28, "depth": 5, "frontier": 4,
         "elapsed_s": 0.004},
        {"v": 1, "seq": 1, "t": 0.002, "kind": "explorer.progress",
         "states": 64, "transitions": 96, "depth": 9, "frontier": 0,
         "elapsed_s": 0.009}],
    "BENCH_mc.json": [
        {"name": "mc/fixture/por", "wall_s": 0.01, "states": 64,
         "transitions": 96, "states_per_s": 6400.0,
         "mem_peak_mb": 21.5, "dedup_hit_rate": 0.33}],
    "baseline_BENCH_mc.json": [
        {"name": "mc/fixture/por", "wall_s": 0.009, "states": 64,
         "transitions": 96, "states_per_s": 7100.0,
         "mem_peak_mb": 20.9, "dedup_hit_rate": 0.33}],
    "history": [
        {"at": 1.0, "status": "ok", "regressions": 0, "notes": 0,
         "compared": ["BENCH_mc.json"]},
        {"at": 2.0, "status": "regression", "regressions": 1,
         "notes": 1, "compared": ["BENCH_mc.json"]}],
    # eight runs with a step injected at entry 4 (wall_s jumps
    # ~+48%): the forensics changepoint scan must flag exactly it
    "BENCH_history": [
        {"at": float(i + 1), "repeats": 5,
         "env": {"git_rev": rev, "python": "3.11.0",
                 "platform": "fixture-os", "cpu_count": 4},
         "metrics": {"mc/fixture/por": {"wall_s": wall,
                                        "states_per_s":
                                            round(64 / wall, 1),
                                        "iqr": 0.0003}}}
        for i, (rev, wall) in enumerate([
            ("0123456789abcdef", 0.0100),
            ("123456789abcdef0", 0.0103),
            ("23456789abcdef01", 0.0099),
            ("3456789abcdef012", 0.0102),
            ("456789abcdef0123", 0.0150),
            ("56789abcdef01234", 0.0153),
            ("6789abcdef012345", 0.0149),
            ("789abcdef0123456", 0.0152)])],
    "PERFDIFF_attribution.json": {
        "v": 1, "kind": "perfdiff",
        "a": "baseline:benchmarks/baselines",
        "b": "fresh:benchmarks/out",
        "threshold": 0.25, "drift": True,
        "drifted": ["mc.successors"],
        "rows": [
            {"name": "mc.successors", "group": "explorer",
             "units_a": 12000, "units_b": 17000, "delta": 5000,
             "delta_pct": 41.7, "drift": True,
             "wall_a_s": 0.004, "wall_b_s": 0.0061},
            {"name": "mc.dedup", "group": "explorer",
             "units_a": 6400, "units_b": 6210, "delta": -190,
             "delta_pct": -3.0, "drift": False},
            {"name": "analysis.classify", "group": "analysis-pass",
             "units_a": 900, "units_b": 905, "delta": 5,
             "delta_pct": 0.6, "drift": False}],
        "groups": {
            "explorer": {"units_a": 18400, "units_b": 23210,
                         "delta": 4810, "delta_pct": 26.1},
            "analysis-pass": {"units_a": 900, "units_b": 905,
                              "delta": 5, "delta_pct": 0.6}},
        "paths": [
            {"path": "mc.run;mc.successors", "wall_a_s": 0.004,
             "wall_b_s": 0.0061, "delta_s": 0.0021}]},
    "summary_stats.json": {
        "v": 1, "kind": "summary-stats", "canary": True, "ok": True,
        "programs": 2,
        "rows": [
            {"label": "corpus/cas_counter", "atomic": True,
             "procs": 2, "hits": 2, "misses": 0, "invalidated": 0,
             "cached": True, "drift": 0},
            {"label": "corpus/treiber_stack", "atomic": True,
             "procs": 2, "hits": 2, "misses": 0, "invalidated": 0,
             "cached": True, "drift": 0}],
        "stats": {"v": 1, "kind": "summary-stats",
                  "root": ".repro/summaries", "procs": 4,
                  "programs": 2, "bytes": 20480,
                  "schema_refused": 0, "corrupt": 0}},
    "fleet.json": {
        "v": 1, "kind": "fleet", "jobs": 2, "label": "analyze-corpus",
        "items": 22, "events": 70, "wall_s": 0.31,
        "straggler": "worker-01",
        "workers": [
            {"worker": "worker-00", "pid": 4242, "items": 11,
             "events": 34, "wall_s": 0.27, "rss_mb": 21.0},
            {"worker": "worker-01", "pid": 4243, "items": 11,
             "events": 36, "wall_s": 0.31, "rss_mb": 20.5}]},
    "crossval.txt": ("Lint/MC cross-validation (fixture)\n\n"
                     "program   | lint errors | violation\n"
                     "----------+-------------+----------\n"
                     "ABA_STACK | 2           | yes\n"),
    "runs": [
        {"v": 1, "run_id": "20260101T000000-000001-1-analyze",
         "command": "analyze", "argv": ["analyze", "fixture.synl"],
         "started_at": 1.0, "wall_s": 0.02, "cpu_s": 0.02,
         "git_rev": "0123456789abcdef", "seed": None, "exit_code": 0,
         "outcome": "ok", "schema_versions": {"manifest": 1},
         "artifacts": [], "crash": None},
        {"v": 1, "run_id": "20260101T000001-000001-1-mc",
         "command": "mc", "argv": ["mc", "fixture.synl", "P()"],
         "started_at": 2.0, "wall_s": 0.05, "cpu_s": 0.05,
         "git_rev": "0123456789abcdef", "seed": 7, "exit_code": 1,
         "outcome": "violation", "schema_versions": {"manifest": 1},
         "artifacts": [], "crash": {"reason": "violation",
                                    "path": "crash.json"},
         "mc": {"mode": "full", "states": 27, "transitions": 36,
                "violation": "assertion failed", "capped": False,
                "fingerprint": "deadbeefdeadbeef"}}],
}


def fixture_inputs() -> ReportInputs:
    """The :data:`SELF_CHECK_FIXTURE` loaded as report inputs."""
    from repro.obs.graph import from_records
    fx = SELF_CHECK_FIXTURE
    return ReportInputs(
        graphs=[("graph.jsonl",
                 from_records(fx["graph.jsonl"], "graph.jsonl"))],
        analyses=[("analysis.json", fx["analysis.json"])],
        mcs=[("mc.json", fx["mc.json"])],
        events=[("events.jsonl", fx["events.jsonl"])],
        bench_fresh={"BENCH_mc.json": fx["BENCH_mc.json"]},
        bench_baseline={"BENCH_mc.json": fx["baseline_BENCH_mc.json"]},
        history=list(fx["history"]),
        bench_history=[dict(e) for e in fx["BENCH_history"]],
        tables=[("crossval.txt", fx["crossval.txt"])],
        runs=[dict(m) for m in fx["runs"]],
        summaries=[("summary_stats.json",
                    dict(fx["summary_stats.json"]))],
        perfdiffs=[("PERFDIFF_attribution.json",
                    dict(fx["PERFDIFF_attribution.json"]))],
        fleets=[("fleet.json", dict(fx["fleet.json"]))])


def self_check() -> tuple[int, str]:
    """Render the embedded fixture and verify completeness.  Returns
    ``(exit_code, message)`` — 0 only when every section is present,
    every fixture chart rendered, and no placeholder leaked in."""
    html_text = render_report(fixture_inputs(), title="self-check")
    problems = check_html(html_text)
    if "class='empty'" in html_text:
        problems.append("placeholder rendered from full fixture")
    if html_text.count("<svg") < 6:
        problems.append(
            f"expected >=6 charts, got {html_text.count('<svg')}")
    for marker, what in (("flame chart", "flame chart"),
                         ("Perf trajectory", "trend section"),
                         ("graph capture", "graph-capture analytics"),
                         ("statement heatmap", "statement heatmap"),
                         ("depth layers", "depth-layer chart"),
                         ("replayed from cache", "summary-cache "
                          "section"),
                         ("attributed work", "perfdiff attribution "
                          "table"),
                         ("straggler", "fleet merge summary"),
                         ("changepoint", "changepoint scan"),
                         ("step marker", "changepoint-annotated "
                          "trajectory chart")):
        if marker not in html_text:
            problems.append(f"{what} missing from fixture render")
    from repro.obs import schemas
    problems.extend(f"schema registry: {drift}"
                    for drift in schemas.check_registry())
    if problems:
        return 1, "self-check FAILED: " + "; ".join(problems)
    return 0, (f"self-check ok: {len(SECTIONS)} sections, "
               f"{html_text.count('<svg')} charts, "
               f"{len(html_text)} bytes")
