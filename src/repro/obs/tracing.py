"""Hierarchical span tracing with monotonic clocks.

A :class:`Tracer` hands out :class:`Span` context managers::

    tracer = Tracer(enabled=True)
    with tracer.span("analysis"):
        with tracer.span("variants", rounds=2):
            ...
    print(tracer.render())

Spans nest per *thread* (each thread keeps its own open-span stack in
thread-local storage), so worker threads started inside a span attach
their own roots rather than corrupting the parent's stack.  Timing uses
``time.perf_counter`` — monotonic, unaffected by wall-clock jumps.

A disabled tracer (``Tracer(enabled=False)``, or the shared
:data:`NULL_TRACER`) returns one reusable no-op context manager, so the
instrumented hot paths cost a single attribute check when tracing is
off.
"""

from __future__ import annotations

import threading
import time
from typing import Iterator, Optional


class Span:
    """One timed region.  ``end`` is ``None`` while the span is open."""

    __slots__ = ("name", "attrs", "start", "end", "children", "thread")

    def __init__(self, name: str, attrs: Optional[dict] = None,
                 thread: Optional[str] = None):
        self.name = name
        self.attrs = attrs or {}
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.children: list[Span] = []
        self.thread = thread

    @property
    def duration(self) -> float:
        """Elapsed seconds (up to now for a still-open span)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def close(self) -> None:
        if self.end is None:
            self.end = time.perf_counter()

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "duration_s": round(self.duration, 6),
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.thread is not None:
            out["thread"] = self.thread
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def render(self, depth: int = 0) -> str:
        attrs = "".join(f" {k}={v}" for k, v in self.attrs.items())
        lines = [f"{'  ' * depth}{self.name}  "
                 f"{self.duration * 1000:.2f}ms{attrs}"]
        lines.extend(c.render(depth + 1) for c in self.children)
        return "\n".join(lines)


class _NullSpanContext:
    """Reusable no-op context manager for disabled tracers."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CM = _NullSpanContext()


class _SpanContext:
    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self.tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc) -> bool:
        self.tracer._pop(self.span)
        return False


class Tracer:
    """Thread-safe collector of span trees."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- span lifecycle ----------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs):
        """Open a child span of the current thread's innermost span."""
        if not self.enabled:
            return _NULL_CM
        stack = self._stack()
        thread = threading.current_thread().name if not stack else None
        span = Span(name, attrs or None, thread=thread)
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)
        return _SpanContext(self, span)

    def _pop(self, span: Span) -> None:
        span.close()
        stack = self._stack()
        # close any dangling descendants left open by early exits
        while stack and stack[-1] is not span:
            stack.pop().close()
        if stack:
            stack.pop()

    @property
    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- output ------------------------------------------------------------
    def reset(self) -> None:
        with self._lock:
            self.roots = []
        self._local = threading.local()

    def to_dict(self) -> list[dict]:
        with self._lock:
            return [s.to_dict() for s in self.roots]

    def render(self) -> str:
        with self._lock:
            return "\n".join(s.render() for s in self.roots)


#: shared disabled tracer — the default for all instrumented call sites.
NULL_TRACER = Tracer(enabled=False)
