"""Persistent run ledger: one durable manifest per CLI invocation.

Every ledgered ``repro`` command (see ``repro.cli.LEDGERED_COMMANDS``)
records a schema-versioned manifest under ``.repro/runs/<run_id>/``::

    .repro/runs/20260805T120301-482193-1234-analyze/
        manifest.json          # argv, seed, git rev, outcome, summaries
        artifacts/<sha12>-analysis.json   # content-addressed copies
        crash.json             # bundle on crash / assertion violation

The manifest carries everything needed to answer "what ran, what did
it conclude, and how do I reproduce it": argv, RNG seed, git revision,
schema versions, wall/CPU time, exit code and outcome, a per-block
classification summary (atomicity class + theorem citations per line),
lint rule counts, the MC verdict with a counterexample *fingerprint*
(sha256 over the violation + trace), and content-addressed (sha256)
references to every emitted JSON/events/profile document.

On an unhandled exception — or an assertion/property violation, which
is the outcome we most want to replay — a *crash bundle* is captured
into the run directory: a bounded drain of the structured event ring,
the profiler's deterministic counters, the RNG seed, the SYNL program
source, and the traceback.

``repro runs list|show|diff|gc`` and ``repro replay <run_id>`` are the
CLI surface; :mod:`repro.obs.rundiff` renders cross-run drift.  The
ledger root resolves from ``REPRO_LEDGER_DIR`` (default
``.repro/runs``); ``REPRO_LEDGER=0`` disables recording entirely.

The module is a leaf: it imports only the standard library at import
time (``repro.obs.export`` is reached lazily for validation), so the
explorer and scheduler can hook into it without cycles.  All hooks
no-op unless a recorder is active, so library use stays zero-cost.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pathlib
import re
import shutil
import subprocess
import time
import traceback as _traceback
from typing import Optional, Union

from repro.obs.schemas import MANIFEST as SCHEMA_VERSION

#: ledger root when ``REPRO_LEDGER_DIR`` is unset
DEFAULT_ROOT = os.path.join(".repro", "runs")

#: ``repro runs gc`` keeps this many most-recent runs by default — the
#: policy CI enforces so long-lived checkouts never grow unboundedly
DEFAULT_KEEP = 50

#: at most this many events are drained from the ring into a bundle
CRASH_EVENT_LIMIT = 200

#: per-file cap on program source captured into a bundle (bytes)
SOURCE_CAP = 65536

ARTIFACT_SCHEMA = {
    "type": "object",
    "required": ["name", "sha256", "bytes"],
    "properties": {
        "name": {"type": "string"},
        "sha256": {"type": "string"},
        "bytes": {"type": "integer"},
        # run-dir-relative path of a persisted copy (null = reference
        # only, e.g. a --events-out file left where the user asked)
        "path": {"type": ["string", "null"]},
        # original location for reference-only artifacts
        "source": {"type": ["string", "null"]},
    },
}

MANIFEST_SCHEMA = {
    "type": "object",
    "required": ["v", "run_id", "command", "argv", "started_at",
                 "wall_s", "cpu_s", "exit_code", "outcome",
                 "schema_versions", "artifacts"],
    "properties": {
        "v": {"type": "integer"},
        "run_id": {"type": "string"},
        "command": {"type": "string"},
        "argv": {"type": "array", "items": {"type": "string"}},
        "started_at": {"type": "number"},
        "wall_s": {"type": "number"},
        "cpu_s": {"type": "number"},
        "git_rev": {"type": ["string", "null"]},
        "seed": {"type": ["integer", "null"]},
        "exit_code": {"type": "integer"},
        "outcome": {"type": "string"},
        "schema_versions": {"type": "object"},
        "analysis": {"type": "object"},
        "lint": {"type": "object"},
        "mc": {"type": "object"},
        "run": {"type": "object"},
        "experiments": {"type": "object"},
        "fleet": {"type": "object"},
        "artifacts": {"type": "array", "items": ARTIFACT_SCHEMA},
        "crash": {"type": ["object", "null"]},
    },
}

_GIT_REV: Optional[str] = None
_GIT_REV_PROBED = False


def fingerprint(obj) -> str:
    """Stable short digest of any JSON-serializable value (used for
    counterexample identity across runs)."""
    blob = json.dumps(obj, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def git_rev() -> Optional[str]:
    """``HEAD`` commit of the working directory's repository, memoized
    per process (None outside a checkout / without git)."""
    global _GIT_REV, _GIT_REV_PROBED
    if _GIT_REV_PROBED:
        return _GIT_REV
    _GIT_REV_PROBED = True
    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"],
                              capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = proc.stdout.strip()
    if proc.returncode == 0 and rev:
        _GIT_REV = rev
    return _GIT_REV


def schema_versions() -> dict:
    """Versions of every document schema a run may emit or reference."""
    from repro.obs import schemas
    return schemas.registry()


def ledger_root(override: Union[None, str, pathlib.Path] = None
                ) -> pathlib.Path:
    """Resolve the ledger directory (explicit > env > default)."""
    if override:
        return pathlib.Path(override)
    return pathlib.Path(os.environ.get("REPRO_LEDGER_DIR")
                        or DEFAULT_ROOT)


def enabled() -> bool:
    """Whether recording is on (``REPRO_LEDGER`` is not falsy)."""
    raw = os.environ.get("REPRO_LEDGER")
    if raw is None:
        return True
    return raw.strip().lower() not in ("", "0", "false", "no", "off")


def new_run_id(command: str) -> str:
    """Sortable unique id: UTC second + microseconds + pid + command."""
    now = time.time()
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(now))
    return (f"{stamp}-{int(now % 1 * 1e6):06d}-{os.getpid()}"
            f"-{command}")


def outcome_for(command: str, exit_code: int) -> str:
    """Human-meaningful outcome label for a (command, exit) pair."""
    if exit_code == 0:
        return "ok"
    if command in ("run", "mc"):
        if exit_code == 1:
            return "violation"
        if exit_code == 3:
            return "capped"
        if exit_code == 4:
            return "deadline"
    if command == "bench" and exit_code == 1:
        return "drift"
    if command == "analyze" and exit_code == 1:
        return "not-atomic"
    if command == "lint" and exit_code in (1, 2):
        return "findings"
    if exit_code == 2:
        return "error"
    return f"exit-{exit_code}"


class RunRecorder:
    """Accumulates one run's manifest; persists it on :meth:`finish`.

    Commands and subsystem hooks feed summaries through the
    module-level helpers (:func:`note_seed`, :func:`note_mc`, …) which
    dispatch to the *current* recorder — a plain module global, since
    the CLI is single-threaded.
    """

    def __init__(self, argv: list[str], command: str,
                 root: Union[None, str, pathlib.Path] = None,
                 persist: bool = True):
        self.argv = [str(a) for a in argv]
        self.command = command
        self.persist = persist
        self.root = ledger_root(root)
        self.run_id = new_run_id(command)
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self.seed: Optional[int] = None
        self.notes: dict = {}
        self.artifacts: list[dict] = []
        self.crash_info: Optional[dict] = None
        self._bundle: Optional[dict] = None
        self._profiler = None
        self._sources: dict[str, str] = {}
        self._manifest: Optional[dict] = None

    # -- filesystem --------------------------------------------------------
    @property
    def run_dir(self) -> pathlib.Path:
        return self.root / self.run_id

    def _ensure_dir(self) -> pathlib.Path:
        self.run_dir.mkdir(parents=True, exist_ok=True)
        return self.run_dir

    # -- feeding -----------------------------------------------------------
    def note(self, key: str, value) -> None:
        self.notes[key] = value

    def note_seed(self, seed: int) -> None:
        self.seed = int(seed)

    def attach_profiler(self, profiler) -> None:
        self._profiler = profiler

    def note_source(self, path, text: str) -> None:
        if len(self._sources) < 8:
            self._sources[str(path)] = text[:SOURCE_CAP]

    def add_artifact(self, name: str, doc) -> dict:
        """Persist a JSON document as a content-addressed artifact
        under the run directory and reference it in the manifest."""
        blob = json.dumps(doc, indent=2, default=str).encode()
        sha = hashlib.sha256(blob).hexdigest()
        rel = None
        if self.persist:
            art_dir = self._ensure_dir() / "artifacts"
            art_dir.mkdir(exist_ok=True)
            rel = f"artifacts/{sha[:12]}-{os.path.basename(name)}"
            (self.run_dir / rel).write_bytes(blob)
        entry = {"name": os.path.basename(name), "sha256": sha,
                 "bytes": len(blob), "path": rel, "source": None}
        self.artifacts.append(entry)
        return entry

    def ref_artifact(self, path) -> Optional[dict]:
        """Reference an already-written file (``--events-out`` /
        ``--trace-out`` targets) by content hash, without copying."""
        path = pathlib.Path(path)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        entry = {"name": path.name,
                 "sha256": hashlib.sha256(blob).hexdigest(),
                 "bytes": len(blob), "path": None,
                 "source": str(path)}
        self.artifacts.append(entry)
        return entry

    # -- crash bundles -----------------------------------------------------
    def _gather_bundle(self, reason: str,
                       exc: Optional[BaseException] = None) -> dict:
        from repro.obs import events as events_mod

        bundle: dict = {"v": SCHEMA_VERSION, "reason": reason,
                        "run_id": self.run_id, "argv": self.argv,
                        "seed": self.seed,
                        "sources": dict(self._sources)}
        stream = events_mod.active()
        if stream is not None:
            bundle["events"] = stream.drain(CRASH_EVENT_LIMIT)
            bundle["events_dropped"] = stream.dropped
        else:
            bundle["events"] = []
            bundle["events_dropped"] = 0
        if self._profiler is not None \
                and getattr(self._profiler, "enabled", False):
            bundle["profile_counters"] = self._profiler.counters()
        if exc is not None:
            bundle["exception"] = {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": "".join(_traceback.format_exception(
                    type(exc), exc, exc.__traceback__)),
            }
        return bundle

    def capture_bundle(self, reason: str,
                       exc: Optional[BaseException] = None) -> dict:
        """Capture (and, when persisting, write) the crash bundle."""
        self._bundle = self._gather_bundle(reason, exc)
        rel = None
        if self.persist:
            self._ensure_dir()
            rel = "crash.json"
            (self.run_dir / rel).write_text(
                json.dumps(self._bundle, indent=2, default=str) + "\n")
        self.crash_info = {"reason": reason, "path": rel}
        if exc is not None:
            self.crash_info["type"] = type(exc).__name__
            self.crash_info["message"] = str(exc)
        return self._bundle

    def crash(self, exc: BaseException, exit_code: int = 1) -> dict:
        """Unhandled-exception path: bundle + finish in one step."""
        self.capture_bundle("crash", exc)
        return self.finish(exit_code, outcome="crash")

    # -- completion --------------------------------------------------------
    def finish(self, exit_code: int,
               outcome: Optional[str] = None) -> dict:
        """Stamp timing + outcome, persist ``manifest.json``, and
        return the manifest (idempotent: later calls are no-ops)."""
        if self._manifest is not None:
            return self._manifest
        outcome = outcome or outcome_for(self.command, exit_code)
        if outcome == "violation" and self.crash_info is None:
            # a violation is the outcome we most want to replay:
            # capture the same bundle an unhandled crash would get
            self.capture_bundle("violation")
        manifest: dict = {
            "v": SCHEMA_VERSION,
            "run_id": self.run_id,
            "command": self.command,
            "argv": self.argv,
            "started_at": round(self.started_at, 3),
            "wall_s": round(time.perf_counter() - self._t0, 6),
            "cpu_s": round(time.process_time() - self._cpu0, 6),
            "git_rev": git_rev(),
            "seed": self.seed,
            "exit_code": int(exit_code),
            "outcome": outcome,
            "schema_versions": schema_versions(),
            "artifacts": self.artifacts,
            "crash": self.crash_info,
        }
        manifest.update(self.notes)
        from repro.obs.export import validate
        errors = validate(manifest, MANIFEST_SCHEMA)
        if errors:  # defensive: recorder and schema must stay in sync
            raise ValueError("invalid run manifest: "
                             + "; ".join(errors))
        if self.persist:
            self._ensure_dir()
            (self.run_dir / "manifest.json").write_text(
                json.dumps(manifest, indent=2, default=str) + "\n")
        self._manifest = manifest
        return manifest


# -- the current recorder (CLI is single-threaded) -----------------------------

_CURRENT: Optional[RunRecorder] = None


def current() -> Optional[RunRecorder]:
    return _CURRENT


def start(argv: list[str], command: str,
          root: Union[None, str, pathlib.Path] = None,
          persist: bool = True,
          force: bool = False) -> Optional[RunRecorder]:
    """Install a recorder as current.  Returns None when recording is
    disabled (``REPRO_LEDGER=0``) or a recorder is already active
    (nested invocations — e.g. ``repro replay`` — feed the outer one);
    ``force=True`` skips only the enabled check."""
    global _CURRENT
    if _CURRENT is not None:
        return None
    if not force and not enabled():
        return None
    _CURRENT = RunRecorder(argv, command, root=root, persist=persist)
    return _CURRENT


def stop(recorder: Optional[RunRecorder]) -> None:
    global _CURRENT
    if recorder is not None and _CURRENT is recorder:
        _CURRENT = None


@contextlib.contextmanager
def muted():
    """Temporarily detach the active recorder so globally-hooked notes
    (``note_mc`` from ``Explorer._finish``, …) don't land in the run.
    The experiments variant grid runs its cells under this: the grid's
    drift-diffable record is the aggregated ``experiments`` note, and
    a parallel (``--jobs``) grid — whose forked workers never see the
    recorder — must produce the same manifest as a sequential one."""
    global _CURRENT
    saved, _CURRENT = _CURRENT, None
    try:
        yield
    finally:
        _CURRENT = saved


@contextlib.contextmanager
def recording(argv: list[str], command: str,
              root: Union[None, str, pathlib.Path] = None,
              persist: bool = True):
    """Context-manager form of :func:`start`/:func:`stop` that turns
    unhandled exceptions into crash bundles before re-raising."""
    rec = start(argv, command, root=root, persist=persist)
    try:
        yield rec
    except Exception as exc:
        if rec is not None:
            rec.crash(exc)
        raise
    finally:
        stop(rec)


# -- hook helpers (no-ops without a current recorder) --------------------------

def note(key: str, value) -> None:
    if _CURRENT is not None:
        _CURRENT.note(key, value)


def note_seed(seed: int) -> None:
    if _CURRENT is not None:
        _CURRENT.note_seed(seed)


def note_source(path, text: str) -> None:
    if _CURRENT is not None:
        _CURRENT.note_source(path, text)


def attach_profiler(profiler) -> None:
    if _CURRENT is not None:
        _CURRENT.attach_profiler(profiler)


def add_artifact(name: str, doc) -> None:
    if _CURRENT is not None:
        _CURRENT.add_artifact(name, doc)


def ref_artifact(path) -> None:
    if _CURRENT is not None:
        _CURRENT.ref_artifact(path)


def classification_summary(doc: dict) -> dict:
    """Distill an ``analysis_to_dict`` document into the drift-diffable
    per-block summary stored in manifests: atomicity class and theorem
    citations per line, body atomicity per variant, atomic verdict per
    procedure, plus downgraded theorem applications."""
    procedures: dict = {}
    variants: dict = {}
    blocks: dict = {}
    theorems: dict = {}
    for proc in doc.get("procedures", []):
        procedures[proc["name"]] = bool(proc.get("atomic"))
        for var in proc.get("variants", []):
            vkey = f"{proc['name']}/{var['name']}"
            variants[vkey] = str(var.get("body_atomicity"))
            for line in var.get("lines", []):
                key = f"{vkey}/{line['label']}"
                blocks[key] = str(line.get("atomicity"))
                cited = sorted({j["theorem"]
                                for j in line.get("provenance", [])
                                if j.get("theorem")})
                if cited:
                    theorems[key] = cited
    out: dict = {"procedures": procedures, "variants": variants,
                 "blocks": blocks, "theorems": theorems}
    downgrades = doc.get("downgrades")
    if downgrades:
        out["downgrades"] = [
            {"theorem": d.get("theorem"), "region": d.get("region"),
             "rules": list(d.get("rules", []))} for d in downgrades]
    return out


def note_analysis(result) -> None:
    """Record the per-block classification summary of an analysis
    (accepts an ``AnalysisResult`` or its ``to_dict()`` document)."""
    rec = _CURRENT
    if rec is None:
        return
    doc = result if isinstance(result, dict) else result.to_dict()
    summary = classification_summary(doc)
    prior = rec.notes.get("analysis")
    if isinstance(prior, dict) and "partitions" in prior:
        summary["partitions"] = prior["partitions"]
    rec.notes["analysis"] = summary
    lint = doc.get("lint")
    if lint is not None:
        note_lint([lint])


def note_partitions(partitions: dict) -> None:
    """Record §6.4 block-partition classes
    (``{proc/variant: [atomicity, ...]}``)."""
    rec = _CURRENT
    if rec is None:
        return
    rec.notes.setdefault("analysis", {})["partitions"] = {
        key: [str(a) for a in classes]
        for key, classes in partitions.items()}


def note_lint(lint_docs: list) -> None:
    """Record per-target rule counts (accepts ``LintResult`` objects
    or their ``to_dict()`` documents)."""
    rec = _CURRENT
    if rec is None:
        return
    summary = rec.notes.setdefault(
        "lint", {"targets": {}, "errors": 0, "warnings": 0})
    for res in lint_docs:
        doc = res if isinstance(res, dict) else res.to_dict()
        counts: dict = {}
        for finding in doc.get("findings", []):
            counts[finding["rule"]] = counts.get(finding["rule"], 0) + 1
        summary["targets"][doc.get("target", "?")] = counts
        sums = doc.get("summary", {})
        summary["errors"] += int(sums.get("errors", 0))
        summary["warnings"] += int(sums.get("warnings", 0))


def _normalize_cex_steps(path: list, trace: list) -> list:
    """A cross-run-stable view of a counterexample: statement uids are
    global parse counters (two parses of the same source in one
    process yield different absolute uids), so they are renumbered by
    first occurrence; tid/kind/proc/via are stable as-is."""
    if path:
        seen: dict = {}
        out = []
        for step in path:
            uid = step.get("uid")
            stmt = None if uid is None else \
                seen.setdefault(uid, len(seen))
            out.append({"tid": step.get("tid"),
                        "kind": step.get("kind"),
                        "proc": step.get("proc"),
                        "via": step.get("via"), "stmt": stmt})
        return out
    seen = {}
    out = []
    for desc in trace:
        out.append(re.sub(
            r"@(\d+)",
            lambda m: f"@{seen.setdefault(m.group(1), len(seen))}",
            str(desc)))
    return out


def note_mc(result) -> None:
    """Record an exploration's verdict (hooked from
    ``Explorer._finish``); a violation gets a deterministic
    counterexample fingerprint so replays can assert identity."""
    rec = _CURRENT
    if rec is None:
        return
    summary: dict = {"mode": result.mode, "states": result.states,
                     "transitions": result.transitions,
                     "violation": result.violation,
                     "capped": bool(result.capped),
                     "deadline_hit": bool(getattr(result,
                                                  "deadline_hit",
                                                  False))}
    if result.violation:
        summary["fingerprint"] = fingerprint(
            {"violation": result.violation,
             "steps": _normalize_cex_steps(
                 list(getattr(result, "path", []) or []),
                 list(result.trace))})
    rec.notes["mc"] = summary
    rec.notes.setdefault("mc_count", 0)
    rec.notes["mc_count"] += 1


def note_run(seed: int, violation: Optional[str],
             history: list) -> None:
    """Record a random-schedule execution's outcome."""
    rec = _CURRENT
    if rec is None:
        return
    summary: dict = {"seed": int(seed), "violation": violation}
    if violation is not None:
        summary["fingerprint"] = fingerprint(
            {"violation": violation,
             "history": [str(e) for e in history]})
    rec.notes["run"] = summary


# -- reading the ledger --------------------------------------------------------

def load_manifest(root: Union[str, pathlib.Path],
                  run_id: str) -> dict:
    """Load + validate one run's manifest."""
    from repro.errors import ReproError
    from repro.obs.export import validate

    path = pathlib.Path(root) / run_id / "manifest.json"
    if not path.is_file():
        raise ReproError(f"no run {run_id!r} under {root} "
                         f"(missing {path})")
    manifest = json.loads(path.read_text())
    errors = validate(manifest, MANIFEST_SCHEMA)
    if errors:
        raise ReproError(f"{path}: " + "; ".join(errors))
    return manifest


def list_runs(root: Union[str, pathlib.Path]) -> list[dict]:
    """All readable manifests under ``root``, oldest first (run ids
    are timestamp-prefixed, so name order is time order)."""
    root = pathlib.Path(root)
    if not root.is_dir():
        return []
    out = []
    for sub in sorted(root.iterdir()):
        path = sub / "manifest.json"
        if not path.is_file():
            continue
        try:
            out.append(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError):
            continue
    return out


def resolve_run(root: Union[str, pathlib.Path], token: str) -> str:
    """Resolve a user-supplied run reference: an exact id, a unique
    prefix, ``last``, or a negative index (``-1`` = most recent)."""
    from repro.errors import ReproError

    ids = [m["run_id"] for m in list_runs(root)]
    if not ids:
        raise ReproError(f"ledger {root} is empty — run a ledgered "
                         f"command (e.g. repro analyze) first")
    if token == "last":
        token = "-1"
    if re.fullmatch(r"-\d+", token):
        index = int(token)
        if -len(ids) <= index <= -1:
            return ids[index]
        raise ReproError(f"run index {token} out of range "
                         f"({len(ids)} run(s) recorded)")
    if token in ids:
        return token
    matches = [i for i in ids if i.startswith(token)]
    if len(matches) == 1:
        return matches[0]
    if matches:
        raise ReproError(f"ambiguous run prefix {token!r}: "
                         + ", ".join(matches[:5]))
    raise ReproError(f"unknown run {token!r} (repro runs list shows "
                     f"{len(ids)} recorded run(s))")


def load_artifact_docs(root: Union[str, pathlib.Path],
                       run_id: str) -> dict[str, dict]:
    """Load every readable JSON artifact of a run as ``{name: doc}``
    — persisted content-addressed copies first, falling back to the
    recorded ``source`` path for reference-only artifacts.  The crash
    bundle (when present) joins under ``"crash.json"``.  Unreadable or
    non-JSON artifacts are skipped silently: callers (``repro perf
    diff``) degrade to whichever documents survive."""
    manifest = load_manifest(root, run_id)
    run_dir = pathlib.Path(root) / run_id
    docs: dict[str, dict] = {}
    for entry in manifest.get("artifacts", []):
        candidates = []
        if entry.get("path"):
            candidates.append(run_dir / entry["path"])
        if entry.get("source"):
            candidates.append(pathlib.Path(entry["source"]))
        for path in candidates:
            try:
                docs[entry["name"]] = json.loads(path.read_text())
                break
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                continue
    crash = run_dir / "crash.json"
    if crash.is_file():
        try:
            docs["crash.json"] = json.loads(crash.read_text())
        except (OSError, json.JSONDecodeError):
            pass
    return docs


def gc(root: Union[str, pathlib.Path],
       keep: int = DEFAULT_KEEP) -> list[str]:
    """Delete all but the ``keep`` most recent run directories.
    Only directories holding a ``manifest.json`` are touched."""
    root = pathlib.Path(root)
    if keep < 0:
        raise ValueError("keep must be >= 0")
    if not root.is_dir():
        return []
    run_dirs = sorted(sub for sub in root.iterdir()
                      if (sub / "manifest.json").is_file())
    doomed = run_dirs[:-keep] if keep else run_dirs
    removed = []
    for sub in doomed:
        shutil.rmtree(sub, ignore_errors=True)
        removed.append(sub.name)
    return removed


def compare_replay(recorded: dict, fresh: dict) -> dict:
    """Did a re-execution reproduce the recorded run?  Requires the
    same exit code, zero cross-run drift, and (when either side holds
    one) an identical counterexample fingerprint."""
    from repro.obs.rundiff import diff_manifests

    drift = diff_manifests(recorded, fresh)
    exit_match = recorded.get("exit_code") == fresh.get("exit_code")
    fp_match = True
    for key in ("mc", "run"):
        a = (recorded.get(key) or {}).get("fingerprint")
        b = (fresh.get(key) or {}).get("fingerprint")
        if a is not None or b is not None:
            fp_match = fp_match and a == b
    return {"reproduced": exit_match and fp_match and drift["empty"],
            "exit_match": exit_match,
            "fingerprint_match": fp_match,
            "drift": drift}
