"""Multi-process observability backplane: worker spools + aggregator.

Every surface built so far — events, spans, metrics, profiler, ledger,
``top``, the HTML report — assumes exactly one process.  This module
is the bridge that lets parallel work stay visible: each worker
process writes its *own* crash-safe telemetry spool, and a
deterministic aggregator merges N spools back into the exact
single-stream shapes the rest of the substrate already consumes.

Spool layout (one directory per run, one subdirectory per worker)::

    <spool>/
        worker-00/
            events.jsonl    # pid/worker-stamped event stream (sink-
                            # complete; fleet.heartbeat beats ride here)
            metrics.json    # MetricsRegistry.state() — raw buckets
            profile.json    # Profiler.state() — full triples + folded
            result.json     # the worker function's JSON return value
            worker.json     # meta: pid, wall, peak RSS, item count
        worker-01/
            ...

Each file is written once, at worker exit, except ``events.jsonl``
which streams — so ``repro top <spool>`` can tail a *live* fleet, and
a crashed worker leaves everything it flushed.  Writers append whole
lines; readers (:class:`~repro.obs.top._Tail` and
:func:`read_spool_events`) tolerate a torn final line.

The three layers:

* :class:`WorkerSpool` — worker-side handle bundling a pid/worker-
  stamped :class:`~repro.obs.events.EventStream`, a private
  :class:`~repro.obs.metrics.MetricsRegistry` and
  :class:`~repro.obs.profile.Profiler`, heartbeat emission (progress,
  RSS, throughput), and the spool write-out.
* :func:`run_fleet` — ``os.fork``-based fan-out: items are strided
  across N worker processes (``items[w::jobs]``), each child runs the
  worker function over its chunk with a :class:`WorkerSpool` and
  ``os._exit``\\ s (no pickling, no inherited-ledger double-finish, no
  atexit replay); the parent waits for all children and reassembles
  per-item results in the *original submission order*, so a parallel
  run is byte-identical to a sequential one.
* :func:`merge_spools` — the deterministic aggregator: one merged
  ``MetricsRegistry`` (instrument-level merge semantics live in
  :mod:`repro.obs.metrics`), one merged ``Profiler``, one pid-stamped
  event list ordered by ``(worker, seq)`` for per-process Chrome-trace
  lanes, and a schema-versioned ``{"kind": "fleet"}`` merge-summary
  document (per-worker rows, straggler attribution) that the HTML
  report renders as its Fleet section.

Environment propagation: :data:`ENV_WORKER`, :data:`ENV_SPOOL`, and
:data:`ENV_RUN_ID` are exported into each child so nested tooling can
discover its fleet context; :func:`resolve_jobs` implements the
``--jobs`` flag > ``REPRO_JOBS`` > 1 resolution shared by every
consumer.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.obs import schemas
from repro.obs.events import EventStream
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler, peak_rss_mb

SCHEMA_VERSION = schemas.FLEET

#: fleet context exported into forked workers
ENV_JOBS = "REPRO_JOBS"
ENV_WORKER = "REPRO_FLEET_WORKER"
ENV_SPOOL = "REPRO_FLEET_SPOOL"
ENV_RUN_ID = "REPRO_FLEET_RUN_ID"

#: merge-summary document schema (export.validate subset)
FLEET_SCHEMA = {
    "type": "object",
    "required": ["v", "kind", "jobs", "workers"],
    "properties": {
        "v": {"type": "integer"},
        "kind": {"type": "string", "enum": ["fleet"]},
        "jobs": {"type": "integer"},
        "label": {"type": "string"},
        "items": {"type": "integer"},
        "events": {"type": "integer"},
        "wall_s": {"type": "number"},
        "straggler": {"type": ["string", "null"]},
        "workers": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["worker", "pid", "items"],
                "properties": {
                    "worker": {"type": "string"},
                    "pid": {"type": "integer"},
                    "items": {"type": "integer"},
                    "events": {"type": "integer"},
                    "wall_s": {"type": "number"},
                    "rss_mb": {"type": "number"},
                },
            },
        },
    },
}


def resolve_jobs(flag: Optional[int] = None,
                 env: Optional[dict] = None) -> int:
    """``--jobs`` resolution shared by every consumer: explicit flag >
    ``REPRO_JOBS`` > 1.  Values below 1 clamp to 1."""
    if env is None:
        env = os.environ
    if flag is not None:
        return max(1, flag)
    raw = env.get(ENV_JOBS, "")
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def can_fork() -> bool:
    """Whether this platform supports the fork-based fan-out."""
    return hasattr(os, "fork")


def default_spool_root() -> pathlib.Path:
    """Where a consumer should spool when the caller did not say:
    under the active ledger run directory (so the spool becomes part
    of the run's artifact story), else a pid-scoped directory under
    the ledger root's sibling ``.repro/spool``."""
    from repro.obs import ledger

    recorder = ledger.current()
    if recorder is not None:
        return recorder.run_dir / "spool"
    root = pathlib.Path(os.environ.get("REPRO_LEDGER_DIR",
                                       ledger.DEFAULT_ROOT))
    return root.parent / "spool" / f"pid-{os.getpid()}"


def worker_name(index: int) -> str:
    return f"worker-{index:02d}"


class WorkerSpool:
    """Worker-side telemetry handle: one spool directory, one
    pid/worker-stamped event stream, private metrics + profiler, and
    heartbeat emission.  Construct it *in the worker process* (the
    event stream caches ``os.getpid()`` at construction)."""

    def __init__(self, root: Union[str, pathlib.Path], index: int,
                 capacity: int = 4096):
        self.index = index
        self.worker = worker_name(index)
        self.dir = pathlib.Path(root) / self.worker
        self.dir.mkdir(parents=True, exist_ok=True)
        self.pid = os.getpid()
        self.events = EventStream(capacity=capacity,
                                  sink=self.dir / "events.jsonl",
                                  worker=self.worker)
        self.metrics = MetricsRegistry()
        self.profiler = Profiler()
        self._started = time.perf_counter()
        self._done = 0
        self._total: Optional[int] = None

    def heartbeat(self, done: Optional[int] = None,
                  total: Optional[int] = None,
                  final: bool = False) -> dict:
        """Emit one ``fleet.heartbeat`` event: progress, peak RSS, and
        throughput.  ``repro top <spool-dir>`` renders these live."""
        if done is not None:
            self._done = done
        if total is not None:
            self._total = total
        elapsed = time.perf_counter() - self._started
        rate = self._done / elapsed if elapsed > 0 else 0.0
        return self.events.emit(
            "fleet.heartbeat", done=self._done, total=self._total,
            rss_mb=round(peak_rss_mb(), 1), rate=round(rate, 1),
            elapsed_s=round(elapsed, 6), final=final)

    def finish(self, result=None) -> None:
        """Final heartbeat, then write the once-at-exit spool files.
        ``result`` (any JSON-able value) lands in ``result.json`` for
        the parent to read back."""
        self.heartbeat(final=True)
        wall = time.perf_counter() - self._started
        self.events.close()
        (self.dir / "metrics.json").write_text(json.dumps(
            {"v": SCHEMA_VERSION, "kind": "fleet-metrics",
             "worker": self.worker, "pid": self.pid,
             "metrics": self.metrics.state()}, indent=1) + "\n")
        (self.dir / "profile.json").write_text(json.dumps(
            {"v": SCHEMA_VERSION, "kind": "fleet-profile",
             "worker": self.worker, "pid": self.pid,
             "profile": self.profiler.state()}, indent=1) + "\n")
        (self.dir / "worker.json").write_text(json.dumps(
            {"v": SCHEMA_VERSION, "kind": "fleet-worker",
             "worker": self.worker, "pid": self.pid,
             "items": self._done, "wall_s": round(wall, 6),
             "rss_mb": round(peak_rss_mb(), 1),
             "events": self.events.emitted}, indent=1) + "\n")
        if result is not None:
            (self.dir / "result.json").write_text(
                json.dumps(result) + "\n")


def read_spool_events(path: Union[str, pathlib.Path]) -> list[dict]:
    """Load one worker's ``events.jsonl`` tolerantly: blank lines are
    skipped and a torn (partially-written) final line is dropped — a
    crashed or still-running worker must not poison the merge."""
    path = pathlib.Path(path)
    if not path.exists():
        return []
    out = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue                  # torn line: writer was mid-write
        if isinstance(record, dict):
            out.append(record)
    return out


def _read_json(path: pathlib.Path) -> Optional[dict]:
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError:
        return None


class MergedEvents:
    """Minimal read-only event-stream view over merged records —
    exactly the surface :func:`repro.obs.chrometrace.to_trace_events`
    and crash bundles consume (``snapshot()`` / ``drain()``)."""

    def __init__(self, records: list[dict]):
        self._records = records

    def __len__(self) -> int:
        return len(self._records)

    def snapshot(self, kind: Optional[str] = None) -> list[dict]:
        if kind is None:
            return [dict(e) for e in self._records]
        return [dict(e) for e in self._records if e.get("kind") == kind]

    def drain(self, limit: Optional[int] = None) -> list[dict]:
        records = [dict(e) for e in self._records]
        if limit is not None and limit < len(records):
            return records[-limit:]
        return records


@dataclass
class FleetMerge:
    """Everything :func:`merge_spools` reassembles from N spools."""

    #: schema-versioned merge-summary document (``kind: "fleet"``) —
    #: what the report's Fleet section and the ledger note consume
    doc: dict
    #: merged registry (instrument-level merge, any order)
    metrics: MetricsRegistry
    #: merged profiler (triples + folded stacks summed)
    profiler: Profiler
    #: all worker events ordered by (worker, seq), pid/worker stamped
    events: MergedEvents
    #: worker result.json payloads, in worker order (None when absent)
    results: list = field(default_factory=list)


def merge_spools(root: Union[str, pathlib.Path],
                 label: str = "",
                 jobs: Optional[int] = None) -> FleetMerge:
    """Deterministically merge every ``worker-*/`` spool under
    ``root`` back into single-stream shapes.  Workers are processed in
    directory-name order and instruments merge associatively, so the
    result is independent of worker completion order."""
    root = pathlib.Path(root)
    worker_dirs = sorted(p for p in root.glob("worker-*")
                         if p.is_dir())
    metrics = MetricsRegistry()
    profiler = Profiler()
    merged_events: list[dict] = []
    results: list = []
    rows: list[dict] = []
    for wdir in worker_dirs:
        events = read_spool_events(wdir / "events.jsonl")
        merged_events.extend(events)
        mdoc = _read_json(wdir / "metrics.json")
        if mdoc:
            metrics.merge(MetricsRegistry.from_state(
                mdoc.get("metrics") or {}))
        pdoc = _read_json(wdir / "profile.json")
        if pdoc:
            profiler.merge(Profiler.from_state(
                pdoc.get("profile") or {}))
        meta = _read_json(wdir / "worker.json") or {}
        rdoc = _read_json(wdir / "result.json")
        results.append(rdoc)
        pid = meta.get("pid")
        if pid is None:
            pid = next((e.get("pid") for e in events
                        if e.get("pid") is not None), 0)
        rows.append({
            "worker": meta.get("worker", wdir.name),
            "pid": pid,
            "items": meta.get("items", 0),
            "events": meta.get("events", len(events)),
            "wall_s": meta.get("wall_s", 0.0),
            "rss_mb": meta.get("rss_mb", 0.0),
        })
    merged_events.sort(key=lambda e: (e.get("worker", ""),
                                      e.get("seq", 0)))
    straggler = max(rows, key=lambda r: r["wall_s"])["worker"] \
        if rows else None
    doc = {
        "v": SCHEMA_VERSION,
        "kind": "fleet",
        "jobs": jobs if jobs is not None else len(rows),
        "label": label,
        "items": sum(r["items"] for r in rows),
        "events": len(merged_events),
        "wall_s": max((r["wall_s"] for r in rows), default=0.0),
        "straggler": straggler,
        "workers": rows,
    }
    return FleetMerge(doc=doc, metrics=metrics, profiler=profiler,
                      events=MergedEvents(merged_events),
                      results=results)


def _run_worker(spool_root: pathlib.Path, index: int, items: list,
                worker_fn: Callable, heartbeat_every: int) -> None:
    """Child-process body: run the chunk, spool, ``os._exit``."""
    # the child inherited the parent's live ledger recorder; sever it
    # so nothing in the worker accidentally notes into (or finishes)
    # the parent's manifest — the parent owns the run
    from repro.obs import ledger
    recorder = ledger.current()
    if recorder is not None:
        os.environ[ENV_RUN_ID] = recorder.run_id
    ledger._CURRENT = None
    os.environ[ENV_WORKER] = worker_name(index)
    os.environ[ENV_SPOOL] = str(spool_root)
    exit_code = 0
    spool = WorkerSpool(spool_root, index)
    try:
        spool.heartbeat(done=0, total=len(items))
        out = []
        for i, item in enumerate(items):
            out.append(worker_fn(item, spool))
            if (i + 1) % heartbeat_every == 0:
                spool.heartbeat(done=i + 1)
            else:
                spool._done = i + 1
        spool.finish(result={"ok": True, "values": out})
    except BaseException:
        exit_code = 1
        try:
            spool.finish(result={"ok": False,
                                 "error": traceback.format_exc()})
        except BaseException:
            pass
    finally:
        # never unwind into the parent's stack: skip atexit hooks,
        # inherited ledger finalizers, and buffered-IO double-flush
        sys.stdout.flush()
        sys.stderr.flush()
        os._exit(exit_code)


def run_fleet(items: list, worker_fn: Callable, *,
              jobs: int, spool: Union[str, pathlib.Path, None] = None,
              label: str = "", heartbeat_every: int = 1) -> tuple:
    """Fan ``items`` across ``jobs`` forked worker processes and
    reassemble.

    ``worker_fn(item, spool)`` runs in the worker with its
    :class:`WorkerSpool` and returns a JSON-able per-item value.
    Items are strided (worker ``w`` gets ``items[w::jobs]``), so
    chunks balance without reordering; the parent reassembles per-item
    values in the **original submission order**, which is what makes
    ``--jobs N`` output byte-identical to sequential.

    Returns ``(values, merge)`` — per-item results in submission
    order and the :class:`FleetMerge` over all worker spools.  Raises
    ``RuntimeError`` carrying the worker traceback when any worker
    failed.  Platforms without ``os.fork`` run the chunks in-process
    (same spool layout, no parallelism).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    spool_root = pathlib.Path(spool) if spool is not None \
        else default_spool_root()
    spool_root.mkdir(parents=True, exist_ok=True)
    jobs = min(jobs, max(1, len(items)))
    chunks = [items[w::jobs] for w in range(jobs)]

    if not can_fork():               # pragma: no cover — POSIX CI
        for index, chunk in enumerate(chunks):
            ws = WorkerSpool(spool_root, index)
            out = [worker_fn(item, ws) for item in chunk]
            ws.finish(result={"ok": True, "values": out})
        return _reassemble(items, jobs, spool_root, label)

    # flush inherited buffers once, before any fork, so children never
    # replay half-written parent output
    sys.stdout.flush()
    sys.stderr.flush()
    pids = {}
    for index, chunk in enumerate(chunks):
        pid = os.fork()
        if pid == 0:
            _run_worker(spool_root, index, chunk, worker_fn,
                        heartbeat_every)
            os._exit(1)              # pragma: no cover — unreachable
        pids[pid] = index
    failures = []
    for pid, index in pids.items():
        _, status = os.waitpid(pid, 0)
        code = os.waitstatus_to_exitcode(status)
        if code != 0:
            failures.append((index, code))
    if failures:
        details = []
        for index, code in failures:
            rdoc = _read_json(spool_root / worker_name(index)
                              / "result.json") or {}
            details.append(f"{worker_name(index)} exit={code}: "
                           f"{rdoc.get('error', 'no traceback spooled')}")
        raise RuntimeError("fleet worker(s) failed:\n"
                           + "\n".join(details))
    return _reassemble(items, jobs, spool_root, label)


def _reassemble(items: list, jobs: int, spool_root: pathlib.Path,
                label: str) -> tuple:
    merge = merge_spools(spool_root, label=label, jobs=jobs)
    values: list = [None] * len(items)
    for w, rdoc in enumerate(merge.results):
        if not rdoc or not rdoc.get("ok"):
            raise RuntimeError(
                f"{worker_name(w)} left no usable result.json")
        for j, value in enumerate(rdoc["values"]):
            values[w + j * jobs] = value
    return values, merge
