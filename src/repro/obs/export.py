"""JSON serialization + schema validation for analysis/MC results.

Schemas are expressed in a small JSON-Schema subset (``type``,
``required``, ``properties``, ``items``, ``enum``; ``type`` may be a
list to express nullability) and checked by :func:`validate` — a
zero-dependency stand-in for ``jsonschema`` so the benchmark smoke job
and tests can assert well-formedness without installing anything.

Benchmark records follow the fixed schema
``{name, wall_s, states, transitions, states_per_s}`` (analysis
records report 0 states/transitions), written by :func:`write_bench`
as ``BENCH_analysis.json`` / ``BENCH_mc.json``.

The analysis serializer reaches back into :mod:`repro.analysis.report`
and is imported lazily to keep ``repro.obs`` free of import cycles.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional, Union

from repro.obs import schemas

#: throughput rates computed over windows at or below this are
#: noise-dominated (timer resolution + interpreter jitter swamp the
#: signal on sub-millisecond runs) and are reported as 0.0 so the
#: regression watchdog never compares them against real baselines
MIN_RATE_WINDOW_S = 0.001

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value, name: str) -> bool:
    if name == "number":
        return isinstance(value, (int, float)) \
            and not isinstance(value, bool)
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, _TYPES[name])


def validate(obj, schema: dict, path: str = "$") -> list[str]:
    """Check ``obj`` against the schema subset; return error strings
    (empty list = valid)."""
    errors: list[str] = []
    expected = schema.get("type")
    if expected is not None:
        names = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(obj, n) for n in names):
            errors.append(
                f"{path}: expected {'/'.join(names)}, "
                f"got {type(obj).__name__}")
            return errors
    if "enum" in schema and obj not in schema["enum"]:
        errors.append(f"{path}: {obj!r} not in {schema['enum']}")
    if isinstance(obj, dict):
        for key in schema.get("required", []):
            if key not in obj:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in obj:
                errors.extend(validate(obj[key], sub, f"{path}.{key}"))
    if isinstance(obj, list) and "items" in schema:
        for i, item in enumerate(obj):
            errors.extend(validate(item, schema["items"], f"{path}[{i}]"))
    return errors


# -- schemas -------------------------------------------------------------------

JUSTIFICATION_SCHEMA = {
    "type": "object",
    "required": ["step", "rule"],
    "properties": {
        "step": {"type": "string"},
        "rule": {"type": "string"},
        "mover": {"type": "string"},
        "theorem": {"type": "string"},
        "detail": {"type": "string"},
        "counts": {"type": "object"},
    },
}

LINE_SCHEMA = {
    "type": "object",
    "required": ["label", "text", "atomicity"],
    "properties": {
        "label": {"type": "string"},
        "text": {"type": "string"},
        "atomicity": {"type": "string"},
        "provenance": {"type": "array", "items": JUSTIFICATION_SCHEMA},
    },
}

ANALYSIS_SCHEMA = {
    "type": "object",
    "required": ["procedures", "all_atomic", "diagnostics"],
    "properties": {
        "procedures": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "atomic", "variants"],
                "properties": {
                    "name": {"type": "string"},
                    "atomic": {"type": "boolean"},
                    "variants": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["name", "body_atomicity",
                                         "lines"],
                            "properties": {
                                "name": {"type": "string"},
                                "body_atomicity": {"type": "string"},
                                "read_only": {"type": "boolean"},
                                "lines": {"type": "array",
                                          "items": LINE_SCHEMA},
                            },
                        },
                    },
                },
            },
        },
        "all_atomic": {"type": "boolean"},
        "diagnostics": {"type": "array", "items": {"type": "string"}},
        "options": {"type": "object"},
        "metrics": {"type": "object"},
        "trace": {"type": "array"},
        # "lint" / "downgrades" are tightened to LINT_SCHEMA /
        # DOWNGRADE_SCHEMA below, after those schemas are defined
        "lint": {"type": "object"},
        "downgrades": {"type": "array"},
    },
}

LINT_FINDING_SCHEMA = {
    "type": "object",
    "required": ["rule", "severity", "message", "line", "col"],
    "properties": {
        "rule": {"type": "string"},
        "severity": {"type": "string",
                     "enum": ["error", "warning", "info"]},
        "message": {"type": "string"},
        "proc": {"type": "string"},
        "line": {"type": "integer"},
        "col": {"type": "integer"},
        "end_line": {"type": "integer"},
        "end_col": {"type": "integer"},
        "fix": {"type": "string"},
        "region": {"type": "string"},
    },
}

#: versioned shape of ``LintResult.to_dict()`` (one linted target)
LINT_SCHEMA = {
    "type": "object",
    "required": ["v", "target", "findings", "summary"],
    "properties": {
        "v": {"type": "integer"},
        "target": {"type": "string"},
        "findings": {"type": "array", "items": LINT_FINDING_SCHEMA},
        "summary": {
            "type": "object",
            "required": ["errors", "warnings", "infos", "suppressed"],
            "properties": {
                "errors": {"type": "integer"},
                "warnings": {"type": "integer"},
                "infos": {"type": "integer"},
                "suppressed": {"type": "integer"},
            },
        },
    },
}

#: ``repro lint --json`` output: a run over one or more targets
LINT_REPORT_SCHEMA = {
    "type": "object",
    "required": ["v", "targets"],
    "properties": {
        "v": {"type": "integer"},
        "targets": {"type": "array", "items": LINT_SCHEMA},
    },
}

HOTSPOT_SCHEMA = {
    "type": "object",
    "required": ["name", "calls", "work", "wall_s"],
    "properties": {
        "name": {"type": "string"},
        "calls": {"type": "integer"},
        "work": {"type": "number"},
        "wall_s": {"type": "number"},
        "share": {"type": "number"},
    },
}

SAMPLE_SCHEMA = {
    "type": "object",
    "required": ["name", "calls", "cum_s"],
    "properties": {
        "name": {"type": "string"},
        "calls": {"type": "integer"},
        "cum_s": {"type": "number"},
    },
}

#: shape of ``Profiler.to_dict()`` — the ranked hotspot table embedded
#: in analysis/MC JSON under ``"profile"`` when ``--profile`` is on
PROFILE_SCHEMA = {
    "type": "object",
    "required": ["v", "hotspots"],
    "properties": {
        "v": {"type": "integer"},
        "hotspots": {"type": "array", "items": HOTSPOT_SCHEMA},
        # collapsed-stack view: {"outer;inner": wall_s} per region
        # nesting path — feeds the report's inline SVG flame chart
        # and the --profile-out folded export
        "folded": {"type": "object"},
        "sampled": {"type": "array", "items": SAMPLE_SCHEMA},
    },
}

ANALYSIS_SCHEMA["properties"]["profile"] = PROFILE_SCHEMA

#: shared invocation-metadata block embedded in analysis/MC documents
#: so artifacts are self-describing even outside the run ledger
RUN_META_SCHEMA = {
    "type": "object",
    "required": ["argv", "schema_versions"],
    "properties": {
        "argv": {"type": "array", "items": {"type": "string"}},
        "seed": {"type": ["integer", "null"]},
        "schema_versions": {"type": "object"},
        "run_id": {"type": ["string", "null"]},
    },
}

ANALYSIS_SCHEMA["properties"]["run_meta"] = RUN_META_SCHEMA

DOWNGRADE_SCHEMA = {
    "type": "object",
    "required": ["theorem", "region", "rules", "detail"],
    "properties": {
        "theorem": {"type": "string"},
        "region": {"type": "string"},
        "rules": {"type": "array", "items": {"type": "string"}},
        "detail": {"type": "string"},
    },
}

ANALYSIS_SCHEMA["properties"]["lint"] = LINT_SCHEMA
ANALYSIS_SCHEMA["properties"]["downgrades"] = {
    "type": "array", "items": DOWNGRADE_SCHEMA}

PATH_STEP_SCHEMA = {
    "type": "object",
    "required": ["tid", "desc", "kind"],
    "properties": {
        "tid": {"type": "integer"},
        "uid": {"type": ["integer", "null"]},
        "desc": {"type": "string"},
        "kind": {"type": "string",
                 "enum": ["init", "invoke", "stmt", "return", "atomic"]},
        "via": {"type": ["string", "null"]},
        "proc": {"type": ["string", "null"]},
    },
}

HEATMAP_ROW_SCHEMA = {
    "type": "object",
    "required": ["uid", "visits", "switches", "threads"],
    "properties": {
        "uid": {"type": "integer"},
        "proc": {"type": ["string", "null"]},
        "text": {"type": ["string", "null"]},
        "mover": {"type": ["string", "null"]},
        "visits": {"type": "integer"},
        "switches": {"type": "integer"},
        "threads": {"type": "integer"},
    },
}

#: per-statement source heatmap attached to mc --json documents
#: (visits × interleaving switches × mover class per CFG statement)
HEATMAP_SCHEMA = {
    "type": "object",
    "required": ["v", "annotated", "total_visits", "rows"],
    "properties": {
        "v": {"type": "integer"},
        "annotated": {"type": "boolean"},
        "total_visits": {"type": "integer"},
        "rows": {"type": "array", "items": HEATMAP_ROW_SCHEMA},
    },
}

MC_SCHEMA = {
    "type": "object",
    "required": ["mode", "states", "transitions", "elapsed_s",
                 "states_per_s", "capped"],
    "properties": {
        "mode": {"type": "string",
                 "enum": ["full", "por", "atomic", "both"]},
        "states": {"type": "integer"},
        "transitions": {"type": "integer"},
        "elapsed_s": {"type": "number"},
        "states_per_s": {"type": "number"},
        "violation": {"type": ["string", "null"]},
        "capped": {"type": "boolean"},
        "deadline_hit": {"type": "boolean"},
        "trace": {"type": "array", "items": {"type": "string"}},
        "path": {"type": "array", "items": PATH_STEP_SCHEMA},
        "metrics": {"type": "object"},
        "counterexample": {"type": "object"},
        "heatmap": HEATMAP_SCHEMA,
        "profile": PROFILE_SCHEMA,
        "run_meta": RUN_META_SCHEMA,
    },
}

CEX_STEP_SCHEMA = {
    "type": "object",
    "required": ["seq", "tid", "kind", "desc", "text", "mover",
                 "citation", "theorems"],
    "properties": {
        "seq": {"type": "integer"},
        "tid": {"type": "integer"},
        "kind": {"type": "string",
                 "enum": ["invoke", "stmt", "return", "atomic"]},
        "desc": {"type": "string"},
        "text": {"type": "string"},
        "proc": {"type": ["string", "null"]},
        "variant": {"type": ["string", "null"]},
        "mover": {"type": "string"},
        "citation": {"type": "string"},
        "theorems": {"type": "array", "items": {"type": "string"}},
        "provenance": {"type": "array", "items": JUSTIFICATION_SCHEMA},
    },
}

CEX_SCHEMA = {
    "type": "object",
    "required": ["v", "violation", "mode", "annotated", "steps"],
    "properties": {
        "v": {"type": "integer"},
        "violation": {"type": "string"},
        "mode": {"type": "string"},
        "annotated": {"type": "boolean"},
        "steps": {"type": "array", "items": CEX_STEP_SCHEMA},
        "downgrades": {"type": "array", "items": DOWNGRADE_SCHEMA},
    },
}

#: bare v1 bench record arrays carry no stamp and remain accepted
#: everywhere alongside v2 wrapped files
BENCH_SCHEMA_VERSION = schemas.BENCH

BENCH_RECORD_SCHEMA = {
    "type": "object",
    "required": ["name", "wall_s", "states", "transitions",
                 "states_per_s"],
    "properties": {
        "name": {"type": "string"},
        "wall_s": {"type": "number"},
        "states": {"type": "integer"},
        "transitions": {"type": "integer"},
        "states_per_s": {"type": "number"},
        # percentile estimates come from the log-bucketed Histogram
        # sketch: each is the *upper bound* of the bucket holding the
        # rank sample (clamped to the observed range), so they can
        # overstate the true quantile by up to ~19% but never more.
        "percentiles": {
            "type": "object",
            "required": ["p50", "p95", "p99"],
            "properties": {
                "p50": {"type": "number"},
                "p95": {"type": "number"},
                "p99": {"type": "number"},
            },
        },
        # peak RSS of the process at record time (MB; 0 when the
        # platform offers no resource.getrusage)
        "mem_peak_mb": {"type": "number"},
        # canonical-hash dedup hit rate of the exploration (hits over
        # lookups; 0 for analysis records)
        "dedup_hit_rate": {"type": "number"},
        # deterministic profiler counters ({region: {calls, work}})
        # from the harness's dedicated profiled pass — the substrate
        # repro perf diff attributes regressions with
        "counters": {"type": "object"},
        # repeat statistics from the statistical bench harness
        # (repro bench run): when present, wall_s IS the median and
        # the regression watchdog gates on it with iqr as the noise
        # band instead of single-sample thresholds
        "stats": {
            "type": "object",
            "required": ["repeats", "min", "median", "iqr"],
            "properties": {
                "repeats": {"type": "integer"},
                "min": {"type": "number"},
                "max": {"type": "number"},
                "mean": {"type": "number"},
                "median": {"type": "number"},
                "iqr": {"type": "number"},
            },
        },
    },
}

BENCH_FILE_SCHEMA = {"type": "array", "items": BENCH_RECORD_SCHEMA}

#: environment fingerprint stamped into v2 bench files and every
#: BENCH_history.jsonl line, so perf numbers are never compared
#: across machines/interpreters without noticing
BENCH_ENV_SCHEMA = {
    "type": "object",
    "required": ["python", "platform", "cpu_count"],
    "properties": {
        "git_rev": {"type": ["string", "null"]},
        "python": {"type": "string"},
        "platform": {"type": "string"},
        "cpu_count": {"type": ["integer", "null"]},
    },
}

#: v2 bench file: the record array wrapped with provenance — schema
#: version, environment fingerprint, and the repeat policy that
#: produced the medians.  v1 bare arrays remain readable everywhere
#: (:func:`bench_records` / :func:`validate_bench_file` accept both).
BENCH_RUN_SCHEMA = {
    "type": "object",
    "required": ["v", "env", "records"],
    "properties": {
        "v": {"type": "integer"},
        "at": {"type": "number"},
        "env": BENCH_ENV_SCHEMA,
        "repeats": {"type": "integer"},
        "warmup": {"type": "integer"},
        "records": BENCH_FILE_SCHEMA,
    },
}


#: one ranked row of a differential-profiling attribution table
PERFDIFF_ROW_SCHEMA = {
    "type": "object",
    "required": ["name", "group", "units_a", "units_b", "delta",
                 "delta_pct", "drift"],
    "properties": {
        "name": {"type": "string"},
        "group": {"type": "string"},
        "units_a": {"type": "integer"},
        "units_b": {"type": "integer"},
        "delta": {"type": "integer"},
        "delta_pct": {"type": "number"},
        "drift": {"type": "boolean"},
        "wall_a_s": {"type": "number"},
        "wall_b_s": {"type": "number"},
    },
}

#: ``repro perf diff --json`` / ``PERFDIFF_attribution.json``: the
#: attributed regression document (:mod:`repro.obs.perfdiff`)
PERFDIFF_SCHEMA = {
    "type": "object",
    "required": ["v", "kind", "a", "b", "threshold", "drift", "rows"],
    "properties": {
        "v": {"type": "integer"},
        "kind": {"enum": ["perfdiff"]},
        "a": {"type": "string"},
        "b": {"type": "string"},
        "threshold": {"type": "number"},
        "drift": {"type": "boolean"},
        "drifted": {"type": "array", "items": {"type": "string"}},
        "rows": {"type": "array", "items": PERFDIFF_ROW_SCHEMA},
        "groups": {"type": "object"},
        "paths": {"type": "array"},
    },
}


# -- serializers ---------------------------------------------------------------

def run_meta(seed: Optional[int] = None) -> dict:
    """The shared ``run_meta`` block: argv, seed, schema versions, and
    the ledger run id when a recorder is active.  Library callers
    (tests, notebooks) get ``sys.argv``-derived metadata, so every
    exported artifact says what produced it."""
    import sys

    from repro.obs import ledger

    recorder = ledger.current()
    meta: dict = {
        "argv": [str(a) for a in (recorder.argv if recorder is not None
                                  else sys.argv[1:])],
        "seed": seed if seed is not None
        else (recorder.seed if recorder is not None else None),
        "schema_versions": ledger.schema_versions(),
        "run_id": recorder.run_id if recorder is not None else None,
    }
    return meta


def mc_to_dict(result) -> dict:
    """Serialize an :class:`~repro.mc.explorer.MCResult`."""
    out = {
        "mode": result.mode,
        "states": result.states,
        "transitions": result.transitions,
        "elapsed_s": round(result.elapsed, 6),
        "states_per_s": round(result.states_per_s, 3),
        "violation": result.violation,
        "capped": result.capped,
        "deadline_hit": bool(getattr(result, "deadline_hit", False)),
        "trace": list(result.trace),
        "metrics": dict(getattr(result, "metrics", {}) or {}),
    }
    path = getattr(result, "path", None)
    if path:
        out["path"] = [dict(step) for step in path]
    profile = getattr(result, "profile", None)
    if profile:
        out["profile"] = dict(profile)
    out["run_meta"] = run_meta()
    return out


def analysis_to_dict(result, include_provenance: bool = True) -> dict:
    """Serialize an :class:`~repro.analysis.inference.AnalysisResult`
    with per-line verdicts and provenance chains."""
    import string

    from repro.analysis.report import line_provenance, variant_lines

    prefixes = iter(string.ascii_lowercase)
    procedures = []
    for name, verdict in result.verdicts.items():
        variants = []
        for report in verdict.variants:
            prefix = next(prefixes, "z")
            lines = []
            for line in variant_lines(report, prefix):
                entry: dict = {
                    "label": line.label,
                    "text": line.text,
                    "atomicity": str(line.atomicity),
                }
                if include_provenance:
                    entry["provenance"] = [
                        j.to_dict()
                        for j in line_provenance(report, line)]
                lines.append(entry)
            variants.append({
                "name": report.variant.name,
                "body_atomicity": str(report.body_atomicity),
                "read_only": report.read_only,
                "lines": lines,
            })
        procedures.append({"name": name, "atomic": verdict.atomic,
                           "variants": variants})
    out: dict = {
        "procedures": procedures,
        "all_atomic": result.all_atomic,
        "diagnostics": list(result.diagnostics),
        "options": {k: bool(v)
                    for k, v in vars(result.options).items()},
    }
    if getattr(result, "metrics", None):
        out["metrics"] = dict(result.metrics)
    if getattr(result, "trace", None):
        out["trace"] = list(result.trace)
    lint = getattr(result, "lint", None)
    if lint is not None:
        out["lint"] = lint.to_dict()
    downgrades = getattr(result, "downgrades", None)
    if downgrades:
        out["downgrades"] = [dict(d) for d in downgrades]
    profile = getattr(result, "profile", None)
    if profile:
        out["profile"] = dict(profile)
    out["run_meta"] = run_meta()
    return out


# -- benchmark records ---------------------------------------------------------

def bench_record(name: str, wall_s: float, states: int = 0,
                 transitions: int = 0,
                 percentiles: Optional[dict] = None,
                 mem_peak_mb: Optional[float] = None,
                 dedup_hit_rate: Optional[float] = None,
                 stats: Optional[dict] = None) -> dict:
    """One ``BENCH_*.json`` entry; ``states_per_s`` is 0 for records
    with no state count (pure analysis timings) and for runs shorter
    than :data:`MIN_RATE_WINDOW_S` (sub-millisecond rates are timer
    noise, not throughput).  ``percentiles`` is an optional
    ``{p50, p95, p99}`` dict of per-round wall times (from
    :meth:`repro.obs.metrics.Histogram.to_dict`; the estimates are
    bucket *upper bounds*, see that class) so the regression watchdog
    can gate tail latency, not just the headline number.
    ``mem_peak_mb`` / ``dedup_hit_rate`` carry the explorer's resource
    accounting into the perf trajectory."""
    out = {
        "name": name,
        "wall_s": round(float(wall_s), 6),
        "states": int(states),
        "transitions": int(transitions),
        "states_per_s": round(states / wall_s, 3)
        if wall_s > MIN_RATE_WINDOW_S and states else 0.0,
    }
    if percentiles is not None:
        out["percentiles"] = {k: round(float(percentiles[k]), 6)
                              for k in ("p50", "p95", "p99")}
    if mem_peak_mb is not None:
        out["mem_peak_mb"] = round(float(mem_peak_mb), 3)
    if dedup_hit_rate is not None:
        out["dedup_hit_rate"] = round(float(dedup_hit_rate), 6)
    if stats is not None:
        out["stats"] = {k: (int(v) if k == "repeats"
                            else round(float(v), 6))
                        for k, v in stats.items()}
    return out


def bench_records(doc) -> list[dict]:
    """The record array of a loaded bench document — a v1 bare array
    or a v2 ``{v, env, records}`` wrapper (already validated or
    trusted)."""
    if isinstance(doc, dict):
        return list(doc.get("records", []))
    return list(doc)


def write_bench(path: Union[str, pathlib.Path],
                doc) -> pathlib.Path:
    """Validate and write a benchmark file — a v1 record array or a v2
    ``{v, env, records}`` run document.  When a ledger run is active
    the records are also attached to it as a content-addressed
    artifact plus a ``bench`` note, so ``runs diff`` can render bench
    deltas."""
    schema = BENCH_RUN_SCHEMA if isinstance(doc, dict) \
        else BENCH_FILE_SCHEMA
    errors = validate(doc, schema)
    if errors:
        raise ValueError("invalid bench records: " + "; ".join(errors))
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    from repro.obs import ledger
    if ledger.current() is not None:
        ledger.add_artifact(path.name, doc)
        ledger.note("bench", {"records": bench_records(doc)})
    return path


def validate_bench_file(path: Union[str, pathlib.Path]) -> list[dict]:
    """Load + validate a ``BENCH_*.json`` file (v1 array or v2 run
    document), returning its records.  Raises ``ValueError`` on schema
    violations."""
    doc = json.loads(pathlib.Path(path).read_text())
    schema = BENCH_RUN_SCHEMA if isinstance(doc, dict) \
        else BENCH_FILE_SCHEMA
    errors = validate(doc, schema)
    if errors:
        raise ValueError(f"{path}: " + "; ".join(errors))
    return bench_records(doc)


def main(argv: Optional[list[str]] = None) -> int:  # pragma: no cover
    """``python -m repro.obs.export FILE...`` — validate bench files."""
    import sys

    argv = sys.argv[1:] if argv is None else argv
    status = 0
    for name in argv:
        try:
            records = validate_bench_file(name)
        except (ValueError, OSError, json.JSONDecodeError) as exc:
            print(f"FAIL {name}: {exc}", file=sys.stderr)
            status = 1
        else:
            print(f"ok {name}: {len(records)} record(s)")
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
