"""Cross-run drift diffing over ledger manifests.

``repro runs diff A B`` answers the regression question a conservative
analysis needs answered across commits: did any block's atomicity
class change, were theorem applications (5.3/5.4 windows, …) gained or
lost, did lint findings appear or disappear, did the MC verdict or its
counterexample fingerprint move?  Timing fields (wall/CPU seconds,
bench walls) are reported as *informational* deltas and never count as
drift — two byte-identical analyses a week apart must diff empty.

The document shape (``--json``)::

    {"v": 1, "a": <run_id>, "b": <run_id>, "empty": bool,
     "classification": [{"block", "a", "b"}, ...],
     "procedures":     [{"name", "a", "b"}, ...],
     "theorems":       [{"block", "gained", "lost"}, ...],
     "lint":           [{"target", "rule", "a", "b"}, ...],
     "execution":      [{"source", "field", "a", "b"}, ...],
     "experiments":    [{"mode", "field", "a", "b"}, ...],
     "outcome": {...} | null, "exit_code": {...} | null,
     "info": {"wall_s": {"a", "b"}, "bench": [...]}}

``empty`` is True exactly when every drift category (everything except
``info``) is empty/None.
"""

from __future__ import annotations

from typing import Optional

DIFF_VERSION = 1

#: manifest keys whose dicts are compared field-by-field under the
#: ``execution`` category (fingerprint identity lives here)
_EXECUTION_KEYS = ("mc", "run")

#: execution fields that are always drift when they differ
_EXECUTION_FIELDS = ("mode", "states", "transitions", "violation",
                     "capped", "fingerprint", "seed")


def _map_drift(a: dict, b: dict, key_name: str) -> list[dict]:
    """Generic ``{key: value}`` map comparison, sorted by key."""
    out = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va != vb:
            out.append({key_name: key, "a": va, "b": vb})
    return out


def _theorem_drift(a: dict, b: dict) -> list[dict]:
    out = []
    for block in sorted(set(a) | set(b)):
        ta, tb = set(a.get(block, [])), set(b.get(block, []))
        if ta != tb:
            out.append({"block": block,
                        "gained": sorted(tb - ta),
                        "lost": sorted(ta - tb)})
    return out


def _lint_drift(a: dict, b: dict) -> list[dict]:
    """Per (target, rule) count deltas over the manifests' lint
    summaries (``{"targets": {target: {rule: count}}}``)."""
    ta, tb = a.get("targets", {}), b.get("targets", {})
    out = []
    for target in sorted(set(ta) | set(tb)):
        ra, rb = ta.get(target, {}), tb.get(target, {})
        for rule in sorted(set(ra) | set(rb)):
            na, nb = ra.get(rule, 0), rb.get(rule, 0)
            if na != nb:
                out.append({"target": target, "rule": rule,
                            "a": na, "b": nb})
    return out


def _execution_drift(a: dict, b: dict) -> list[dict]:
    out = []
    for source in _EXECUTION_KEYS:
        ea, eb = a.get(source) or {}, b.get(source) or {}
        if not ea and not eb:
            continue
        for field in _EXECUTION_FIELDS:
            va, vb = ea.get(field), eb.get(field)
            if va != vb:
                out.append({"source": source, "field": field,
                            "a": va, "b": vb})
    return out


#: experiment verdict fields that count as drift (never timings: a
#: parallel --jobs grid must diff empty against a sequential one)
_EXPERIMENT_FIELDS = ("states", "transitions", "violation", "capped")


def _experiments_drift(a: dict, b: dict) -> list[dict]:
    """Per-mode verdict deltas over the manifests' ``experiments``
    notes (``{"name", "verdicts": {mode: {states, ...}}}``).  Only
    compared when both runs recorded the *same* experiment — a grid
    run diffed against an unrelated run is not drift."""
    if not a or not b or a.get("name") != b.get("name"):
        return []
    out = []
    if a.get("matches_paper") != b.get("matches_paper"):
        out.append({"mode": "(grid)", "field": "matches_paper",
                    "a": a.get("matches_paper"),
                    "b": b.get("matches_paper")})
    va, vb = a.get("verdicts") or {}, b.get("verdicts") or {}
    for mode in sorted(set(va) | set(vb)):
        ea, eb = va.get(mode) or {}, vb.get(mode) or {}
        for field in _EXPERIMENT_FIELDS:
            fa, fb = ea.get(field), eb.get(field)
            if fa != fb:
                out.append({"mode": mode, "field": field,
                            "a": fa, "b": fb})
    return out


def _bench_info(a: dict, b: dict) -> list[dict]:
    """Informational wall-time deltas between bench artifacts both
    runs recorded (matched by record name)."""
    def records(manifest: dict) -> dict:
        out = {}
        for note_key in ("bench", ):
            for rec in manifest.get(note_key, {}).get("records", []):
                out[rec.get("name")] = rec
        return out

    ra, rb = records(a), records(b)
    out = []
    for name in sorted(set(ra) & set(rb)):
        wa = ra[name].get("wall_s")
        wb = rb[name].get("wall_s")
        if wa and wb:
            out.append({"name": name, "metric": "wall_s",
                        "a": wa, "b": wb,
                        "pct": round((wb - wa) / wa * 100, 1)})
    return out


def diff_manifests(a: dict, b: dict) -> dict:
    """Drift document between two run manifests (see module doc)."""
    ca = a.get("analysis") or {}
    cb = b.get("analysis") or {}
    classification = _map_drift(ca.get("blocks", {}),
                                cb.get("blocks", {}), "block")
    classification += _map_drift(ca.get("variants", {}),
                                 cb.get("variants", {}), "block")
    classification += _map_drift(ca.get("partitions", {}),
                                 cb.get("partitions", {}), "block")
    procedures = _map_drift(ca.get("procedures", {}),
                            cb.get("procedures", {}), "name")
    theorems = _theorem_drift(ca.get("theorems", {}),
                              cb.get("theorems", {}))
    downs_a = ca.get("downgrades") or []
    downs_b = cb.get("downgrades") or []
    if downs_a != downs_b:
        theorems.append({"block": "(downgrades)",
                         "gained": [str(d) for d in downs_b
                                    if d not in downs_a],
                         "lost": [str(d) for d in downs_a
                                  if d not in downs_b]})
    lint = _lint_drift(a.get("lint") or {}, b.get("lint") or {})
    execution = _execution_drift(a, b)
    experiments = _experiments_drift(a.get("experiments") or {},
                                     b.get("experiments") or {})
    outcome: Optional[dict] = None
    if a.get("outcome") != b.get("outcome"):
        outcome = {"a": a.get("outcome"), "b": b.get("outcome")}
    exit_code: Optional[dict] = None
    if a.get("exit_code") != b.get("exit_code"):
        exit_code = {"a": a.get("exit_code"), "b": b.get("exit_code")}
    empty = not (classification or procedures or theorems or lint
                 or execution or experiments or outcome or exit_code)
    return {
        "v": DIFF_VERSION,
        "a": a.get("run_id"),
        "b": b.get("run_id"),
        "commands": [a.get("command"), b.get("command")],
        "classification": classification,
        "procedures": procedures,
        "theorems": theorems,
        "lint": lint,
        "execution": execution,
        "experiments": experiments,
        "outcome": outcome,
        "exit_code": exit_code,
        "info": {
            "wall_s": {"a": a.get("wall_s"), "b": b.get("wall_s")},
            "bench": _bench_info(a, b),
        },
        "empty": empty,
    }


def _rows(diff: dict) -> list[tuple[str, str]]:
    rows: list[tuple[str, str]] = []
    for entry in diff["classification"]:
        rows.append(("class", f"{entry['block']}: "
                     f"{entry['a']} -> {entry['b']}"))
    for entry in diff["procedures"]:
        rows.append(("verdict", f"{entry['name']}: atomic "
                     f"{entry['a']} -> {entry['b']}"))
    for entry in diff["theorems"]:
        gained = ", ".join(entry["gained"]) or "-"
        lost = ", ".join(entry["lost"]) or "-"
        rows.append(("theorem", f"{entry['block']}: "
                     f"gained [{gained}] lost [{lost}]"))
    for entry in diff["lint"]:
        rows.append(("lint", f"{entry['target']} {entry['rule']}: "
                     f"{entry['a']} -> {entry['b']}"))
    for entry in diff["execution"]:
        rows.append((entry["source"], f"{entry['field']}: "
                     f"{entry['a']} -> {entry['b']}"))
    for entry in diff.get("experiments", []):
        rows.append(("experiment", f"{entry['mode']}.{entry['field']}:"
                     f" {entry['a']} -> {entry['b']}"))
    if diff["outcome"]:
        rows.append(("outcome", f"{diff['outcome']['a']} -> "
                     f"{diff['outcome']['b']}"))
    if diff["exit_code"]:
        rows.append(("exit", f"{diff['exit_code']['a']} -> "
                     f"{diff['exit_code']['b']}"))
    return rows


def render_diff(diff: dict) -> str:
    """Fixed-width drift table (one row per drifted item), with the
    informational wall-time delta as a trailing note."""
    header = f"runs diff {diff['a']} -> {diff['b']}"
    lines = [header]
    rows = _rows(diff)
    if not rows:
        lines.append("no drift (classification, theorems, lint, and "
                     "execution all match)")
    else:
        width = max(len(kind) for kind, _ in rows)
        width = max(width, len("category"))
        lines.append(f"{'category'.ljust(width)} | change")
        lines.append(f"{'-' * width}-+-{'-' * 40}")
        for kind, text in rows:
            lines.append(f"{kind.ljust(width)} | {text}")
    info = diff.get("info", {})
    walls = info.get("wall_s", {})
    if walls.get("a") is not None and walls.get("b") is not None:
        lines.append(f"(info) wall_s {walls['a']:.3f} -> "
                     f"{walls['b']:.3f}")
    for entry in info.get("bench", []):
        lines.append(f"(info) bench {entry['name']} wall_s "
                     f"{entry['a']:.6g} -> {entry['b']:.6g} "
                     f"({entry['pct']:+.1f}%)")
    return "\n".join(lines)
