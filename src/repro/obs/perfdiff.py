"""Differential profiling: attributed perf-regression forensics.

The regress watchdog says *that* ``wall_s``/``states_per_s`` drifted;
this module says *where the work went*.  It diffs two profile sides —
deterministic work counters per region (``analysis.*``, ``mc.*``,
``theorem.*``, ``lint.*``, ``summary.*``) plus the collapsed-stack
wall attribution — and emits a ranked attribution table::

    mc.successors   explorer   12000 -> 17000  +41.7%  DRIFT
    mc.canonicalize explorer    8000 ->  8000   +0.0%
    mc.dedup        explorer    5200 ->  5044   -3.0%

A *side* resolves from any profile-bearing artifact
(:func:`resolve_side`):

* a ledgered run (id / unique prefix / ``last`` / ``-N``, exactly like
  ``repro runs diff``) — counters come from its recorded
  ``analysis.json`` / ``mc.json`` profile blocks, ``BENCH_*`` bench
  artifacts, or the crash bundle's ``profile_counters``;
* a ``BENCH_*.json`` file or a directory of them (``repro bench run``
  records carry a ``counters`` block from a dedicated profiled pass);
* an analysis/MC ``--json`` document (embedded ``profile``), a bare
  profile document, or a ``--profile-out`` collapsed-stack file.

Drift gating is deliberately counter-based: work counters are
deterministic (two identical seeded runs produce identical counters,
so ``repro perf diff`` between them is empty by construction — the CI
forensics canary), which means any growth past the watchdog-style
relative threshold is real algorithmic work, not scheduler jitter.
Wall times and folded-path deltas ride along as informational columns.

``repro perf diff A B`` exits 0 (no attributed drift), 1 (drift), 2
(usage error); ``--json`` emits the schema-versioned document
(:data:`repro.obs.export.PERFDIFF_SCHEMA`, version
``schemas.PERFDIFF``).  When the regress watchdog fails a gate it
auto-writes the same document as ``PERFDIFF_attribution.json`` next to
the fresh bench files — see :mod:`repro.obs.regress`.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional, Union

from repro.obs.schemas import PERFDIFF as SCHEMA_VERSION

#: relative attributed-work growth a region must exceed to gate —
#: mirrors the watchdog's wall_s threshold so "attributed drift"
#: and "observed drift" mean the same magnitude
DEFAULT_THRESHOLD = 0.25

#: absolute work-unit delta a drifting region must also clear (a
#: 1 -> 2 counter step is +100% and still meaningless)
WORK_FLOOR = 16

#: informational folded-path rows kept in the document
PATH_LIMIT = 20

#: region-name prefix -> attribution group
_GROUPS = (
    ("mc.", "explorer"),
    ("theorem.", "theorem"),
    ("lint.", "lint-rule"),
    ("analysis.", "analysis-pass"),
    ("summary.", "summary-cache"),
)


def group_of(name: str) -> str:
    """Attribution group of a profiler region name."""
    for prefix, group in _GROUPS:
        if name.startswith(prefix):
            return group
    return "other"


# -- side construction ---------------------------------------------------------

def _empty_side(label: str) -> dict:
    return {"label": label, "counters": {}, "wall": {}, "folded": {}}


def _merge_side(side: dict, counters: Optional[dict] = None,
                wall: Optional[dict] = None,
                folded: Optional[dict] = None) -> dict:
    for name, entry in (counters or {}).items():
        tgt = side["counters"].setdefault(name, {"calls": 0, "work": 0})
        tgt["calls"] += int(entry.get("calls", 0))
        tgt["work"] += int(entry.get("work", 0))
    for name, wall_s in (wall or {}).items():
        side["wall"][name] = side["wall"].get(name, 0.0) + float(wall_s)
    for path, wall_s in (folded or {}).items():
        side["folded"][path] = side["folded"].get(path, 0.0) \
            + float(wall_s)
    return side


def side_from_profile_doc(label: str, doc: dict,
                          side: Optional[dict] = None) -> dict:
    """A side from a profile document (``{v, hotspots, folded?}``)."""
    side = side if side is not None else _empty_side(label)
    counters = {e["name"]: {"calls": e.get("calls", 0),
                            "work": e.get("work", 0)}
                for e in doc.get("hotspots", [])}
    wall = {e["name"]: e.get("wall_s", 0.0)
            for e in doc.get("hotspots", [])}
    return _merge_side(side, counters, wall, doc.get("folded"))


def side_from_records(label: str, records: list,
                      side: Optional[dict] = None) -> dict:
    """A side from bench records: sum the ``counters`` blocks the
    harness collects in its dedicated profiled pass; record medians
    join the wall column under the record name."""
    side = side if side is not None else _empty_side(label)
    for record in records:
        _merge_side(side, record.get("counters"))
        if record.get("name"):
            side["wall"][record["name"]] = \
                side["wall"].get(record["name"], 0.0) \
                + float(record.get("wall_s", 0.0))
    return side


def side_from_folded(label: str, folded_usecs: dict,
                     side: Optional[dict] = None) -> dict:
    """A side from a parsed ``--profile-out`` collapsed-stack file
    (``{escaped_path: usecs}``).  Folded files carry no counters, so
    the leaf frame's wall time doubles as the comparison surface."""
    from repro.obs.profile import split_path

    side = side if side is not None else _empty_side(label)
    for path, usecs in folded_usecs.items():
        wall_s = usecs / 1_000_000
        side["folded"][path] = side["folded"].get(path, 0.0) + wall_s
        leaf = split_path(path)[-1]
        side["wall"][leaf] = side["wall"].get(leaf, 0.0) + wall_s
    return side


def _side_from_json_doc(label: str, doc, side: dict) -> bool:
    """Merge whatever profile data a JSON document carries; returns
    whether anything was found."""
    from repro.obs.export import bench_records

    if isinstance(doc, list):        # v1 bare bench record array
        side_from_records(label, doc, side)
        return bool(doc)
    if not isinstance(doc, dict):
        return False
    if "hotspots" in doc:            # bare profile document
        side_from_profile_doc(label, doc, side)
        return True
    found = False
    if isinstance(doc.get("profile"), dict):   # analysis/mc --json
        side_from_profile_doc(label, doc["profile"], side)
        found = True
    if isinstance(doc.get("profile_counters"), dict):  # crash bundle
        _merge_side(side, doc["profile_counters"])
        found = True
    if isinstance(doc.get("records"), list):   # v2 bench document
        side_from_records(label, bench_records(doc), side)
        found = True
    return found


def _side_from_file(path: pathlib.Path) -> dict:
    from repro.obs.profile import parse_folded_lines

    side = _empty_side(str(path))
    text = path.read_text()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        folded = parse_folded_lines(text.splitlines())
        if not folded:
            raise ValueError(
                f"{path} is neither JSON nor collapsed-stack format")
        return side_from_folded(str(path), folded, side)
    if not _side_from_json_doc(str(path), doc, side):
        raise ValueError(f"{path} carries no profile data (expected "
                         f"a profile/analysis/mc/bench document)")
    return side


def _side_from_dir(path: pathlib.Path) -> dict:
    side = _empty_side(str(path))
    found = False
    for child in sorted(path.glob("BENCH_*.json")):
        try:
            doc = json.loads(child.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        found = _side_from_json_doc(str(child), doc, side) or found
    if not found:
        raise ValueError(f"no profile-bearing BENCH_*.json under "
                         f"{path} (re-run repro bench run)")
    return side


def _side_from_ledger(token: str,
                      root: Union[None, str, pathlib.Path]) -> dict:
    from repro.errors import ReproError
    from repro.obs import ledger

    ledger_root = ledger.ledger_root(root)
    try:
        run_id = ledger.resolve_run(ledger_root, token)
    except ReproError as exc:
        raise ValueError(str(exc))
    side = _empty_side(f"ledger:{run_id}")
    docs = ledger.load_artifact_docs(ledger_root, run_id)
    found = False
    for name in sorted(docs):
        found = _side_from_json_doc(name, docs[name], side) or found
    if not found:
        raise ValueError(
            f"run {run_id} recorded no profile data — re-run with "
            f"--profile (analysis/mc) or use repro bench run artifacts")
    return side


def resolve_side(spec: str,
                 root: Union[None, str, pathlib.Path] = None) -> dict:
    """Resolve one ``perf diff`` operand: an artifact file, a
    directory of ``BENCH_*.json``, or a ledger run token
    (id/prefix/``last``/``-N``).  Raises ``ValueError`` with a usage
    message when nothing profile-bearing resolves."""
    path = pathlib.Path(spec)
    if path.is_file():
        return _side_from_file(path)
    if path.is_dir():
        return _side_from_dir(path)
    return _side_from_ledger(spec, root)


# -- attribution ---------------------------------------------------------------

def attribute(a: dict, b: dict,
              threshold: float = DEFAULT_THRESHOLD) -> dict:
    """Rank the work-counter deltas between two sides (``a`` older,
    ``b`` newer) into the schema-versioned attribution document.
    ``drift`` is True when any region's deterministic work grew past
    ``threshold`` (and :data:`WORK_FLOOR` absolute units) — shrinking
    work is a speedup and never gates, mirroring the watchdog."""
    rows: list[dict] = []
    names = set(a["counters"]) | set(b["counters"])
    for name in names:
        ca = a["counters"].get(name, {"calls": 0, "work": 0})
        cb = b["counters"].get(name, {"calls": 0, "work": 0})
        units_a = int(ca["calls"]) + int(ca["work"])
        units_b = int(cb["calls"]) + int(cb["work"])
        delta = units_b - units_a
        if units_a > 0:
            rel = delta / units_a
        else:
            rel = 1.0 if units_b else 0.0
        drifted = (delta > WORK_FLOOR and rel > threshold)
        row = {"name": name, "group": group_of(name),
               "units_a": units_a, "units_b": units_b,
               "delta": delta, "delta_pct": round(rel * 100, 1),
               "drift": drifted}
        wall_a = a["wall"].get(name)
        wall_b = b["wall"].get(name)
        if wall_a is not None or wall_b is not None:
            row["wall_a_s"] = round(wall_a or 0.0, 6)
            row["wall_b_s"] = round(wall_b or 0.0, 6)
        rows.append(row)
    rows.sort(key=lambda r: (-abs(r["delta"]), r["name"]))

    groups: dict[str, dict] = {}
    for row in rows:
        grp = groups.setdefault(row["group"],
                                {"units_a": 0, "units_b": 0})
        grp["units_a"] += row["units_a"]
        grp["units_b"] += row["units_b"]
    for grp in groups.values():
        grp["delta"] = grp["units_b"] - grp["units_a"]
        grp["delta_pct"] = round(
            grp["delta"] / grp["units_a"] * 100, 1) \
            if grp["units_a"] else (100.0 if grp["units_b"] else 0.0)

    paths: list[dict] = []
    for path in set(a["folded"]) | set(b["folded"]):
        pa = a["folded"].get(path, 0.0)
        pb = b["folded"].get(path, 0.0)
        if pa or pb:
            paths.append({"path": path,
                          "wall_a_s": round(pa, 6),
                          "wall_b_s": round(pb, 6),
                          "delta_s": round(pb - pa, 6)})
    paths.sort(key=lambda p: (-abs(p["delta_s"]), p["path"]))
    paths = paths[:PATH_LIMIT]

    drifted = [r["name"] for r in rows if r["drift"]]
    return {"v": SCHEMA_VERSION, "kind": "perfdiff",
            "a": a["label"], "b": b["label"],
            "threshold": threshold,
            "drift": bool(drifted), "drifted": drifted,
            "rows": rows, "groups": groups, "paths": paths}


def render_attribution(report: dict, limit: int = 25) -> str:
    """Fixed-width attribution table for ``repro perf diff``."""
    lines = [f"perf diff: {report['a']} -> {report['b']} "
             f"(drift above +{report['threshold'] * 100:.0f}% "
             f"attributed work)"]
    rows = report["rows"]
    if not rows:
        lines.append("(no deterministic work counters on either side"
                     " — nothing to attribute)")
    else:
        shown = rows[:limit]
        width = max(len(r["name"]) for r in shown)
        gwidth = max(len(r["group"]) for r in shown)
        lines.append(f"{'region'.ljust(width)}  "
                     f"{'group'.ljust(gwidth)}  "
                     f"{'units A':>10} {'units B':>10} "
                     f"{'delta':>8}")
        for r in shown:
            flag = "  DRIFT" if r["drift"] else ""
            lines.append(
                f"{r['name'].ljust(width)}  "
                f"{r['group'].ljust(gwidth)}  "
                f"{r['units_a']:>10} {r['units_b']:>10} "
                f"{r['delta_pct']:>+7.1f}%{flag}")
        if len(rows) > limit:
            lines.append(f"... {len(rows) - limit} flat region(s) "
                         f"elided")
    for p in report["paths"][:5]:
        lines.append(f"path {p['path']}: "
                     f"{p['wall_a_s'] * 1000:.2f}ms -> "
                     f"{p['wall_b_s'] * 1000:.2f}ms "
                     f"(informational)")
    if report["drift"]:
        lines.append(f"DRIFT: {len(report['drifted'])} region(s) grew "
                     f"past +{report['threshold'] * 100:.0f}%: "
                     + ", ".join(report["drifted"]))
    else:
        lines.append("no attributed drift")
    return "\n".join(lines)


def diff_specs(spec_a: str, spec_b: str,
               threshold: float = DEFAULT_THRESHOLD,
               root: Union[None, str, pathlib.Path] = None) -> dict:
    """Resolve both operands and attribute — the ``repro perf diff``
    engine.  Raises ``ValueError`` on unresolvable operands."""
    return attribute(resolve_side(spec_a, root=root),
                     resolve_side(spec_b, root=root),
                     threshold=threshold)
