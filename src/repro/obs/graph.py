"""Streaming state-graph capture, analytics, DOT export, and diff.

``repro mc --graph-out PATH`` makes the explorer stream the state
graph it visits to a schema-versioned JSONL artifact while the DFS
runs — one record per line, four record kinds::

    {"kind": "graph.header", "v": 1, "mode": "full", "threads": 2,
     "node_cap": 200000, "por_pruned": false}
    {"kind": "node", "id": "0f3a…", "depth": 1, "init": true, "q": true}
    {"kind": "edge", "src": "0f3a…", "dst": "77c1…", "tid": 0,
     "uid": 4, "op": "stmt", "mover": "R", "dup": false}
    {"kind": "pruned", "src": "0f3a…", "dst": "41bb…", "tid": 1,
     "uid": 9, "op": "stmt"}            # only with --graph-por-pruned
    {"kind": "graph.summary", "nodes": 812, "edges": 1604, "pruned": 0,
     "truncated": false, "max_depth": 17}

*Node ids* are the first 16 hex digits of the SHA-256 of ``repr`` of
the explorer's canonical state key — :func:`repro.mc.canonical
.state_key` returns deterministic nested tuples of plain strings and
ints (and property ghosts are frozen dataclasses of scalars), so the
id is stable across processes.  Two seeded runs that explore the same
graph therefore produce artifacts that :func:`diff_graphs` reports as
identical — the structural twin of ``repro runs diff`` and the free
correctness check for state-representation refactors.

*Edges* are tagged with the scheduled thread, the CFG statement uid,
the transition kind (``invoke``/``stmt``/``return``/``atomic``), and —
when the caller supplies a uid→mover map from the static analysis —
the mover classification of the executed statement.  ``dup`` marks
edges into already-seen states (back/cross edges); exactly the
non-dup edges lead to ``node`` records, so ``nodes == MCResult.states``
and ``edges == MCResult.transitions`` hold by construction.

*Bounded size.*  Exact node/edge/pruned counters are always kept, but
record *emission* thins out above a cap (``REPRO_GRAPH_NODE_CAP``,
default 200 000 nodes, edges capped at 4× that): the first ``cap``
records are written verbatim, after which each further record is
written with probability ``cap / n`` from a seeded RNG — a streaming
reservoir-style thinning whose expected retained size grows only
logarithmically past the cap.  The RNG seed is fixed, so identical
explorations still produce byte-identical artifacts above the cap and
``graph diff`` stays meaningful.  The summary record carries the exact
totals plus a ``truncated`` flag; :func:`graph_stats` prefers those.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import random
from typing import IO, Callable, Optional, Union

from repro.obs.schemas import GRAPH as SCHEMA_VERSION

#: node-record emission cap when ``REPRO_GRAPH_NODE_CAP`` is unset
DEFAULT_NODE_CAP = 200_000

#: edge records are capped at this multiple of the node cap
EDGE_CAP_FACTOR = 4

#: ``graph dot`` refuses graphs with more retained nodes than this
#: unless ``--max-nodes`` raises it — DOT is for *small* graphs
DEFAULT_DOT_CAP = 250

#: ``graph diff`` prints at most this many sample ids per drift bucket
DIFF_SAMPLES = 5


def node_cap_from_env() -> int:
    """The node cap, honouring ``REPRO_GRAPH_NODE_CAP`` (invalid or
    non-positive values fall back to the default)."""
    raw = os.environ.get("REPRO_GRAPH_NODE_CAP", "")
    try:
        cap = int(raw)
    except ValueError:
        return DEFAULT_NODE_CAP
    return cap if cap > 0 else DEFAULT_NODE_CAP


def key_id(key) -> str:
    """Canonical node id: 16 hex digits of SHA-256 over ``repr(key)``.

    ``key`` is the explorer's dedup key — deterministic nested tuples
    of scalars — so equal states map to equal ids in any process."""
    return hashlib.sha256(repr(key).encode()).hexdigest()[:16]


def stable_uid_map(*interps) -> dict[int, int]:
    """CFG-node uid → build-independent dense index.

    Raw uids come from a process-global counter: rebuilding the same
    program later in one process shifts every uid, which would make
    node ids and edge uid tags incomparable between captures.  Walking
    procedures in sorted-name order and each CFG's nodes in build
    order yields a numbering that depends only on the program text, so
    two captures of the same program always agree.  ``None`` entries
    are skipped (pass the variant interp unconditionally)."""
    out: dict[int, int] = {}
    for interp in interps:
        if interp is None:
            continue
        for name in sorted(interp.cfgs):
            for node in interp.cfgs[name].nodes:
                if node.uid not in out:
                    out[node.uid] = len(out)
    return out


class _Thinner:
    """Reservoir-style emission gate: always admit the first ``cap``
    records, then admit record ``n`` with probability ``cap / n``
    (seeded RNG — deterministic across runs)."""

    def __init__(self, cap: int, seed: int = 0):
        self.cap = cap
        self.count = 0          # exact records offered
        self.written = 0        # records actually emitted
        self._rng = random.Random(seed)

    def admit(self) -> bool:
        self.count += 1
        if self.count <= self.cap:
            self.written += 1
            return True
        if self._rng.random() < self.cap / self.count:
            self.written += 1
            return True
        return False

    @property
    def truncated(self) -> bool:
        return self.count > self.written


class GraphWriter:
    """Streams graph records to a JSONL file during exploration.

    The explorer calls :meth:`node` exactly when it counts a new state
    and :meth:`edge` exactly when it counts a transition, so the
    summary totals reconcile with :class:`~repro.mc.explorer.MCResult`
    by construction.  ``mover_of`` (uid → ``"R"|"L"|"B"|"N"`` or None)
    tags edges with the static mover classification when available.
    """

    def __init__(self, path: Union[str, pathlib.Path], *,
                 mode: str = "full", threads: int = 0,
                 node_cap: Optional[int] = None,
                 record_pruned: bool = False,
                 mover_of: Optional[Callable[[Optional[int]],
                                             Optional[str]]] = None,
                 uid_map: Optional[dict] = None,
                 events=None):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        cap = node_cap if node_cap is not None else node_cap_from_env()
        self.record_pruned = record_pruned
        self.mover_of = mover_of
        #: raw uid → stable index (:func:`stable_uid_map`); applied to
        #: the program-counter uids inside state keys before hashing
        #: and to edge uid tags, so captures compare across processes
        self.uid_map = uid_map or {}
        self.events = events
        self._nodes = _Thinner(cap)
        self._edges = _Thinner(cap * EDGE_CAP_FACTOR, seed=1)
        self._pruned_n = 0
        self._max_depth = 0
        self._fh: Optional[IO] = open(self.path, "w")
        self._write({"kind": "graph.header", "v": SCHEMA_VERSION,
                     "mode": mode, "threads": threads, "node_cap": cap,
                     "por_pruned": record_pruned})

    def _write(self, record: dict) -> None:
        self._fh.write(json.dumps(record) + "\n")

    def _key_id(self, key) -> str:
        if self.uid_map:
            from repro.mc.canonical import rebase_node_uids
            world_key, ghosts = key
            key = (rebase_node_uids(world_key, self.uid_map), ghosts)
        return key_id(key)

    def _uid(self, uid: Optional[int]) -> Optional[int]:
        if uid is None:
            return None
        return self.uid_map.get(uid, uid)

    def node(self, key, depth: int, *, init: bool = False,
             quiescent: bool = False) -> str:
        """Record a newly-counted state; returns its canonical id."""
        gid = self._key_id(key)
        if depth > self._max_depth:
            self._max_depth = depth
        if self._nodes.admit():
            record = {"kind": "node", "id": gid, "depth": depth}
            if init:
                record["init"] = True
            if quiescent:
                record["q"] = True
            self._write(record)
        return gid

    def edge(self, src: str, dst_key, *, tid: int, uid: Optional[int],
             op: str, dup: bool) -> None:
        """Record an explored transition (``dup`` = into a seen state)."""
        if self._edges.admit():
            self._write({"kind": "edge", "src": src,
                         "dst": self._key_id(dst_key), "tid": tid,
                         "uid": self._uid(uid), "op": op,
                         "mover": self.mover_of(uid)
                         if self.mover_of is not None else None,
                         "dup": dup})

    def pruned(self, src: str, dst_key, *, tid: int,
               uid: Optional[int], op: str) -> None:
        """Record a transition POR elected *not* to explore."""
        self._pruned_n += 1
        self._write({"kind": "pruned", "src": src,
                     "dst": self._key_id(dst_key), "tid": tid,
                     "uid": self._uid(uid), "op": op})

    @property
    def nodes(self) -> int:
        return self._nodes.count

    @property
    def edges(self) -> int:
        return self._edges.count

    def close(self) -> None:
        """Write the exact-total summary record and close the file."""
        if self._fh is None:
            return
        truncated = self._nodes.truncated or self._edges.truncated
        self._write({"kind": "graph.summary",
                     "nodes": self._nodes.count,
                     "edges": self._edges.count,
                     "pruned": self._pruned_n,
                     "nodes_written": self._nodes.written,
                     "edges_written": self._edges.written,
                     "truncated": truncated,
                     "max_depth": self._max_depth})
        self._fh.close()
        self._fh = None
        if self.events is not None:
            self.events.emit("mc.graph", nodes=self._nodes.count,
                             edges=self._edges.count,
                             pruned=self._pruned_n,
                             truncated=truncated, path=str(self.path))

    def __enter__(self) -> "GraphWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- reading ---------------------------------------------------------------

def from_records(records: list, source: str = "<records>") -> dict:
    """Assemble already-parsed capture records into ``{header, nodes,
    edges, pruned, summary}`` (``nodes`` is ``{id: record}``; raises
    ``ValueError`` on record streams that are not graph captures or
    carry an unknown schema version)."""
    header = None
    summary = None
    nodes: dict[str, dict] = {}
    edges: list[dict] = []
    pruned: list[dict] = []
    for i, record in enumerate(records):
        kind = record.get("kind")
        if i == 0:
            if kind != "graph.header":
                raise ValueError(
                    f"{source}: not a graph capture "
                    f"(first record kind={kind!r})")
            if record.get("v") != SCHEMA_VERSION:
                raise ValueError(
                    f"{source}: unsupported graph schema "
                    f"v={record.get('v')!r} "
                    f"(expected {SCHEMA_VERSION})")
            header = record
        elif kind == "node":
            nodes[record["id"]] = record
        elif kind == "edge":
            edges.append(record)
        elif kind == "pruned":
            pruned.append(record)
        elif kind == "graph.summary":
            summary = record
        else:
            raise ValueError(
                f"{source}: unknown record kind {kind!r} "
                f"(record {i+1})")
    if header is None:
        raise ValueError(f"{source}: empty graph capture")
    return {"header": header, "nodes": nodes, "edges": edges,
            "pruned": pruned, "summary": summary}


def read_graph(path: Union[str, pathlib.Path]) -> dict:
    """Load a capture file via :func:`from_records`."""
    path = pathlib.Path(path)
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return from_records(records, source=str(path))


def _distribution(counts: list[int]) -> dict:
    """min/mean/max + histogram over small integer counts."""
    if not counts:
        return {"min": 0, "mean": 0.0, "max": 0, "hist": []}
    hist: dict[int, int] = {}
    for c in counts:
        hist[c] = hist.get(c, 0) + 1
    return {"min": min(counts),
            "mean": round(sum(counts) / len(counts), 3),
            "max": max(counts),
            "hist": [[k, hist[k]] for k in sorted(hist)]}


def graph_stats(doc: dict) -> dict:
    """Structural analytics over a loaded capture.

    Exact totals come from the summary record; the distributions are
    computed over the *retained* records (equal to exact totals below
    the cap, a uniform-ish sample above it — flagged ``truncated``)."""
    summary = doc.get("summary") or {}
    nodes = doc["nodes"]
    edges = doc["edges"]
    pruned = doc["pruned"]
    n_nodes = summary.get("nodes", len(nodes))
    n_edges = summary.get("edges", len(edges))
    n_pruned = summary.get("pruned", len(pruned))
    out_deg: dict[str, int] = {gid: 0 for gid in nodes}
    in_deg: dict[str, int] = {gid: 0 for gid in nodes}
    for e in edges:
        out_deg[e["src"]] = out_deg.get(e["src"], 0) + 1
        in_deg[e["dst"]] = in_deg.get(e["dst"], 0) + 1
    depth_layers: dict[int, int] = {}
    quiescent = 0
    for record in nodes.values():
        d = record.get("depth", 0)
        depth_layers[d] = depth_layers.get(d, 0) + 1
        if record.get("q"):
            quiescent += 1
    terminal = [gid for gid in nodes if out_deg.get(gid, 0) == 0]
    considered = n_edges + n_pruned
    return {
        "nodes": n_nodes,
        "edges": n_edges,
        "pruned": n_pruned,
        "truncated": bool(summary.get("truncated", False)),
        "max_depth": summary.get("max_depth",
                                 max(depth_layers, default=0)),
        "branching": _distribution(
            [out_deg[g] for g in nodes]),
        "in_degree": _distribution(
            [in_deg[g] for g in nodes]),
        "depth_layers": [[d, depth_layers[d]]
                         for d in sorted(depth_layers)],
        "terminal": len(terminal),
        "quiescent": quiescent,
        # share of considered transitions POR pruned away — 0.0 when
        # pruned edges were not recorded
        "por_reduction_ratio": round(n_pruned / considered, 6)
        if considered else 0.0,
    }


def render_stats(stats: dict) -> str:
    """Human-readable ``repro graph stats`` output."""
    lines = [
        f"nodes        {stats['nodes']:,}"
        + ("  (record emission truncated by cap)"
           if stats["truncated"] else ""),
        f"edges        {stats['edges']:,}",
        f"pruned       {stats['pruned']:,}  "
        f"(POR reduction ratio "
        f"{stats['por_reduction_ratio']:.1%})",
        f"max depth    {stats['max_depth']}",
        f"terminal     {stats['terminal']:,}   "
        f"quiescent {stats['quiescent']:,}",
        f"branching    min={stats['branching']['min']} "
        f"mean={stats['branching']['mean']} "
        f"max={stats['branching']['max']}",
        f"in-degree    min={stats['in_degree']['min']} "
        f"mean={stats['in_degree']['mean']} "
        f"max={stats['in_degree']['max']}",
    ]
    layers = stats["depth_layers"]
    if layers:
        peak = max(n for _, n in layers)
        lines.append("depth layers (nodes first seen at depth):")
        for depth, n in layers:
            bar = "#" * max(1, round(24 * n / peak)) if peak else ""
            lines.append(f"  {depth:>4}  {n:>8,}  {bar}")
    return "\n".join(lines)


def to_dot(doc: dict, max_nodes: int = DEFAULT_DOT_CAP) -> str:
    """Render the retained subgraph as GraphViz DOT (raises
    ``ValueError`` above ``max_nodes`` — DOT is for small graphs)."""
    nodes = doc["nodes"]
    if len(nodes) > max_nodes:
        raise ValueError(
            f"graph has {len(nodes)} retained nodes; DOT export is "
            f"capped at {max_nodes} (raise with --max-nodes)")
    mover_color = {"R": "#2b8cbe", "L": "#e34a33", "B": "#31a354",
                   "N": "#756bb1"}
    lines = ["digraph statespace {",
             "  rankdir=LR;",
             '  node [shape=circle, style=filled, '
             'fillcolor="#f0f0f0", fontsize=8];']
    for gid, record in nodes.items():
        attrs = [f'label="{gid[:6]}"']
        if record.get("init"):
            attrs.append('shape=doublecircle')
            attrs.append('fillcolor="#a1d99b"')
        elif record.get("q"):
            attrs.append('fillcolor="#fee391"')
        lines.append(f'  "{gid}" [{", ".join(attrs)}];')
    for e in doc["edges"]:
        color = mover_color.get(e.get("mover") or "", "#636363")
        style = "dashed" if e.get("dup") else "solid"
        label = f't{e["tid"]}'
        if e.get("uid") is not None:
            label += f'@{e["uid"]}'
        lines.append(
            f'  "{e["src"]}" -> "{e["dst"]}" '
            f'[label="{label}", color="{color}", style={style}, '
            f'fontsize=7];')
    for e in doc["pruned"]:
        lines.append(
            f'  "{e["src"]}" -> "{e["dst"]}" '
            f'[label="t{e["tid"]} (pruned)", color="#bdbdbd", '
            f'style=dotted, fontsize=7];')
    lines.append("}")
    return "\n".join(lines)


# -- diffing ---------------------------------------------------------------

def _edge_key(e: dict) -> tuple:
    return (e["src"], e["dst"], e.get("tid"), e.get("uid"),
            e.get("op"))


def diff_graphs(a: dict, b: dict) -> dict:
    """Structural drift between two captures by canonical ids.

    Returns ``{identical, nodes_only_a, nodes_only_b, edges_only_a,
    edges_only_b, samples}`` — empty drift means the two explorations
    visited exactly the same states and transitions.  Captures that
    were truncated by the node cap diff their *retained* records
    (deterministic thinning keeps this meaningful for identical runs,
    but drift counts become lower bounds)."""
    a_nodes, b_nodes = set(a["nodes"]), set(b["nodes"])
    a_edges = {_edge_key(e) for e in a["edges"]}
    b_edges = {_edge_key(e) for e in b["edges"]}
    only_a_n = sorted(a_nodes - b_nodes)
    only_b_n = sorted(b_nodes - a_nodes)
    only_a_e = sorted(a_edges - b_edges)
    only_b_e = sorted(b_edges - a_edges)
    identical = not (only_a_n or only_b_n or only_a_e or only_b_e)
    sa = (a.get("summary") or {})
    sb = (b.get("summary") or {})
    for name in ("nodes", "edges", "pruned"):
        if sa.get(name) != sb.get(name):
            identical = False
    return {
        "identical": identical,
        "counts_a": {k: sa.get(k) for k in ("nodes", "edges", "pruned")},
        "counts_b": {k: sb.get(k) for k in ("nodes", "edges", "pruned")},
        "nodes_only_a": len(only_a_n),
        "nodes_only_b": len(only_b_n),
        "edges_only_a": len(only_a_e),
        "edges_only_b": len(only_b_e),
        "samples": {
            "nodes_only_a": only_a_n[:DIFF_SAMPLES],
            "nodes_only_b": only_b_n[:DIFF_SAMPLES],
            "edges_only_a": [list(e) for e in only_a_e[:DIFF_SAMPLES]],
            "edges_only_b": [list(e) for e in only_b_e[:DIFF_SAMPLES]],
        },
    }


def render_diff(drift: dict, name_a: str = "A",
                name_b: str = "B") -> str:
    """Human-readable drift table for ``repro graph diff``."""
    if drift["identical"]:
        return "graphs identical"
    rows = [("", name_a, name_b)]
    ca, cb = drift["counts_a"], drift["counts_b"]
    for key in ("nodes", "edges", "pruned"):
        rows.append((key, str(ca.get(key)), str(cb.get(key))))
    rows.append(("nodes only in", str(drift["nodes_only_a"]),
                 str(drift["nodes_only_b"])))
    rows.append(("edges only in", str(drift["edges_only_a"]),
                 str(drift["edges_only_b"])))
    widths = [max(len(r[i]) for r in rows) for i in range(3)]
    lines = ["graph drift:"]
    for r in rows:
        lines.append("  " + "  ".join(
            r[i].ljust(widths[i]) for i in range(3)).rstrip())
    samples = drift["samples"]
    for bucket in ("nodes_only_a", "nodes_only_b"):
        if samples[bucket]:
            side = name_a if bucket.endswith("_a") else name_b
            lines.append(f"  sample nodes only in {side}: "
                         + ", ".join(samples[bucket]))
    for bucket in ("edges_only_a", "edges_only_b"):
        if samples[bucket]:
            side = name_a if bucket.endswith("_a") else name_b
            shown = ", ".join(
                f"{e[0][:6]}->{e[1][:6]} t{e[2]}"
                for e in samples[bucket])
            lines.append(f"  sample edges only in {side}: {shown}")
    return "\n".join(lines)
