"""Classification provenance: *why* an action got its mover type.

Every :class:`~repro.analysis.inference.Site` accumulates a chain of
:class:`Justification` records as the §5.4 classification steps fire.
Each record names the pipeline step, the theorem it applies (3.1, 3.2,
5.1, 5.3, 5.4, 5.5, or the LL-agreement argument), the mover type it
contributed, and a human-readable detail, rendering compactly as e.g.::

    R by Thm 5.3: matching LL of a successful SC on Tail
    B by adjacency exclusion: both sides clear (Thm 5.1 x2, Thm 5.3 x1)

Step-4 records are *aggregates*: the adjacency-exclusion engine does a
case split over alias pairs and may need several theorems to close all
branches, so the per-theorem counts in the detail name every rule that
contributed marks to a successful exclusion (not a minimal proof core).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


#: theorem behind each classification rule tag
THEOREM_OF_RULE = {
    "local": "3.1",
    "acquire": "3.2",
    "release": "3.2",
    "successful-SC": "5.3",
    "successful-VL": "5.3",
    "matching-LL": "5.3",
    "matching-plain": "5.3",
    "successful-CAS": "5.4",
    "matching-CAS-read": "5.4",
    "lock": "5.1",
    "window-SC": "5.3",
    "window-CAS": "5.4",
    "condition": "5.5",
    "agreement": "LL-agreement",
}


@dataclass(frozen=True)
class Justification:
    """One link in a classification provenance chain."""

    step: str                       # 'step1' .. 'step6'
    rule: str                       # machine tag, e.g. 'matching-LL'
    mover: Optional[str] = None     # contributed atomicity letter
    theorem: Optional[str] = None   # '3.1', '5.3', ... or None
    detail: str = ""                # human-readable specifics
    counts: dict = field(default_factory=dict, compare=False)
    # per-theorem mark counts for aggregate (step-4) records

    def render(self) -> str:
        if self.theorem is not None and self.mover is not None:
            head = f"{self.mover} by Thm {self.theorem}"
        elif self.mover is not None:
            head = f"{self.mover} by {self.rule}"
        elif self.theorem is not None:
            head = f"Thm {self.theorem}"
        else:
            head = self.rule
        body = self.detail
        if self.counts:
            tally = ", ".join(f"Thm {t} x{n}" if t[0].isdigit() else
                              f"{t} x{n}"
                              for t, n in sorted(self.counts.items()))
            body = f"{body} ({tally})" if body else f"({tally})"
        return f"{head}: {body}" if body else head

    def to_dict(self) -> dict:
        out: dict = {"step": self.step, "rule": self.rule}
        if self.mover is not None:
            out["mover"] = self.mover
        if self.theorem is not None:
            out["theorem"] = self.theorem
        if self.detail:
            out["detail"] = self.detail
        if self.counts:
            out["counts"] = dict(self.counts)
        return out

    def __str__(self) -> str:
        return self.render()


def justify(step: str, rule: str, mover: Optional[str] = None,
            detail: str = "", counts: Optional[dict] = None
            ) -> Justification:
    """Build a record, filling the theorem in from the rule tag."""
    return Justification(step=step, rule=rule, mover=mover,
                         theorem=THEOREM_OF_RULE.get(rule),
                         detail=detail, counts=counts or {})
