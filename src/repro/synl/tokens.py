"""Token definitions for the SYNL lexer.

SYNL (Synchronization Language) is the formal language of the paper
(Table 1), extended with a concrete syntax: the paper only gives abstract
syntax, so we define a small C-like surface syntax.  See
:mod:`repro.synl.parser` for the grammar.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SourcePos


class TokenKind(enum.Enum):
    # literals & identifiers
    INT = "int"
    IDENT = "ident"

    # keywords
    GLOBAL = "global"
    THREADLOCAL = "threadlocal"
    VERSIONED = "versioned"
    CONST = "const"
    CLASS = "class"
    PROC = "proc"
    INIT = "init"
    THREADINIT = "threadinit"
    LOCAL = "local"
    IN = "in"
    IF = "if"
    ELSE = "else"
    LOOP = "loop"
    WHILE = "while"
    BREAK = "break"
    CONTINUE = "continue"
    RETURN = "return"
    SKIP = "skip"
    SYNCHRONIZED = "synchronized"
    NEW = "new"
    TRUE_KW = "TRUE"  # assume statement TRUE(e)
    ASSERT = "assert"
    LL = "LL"
    SC = "SC"
    VL = "VL"
    CAS = "CAS"
    TRUE_LIT = "true"
    FALSE_LIT = "false"
    NULL = "null"

    # punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    DOT = "."
    COLON = ":"
    ASSIGN = "="
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    NOT = "!"
    AND = "&&"
    OR = "||"
    PLUSPLUS = "++"
    MINUSMINUS = "--"

    EOF = "<eof>"


#: Reserved words, mapped to their token kinds.  ``TRUE`` (the assume
#: statement marker) is distinct from the boolean literal ``true``.
KEYWORDS: dict[str, TokenKind] = {
    "global": TokenKind.GLOBAL,
    "threadlocal": TokenKind.THREADLOCAL,
    "versioned": TokenKind.VERSIONED,
    "const": TokenKind.CONST,
    "class": TokenKind.CLASS,
    "proc": TokenKind.PROC,
    "init": TokenKind.INIT,
    "threadinit": TokenKind.THREADINIT,
    "local": TokenKind.LOCAL,
    "in": TokenKind.IN,
    "if": TokenKind.IF,
    "else": TokenKind.ELSE,
    "loop": TokenKind.LOOP,
    "while": TokenKind.WHILE,
    "break": TokenKind.BREAK,
    "continue": TokenKind.CONTINUE,
    "return": TokenKind.RETURN,
    "skip": TokenKind.SKIP,
    "synchronized": TokenKind.SYNCHRONIZED,
    "new": TokenKind.NEW,
    "TRUE": TokenKind.TRUE_KW,
    "assert": TokenKind.ASSERT,
    "LL": TokenKind.LL,
    "SC": TokenKind.SC,
    "VL": TokenKind.VL,
    "CAS": TokenKind.CAS,
    "true": TokenKind.TRUE_LIT,
    "false": TokenKind.FALSE_LIT,
    "null": TokenKind.NULL,
}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    pos: SourcePos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.pos})"
