"""Hand-written lexer for SYNL source text.

The lexer is a straightforward single-pass scanner.  It supports ``//``
line comments and ``/* ... */`` block comments, decimal integer literals,
identifiers, and the operator/punctuation set in
:class:`repro.synl.tokens.TokenKind`.
"""

from __future__ import annotations

from repro.errors import LexError, SourcePos
from repro.synl.tokens import KEYWORDS, Token, TokenKind

# Multi-character operators must be tried longest-first.
_OPERATORS: list[tuple[str, TokenKind]] = [
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("&&", TokenKind.AND),
    ("||", TokenKind.OR),
    ("++", TokenKind.PLUSPLUS),
    ("--", TokenKind.MINUSMINUS),
    ("(", TokenKind.LPAREN),
    (")", TokenKind.RPAREN),
    ("{", TokenKind.LBRACE),
    ("}", TokenKind.RBRACE),
    ("[", TokenKind.LBRACKET),
    ("]", TokenKind.RBRACKET),
    (";", TokenKind.SEMI),
    (",", TokenKind.COMMA),
    (".", TokenKind.DOT),
    (":", TokenKind.COLON),
    ("=", TokenKind.ASSIGN),
    ("<", TokenKind.LT),
    (">", TokenKind.GT),
    ("+", TokenKind.PLUS),
    ("-", TokenKind.MINUS),
    ("*", TokenKind.STAR),
    ("/", TokenKind.SLASH),
    ("%", TokenKind.PERCENT),
    ("!", TokenKind.NOT),
]


class Lexer:
    """Tokenizes SYNL source text."""

    def __init__(self, text: str):
        self.text = text
        self.n = len(text)
        self.i = 0
        self.line = 1
        self.col = 1

    def _pos(self) -> SourcePos:
        return SourcePos(self.line, self.col)

    def _advance(self, k: int = 1) -> None:
        for _ in range(k):
            if self.i < self.n and self.text[self.i] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.i += 1

    def _peek(self, offset: int = 0) -> str:
        j = self.i + offset
        return self.text[j] if j < self.n else ""

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments."""
        while self.i < self.n:
            c = self.text[self.i]
            if c in " \t\r\n":
                self._advance()
            elif c == "/" and self._peek(1) == "/":
                while self.i < self.n and self.text[self.i] != "\n":
                    self._advance()
            elif c == "/" and self._peek(1) == "*":
                start = self._pos()
                self._advance(2)
                while self.i < self.n and not (
                    self.text[self.i] == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.i >= self.n:
                    raise LexError("unterminated block comment", start)
                self._advance(2)
            else:
                return

    def tokens(self) -> list[Token]:
        """Scan the whole input and return the token list (EOF-terminated)."""
        out: list[Token] = []
        while True:
            self._skip_trivia()
            pos = self._pos()
            if self.i >= self.n:
                out.append(Token(TokenKind.EOF, "", pos))
                return out
            c = self.text[self.i]
            if c.isdigit():
                j = self.i
                while j < self.n and self.text[j].isdigit():
                    j += 1
                text = self.text[self.i : j]
                self._advance(j - self.i)
                out.append(Token(TokenKind.INT, text, pos))
                continue
            if c.isalpha() or c == "_":
                j = self.i
                while j < self.n and (self.text[j].isalnum() or self.text[j] == "_"):
                    j += 1
                text = self.text[self.i : j]
                self._advance(j - self.i)
                kind = KEYWORDS.get(text, TokenKind.IDENT)
                out.append(Token(kind, text, pos))
                continue
            for op, kind in _OPERATORS:
                if self.text.startswith(op, self.i):
                    self._advance(len(op))
                    out.append(Token(kind, op, pos))
                    break
            else:
                raise LexError(f"unexpected character {c!r}", pos)


def tokenize(text: str) -> list[Token]:
    """Convenience wrapper: lex ``text`` into a token list."""
    return Lexer(text).tokens()
