"""Abstract syntax trees for SYNL (Table 1 of the paper, plus sugar).

Design notes
------------
* Nodes use **identity equality** (``eq=False``): the analyses attach
  per-node facts keyed by the node object, and the same syntactic text may
  occur at several program points.  Structural comparison is provided by
  :func:`structural_eq` / :meth:`Node.key`.
* Every node carries a unique ``nid`` (for stable ordering / debugging) and
  an optional source position.
* The resolver (:mod:`repro.synl.resolve`) decorates ``Var`` nodes with
  their :class:`VarKind` and binding id, and ``LocalDecl`` nodes with a
  unique binding id.

The statement sugar accepted by the parser (``while``, ``x++``, compound
conditions) is desugared either in the parser itself or by
:mod:`repro.synl.desugar`, so the analyses only ever see the core forms.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import SourcePos

_NID = itertools.count(1)


class VarKind(enum.Enum):
    """Storage class of a variable occurrence (attached by the resolver)."""

    GLOBAL = "global"
    THREADLOCAL = "threadlocal"
    PARAM = "param"
    LOCAL = "local"  # introduced by ``local x = e in s``
    CONST = "const"  # program-level named constant

    @property
    def is_local(self) -> bool:
        """True for variables private to one thread (paper's 'local')."""
        return self in (VarKind.THREADLOCAL, VarKind.PARAM,
                        VarKind.LOCAL, VarKind.CONST)


@dataclass(eq=False)
class Node:
    """Base class of all AST nodes."""

    pos: Optional[SourcePos] = field(default=None, init=False, repr=False)
    nid: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        self.nid = next(_NID)

    def at(self, pos: Optional[SourcePos]) -> "Node":
        """Attach a source position; returns self for chaining."""
        self.pos = pos
        return self

    # -- structural identity -------------------------------------------------
    def key(self) -> tuple:
        """A structural key: node class name plus keys of the children and
        scalar fields, ignoring nid/pos/analysis decorations.  A block
        containing a single statement is identified with that statement
        (the printer braces sub-statements for unambiguous reparsing)."""
        if isinstance(self, Block) and len(self.stmts) == 1:
            return self.stmts[0].key()
        parts: list = [type(self).__name__]
        for name, value in self._fields():
            if isinstance(value, Node):
                parts.append(value.key())
            elif isinstance(value, list):
                parts.append(tuple(
                    v.key() if isinstance(v, Node) else v for v in value))
            else:
                parts.append(value)
        return tuple(parts)

    def _fields(self) -> Iterator[tuple[str, object]]:
        for name, value in vars(self).items():
            if name in ("pos", "nid", "kind", "binding", "param_bindings"):
                continue
            yield name, value

    def children(self) -> Iterator["Node"]:
        """Iterate over direct child nodes."""
        for _, value in self._fields():
            if isinstance(value, Node):
                yield value
            elif isinstance(value, list):
                for v in value:
                    if isinstance(v, Node):
                        yield v

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of this subtree (including self)."""
        yield self
        for child in self.children():
            yield from child.walk()

    def span(self) -> tuple[Optional[SourcePos], Optional[SourcePos]]:
        """Smallest source span covering this subtree: the (start, end)
        pair of the minimum and maximum positions attached to any node
        in it.  Either element is ``None`` when no node carries a
        position (e.g. synthesized variants)."""
        start: Optional[SourcePos] = None
        end: Optional[SourcePos] = None
        for node in self.walk():
            pos = node.pos
            if pos is None:
                continue
            key = (pos.line, pos.col)
            if start is None or key < (start.line, start.col):
                start = pos
            if end is None or key > (end.line, end.col):
                end = pos
        return start, end


def structural_eq(a: Node, b: Node) -> bool:
    """Structural equality, ignoring node identities and positions."""
    return a.key() == b.key()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass(eq=False)
class Expr(Node):
    pass


@dataclass(eq=False)
class Const(Expr):
    """Integer, boolean, or null literal."""

    value: object  # int | bool | None (None encodes null)


@dataclass(eq=False)
class Var(Expr):
    """Variable occurrence.  ``kind``/``binding`` are set by the resolver;
    ``binding`` identifies the declaration (unique int per binder)."""

    name: str

    def __post_init__(self) -> None:
        super().__post_init__()
        self.kind: Optional[VarKind] = None
        self.binding: Optional[int] = None


@dataclass(eq=False)
class Field(Expr):
    """Field access ``base.name``.  Per Table 1, ``base`` is a variable."""

    base: Expr
    name: str


@dataclass(eq=False)
class Index(Expr):
    """Array element access ``base[index]``."""

    base: Expr
    index: Expr


@dataclass(eq=False)
class New(Expr):
    """Object allocation ``new C``."""

    class_name: str


@dataclass(eq=False)
class NewArray(Expr):
    """Array allocation ``new C[size]`` (element class is informational)."""

    class_name: str
    size: Expr


@dataclass(eq=False)
class Unary(Expr):
    op: str  # "!" or "-"
    operand: Expr


@dataclass(eq=False)
class Binary(Expr):
    op: str  # "==","!=","<","<=",">",">=","+","-","*","/","%","&&","||"
    left: Expr
    right: Expr


@dataclass(eq=False)
class PrimCall(Expr):
    """Call to a side-effect-free primitive operation (paper §3.2)."""

    name: str
    args: list[Expr]


@dataclass(eq=False)
class LLExpr(Expr):
    """Load-Linked:  ``LL(loc)`` returns the content of ``loc``."""

    loc: Expr


@dataclass(eq=False)
class SCExpr(Expr):
    """Store-Conditional: ``SC(loc, value)`` returns success boolean."""

    loc: Expr
    value: Expr


@dataclass(eq=False)
class VLExpr(Expr):
    """Validate: ``VL(loc)`` returns True iff the reservation is intact."""

    loc: Expr


@dataclass(eq=False)
class CASExpr(Expr):
    """Compare-and-Swap: ``CAS(loc, expected, new)`` returns success."""

    loc: Expr
    expected: Expr
    new: Expr


def is_location(e: Expr) -> bool:
    """Per Table 1, a Location is ``x``, ``x.fd`` or ``x[e]``."""
    if isinstance(e, Var):
        return True
    if isinstance(e, Field):
        return isinstance(e.base, Var)
    if isinstance(e, Index):
        return isinstance(e.base, (Var, Field)) and (
            not isinstance(e.base, Field) or isinstance(e.base.base, Var))
    return False


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass(eq=False)
class Stmt(Node):
    pass


@dataclass(eq=False)
class Assign(Stmt):
    """``loc = e;``"""

    target: Expr  # a location
    value: Expr


@dataclass(eq=False)
class LocalDecl(Stmt):
    """``local x = e in s`` — scoped procedure-local variable."""

    name: str
    init: Expr
    body: Stmt

    def __post_init__(self) -> None:
        super().__post_init__()
        self.binding: Optional[int] = None  # set by the resolver


@dataclass(eq=False)
class If(Stmt):
    cond: Expr
    then: Stmt
    els: Optional[Stmt] = None


@dataclass(eq=False)
class Loop(Stmt):
    """Unconditional loop (``while (true) s`` in the paper)."""

    body: Stmt
    label: Optional[str] = None


@dataclass(eq=False)
class Block(Stmt):
    stmts: list[Stmt]


@dataclass(eq=False)
class Break(Stmt):
    label: Optional[str] = None


@dataclass(eq=False)
class Continue(Stmt):
    """Not in core SYNL (the paper eliminates it manually); we support it
    natively: it jumps to the head of the (labelled) enclosing loop and is
    a *normal* termination of the loop body for purposes of §4."""

    label: Optional[str] = None


@dataclass(eq=False)
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass(eq=False)
class Skip(Stmt):
    pass


@dataclass(eq=False)
class Synchronized(Stmt):
    """``synchronized (e) s`` with Java monitor semantics."""

    lock: Expr
    body: Stmt


@dataclass(eq=False)
class Assume(Stmt):
    """``TRUE(e);`` — appears in exceptional variants (§5.2): asserts that
    ``e`` holds (an SC/CAS inside must be *successful*)."""

    cond: Expr


@dataclass(eq=False)
class AssertStmt(Stmt):
    """``assert(e);`` — checked by the interpreter / model checker."""

    cond: Expr


@dataclass(eq=False)
class ExprStmt(Stmt):
    """Expression used as a statement (sugar for ``local _ = e in skip``)."""

    expr: Expr


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------

@dataclass(eq=False)
class VarDecl(Node):
    name: str
    init: Optional[Expr] = None
    versioned: bool = False  # CAS modification-counter discipline (§5.2)


@dataclass(eq=False)
class ConstDecl(Node):
    name: str
    value: Const


@dataclass(eq=False)
class ClassDecl(Node):
    name: str
    fields: list[str]
    #: fields updated by CAS under the modification-counter (ABA-free)
    #: discipline of §5.2
    versioned_fields: frozenset[str] = frozenset()


@dataclass(eq=False)
class Procedure(Node):
    name: str
    params: list[str]
    body: Block

    def __post_init__(self) -> None:
        super().__post_init__()
        # Param binding ids, set by the resolver: name -> binding id
        self.param_bindings: dict[str, int] = {}


@dataclass(eq=False)
class Program(Node):
    """A SYNL program: declarations plus top-level procedures that the
    environment invokes concurrently with arbitrary arguments (§3.2)."""

    globals: list[VarDecl]
    threadlocals: list[VarDecl]
    consts: list[ConstDecl]
    classes: list[ClassDecl]
    procs: list[Procedure]
    init: Optional[Block] = None
    threadinit: Optional[Block] = None

    def proc(self, name: str) -> Procedure:
        for p in self.procs:
            if p.name == name:
                return p
        raise KeyError(name)

    def global_names(self) -> set[str]:
        return {d.name for d in self.globals}

    def versioned_names(self) -> set[str]:
        return {d.name for d in self.globals if d.versioned}

    def class_decl(self, name: str) -> Optional[ClassDecl]:
        for c in self.classes:
            if c.name == name:
                return c
        return None
