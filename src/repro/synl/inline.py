"""Procedure-call inlining.

SYNL has no explicit procedure calls: the paper's model is that
"internal procedures are inlined, and we do not handle recursion"
(§1).  This pass automates that convention, so programs can be written
with helper procedures and lowered to core SYNL before analysis or
execution.

A call is written like a primitive application whose name matches a
declared procedure:

* statement position — ``Helper(a, b);``
* binding position  — ``local x = Helper(a, b) in S``

Inlining replaces the call by the callee's body with parameters bound
to the arguments; ``return e`` statements become an assignment to the
result variable plus a ``break`` out of a wrapper loop:

.. code-block:: text

    local x = Helper(a) in S
    =>
    local x = 0 in {
      __inline_N: loop {
        local p = a in {          # one binder per parameter
          <body with `return e` -> { x = e; break __inline_N; }>
        }
        break __inline_N;         # a body that falls off the end
      }
      S
    }

Mutual or direct recursion is rejected (as in the paper).  Primitive
names that are not procedure names are left alone, so existing
programs are unaffected.
"""

from __future__ import annotations

import itertools

from repro.errors import ResolveError
from repro.synl import ast as A

_FRESH = itertools.count(1)


class Inliner:
    def __init__(self, program: A.Program):
        self.program = program
        self.procs = {p.name: p for p in program.procs}

    def run(self) -> A.Program:
        """Return a new, call-free program (original is untouched)."""
        from repro.analysis.slices import clone_stmt

        self._check_recursion()
        out_procs = []
        for proc in self.program.procs:
            body = self._stmt(proc.body)
            out_procs.append(self._mk_proc(proc, body))
        out = A.Program(
            globals=list(self.program.globals),
            threadlocals=list(self.program.threadlocals),
            consts=list(self.program.consts),
            classes=list(self.program.classes),
            procs=out_procs,
            init=self._stmt(self.program.init)
            if self.program.init is not None else None,
            threadinit=self._stmt(self.program.threadinit)
            if self.program.threadinit is not None else None,
        )
        return out

    @staticmethod
    def _mk_proc(proc: A.Procedure, body: A.Stmt) -> A.Procedure:
        block = body if isinstance(body, A.Block) else A.Block([body])
        new = A.Procedure(proc.name, list(proc.params), block)
        new.at(proc.pos)
        return new

    # -- recursion check ------------------------------------------------------------
    def _callees(self, proc: A.Procedure) -> set[str]:
        out = set()
        for node in proc.body.walk():
            if isinstance(node, A.PrimCall) and node.name in self.procs:
                out.add(node.name)
        return out

    def _check_recursion(self) -> None:
        graph = {name: self._callees(proc)
                 for name, proc in self.procs.items()}
        seen: dict[str, int] = {}  # 0 = in progress, 1 = done

        def visit(name: str, stack: list[str]) -> None:
            state = seen.get(name)
            if state == 1:
                return
            if state == 0:
                cycle = " -> ".join(stack + [name])
                raise ResolveError(
                    f"recursive procedure calls are not supported "
                    f"(the paper inlines all calls): {cycle}")
            seen[name] = 0
            for callee in graph[name]:
                visit(callee, stack + [name])
            seen[name] = 1

        for name in graph:
            visit(name, [])

    # -- statement rewriting -----------------------------------------------------------
    def _stmt(self, s: A.Stmt) -> A.Stmt:
        from repro.analysis.slices import clone_expr, clone_stmt

        if isinstance(s, A.Block):
            out = A.Block([self._stmt(x) for x in s.stmts])
        elif isinstance(s, A.ExprStmt) and isinstance(s.expr, A.PrimCall) \
                and s.expr.name in self.procs:
            return self._inline_call(s.expr, result_var=None)
        elif isinstance(s, A.LocalDecl):
            if isinstance(s.init, A.PrimCall) and s.init.name in self.procs:
                inlined = self._inline_call(s.init, result_var=s.name,
                                            rest=self._stmt(s.body))
                inlined.at(s.pos)
                return inlined
            out = A.LocalDecl(s.name, clone_expr(s.init),
                              self._stmt(s.body))
        elif isinstance(s, A.If):
            self._forbid_call_in_expr(s.cond)
            out = A.If(clone_expr(s.cond), self._stmt(s.then),
                       self._stmt(s.els) if s.els is not None else None)
        elif isinstance(s, A.Loop):
            out = A.Loop(self._stmt(s.body), s.label)
        elif isinstance(s, A.Synchronized):
            out = A.Synchronized(clone_expr(s.lock), self._stmt(s.body))
        elif isinstance(s, A.Assign):
            self._forbid_call_in_expr(s.value)
            out = clone_stmt(s)
        else:
            for node in s.walk():
                if isinstance(node, A.PrimCall) \
                        and node.name in self.procs:
                    raise ResolveError(
                        f"call to {node.name!r} is only supported as a "
                        f"statement or as a local binding initializer",
                        node.pos)
            out = clone_stmt(s)
        out.at(s.pos)
        return out

    def _forbid_call_in_expr(self, e: A.Expr) -> None:
        for node in e.walk():
            if isinstance(node, A.PrimCall) and node.name in self.procs:
                raise ResolveError(
                    f"call to {node.name!r} is only supported as a "
                    f"statement or as a local binding initializer",
                    node.pos)

    # -- the expansion -------------------------------------------------------------------
    def _inline_call(self, call: A.PrimCall, result_var: str | None,
                     rest: A.Stmt | None = None) -> A.Stmt:
        from repro.analysis.slices import clone_expr

        proc = self.procs[call.name]
        if len(call.args) != len(proc.params):
            raise ResolveError(
                f"{call.name} expects {len(proc.params)} arguments, "
                f"got {len(call.args)}", call.pos)
        label = f"__inline_{next(_FRESH)}"
        # the callee body may itself contain calls: rewrite it first
        body = self._stmt(proc.body)
        body = _rewrite_returns(body, result_var, label)
        fall_off = A.Break(label)
        inner: A.Stmt = A.Block([body, fall_off])
        # bind parameters innermost-last so argument expressions are
        # evaluated in the caller's scope (they cannot mention params)
        for param, arg in zip(reversed(proc.params),
                              reversed(list(call.args))):
            self._forbid_call_in_expr(arg)
            inner = A.LocalDecl(param, clone_expr(arg), inner)
        wrapper = A.Loop(A.Block([inner]), label)
        if result_var is None:
            assert rest is None
            return A.Block([wrapper])
        zero = A.Const(0)
        seq = A.Block([wrapper] + (
            rest.stmts if isinstance(rest, A.Block) else [rest]))
        return A.LocalDecl(result_var, zero, seq)


def _rewrite_returns(s: A.Stmt, result_var: str | None,
                     label: str) -> A.Stmt:
    """Replace ``return [e]`` by ``[result = e;] break label;``.
    Unlabelled breaks/continues belong to the callee's own loops and are
    left untouched (the wrapper loop is only exited via the label)."""
    from repro.analysis.slices import clone_expr, clone_stmt

    if isinstance(s, A.Return):
        stmts: list[A.Stmt] = []
        if result_var is not None and s.value is not None:
            target = A.Var(result_var)
            target.at(s.pos)
            assign = A.Assign(target, clone_expr(s.value))
            assign.at(s.pos)
            stmts.append(assign)
        brk = A.Break(label)
        brk.at(s.pos)
        stmts.append(brk)
        out: A.Stmt = A.Block(stmts)
        out.at(s.pos)
        return out
    if isinstance(s, A.Block):
        out = A.Block([_rewrite_returns(x, result_var, label)
                       for x in s.stmts])
    elif isinstance(s, A.LocalDecl):
        out = A.LocalDecl(s.name, clone_expr(s.init),
                          _rewrite_returns(s.body, result_var, label))
    elif isinstance(s, A.If):
        out = A.If(clone_expr(s.cond),
                   _rewrite_returns(s.then, result_var, label),
                   _rewrite_returns(s.els, result_var, label)
                   if s.els is not None else None)
    elif isinstance(s, A.Loop):
        out = A.Loop(_rewrite_returns(s.body, result_var, label), s.label)
    elif isinstance(s, A.Synchronized):
        out = A.Synchronized(clone_expr(s.lock),
                             _rewrite_returns(s.body, result_var, label))
    else:
        return clone_stmt(s)
    out.at(s.pos)
    return out


def inline_calls(program: A.Program) -> A.Program:
    """Inline all procedure calls; returns a fresh *unresolved* program
    (resolve it afterwards, or use :func:`load_program_with_calls`)."""
    return Inliner(program).run()


def load_program_with_calls(text: str) -> A.Program:
    """Parse, inline procedure calls, and resolve."""
    from repro.synl.parser import parse_program
    from repro.synl.resolve import resolve

    program = parse_program(text)
    program = inline_calls(program)
    resolve(program)
    return program
