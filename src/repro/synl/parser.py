"""Recursive-descent parser for SYNL.

Grammar (concrete syntax; the paper only defines abstract syntax):

.. code-block:: text

    program     := topdecl*
    topdecl     := 'global' ['versioned'] varinit (',' varinit)* ';'
                 | 'threadlocal' varinit (',' varinit)* ';'
                 | 'const' IDENT '=' literal ';'
                 | 'class' IDENT '{' IDENT (';' IDENT)* [';'] '}'
                 | 'proc' IDENT '(' [IDENT (',' IDENT)*] ')' block
                 | 'init' block
                 | 'threadinit' block
    varinit     := IDENT ['=' expr]
    stmt        := block | local | if | loop | while | jump | 'skip' ';'
                 | synchronized | assume | assert | assign | exprstmt
    local       := 'local' IDENT '=' expr 'in' stmt
    loop        := [IDENT ':'] 'loop' stmt
    while       := [IDENT ':'] 'while' '(' expr ')' stmt    (sugar)
    assign      := location ('=' expr | '++' | '--') ';'
    assume      := 'TRUE' '(' expr ')' ';'

``x++;`` desugars to ``x = x + 1;`` and ``while (e) s`` to
``loop { if (e) s else break; }`` (see also :mod:`repro.synl.desugar`).
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.synl import ast as A
from repro.synl.lexer import tokenize
from repro.synl.tokens import Token, TokenKind as T


class Parser:
    def __init__(self, tokens: list[Token]):
        self.toks = tokens
        self.i = 0

    # -- token helpers ------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        j = min(self.i + offset, len(self.toks) - 1)
        return self.toks[j]

    def _at(self, kind: T, offset: int = 0) -> bool:
        return self._peek(offset).kind is kind

    def _advance(self) -> Token:
        tok = self.toks[self.i]
        if tok.kind is not T.EOF:
            self.i += 1
        return tok

    def _expect(self, kind: T) -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r}, found {tok.text or tok.kind.value!r}",
                tok.pos)
        return self._advance()

    def _accept(self, kind: T) -> Token | None:
        if self._at(kind):
            return self._advance()
        return None

    # -- program ------------------------------------------------------------
    def parse_program(self) -> A.Program:
        globals_: list[A.VarDecl] = []
        threadlocals: list[A.VarDecl] = []
        consts: list[A.ConstDecl] = []
        classes: list[A.ClassDecl] = []
        procs: list[A.Procedure] = []
        init: A.Block | None = None
        threadinit: A.Block | None = None

        while not self._at(T.EOF):
            tok = self._peek()
            if tok.kind is T.GLOBAL:
                self._advance()
                versioned = self._accept(T.VERSIONED) is not None
                globals_.extend(self._var_decls(versioned))
            elif tok.kind is T.THREADLOCAL:
                self._advance()
                threadlocals.extend(self._var_decls(False))
            elif tok.kind is T.CONST:
                self._advance()
                name = self._expect(T.IDENT).text
                self._expect(T.ASSIGN)
                value = self._literal()
                self._expect(T.SEMI)
                decl = A.ConstDecl(name, value)
                decl.at(tok.pos)
                consts.append(decl)
            elif tok.kind is T.CLASS:
                classes.append(self._class_decl())
            elif tok.kind is T.PROC:
                procs.append(self._procedure())
            elif tok.kind is T.INIT:
                self._advance()
                if init is not None:
                    raise ParseError("duplicate init block", tok.pos)
                init = self._block()
            elif tok.kind is T.THREADINIT:
                self._advance()
                if threadinit is not None:
                    raise ParseError("duplicate threadinit block", tok.pos)
                threadinit = self._block()
            else:
                raise ParseError(
                    f"expected top-level declaration, found {tok.text!r}",
                    tok.pos)

        prog = A.Program(globals_, threadlocals, consts, classes, procs,
                         init, threadinit)
        return prog

    def _var_decls(self, versioned: bool) -> list[A.VarDecl]:
        decls = []
        while True:
            tok = self._expect(T.IDENT)
            init = None
            if self._accept(T.ASSIGN):
                init = self._expr()
            decl = A.VarDecl(tok.text, init, versioned)
            decl.at(tok.pos)
            decls.append(decl)
            if not self._accept(T.COMMA):
                break
        self._expect(T.SEMI)
        return decls

    def _class_decl(self) -> A.ClassDecl:
        tok = self._expect(T.CLASS)
        name = self._expect(T.IDENT).text
        self._expect(T.LBRACE)
        fields: list[str] = []
        versioned: set[str] = set()
        while not self._at(T.RBRACE):
            is_versioned = self._accept(T.VERSIONED) is not None
            fd = self._expect(T.IDENT).text
            fields.append(fd)
            if is_versioned:
                versioned.add(fd)
            self._expect(T.SEMI)
        self._expect(T.RBRACE)
        decl = A.ClassDecl(name, fields, frozenset(versioned))
        decl.at(tok.pos)
        return decl

    def _procedure(self) -> A.Procedure:
        tok = self._expect(T.PROC)
        name = self._expect(T.IDENT).text
        self._expect(T.LPAREN)
        params: list[str] = []
        if not self._at(T.RPAREN):
            while True:
                params.append(self._expect(T.IDENT).text)
                if not self._accept(T.COMMA):
                    break
        self._expect(T.RPAREN)
        body = self._block()
        proc = A.Procedure(name, params, body)
        proc.at(tok.pos)
        return proc

    def _literal(self) -> A.Const:
        tok = self._peek()
        if self._accept(T.INT):
            node = A.Const(int(tok.text))
        elif self._accept(T.MINUS):
            itok = self._expect(T.INT)
            node = A.Const(-int(itok.text))
        elif self._accept(T.TRUE_LIT):
            node = A.Const(True)
        elif self._accept(T.FALSE_LIT):
            node = A.Const(False)
        elif self._accept(T.NULL):
            node = A.Const(None)
        else:
            raise ParseError("expected literal", tok.pos)
        node.at(tok.pos)
        return node

    # -- statements ----------------------------------------------------------
    def _block(self) -> A.Block:
        tok = self._expect(T.LBRACE)
        stmts: list[A.Stmt] = []
        while not self._at(T.RBRACE):
            stmts.append(self._stmt())
        self._expect(T.RBRACE)
        blk = A.Block(stmts)
        blk.at(tok.pos)
        return blk

    def _stmt(self) -> A.Stmt:
        tok = self._peek()
        kind = tok.kind

        # optional loop label:  IDENT ':' (loop|while)
        if (kind is T.IDENT and self._at(T.COLON, 1)
                and self._peek(2).kind in (T.LOOP, T.WHILE)):
            label = self._advance().text
            self._advance()  # ':'
            return self._loop_stmt(label)

        if kind is T.LBRACE:
            return self._block()
        if kind is T.LOCAL:
            return self._local()
        if kind is T.IF:
            return self._if()
        if kind in (T.LOOP, T.WHILE):
            return self._loop_stmt(None)
        if kind is T.BREAK:
            self._advance()
            label = self._accept(T.IDENT)
            self._expect(T.SEMI)
            node = A.Break(label.text if label else None)
            node.at(tok.pos)
            return node
        if kind is T.CONTINUE:
            self._advance()
            label = self._accept(T.IDENT)
            self._expect(T.SEMI)
            node = A.Continue(label.text if label else None)
            node.at(tok.pos)
            return node
        if kind is T.RETURN:
            self._advance()
            value = None if self._at(T.SEMI) else self._expr()
            self._expect(T.SEMI)
            node = A.Return(value)
            node.at(tok.pos)
            return node
        if kind is T.SKIP:
            self._advance()
            self._expect(T.SEMI)
            node = A.Skip()
            node.at(tok.pos)
            return node
        if kind is T.SYNCHRONIZED:
            self._advance()
            self._expect(T.LPAREN)
            lock = self._expr()
            self._expect(T.RPAREN)
            body = self._stmt()
            node = A.Synchronized(lock, body)
            node.at(tok.pos)
            return node
        if kind is T.TRUE_KW:
            self._advance()
            self._expect(T.LPAREN)
            cond = self._expr()
            self._expect(T.RPAREN)
            self._expect(T.SEMI)
            node = A.Assume(cond)
            node.at(tok.pos)
            return node
        if kind is T.ASSERT:
            self._advance()
            self._expect(T.LPAREN)
            cond = self._expr()
            self._expect(T.RPAREN)
            self._expect(T.SEMI)
            node = A.AssertStmt(cond)
            node.at(tok.pos)
            return node

        # assignment, increment, or expression statement
        e = self._expr()
        if self._accept(T.ASSIGN):
            if not A.is_location(e):
                raise ParseError("assignment target is not a location",
                                 tok.pos)
            value = self._expr()
            self._expect(T.SEMI)
            node = A.Assign(e, value)
            node.at(tok.pos)
            return node
        if self._at(T.PLUSPLUS) or self._at(T.MINUSMINUS):
            op = "+" if self._advance().kind is T.PLUSPLUS else "-"
            self._expect(T.SEMI)
            if not A.is_location(e):
                raise ParseError("increment target is not a location",
                                 tok.pos)
            bump = A.Binary(op, _clone_location(e), A.Const(1))
            bump.at(tok.pos)
            node = A.Assign(e, bump)
            node.at(tok.pos)
            return node
        self._expect(T.SEMI)
        node = A.ExprStmt(e)
        node.at(tok.pos)
        return node

    def _local(self) -> A.LocalDecl:
        tok = self._expect(T.LOCAL)
        name = self._expect(T.IDENT).text
        self._expect(T.ASSIGN)
        init = self._expr()
        self._expect(T.IN)
        body = self._stmt()
        node = A.LocalDecl(name, init, body)
        node.at(tok.pos)
        return node

    def _if(self) -> A.If:
        tok = self._expect(T.IF)
        self._expect(T.LPAREN)
        cond = self._expr()
        self._expect(T.RPAREN)
        then = self._stmt()
        els = self._stmt() if self._accept(T.ELSE) else None
        node = A.If(cond, then, els)
        node.at(tok.pos)
        return node

    def _loop_stmt(self, label: str | None) -> A.Stmt:
        tok = self._peek()
        if self._accept(T.LOOP):
            body = self._stmt()
            node = A.Loop(body, label)
            node.at(tok.pos)
            return node
        # while (e) s  ==>  loop { if (e) s else break; }
        self._expect(T.WHILE)
        self._expect(T.LPAREN)
        cond = self._expr()
        self._expect(T.RPAREN)
        body = self._stmt()
        brk = A.Break(label=None)
        brk.at(tok.pos)
        guard = A.If(cond, body, brk)
        guard.at(tok.pos)
        blk = A.Block([guard])
        blk.at(tok.pos)
        node = A.Loop(blk, label)
        node.at(tok.pos)
        return node

    # -- expressions ----------------------------------------------------------
    def _expr(self) -> A.Expr:
        return self._or()

    def _binary_level(self, sub, ops: dict[T, str]) -> A.Expr:
        left = sub()
        while self._peek().kind in ops:
            tok = self._advance()
            right = sub()
            left = A.Binary(ops[tok.kind], left, right)
            left.at(tok.pos)
        return left

    def _or(self) -> A.Expr:
        return self._binary_level(self._and, {T.OR: "||"})

    def _and(self) -> A.Expr:
        return self._binary_level(self._equality, {T.AND: "&&"})

    def _equality(self) -> A.Expr:
        return self._binary_level(self._relational,
                                  {T.EQ: "==", T.NE: "!="})

    def _relational(self) -> A.Expr:
        return self._binary_level(
            self._additive,
            {T.LT: "<", T.LE: "<=", T.GT: ">", T.GE: ">="})

    def _additive(self) -> A.Expr:
        return self._binary_level(self._multiplicative,
                                  {T.PLUS: "+", T.MINUS: "-"})

    def _multiplicative(self) -> A.Expr:
        return self._binary_level(self._unary,
                                  {T.STAR: "*", T.SLASH: "/",
                                   T.PERCENT: "%"})

    def _unary(self) -> A.Expr:
        tok = self._peek()
        if self._accept(T.NOT):
            node = A.Unary("!", self._unary())
            node.at(tok.pos)
            return node
        if self._accept(T.MINUS):
            node = A.Unary("-", self._unary())
            node.at(tok.pos)
            return node
        return self._postfix()

    def _postfix(self) -> A.Expr:
        e = self._primary()
        while True:
            tok = self._peek()
            if self._accept(T.DOT):
                name = self._expect(T.IDENT).text
                e = A.Field(e, name)
                e.at(tok.pos)
            elif self._accept(T.LBRACKET):
                index = self._expr()
                self._expect(T.RBRACKET)
                e = A.Index(e, index)
                e.at(tok.pos)
            else:
                return e

    def _primary(self) -> A.Expr:
        tok = self._peek()
        kind = tok.kind
        if kind is T.INT:
            self._advance()
            node = A.Const(int(tok.text))
        elif kind is T.TRUE_LIT:
            self._advance()
            node = A.Const(True)
        elif kind is T.FALSE_LIT:
            self._advance()
            node = A.Const(False)
        elif kind is T.NULL:
            self._advance()
            node = A.Const(None)
        elif kind is T.LPAREN:
            self._advance()
            node = self._expr()
            self._expect(T.RPAREN)
            return node
        elif kind is T.NEW:
            self._advance()
            cname = self._expect(T.IDENT).text
            if self._accept(T.LBRACKET):
                size = self._expr()
                self._expect(T.RBRACKET)
                node = A.NewArray(cname, size)
            else:
                node = A.New(cname)
        elif kind is T.LL:
            self._advance()
            self._expect(T.LPAREN)
            loc = self._location()
            self._expect(T.RPAREN)
            node = A.LLExpr(loc)
        elif kind is T.VL:
            self._advance()
            self._expect(T.LPAREN)
            loc = self._location()
            self._expect(T.RPAREN)
            node = A.VLExpr(loc)
        elif kind is T.SC:
            self._advance()
            self._expect(T.LPAREN)
            loc = self._location()
            self._expect(T.COMMA)
            value = self._expr()
            self._expect(T.RPAREN)
            node = A.SCExpr(loc, value)
        elif kind is T.CAS:
            self._advance()
            self._expect(T.LPAREN)
            loc = self._location()
            self._expect(T.COMMA)
            expected = self._expr()
            self._expect(T.COMMA)
            new = self._expr()
            self._expect(T.RPAREN)
            node = A.CASExpr(loc, expected, new)
        elif kind is T.IDENT:
            self._advance()
            if self._at(T.LPAREN):
                self._advance()
                args: list[A.Expr] = []
                if not self._at(T.RPAREN):
                    while True:
                        args.append(self._expr())
                        if not self._accept(T.COMMA):
                            break
                self._expect(T.RPAREN)
                node = A.PrimCall(tok.text, args)
            else:
                node = A.Var(tok.text)
        else:
            raise ParseError(
                f"expected expression, found {tok.text or kind.value!r}",
                tok.pos)
        node.at(tok.pos)
        return node

    def _location(self) -> A.Expr:
        e = self._postfix()
        if not A.is_location(e):
            raise ParseError("expected a location (x, x.fd, or x[e])",
                             self._peek().pos)
        return e


def _clone_location(e: A.Expr) -> A.Expr:
    """Deep-copy a location expression (for ``x++`` desugaring)."""
    if isinstance(e, A.Var):
        out: A.Expr = A.Var(e.name)
    elif isinstance(e, A.Field):
        out = A.Field(_clone_location(e.base), e.name)
    elif isinstance(e, A.Index):
        out = A.Index(_clone_location(e.base), _clone_expr(e.index))
    else:  # pragma: no cover - guarded by is_location
        raise ParseError("not a location")
    out.at(e.pos)
    return out


def _clone_expr(e: A.Expr) -> A.Expr:
    """Deep-copy an arbitrary expression."""
    if isinstance(e, A.Const):
        out: A.Expr = A.Const(e.value)
    elif isinstance(e, A.Var):
        out = A.Var(e.name)
    elif isinstance(e, A.Field):
        out = A.Field(_clone_expr(e.base), e.name)
    elif isinstance(e, A.Index):
        out = A.Index(_clone_expr(e.base), _clone_expr(e.index))
    elif isinstance(e, A.Unary):
        out = A.Unary(e.op, _clone_expr(e.operand))
    elif isinstance(e, A.Binary):
        out = A.Binary(e.op, _clone_expr(e.left), _clone_expr(e.right))
    elif isinstance(e, A.PrimCall):
        out = A.PrimCall(e.name, [_clone_expr(a) for a in e.args])
    elif isinstance(e, A.New):
        out = A.New(e.class_name)
    elif isinstance(e, A.NewArray):
        out = A.NewArray(e.class_name, _clone_expr(e.size))
    elif isinstance(e, A.LLExpr):
        out = A.LLExpr(_clone_expr(e.loc))
    elif isinstance(e, A.VLExpr):
        out = A.VLExpr(_clone_expr(e.loc))
    elif isinstance(e, A.SCExpr):
        out = A.SCExpr(_clone_expr(e.loc), _clone_expr(e.value))
    elif isinstance(e, A.CASExpr):
        out = A.CASExpr(_clone_expr(e.loc), _clone_expr(e.expected),
                        _clone_expr(e.new))
    else:  # pragma: no cover
        raise ParseError(f"cannot clone {type(e).__name__}")
    out.at(e.pos)
    return out


def parse_program(text: str) -> A.Program:
    """Parse SYNL source text into an (unresolved) :class:`Program`."""
    return Parser(tokenize(text)).parse_program()


def parse_stmt(text: str) -> A.Stmt:
    """Parse a single statement (testing convenience)."""
    parser = Parser(tokenize(text))
    stmt = parser._stmt()
    parser._expect(T.EOF)
    return stmt


def parse_expr(text: str) -> A.Expr:
    """Parse a single expression (testing convenience)."""
    parser = Parser(tokenize(text))
    expr = parser._expr()
    parser._expect(T.EOF)
    return expr
