"""SYNL — the Synchronization Language of the paper (§3.2, Table 1).

This package is the language substrate: lexer, parser, AST, resolver and
pretty-printer.  The normal entry point is :func:`load_program`, which
parses and resolves source text in one step.
"""

from repro.synl import ast
from repro.synl.lexer import tokenize
from repro.synl.parser import parse_expr, parse_program, parse_stmt
from repro.synl.printer import pretty, pretty_expr, pretty_stmt
from repro.synl.resolve import Resolution, load_program, resolve

__all__ = [
    "ast",
    "tokenize",
    "parse_program",
    "parse_stmt",
    "parse_expr",
    "pretty",
    "pretty_expr",
    "pretty_stmt",
    "resolve",
    "load_program",
    "Resolution",
]
