"""Name resolution and well-formedness checking for SYNL programs.

Responsibilities:

* classify every ``Var`` occurrence as global / thread-local / parameter /
  procedure-local / constant (:class:`repro.synl.ast.VarKind`) and link it
  to its binder via a unique binding id;
* check the structural restrictions of Table 1 (field/array bases are
  variables — deeper chains must go through ``local`` bindings);
* check ``break`` / ``continue`` placement and loop labels;
* reject duplicate declarations and undeclared names.

Resolution mutates the AST in place (setting ``Var.kind``, ``Var.binding``
and ``LocalDecl.binding``) and returns a :class:`Resolution` summary.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import ResolveError
from repro.synl import ast as A


@dataclass
class BindingInfo:
    """Metadata about one variable binder."""

    binding: int
    name: str
    kind: A.VarKind
    node: A.Node | None = None  # VarDecl / LocalDecl / Procedure (params)


@dataclass
class Resolution:
    """Result of resolving a program."""

    program: A.Program
    bindings: dict[int, BindingInfo] = field(default_factory=dict)

    def info(self, binding: int) -> BindingInfo:
        return self.bindings[binding]


class _Scope:
    """A chain of name -> binding-id maps."""

    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.names: dict[str, int] = {}

    def lookup(self, name: str) -> int | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None

    def bind(self, name: str, binding: int) -> None:
        self.names[name] = binding


class Resolver:
    def __init__(self, program: A.Program):
        self.program = program
        self.counter = itertools.count(1)
        self.resolution = Resolution(program)
        self.root = _Scope()

    def _new_binding(self, name: str, kind: A.VarKind,
                     node: A.Node | None) -> int:
        binding = next(self.counter)
        self.resolution.bindings[binding] = BindingInfo(
            binding, name, kind, node)
        return binding

    def resolve(self) -> Resolution:
        prog = self.program
        seen: set[str] = set()

        def declare(decl_name: str, kind: A.VarKind, node: A.Node) -> int:
            if decl_name in seen:
                raise ResolveError(f"duplicate declaration of {decl_name!r}",
                                   node.pos)
            seen.add(decl_name)
            binding = self._new_binding(decl_name, kind, node)
            self.root.bind(decl_name, binding)
            return binding

        for const in prog.consts:
            declare(const.name, A.VarKind.CONST, const)
        for decl in prog.globals:
            declare(decl.name, A.VarKind.GLOBAL, decl)
        for decl in prog.threadlocals:
            declare(decl.name, A.VarKind.THREADLOCAL, decl)

        proc_names: set[str] = set()
        for proc in prog.procs:
            if proc.name in proc_names:
                raise ResolveError(f"duplicate procedure {proc.name!r}",
                                   proc.pos)
            proc_names.add(proc.name)

        # Global/threadlocal initializer expressions may reference consts
        # and earlier globals only.
        for decl in prog.globals + prog.threadlocals:
            if decl.init is not None:
                self._expr(decl.init, self.root)

        if prog.init is not None:
            self._stmt(prog.init, self.root, loop_labels=[])
        if prog.threadinit is not None:
            self._stmt(prog.threadinit, self.root, loop_labels=[])

        for proc in prog.procs:
            scope = _Scope(self.root)
            for param in proc.params:
                if param in proc.param_bindings:
                    raise ResolveError(
                        f"duplicate parameter {param!r} in {proc.name}",
                        proc.pos)
                binding = self._new_binding(param, A.VarKind.PARAM, proc)
                proc.param_bindings[param] = binding
                scope.bind(param, binding)
            self._stmt(proc.body, scope, loop_labels=[])

        return self.resolution

    # -- statements -----------------------------------------------------------
    def _stmt(self, s: A.Stmt, scope: _Scope,
              loop_labels: list[str | None]) -> None:
        if isinstance(s, A.Block):
            for sub in s.stmts:
                self._stmt(sub, scope, loop_labels)
        elif isinstance(s, A.Assign):
            self._location(s.target, scope, writing=True)
            self._expr(s.value, scope)
        elif isinstance(s, A.LocalDecl):
            self._expr(s.init, scope)
            inner = _Scope(scope)
            s.binding = self._new_binding(s.name, A.VarKind.LOCAL, s)
            inner.bind(s.name, s.binding)
            self._stmt(s.body, inner, loop_labels)
        elif isinstance(s, A.If):
            self._expr(s.cond, scope)
            self._stmt(s.then, scope, loop_labels)
            if s.els is not None:
                self._stmt(s.els, scope, loop_labels)
        elif isinstance(s, A.Loop):
            if s.label is not None and s.label in loop_labels:
                raise ResolveError(f"duplicate loop label {s.label!r}", s.pos)
            self._stmt(s.body, scope, loop_labels + [s.label])
        elif isinstance(s, (A.Break, A.Continue)):
            if not loop_labels:
                raise ResolveError(
                    f"{type(s).__name__.lower()} outside of a loop", s.pos)
            if s.label is not None and s.label not in loop_labels:
                raise ResolveError(f"unknown loop label {s.label!r}", s.pos)
        elif isinstance(s, A.Return):
            if s.value is not None:
                self._expr(s.value, scope)
        elif isinstance(s, A.Skip):
            pass
        elif isinstance(s, A.Synchronized):
            self._expr(s.lock, scope)
            self._stmt(s.body, scope, loop_labels)
        elif isinstance(s, (A.Assume, A.AssertStmt)):
            self._expr(s.cond, scope)
        elif isinstance(s, A.ExprStmt):
            self._expr(s.expr, scope)
        else:
            raise ResolveError(f"unknown statement {type(s).__name__}", s.pos)

    # -- expressions ------------------------------------------------------------
    def _expr(self, e: A.Expr, scope: _Scope) -> None:
        if isinstance(e, A.Const):
            return
        if isinstance(e, A.Var):
            binding = scope.lookup(e.name)
            if binding is None:
                raise ResolveError(f"undeclared variable {e.name!r}", e.pos)
            info = self.resolution.bindings[binding]
            e.kind = info.kind
            e.binding = binding
            return
        if isinstance(e, (A.Field, A.Index)):
            self._location(e, scope, writing=False)
            return
        if isinstance(e, (A.New,)):
            return
        if isinstance(e, A.NewArray):
            self._expr(e.size, scope)
            return
        if isinstance(e, A.Unary):
            self._expr(e.operand, scope)
            return
        if isinstance(e, A.Binary):
            self._expr(e.left, scope)
            self._expr(e.right, scope)
            return
        if isinstance(e, A.PrimCall):
            for a in e.args:
                self._expr(a, scope)
            return
        if isinstance(e, (A.LLExpr, A.VLExpr)):
            self._location(e.loc, scope, writing=False)
            return
        if isinstance(e, A.SCExpr):
            self._location(e.loc, scope, writing=True)
            self._expr(e.value, scope)
            return
        if isinstance(e, A.CASExpr):
            self._location(e.loc, scope, writing=True)
            self._expr(e.expected, scope)
            self._expr(e.new, scope)
            return
        raise ResolveError(f"unknown expression {type(e).__name__}", e.pos)

    def _location(self, e: A.Expr, scope: _Scope, writing: bool) -> None:
        if isinstance(e, A.Var):
            self._expr(e, scope)
            if writing and e.kind is A.VarKind.CONST:
                raise ResolveError(f"cannot assign to constant {e.name!r}",
                                   e.pos)
            return
        if isinstance(e, A.Field):
            if not isinstance(e.base, A.Var):
                raise ResolveError(
                    "field base must be a variable (Table 1); "
                    "bind intermediate objects with 'local'", e.pos)
            self._expr(e.base, scope)
            return
        if isinstance(e, A.Index):
            self._location(e.base, scope, writing=False)
            self._expr(e.index, scope)
            return
        raise ResolveError("expected a location (x, x.fd, or x[e])", e.pos)


def resolve(program: A.Program) -> Resolution:
    """Resolve names in ``program`` (mutates the AST; see module docs)."""
    return Resolver(program).resolve()


def load_program(text: str) -> A.Program:
    """Parse **and** resolve SYNL source text — the normal entry point."""
    from repro.synl.parser import parse_program

    program = parse_program(text)
    resolve(program)
    return program
