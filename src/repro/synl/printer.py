"""Pretty-printer for SYNL ASTs.

``parse_program(pretty(p))`` is structurally equal to ``p`` (this is
property-tested).  The printer is also used to render exceptional variants
in the style of Figure 3 of the paper.
"""

from __future__ import annotations

from repro.synl import ast as A

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3, "!=": 3,
    "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}
_UNARY_PRECEDENCE = 7


def pretty_expr(e: A.Expr, parent_prec: int = 0) -> str:
    """Render an expression, inserting parentheses as needed."""
    if isinstance(e, A.Const):
        if e.value is None:
            return "null"
        if e.value is True:
            return "true"
        if e.value is False:
            return "false"
        return str(e.value)
    if isinstance(e, A.Var):
        return e.name
    if isinstance(e, A.Field):
        return f"{pretty_expr(e.base, _UNARY_PRECEDENCE + 1)}.{e.name}"
    if isinstance(e, A.Index):
        return f"{pretty_expr(e.base, _UNARY_PRECEDENCE + 1)}[{pretty_expr(e.index)}]"
    if isinstance(e, A.New):
        return f"new {e.class_name}"
    if isinstance(e, A.NewArray):
        return f"new {e.class_name}[{pretty_expr(e.size)}]"
    if isinstance(e, A.Unary):
        inner = pretty_expr(e.operand, _UNARY_PRECEDENCE)
        if e.op == "-" and inner.startswith("-"):
            inner = f"({inner})"  # avoid lexing "--" as decrement
        text = f"{e.op}{inner}"
        return text if parent_prec <= _UNARY_PRECEDENCE else f"({text})"
    if isinstance(e, A.Binary):
        prec = _PRECEDENCE[e.op]
        left = pretty_expr(e.left, prec)
        right = pretty_expr(e.right, prec + 1)  # left-associative
        text = f"{left} {e.op} {right}"
        return text if prec >= parent_prec else f"({text})"
    if isinstance(e, A.PrimCall):
        args = ", ".join(pretty_expr(a) for a in e.args)
        return f"{e.name}({args})"
    if isinstance(e, A.LLExpr):
        return f"LL({pretty_expr(e.loc)})"
    if isinstance(e, A.VLExpr):
        return f"VL({pretty_expr(e.loc)})"
    if isinstance(e, A.SCExpr):
        return f"SC({pretty_expr(e.loc)}, {pretty_expr(e.value)})"
    if isinstance(e, A.CASExpr):
        return (f"CAS({pretty_expr(e.loc)}, {pretty_expr(e.expected)}, "
                f"{pretty_expr(e.new)})")
    raise TypeError(f"unknown expression {type(e).__name__}")


class _Printer:
    def __init__(self, indent: str = "  "):
        self.indent = indent
        self.lines: list[str] = []

    def emit(self, depth: int, text: str) -> None:
        self.lines.append(self.indent * depth + text)

    def stmt(self, s: A.Stmt, depth: int) -> None:
        if isinstance(s, A.Block):
            self.emit(depth, "{")
            for sub in s.stmts:
                self.stmt(sub, depth + 1)
            self.emit(depth, "}")
        elif isinstance(s, A.Assign):
            self.emit(depth,
                      f"{pretty_expr(s.target)} = {pretty_expr(s.value)};")
        elif isinstance(s, A.LocalDecl):
            self.emit(depth, f"local {s.name} = {pretty_expr(s.init)} in")
            self.stmt(s.body, depth + 1 if not isinstance(s.body, A.Block)
                      else depth)
        elif isinstance(s, A.If):
            self.emit(depth, f"if ({pretty_expr(s.cond)})")
            self.stmt(_blockify(s.then), depth)
            if s.els is not None:
                self.emit(depth, "else")
                self.stmt(_blockify(s.els), depth)
        elif isinstance(s, A.Loop):
            prefix = f"{s.label}: " if s.label else ""
            self.emit(depth, f"{prefix}loop")
            self.stmt(_blockify(s.body), depth)
        elif isinstance(s, A.Break):
            self.emit(depth, f"break {s.label};" if s.label else "break;")
        elif isinstance(s, A.Continue):
            self.emit(depth,
                      f"continue {s.label};" if s.label else "continue;")
        elif isinstance(s, A.Return):
            if s.value is None:
                self.emit(depth, "return;")
            else:
                self.emit(depth, f"return {pretty_expr(s.value)};")
        elif isinstance(s, A.Skip):
            self.emit(depth, "skip;")
        elif isinstance(s, A.Synchronized):
            self.emit(depth, f"synchronized ({pretty_expr(s.lock)})")
            self.stmt(_blockify(s.body), depth)
        elif isinstance(s, A.Assume):
            self.emit(depth, f"TRUE({pretty_expr(s.cond)});")
        elif isinstance(s, A.AssertStmt):
            self.emit(depth, f"assert({pretty_expr(s.cond)});")
        elif isinstance(s, A.ExprStmt):
            self.emit(depth, f"{pretty_expr(s.expr)};")
        else:
            raise TypeError(f"unknown statement {type(s).__name__}")

    def program(self, p: A.Program) -> None:
        for c in p.consts:
            self.emit(0, f"const {c.name} = {pretty_expr(c.value)};")
        for c in p.classes:
            fields = " ".join(
                ("versioned " if f in c.versioned_fields else "") + f"{f};"
                for f in c.fields)
            self.emit(0, f"class {c.name} {{ {fields} }}")
        for d in p.globals:
            mod = "versioned " if d.versioned else ""
            init = f" = {pretty_expr(d.init)}" if d.init is not None else ""
            self.emit(0, f"global {mod}{d.name}{init};")
        for d in p.threadlocals:
            init = f" = {pretty_expr(d.init)}" if d.init is not None else ""
            self.emit(0, f"threadlocal {d.name}{init};")
        if p.init is not None:
            self.emit(0, "init")
            self.stmt(p.init, 0)
        if p.threadinit is not None:
            self.emit(0, "threadinit")
            self.stmt(p.threadinit, 0)
        for proc in p.procs:
            self.emit(0, f"proc {proc.name}({', '.join(proc.params)})")
            self.stmt(proc.body, 0)


def _blockify(s: A.Stmt) -> A.Block:
    """Wrap a non-block statement in a block for unambiguous printing."""
    if isinstance(s, A.Block):
        return s
    block = A.Block([s])
    block.at(s.pos)
    return block


def pretty_stmt(s: A.Stmt) -> str:
    printer = _Printer()
    printer.stmt(s, 0)
    return "\n".join(printer.lines)


def pretty(node: A.Node) -> str:
    """Render a program, procedure, statement, or expression as source."""
    if isinstance(node, A.Program):
        printer = _Printer()
        printer.program(node)
        return "\n".join(printer.lines) + "\n"
    if isinstance(node, A.Procedure):
        printer = _Printer()
        printer.emit(0, f"proc {node.name}({', '.join(node.params)})")
        printer.stmt(node.body, 0)
        return "\n".join(printer.lines)
    if isinstance(node, A.Stmt):
        return pretty_stmt(node)
    if isinstance(node, A.Expr):
        return pretty_expr(node)
    raise TypeError(f"cannot pretty-print {type(node).__name__}")
