"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError`, so callers can
catch a single base class at API boundaries.  Errors that originate from a
specific place in SYNL source code carry a :class:`SourcePos`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class SourcePos:
    """A position in SYNL source text (1-based line and column)."""

    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SynlError(ReproError):
    """Base class for language-level errors (lexing, parsing, resolution)."""

    def __init__(self, message: str, pos: SourcePos | None = None):
        self.pos = pos
        if pos is not None:
            message = f"{pos}: {message}"
        super().__init__(message)


class LexError(SynlError):
    """Invalid token in SYNL source text."""


class ParseError(SynlError):
    """Syntactically invalid SYNL source text."""


class ResolveError(SynlError):
    """Scope or kind error (undeclared variable, bad break/continue, ...)."""


class AnalysisError(ReproError):
    """The static analysis could not be applied (violated assumptions)."""


class InterpError(ReproError):
    """Runtime error during interpretation of a SYNL program."""


class AssertionViolation(InterpError):
    """An ``assert`` statement in a SYNL program evaluated to false."""

    def __init__(self, message: str, thread_id: int | None = None,
                 pos: SourcePos | None = None):
        self.thread_id = thread_id
        self.pos = pos
        super().__init__(message)


class PropertyViolation(ReproError):
    """A model-checking property failed in some reachable state."""

    def __init__(self, message: str, trace: list | None = None):
        self.trace = trace or []
        super().__init__(message)


class ExplorationLimit(ReproError):
    """The model checker exceeded a configured state or step budget."""
