"""Pure-loop detection tests (§4): the semaphore example, NFQ vs NFQ',
the SC-as-read special case, conditions (ii)/(iii), covering loops."""

import pytest

from repro import corpus
from repro.analysis.escape import escape_analysis
from repro.analysis.purity import (PurityAnalysis, find_covering_loops,
                                   pure_loops)
from repro.analysis.uniqueness import uniqueness_analysis
from repro.cfg import build_cfg
from repro.synl.resolve import load_program


def purity_of(source, proc_name):
    prog = load_program(source)
    cfgs = {p.name: build_cfg(p) for p in prog.procs}
    unique = uniqueness_analysis(prog, cfgs)
    cfg = cfgs[proc_name]
    return pure_loops(cfg, prog, escape_analysis(cfg),
                      unique.unique_bindings())


def all_pure(source, proc_name):
    infos = purity_of(source, proc_name)
    return all(i.pure for i in infos.values()), infos


def test_semaphore_down_is_pure():
    """The paper's §4 example: iterations that fail the tmp > 0 test or
    the SC terminate normally with no side effects."""
    ok, infos = all_pure(corpus.SEMAPHORE, "Down")
    assert ok and len(infos) == 1


def test_semaphore_up_is_pure():
    ok, _ = all_pure(corpus.SEMAPHORE, "Up")
    assert ok


def test_nfq_enq_loop_impure_because_of_helping_sc():
    """NFQ's Enq updates Tail on behalf of other threads inside normally
    terminating iterations — exactly why the paper modifies it (§6.1)."""
    ok, infos = all_pure(corpus.NFQ, "Enq")
    assert not ok
    reasons = " ".join(r for i in infos.values() for r in i.reasons)
    assert "SC(Tail)" in reasons


def test_nfq_deq_loop_impure():
    ok, _ = all_pure(corpus.NFQ, "Deq")
    assert not ok


@pytest.mark.parametrize("proc", ["AddNode", "UpdateTail", "DeqP"])
def test_nfq_prime_loops_all_pure(proc):
    ok, _ = all_pure(corpus.NFQ_PRIME, proc)
    assert ok


def test_sc_as_branch_condition_treated_as_read():
    """An SC testing an if whose success branch exits the loop acts as a
    failing read under normal termination (§4 special case)."""
    ok, _ = all_pure("""
        global G;
        proc P(v) {
          loop {
            local t = LL(G) in {
              if (SC(G, v)) { return; }
            }
          }
        }
    """, "P")
    assert ok


def test_sc_statement_in_normal_iteration_impure():
    ok, _ = all_pure("""
        global G;
        proc P(v) {
          loop {
            local t = LL(G) in {
              SC(G, v);
              if (t == 0) { return; }
            }
          }
        }
    """, "P")
    assert not ok


def test_sc_branch_whose_success_stays_in_loop_impure():
    ok, _ = all_pure("""
        global G;
        proc P(v) {
          loop {
            local t = LL(G) in {
              if (SC(G, v)) { continue; }
              if (t == 0) { return; }
            }
          }
        }
    """, "P")
    assert not ok


def test_local_update_dead_at_loop_end_is_pure():
    ok, _ = all_pure("""
        global G;
        proc P() {
          local x = 0 in
          loop {
            x = G;
            if (x == 3) { return; }
          }
        }
    """, "P")
    # x is rewritten before every read on paths from the loop end
    assert ok


def test_local_update_live_across_iterations_impure():
    ok, infos = all_pure("""
        global G;
        proc P() {
          local i = 0 in
          loop {
            i = i + 1;
            if (i > G) { return; }
          }
        }
    """, "P")
    assert not ok
    reasons = " ".join(r for i in infos.values() for r in i.reasons)
    assert "ii.a" in reasons


def test_condition_iib_threadlocal_escape_impure():
    """A thread-local updated in a normal iteration is visible after the
    procedure exits — condition (ii.b)."""
    ok, infos = all_pure("""
        global G;
        threadlocal cache;
        proc P() {
          loop {
            if (G == 0) { return; }
            cache = G;
          }
        }
    """, "P")
    # the exit path leaves without touching cache again, so the normal
    # iteration's write persists in the thread-local store
    assert not ok
    reasons = " ".join(r for i in infos.values() for r in i.reasons)
    assert "ii.b" in reasons


def test_condition_iib_vacuous_when_always_rewritten():
    """The symmetric positive case: a thread-local rewritten before
    every exit is dead at the end of the body — pure (§4, ii)."""
    ok, _ = all_pure("""
        global G;
        threadlocal cache;
        proc P() {
          loop {
            cache = G;
            if (G == 0) { return; }
          }
        }
    """, "P")
    assert ok


def test_condition_iii_ll_matching_sc_outside_loop_impure():
    ok, infos = all_pure("""
        global G;
        proc P(v) {
          local t = 0 in {
            loop {
              t = LL(G);
              if (t == v) { break; }
            }
            SC(G, v);
            return;
          }
        }
    """, "P")
    assert not ok
    reasons = " ".join(r for i in infos.values() for r in i.reasons)
    assert "iii" in reasons


def test_gh_outer_loop_pure_inner_impure(gh1_analysis):
    infos = purity_of(corpus.GH_PROGRAM1, "Apply")
    labelled = {info.info.loop.label: info for info in infos.values()}
    assert labelled["a2"].pure          # outer loop (Fig. 5)
    inner = next(i for label, i in labelled.items() if label is None)
    assert not inner.pure               # i is live across iterations


def test_gh_program2_outer_loop_impure():
    infos = purity_of(corpus.GH_PROGRAM2, "Apply")
    outer = next(i for i in infos.values() if i.info.loop.label == "a2")
    assert not outer.pure  # the guard reads prvObj.data before rewriting


def test_covering_loop_recognized_in_gh():
    prog = load_program(corpus.GH_PROGRAM1)
    cfg = build_cfg(prog.proc("Apply"))
    coverings = find_covering_loops(cfg)
    assert len(coverings) == 1
    assert coverings[0].region[0] == "elem"
    assert coverings[0].region[2] == "data"


def test_covering_loop_requires_write_on_every_path():
    prog = load_program("""
        const W = 3;
        class Obj { data; }
        threadlocal p;
        threadinit { p = new Obj; p.data = new int[W + 1]; }
        proc P(g) {
          local i = 1 in
          loop {
            if (i > W) { break; }
            if (g == i) { p.data[i] = 0; }
            i = i + 1;
          }
        }
    """)
    cfg = build_cfg(prog.proc("P"))
    assert find_covering_loops(cfg) == []


def test_covering_loop_requires_unit_increment():
    prog = load_program("""
        const W = 3;
        class Obj { data; }
        threadlocal p;
        threadinit { p = new Obj; p.data = new int[W + 1]; }
        proc P() {
          local i = 1 in
          loop {
            if (i > W) { break; }
            p.data[i] = 0;
            i = i + 2;
          }
        }
    """)
    cfg = build_cfg(prog.proc("P"))
    assert find_covering_loops(cfg) == []


def test_herlihy_loop_pure():
    ok, _ = all_pure(corpus.HERLIHY_SMALL, "Apply")
    assert ok


def test_allocator_loops_all_pure():
    for proc in ("MallocFromActive", "MallocFromPartial",
                 "MallocFromNewSB", "UpdateActive", "DescAlloc",
                 "HeapPutPartial"):
        ok, infos = all_pure(corpus.ALLOCATOR, proc)
        assert ok, (proc, [i.reasons for i in infos.values()])
