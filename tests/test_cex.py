"""Counterexample explainability: path reconstruction, mover/theorem
annotation, rendering, and the ``--explain-cex`` CLI surface."""

from __future__ import annotations

import json

import pytest

from repro import cli, corpus
from repro.analysis import analyze_program
from repro.interp import Interp, ThreadSpec, run_random
from repro.errors import AssertionViolation
from repro.mc import Explorer
from repro.mc.cex import RunResultView, build_cex, describe_node
from repro.obs.export import CEX_SCHEMA, MC_SCHEMA, validate
from repro.synl.parser import parse_program
from repro.synl.resolve import resolve


@pytest.fixture(scope="module")
def broken_mc():
    program = parse_program(corpus.BROKEN_SEMAPHORE)
    resolve(program)
    interp = Interp(program)
    specs = [ThreadSpec.of(("DownBad",)), ThreadSpec.of(("DownBad",))]
    result = Explorer(interp, specs, mode="full",
                      max_states=200_000).run()
    assert result.violation
    return result, interp


@pytest.fixture(scope="module")
def broken_analysis():
    return analyze_program(corpus.BROKEN_SEMAPHORE)


def test_mcresult_path_is_structured(broken_mc):
    result, _ = broken_mc
    assert result.path[0]["kind"] == "init"
    # desc strings stay in sync with the structured path
    assert [s["desc"] for s in result.path] == result.trace


def test_every_step_carries_mover_and_citation(broken_mc,
                                               broken_analysis):
    result, interp = broken_mc
    cex = build_cex(result, interp, broken_analysis)
    assert cex.annotated
    assert cex.violation == result.violation
    assert len(cex.steps) == len(result.trace) - 1  # init dropped
    for step in cex.steps:
        assert step.mover in ("R", "L", "B", "A", "N"), step.desc
        assert step.citation, step.desc
        assert step.theorems, step.desc
    # the interleaving must exhibit the paper's vocabulary: the LL is
    # a right-mover by Thm 5.3, the successful SC a left-mover, and
    # the stale read the unclassified non-mover that broke atomicity
    citations = [s.citation for s in cex.steps]
    assert any("Thm 5.3" in c and "matching LL" in c
               for c in citations)
    assert any("Thm 5.3" in c and "successful SC" in c
               for c in citations)
    stale = [s for s in cex.steps if s.mover == "A"]
    assert stale and any("unclassified" in s.citation for s in stale)


def test_render_is_a_per_thread_timeline(broken_mc, broken_analysis):
    result, interp = broken_mc
    text = build_cex(result, interp, broken_analysis).render()
    assert "t0" in text and "t1" in text
    assert "[R]" in text and "[L]" in text and "[A]" in text
    assert "Thm 5.3" in text and "Thm 3.1" in text
    assert "violation after step" in text
    # every annotated step lands on its own line with its seq number
    assert f"{len(result.trace) - 1:>4}  " in text


def test_cex_to_dict_validates_schema(broken_mc, broken_analysis):
    result, interp = broken_mc
    cex = build_cex(result, interp, broken_analysis)
    doc = json.loads(json.dumps(cex.to_dict()))
    assert validate(doc, CEX_SCHEMA) == []
    assert doc["annotated"] is True
    movers = {s["mover"] for s in doc["steps"]}
    assert {"R", "L", "A"} <= movers


def test_unannotated_cex_still_renders(broken_mc):
    result, interp = broken_mc
    cex = build_cex(result, interp, analysis=None)
    assert not cex.annotated
    assert len(cex.steps) == len(result.trace) - 1
    assert "counterexample:" in cex.render()
    assert validate(cex.to_dict(), CEX_SCHEMA) == []


def test_build_cex_requires_a_violation():
    interp = Interp(corpus.NFQ_PRIME)
    clean = Explorer(interp, [ThreadSpec.of(("UpdateTail",))],
                     mode="full").run()
    with pytest.raises(ValueError):
        build_cex(clean, interp)


def test_run_view_produces_equivalent_timeline(broken_analysis):
    program = parse_program(corpus.BROKEN_SEMAPHORE)
    resolve(program)
    interp = Interp(program)
    world = interp.make_world([ThreadSpec.of(("DownBad",)),
                               ThreadSpec.of(("DownBad",))])
    path_log: list = []
    with pytest.raises(AssertionViolation) as exc:
        run_random(interp, world, seed=1, path_log=path_log)
    view = RunResultView(str(exc.value), path_log)
    cex = build_cex(view, interp, broken_analysis)
    assert cex.mode == "run"
    assert any("Thm 5.3" in s.citation for s in cex.steps)


def test_describe_node_renders_branches():
    program = parse_program(corpus.BROKEN_SEMAPHORE)
    resolve(program)
    interp = Interp(program)
    texts = {describe_node(n) for cfg in interp.cfgs.values()
             for n in cfg.nodes}
    assert "if (SC(Sem, cur - 1)) ..." in texts
    assert "loop ..." in texts
    assert "local cur = LL(Sem) in" in texts


def test_atomic_mode_steps_annotated_as_one_transition():
    program = parse_program(corpus.BROKEN_SEMAPHORE)
    resolve(program)
    interp = Interp(program)
    specs = [ThreadSpec.of(("DownBad",)), ThreadSpec.of(("DownBad",))]
    result = Explorer(interp, specs, mode="atomic",
                      max_states=200_000).run()
    if not result.violation:  # atomic mode may mask the interleaving
        pytest.skip("atomic reduction hides the violation")
    cex = build_cex(result, interp, analyze_program(
        corpus.BROKEN_SEMAPHORE))
    atomic_steps = [s for s in cex.steps if s.kind == "atomic"]
    assert atomic_steps
    assert all("one atomic transition" in s.text for s in atomic_steps)


# -- CLI ---------------------------------------------------------------------------

@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.synl"
    path.write_text(corpus.BROKEN_SEMAPHORE)
    return str(path)


def test_cli_mc_explain_cex(broken_file, capsys):
    code = cli.main(["mc", broken_file, "DownBad()", "DownBad()",
                     "--explain-cex"])
    out = capsys.readouterr().out
    assert code == 1
    assert "counterexample: assertion failed" in out
    assert "[R] R by Thm 5.3" in out
    assert "[L] L by Thm 5.3" in out
    assert "[A] A by default" in out


def test_cli_mc_explain_cex_json(broken_file, capsys):
    code = cli.main(["mc", "--json", broken_file, "DownBad()",
                     "DownBad()", "--explain-cex"])
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert validate(doc, MC_SCHEMA) == []
    assert validate(doc["counterexample"], CEX_SCHEMA) == []
    assert doc["path"][0]["kind"] == "init"
    assert doc["counterexample"]["steps"]


def test_cli_run_explain_cex(broken_file, capsys):
    code = cli.main(["run", broken_file, "DownBad()", "DownBad()",
                     "--seed", "1", "--explain-cex"])
    out = capsys.readouterr().out
    assert code == 1
    assert "assertion violation" in out
    assert "counterexample: " in out
    assert "Thm 5.3" in out


def test_cli_run_json_includes_path(broken_file, capsys):
    code = cli.main(["run", "--json", broken_file, "DownBad()",
                     "DownBad()", "--seed", "1", "--explain-cex"])
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["violation"]
    assert doc["path"]
    assert validate(doc["counterexample"], CEX_SCHEMA) == []


def test_cli_trace_out_writes_loadable_chrome_trace(broken_file,
                                                    tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    events_path = tmp_path / "events.jsonl"
    code = cli.main(["mc", broken_file, "DownBad()", "DownBad()",
                     "--trace-out", str(trace_path),
                     "--events-out", str(events_path)])
    capsys.readouterr()
    assert code == 1
    doc = json.loads(trace_path.read_text())
    events = doc["traceEvents"]
    assert events and isinstance(events, list)
    phases = {e["ph"] for e in events}
    assert {"X", "i", "M"} <= phases
    for event in events:
        assert event["pid"] == 1
        if event["ph"] in ("X", "i"):
            assert event["ts"] >= 0
        if event["ph"] == "X":
            assert event["dur"] >= 0
    # the instant events mirror the structured stream on disk
    from repro.obs.events import read_jsonl
    stream = read_jsonl(events_path)
    assert {e["kind"] for e in stream} >= {"mc.push", "mc.violation"}
