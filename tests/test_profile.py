"""The work-counter profiler: deterministic counters, ranked
hotspots, the disabled zero-overhead path, the sampling fallback, and
the explorer/inference integration (coverage telemetry, heartbeat,
embedded profile documents)."""

from __future__ import annotations

import time
import tracemalloc

import pytest

from repro import corpus
from repro.analysis.inference import analyze_program
from repro.interp import Interp, ThreadSpec
from repro.mc import Explorer
from repro.mc.explorer import MCResult
from repro.obs.config import ObsConfig
from repro.obs.events import EVENT_SCHEMA, EventStream
from repro.obs.export import (MIN_RATE_WINDOW_S, PROFILE_SCHEMA,
                              bench_record, validate)
from repro.obs.profile import (NULL_PROFILER, Profiler, Sampler,
                               malloc_top, peak_rss_mb)

TINY = """
global G;
init { G = 0; }
proc Inc() {
  loop {
    local t = LL(G) in {
      if (SC(G, t + 1)) { return; }
    }
  }
}
"""


# -- accumulation ------------------------------------------------------------------

def test_region_times_and_counts():
    prof = Profiler()
    with prof.region("outer"):
        time.sleep(0.002)
    with prof.region("outer"):
        pass
    (entry,) = prof.hotspots()
    assert entry["name"] == "outer"
    assert entry["calls"] == 2
    assert entry["wall_s"] >= 0.002


def test_add_counts_work_without_timing():
    prof = Profiler()
    prof.add("rule", 3)
    prof.add("rule")
    (entry,) = prof.hotspots()
    assert entry == {"name": "rule", "calls": 0, "work": 4,
                     "wall_s": 0.0, "share": 0.0}


def test_acc_flushes_hot_loop_totals():
    prof = Profiler()
    prof.acc("dfs", 0.5, work=100, calls=10)
    prof.acc("dfs", 0.25, work=50, calls=5)
    (entry,) = prof.hotspots()
    assert (entry["calls"], entry["work"]) == (15, 150)
    assert entry["wall_s"] == pytest.approx(0.75)


def test_hotspots_ranked_by_wall_then_work_then_name():
    prof = Profiler()
    prof.acc("slow", 0.2, work=1)
    prof.acc("fast-heavy", 0.1, work=99)
    prof.acc("fast-light", 0.1, work=1)
    names = [h["name"] for h in prof.hotspots()]
    assert names == ["slow", "fast-heavy", "fast-light"]
    top = prof.hotspots(limit=1)
    assert len(top) == 1 and top[0]["share"] == pytest.approx(0.5)


def test_merge_folds_entries():
    a, b = Profiler(), Profiler()
    a.acc("x", 0.1, work=1)
    b.acc("x", 0.3, work=2)
    b.add("y", 5)
    a.merge(b)
    by_name = {h["name"]: h for h in a.hotspots()}
    assert by_name["x"]["work"] == 3
    assert by_name["x"]["wall_s"] == pytest.approx(0.4)
    assert by_name["y"]["work"] == 5


# -- disabled path -----------------------------------------------------------------

def test_disabled_profiler_is_inert():
    prof = Profiler(enabled=False)
    # one shared no-op region: no per-call allocation on the off path
    assert prof.region("a") is prof.region("b")
    with prof.region("a"):
        pass
    prof.add("a", 5)
    prof.acc("a", 1.0, work=3)
    assert prof.hotspots() == []
    assert prof.counters() == {}
    assert NULL_PROFILER.enabled is False


def test_disabled_mutators_are_cheap():
    # the watchdog guards end-to-end wall time; this guards the
    # per-call cost of instrumented-but-off call sites (one attribute
    # check) against accidental slow paths
    start = time.perf_counter()
    for _ in range(100_000):
        NULL_PROFILER.add("x")
        NULL_PROFILER.acc("x", 0.0)
    elapsed = time.perf_counter() - start
    assert elapsed < 0.5  # ~5 us/call ceiling, real cost is ~100x less


# -- determinism + schema ----------------------------------------------------------

def test_work_counters_deterministic_across_runs():
    p1, p2 = Profiler(), Profiler()
    analyze_program(corpus.GH_PROGRAM1, profiler=p1)
    analyze_program(corpus.GH_PROGRAM1, profiler=p2)
    assert p1.counters() == p2.counters()
    assert any(name.startswith("theorem.") for name in p1.counters())


def test_profile_document_validates():
    prof = Profiler()
    result = analyze_program(corpus.GH_PROGRAM1, profiler=prof)
    assert result.profile["v"] == 1
    assert validate(result.profile, PROFILE_SCHEMA) == []
    exported = result.to_dict()
    assert exported["profile"] == result.profile


def test_profile_absent_when_disabled():
    result = analyze_program(corpus.GH_PROGRAM1)
    assert result.profile == {}
    assert "profile" not in result.to_dict()


def test_theorem_attribution_from_tallies():
    prof = Profiler()
    analyze_program(corpus.GH_PROGRAM1, profiler=prof)
    counters = prof.counters()
    assert counters["theorem.5.3"]["work"] > 0
    assert counters["theorem.3.1"]["work"] > 0


def test_lint_checker_regions_and_rule_work():
    prof = Profiler()
    analyze_program(corpus.ABA_STACK, profiler=prof)
    names = set(prof.counters())
    assert any(n.startswith("lint.checker.") for n in names)
    assert any(n.startswith("lint.rule.") for n in names)


def test_emit_hotspots_produces_valid_events():
    prof = Profiler()
    prof.acc("a", 0.2, work=3)
    prof.acc("b", 0.1, work=1)
    events = EventStream()
    prof.emit_hotspots(events, limit=1)
    (event,) = events.snapshot("profile.hotspot")
    assert validate(event, EVENT_SCHEMA) == []
    assert event["name"] == "a" and event["work"] == 3


def test_render_table():
    prof = Profiler()
    prof.acc("analysis.classify", 0.01, work=42)
    text = prof.render()
    assert "analysis.classify" in text
    assert "wall_ms" in text
    assert Profiler().render() == "(no profile data)"


# -- sampling fallback -------------------------------------------------------------

def test_sampler_attributes_repro_functions():
    sampler = Sampler()
    with sampler:
        analyze_program(TINY)
    top = sampler.top(10)
    assert top
    assert all(entry["name"].startswith("repro") for entry in top)
    assert all(entry["calls"] > 0 for entry in top)
    # included in the document only when sampling actually ran
    prof = Profiler()
    prof.acc("x", 0.1)
    doc = prof.to_dict(sampler=sampler)
    assert doc["sampled"]
    assert validate(doc, PROFILE_SCHEMA) == []


# -- resource accounting -----------------------------------------------------------

def test_peak_rss_positive_on_posix():
    assert peak_rss_mb() > 0


def test_malloc_top_requires_tracing():
    assert malloc_top() == []
    tracemalloc.start()
    try:
        _junk = [bytearray(1024) for _ in range(64)]
        entries = malloc_top(limit=3)
    finally:
        tracemalloc.stop()
    assert entries and all(
        set(e) == {"site", "kb", "count"} for e in entries)


# -- config ------------------------------------------------------------------------

def test_profile_env_and_flags():
    cfg = ObsConfig.from_env({"REPRO_PROFILE": "1"})
    assert cfg.profile and not cfg.profile_sample
    cfg = ObsConfig.from_env({"REPRO_PROFILE": "sample"})
    assert cfg.profile and cfg.profile_sample
    assert not ObsConfig.from_env({"REPRO_PROFILE": "off"}).profile
    # --profile-sample implies --profile
    cfg = ObsConfig().with_flags(profile_sample=True)
    assert cfg.profile and cfg.profile_sample


# -- explorer integration ----------------------------------------------------------

def _explore(profiler=None, progress=None, sink=None,
             trace_malloc=False, threads=3, mode="por"):
    interp = Interp(TINY)
    specs = [ThreadSpec.of(("Inc",)) for _ in range(threads)]
    return Explorer(interp, specs, mode=mode, profiler=profiler,
                    progress=progress, progress_sink=sink,
                    trace_malloc=trace_malloc).run()


def test_explorer_profile_document():
    prof = Profiler()
    result = _explore(profiler=prof)
    assert validate(result.profile, PROFILE_SCHEMA) == []
    names = {h["name"] for h in result.profile["hotspots"]}
    assert {"mc.successors", "mc.canonicalize", "mc.dedup",
            "mc.por_ample"} <= names


def test_explorer_coverage_telemetry_always_on():
    result = _explore()  # no profiler: telemetry is unconditional
    m = result.metrics
    assert result.profile == {}
    assert m["mc.dedup_hit_rate"] == m["mc.cache_hit_ratio"]
    assert m["mc.mem_peak_mb"] > 0
    depth = m["mc.depth"]
    assert depth["count"] == sum(n for _, n in m["mc.depth_hist"])
    assert depth["min"] <= depth["p50"] <= depth["p95"] <= depth["max"]
    assert m["mc.depth_hist"] == sorted(m["mc.depth_hist"])
    assert all(f >= 0 for _, f in m["mc.frontier_samples"])


def test_explorer_heartbeat_and_progress_events():
    beats: list[str] = []
    interp = Interp(TINY)
    specs = [ThreadSpec.of(("Inc",)) for _ in range(3)]
    events = EventStream()
    result = Explorer(interp, specs, mode="por", events=events,
                      progress=0.0001,
                      progress_sink=beats.append).run()
    assert beats and "done" in beats[-1]
    assert f"states={result.states}" in beats[-1]
    progress_events = events.snapshot("explorer.progress")
    assert progress_events
    assert all(validate(e, EVENT_SCHEMA) == [] for e in progress_events)
    assert progress_events[-1]["states"] == result.states


def test_explorer_trace_malloc_metric():
    result = _explore(trace_malloc=True, threads=2)
    assert isinstance(result.metrics["mc.malloc_top"], list)


def test_states_per_s_guard_for_submillisecond_runs():
    fake = MCResult(mode="full")
    fake.states, fake.elapsed = 100, MIN_RATE_WINDOW_S / 2
    assert fake.states_per_s == 0.0
    fake.elapsed = 0.5
    assert fake.states_per_s == pytest.approx(200.0)


def test_bench_record_rate_guard_and_resource_fields():
    rec = bench_record("mc/x", MIN_RATE_WINDOW_S / 2, states=500,
                       transitions=600, mem_peak_mb=21.456789,
                       dedup_hit_rate=0.3333333)
    assert rec["states_per_s"] == 0.0
    assert rec["mem_peak_mb"] == 21.457
    assert rec["dedup_hit_rate"] == 0.333333
    assert bench_record("mc/x", 0.5, states=500)["states_per_s"] \
        == pytest.approx(1000.0)


# -- collapsed-stack (folded) accumulator ------------------------------------------

def test_folded_paths_follow_region_nesting():
    prof = Profiler()
    with prof.region("outer"):
        time.sleep(0.001)
        with prof.region("inner"):
            time.sleep(0.001)
    folded = prof.folded()
    assert set(folded) == {"outer", "outer;inner"}
    # region scopes are cumulative: outer includes inner's time
    assert folded["outer"] >= folded["outer;inner"]


def test_acc_folds_under_the_live_stack():
    prof = Profiler()
    with prof.region("phase"):
        prof.acc("hot-loop", 0.002, work=10)
    assert "phase;hot-loop" in prof.folded()
    # acc outside any region lands at the root
    prof.acc("flush", 0.001)
    assert "flush" in prof.folded()
    # zero-wall acc contributes no folded path
    prof.acc("counter-only", 0.0, work=5)
    assert "counter-only" not in prof.folded()


def test_folded_lines_format_and_write(tmp_path):
    prof = Profiler()
    prof.acc("a", 0.002)
    with prof.region("a"):
        prof.acc("b", 0.0000001)   # rounds up to the 1us floor
    lines = prof.folded_lines()
    assert lines == sorted(lines)
    by_path = dict(line.rsplit(" ", 1) for line in lines)
    assert by_path["a;b"] == "1"
    assert int(by_path["a"]) >= 2000
    target = tmp_path / "nested" / "profile.folded"
    prof.write_folded(target)
    assert target.read_text().splitlines() == lines


def test_merge_combines_folded_without_double_count():
    a, b = Profiler(), Profiler()
    with a.region("r"):
        a.acc("x", 0.001)
    with b.region("r"):
        b.acc("x", 0.003)
    a.merge(b)
    assert a.folded()["r;x"] == pytest.approx(0.004)
    # entries merged once, not re-folded through the live stack
    assert a._entries["x"][0] == 2


def test_to_dict_carries_folded_and_validates():
    prof = Profiler()
    with prof.region("outer"):
        prof.acc("inner", 0.002)
    doc = prof.to_dict()
    assert doc["folded"]["outer;inner"] == pytest.approx(0.002)
    assert validate(doc, PROFILE_SCHEMA) == []
    empty = Profiler().to_dict()
    assert "folded" not in empty


# -- folded-path escaping ----------------------------------------------------------

def test_escape_frame_round_trips_special_chars():
    from repro.obs.profile import (escape_frame, split_path,
                                   unescape_frame)

    for name in ("plain", "has space", "semi;colon", "tab\there",
                 "new\nline", "back\\slash", "mix ;\t\n end",
                 "theorem 5.3; weak interference"):
        escaped = escape_frame(name)
        # no literal whitespace (the folded format is two-column) and
        # no unescaped separator (frames must survive the join)
        assert " " not in escaped
        assert "\n" not in escaped and "\t" not in escaped
        assert unescape_frame(escaped) == name
        assert split_path(escaped) == [name]


def test_split_path_honours_escaped_separators():
    from repro.obs.profile import escape_frame, split_path

    frames = ["outer scope", "mid;frame", "leaf\\end"]
    path = ";".join(escape_frame(f) for f in frames)
    assert split_path(path) == frames


def test_folded_lines_survive_hostile_region_names(tmp_path):
    from repro.obs.profile import parse_folded_lines, split_path

    prof = Profiler()
    with prof.region("theorem 5.3; reduction"):
        with prof.region("site visit\tpass"):
            time.sleep(0.001)
    lines = prof.folded_lines()
    # the collapsed format stays two-column: escaped path + count
    parsed = parse_folded_lines(lines)
    assert len(parsed) == len(prof.folded())
    paths = [split_path(p) for p in parsed]
    assert ["theorem 5.3; reduction", "site visit\tpass"] in paths
    # and the file round-trips through write_folded
    target = tmp_path / "hostile.folded"
    prof.write_folded(target)
    reparsed = parse_folded_lines(target.read_text().splitlines())
    assert reparsed == parsed


def test_parse_folded_lines_skips_malformed():
    from repro.obs.profile import parse_folded_lines

    parsed = parse_folded_lines(
        ["a;b 100", "", "no-count-column", "c notanumber", "d 5"])
    assert parsed == {"a;b": 100, "d": 5}
